//! A tour of Chimera's passive fault handling (§4.2/§4.3): what a SMILE
//! trampoline looks like in memory, what happens on an erroneous jump into
//! it, and how the kernel recovers — plus the signal-delivery gp dance of
//! Figure 10.
//!
//! ```sh
//! cargo run --example fault_handling
//! ```

use chimera_isa::{decode, ExtSet, XReg};
use chimera_kernel::{KernelRunner, Process, RunOutcome, RuntimeTables, Variant};
use chimera_obj::{assemble, AsmOptions};
use chimera_rewrite::{chbp_rewrite, RewriteOptions};

fn main() {
    let src = "
        .data
        a: .dword 10
           .dword 20
           .dword 30
           .dword 40
        .text
        _start:
            li t0, 4
            vsetvli t1, t0, e64, m1, ta, ma
            la a0, a
            vle64.v v1, (a0)
            vmv.v.i v2, 0
            vredsum.vs v3, v1, v2
            vmv.x.s a0, v3
            li a7, 93
            ecall
    ";
    let bin = assemble(src, AsmOptions::default()).unwrap();
    let rw = chbp_rewrite(&bin, ExtSet::RV64GC, RewriteOptions::default()).unwrap();
    chimera_rewrite::verify_claim1(&rw, &bin).expect("Claim 1 holds by construction");

    println!("== SMILE trampolines placed ==");
    for &t in &rw.fht.trampolines {
        let auipc = rw.binary.read_u32(t).unwrap();
        let jalr = rw.binary.read_u32(t + 4).unwrap();
        println!(
            "  {t:#x}: {:<24} {:<24}",
            decode(auipc).unwrap().inst.to_string(),
            decode(jalr).unwrap().inst.to_string(),
        );
    }
    println!(
        "fault-handling table: {} redirects, abi gp = {:#x}",
        rw.fht.redirects.len(),
        rw.fht.abi_gp
    );

    let variant = Variant {
        binary: rw.binary.clone(),
        tables: RuntimeTables {
            fht: Some(rw.fht.clone()),
            regen: None,
        },
    };
    let process = Process::new(vec![variant]);

    // 1. Normal execution: zero fault handling.
    let (mut cpu, mut mem, view) = process.load(ExtSet::RV64GC).unwrap();
    let mut k = KernelRunner::new(view.tables.clone());
    let outcome = k.run(&mut cpu, &mut mem, 1_000_000);
    println!("\n== normal run ==");
    println!(
        "  outcome {outcome:?}, fault-handling invocations: {}",
        k.counters.total()
    );

    // 2. An erroneous jump onto an overwritten instruction (P1).
    let (&p1, &redirect) = rw.fht.redirects.iter().next().unwrap();
    println!("\n== erroneous jump to {p1:#x} (overwritten neighbour) ==");
    let (mut cpu, mut mem, view) = process.load(ExtSet::RV64GC).unwrap();
    let k = KernelRunner::new(view.tables.clone());
    cpu.hart.pc = p1;
    // Step manually to see the deterministic fault (the partial jalr may
    // retire; the fetch at its data-segment target is what faults):
    let trap = (0..2)
        .find_map(|_| cpu.step(&mut mem).err())
        .expect("deterministic fault within two steps");
    println!("  deterministic fault: {trap}");
    println!(
        "  fault address recovered as gp - 4 = {:#x}; redirect -> {redirect:#x}",
        cpu.hart.gp().wrapping_sub(4)
    );
    // Now let the kernel recover and finish.
    let (mut cpu, mut mem, view) = process.load(ExtSet::RV64GC).unwrap();
    let mut k2 = KernelRunner::new(view.tables.clone());
    cpu.hart.pc = p1;
    let outcome = k2.run(&mut cpu, &mut mem, 1_000_000);
    println!(
        "  recovered: outcome {outcome:?}, SMILE faults handled: {}",
        k2.counters.smile_faults
    );
    let _ = k;

    // 3. Signal delivered mid-trampoline: the handler sees the ABI gp.
    println!("\n== signal inside a trampoline (Figure 10) ==");
    let tramp = *rw.fht.trampolines.iter().next().unwrap();
    let (mut cpu, mut mem, view) = process.load(ExtSet::RV64GC).unwrap();
    let mut k = KernelRunner::new(view.tables.clone());
    while cpu.hart.pc != tramp + 4 {
        cpu.step(&mut mem).unwrap();
    }
    println!(
        "  interrupted at {:#x}: in-flight gp = {:#x}",
        cpu.hart.pc,
        cpu.hart.gp()
    );
    k.deliver_signal(&mut cpu, 0x5555_0000);
    println!(
        "  handler observes gp = {:#x} (the psABI value), signals fixed: {}",
        cpu.hart.gp(),
        k.counters.signals_gp_restored
    );
    assert_eq!(cpu.hart.gp(), rw.fht.abi_gp);
    assert_eq!(cpu.hart.get_x(XReg::RA), chimera_kernel::SIGRETURN_ADDR);
    match outcome {
        RunOutcome::Exited(code) => {
            println!("\nok: program result {code}, all mechanisms exercised")
        }
        other => panic!("unexpected outcome {other:?}"),
    }
}
