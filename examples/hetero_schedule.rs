//! Heterogeneous scheduling across an 8-core ISAX processor (a miniature
//! of §6.1 / Fig. 11): 200 mixed tasks, four systems, end-to-end latency
//! and CPU time, with real work-stealing threads executing emulated tasks.
//!
//! ```sh
//! cargo run --release --example hetero_schedule
//! ```

use chimera::{
    measure, measure_or_fam_probe, prepare_process, FamResult, InputVersion, SystemKind,
    TaskBinaries,
};
use chimera_isa::ExtSet;
use chimera_kernel::{simulate_work_stealing, Pool, SimMachine, TaskCost, ThreadedPool};
use chimera_workloads::hetero::standard_tasks;

fn main() {
    let tasks = standard_tasks();
    let task_bins = TaskBinaries {
        base_version: Some(tasks.matrix_base.clone()),
        ext_version: Some(tasks.matrix_ext.clone()),
    };
    let fib_bins = TaskBinaries {
        base_version: Some(tasks.fib_base.clone()),
        ext_version: Some(tasks.fib_base.clone()),
    };

    let machine = SimMachine {
        base_cores: 4,
        ext_cores: 4,
        migrate_cost: 4000,
    };
    let n_tasks = 200;
    let ext_share = 0.5;

    println!(
        "== downgrading (extension-version input), {n_tasks} tasks, {:.0}% extension ==",
        ext_share * 100.0
    );
    println!(
        "{:<10} {:>14} {:>14} {:>12}",
        "system", "latency (cyc)", "cpu time", "accelerated"
    );
    for system in [
        SystemKind::Fam,
        SystemKind::Safer,
        SystemKind::Melf,
        SystemKind::Chimera,
    ] {
        // Measure each (task kind, core class) once; feed the simulator.
        let matrix = prepare_process(system, InputVersion::Ext, &task_bins).unwrap();
        let fib = prepare_process(system, InputVersion::Ext, &fib_bins).unwrap();

        let m_ext = measure(&matrix, ExtSet::RV64GCV, u64::MAX / 2).unwrap();
        let m_base = match measure_or_fam_probe(&matrix, ExtSet::RV64GC, u64::MAX / 2).unwrap() {
            FamResult::Completed(m) => Some(m.cycles),
            FamResult::Migrated { .. } => None,
        };
        let m_probe = match measure_or_fam_probe(&matrix, ExtSet::RV64GC, u64::MAX / 2).unwrap() {
            FamResult::Migrated { probe_cycles } => probe_cycles,
            _ => 0,
        };
        let f_base = measure(&fib, ExtSet::RV64GC, u64::MAX / 2).unwrap();

        let matrix_cost = TaskCost {
            prefers: Pool::Ext,
            on_ext: m_ext.cycles,
            on_base: m_base,
            fam_probe: m_probe,
            ext_accelerated: true,
        };
        let fib_cost = TaskCost {
            prefers: Pool::Base,
            on_ext: f_base.cycles,
            on_base: Some(f_base.cycles),
            fam_probe: 0,
            ext_accelerated: false,
        };

        let n_ext = (n_tasks as f64 * ext_share) as usize;
        let mut sim_tasks = vec![matrix_cost; n_ext];
        sim_tasks.extend(vec![fib_cost; n_tasks - n_ext]);
        let r = simulate_work_stealing(machine, &sim_tasks);
        println!(
            "{:<10} {:>14} {:>14} {:>11.0}%",
            system.name(),
            r.latency,
            r.cpu_time,
            100.0 * r.accelerated_ext_tasks as f64 / r.ext_tasks.max(1) as f64
        );
    }

    // A genuinely threaded run (crossbeam work stealing) with Chimera: each
    // job picks the right MMView for the worker that stole it.
    println!("\n== threaded execution (Chimera, 32 tasks on 4+4 workers) ==");
    let matrix = std::sync::Arc::new(
        prepare_process(SystemKind::Chimera, InputVersion::Ext, &task_bins).unwrap(),
    );
    let pool = ThreadedPool::new(4, 4);
    for _ in 0..32 {
        let p = std::sync::Arc::clone(&matrix);
        pool.spawn(Pool::Ext, move |worker_pool| {
            let profile = match worker_pool {
                Pool::Base => ExtSet::RV64GC,
                Pool::Ext => ExtSet::RV64GCV,
            };
            measure(&p, profile, u64::MAX / 2)
                .expect("task completes")
                .cycles
        });
    }
    let results = pool.run();
    let total: u64 = results.iter().map(|(_, c)| c).sum();
    println!("32 matrix tasks completed on real threads; total simulated cycles {total}");
}
