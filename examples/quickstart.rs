//! Quickstart: take a vector binary, rewrite it with CHBP for a core
//! without the vector extension, and run it — transparently, with zero
//! fault-handling invocations on the normal path.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use chimera::{measure, prepare_process, InputVersion, SystemKind, TaskBinaries};
use chimera_isa::ExtSet;
use chimera_obj::{assemble, AsmOptions};

fn main() {
    // A program using the RISC-V vector extension: sum of an element-wise
    // product of two arrays.
    let src = "
        .data
        a: .dword 3
           .dword 5
           .dword 7
           .dword 11
        b: .dword 2
           .dword 4
           .dword 6
           .dword 8
        .text
        _start:
            li t0, 4
            vsetvli t1, t0, e64, m1, ta, ma
            la a0, a
            la a1, b
            vle64.v v1, (a0)
            vle64.v v2, (a1)
            vmul.vv v3, v1, v2
            vmv.v.i v4, 0
            vredsum.vs v5, v3, v4
            vmv.x.s a0, v5
            li a7, 93
            ecall
    ";
    let ext_binary = assemble(src, AsmOptions::default()).expect("assembles");
    println!(
        "original binary: {} bytes of RV64GCV code, entry {:#x}",
        ext_binary.code_size(),
        ext_binary.entry
    );

    // Native run on an extension core.
    let native = chimera_emu::run_binary(&ext_binary, 1_000_000).expect("native run");
    println!(
        "native on extension core : result {}, {} cycles, {} vector insts",
        native.exit_code, native.stats.cycles, native.stats.vector_insts
    );

    // Chimera: rewrite for base cores, run through the kernel runtime.
    let task = TaskBinaries {
        base_version: None,
        ext_version: Some(ext_binary),
    };
    let process =
        prepare_process(SystemKind::Chimera, InputVersion::Ext, &task).expect("rewriting succeeds");

    let m = measure(&process, ExtSet::RV64GC, 10_000_000).expect("downgraded run");
    println!(
        "rewritten on base core   : result {}, {} cycles, fault handling invoked {} times",
        m.exit_code,
        m.cycles,
        m.counters.total()
    );
    assert_eq!(m.exit_code, native.exit_code, "semantics preserved");
    assert_eq!(m.counters.total(), 0, "passive: no faults in normal runs");

    // The same process also still runs natively on extension cores.
    let on_ext = measure(&process, ExtSet::RV64GCV, 1_000_000).expect("ext view");
    println!(
        "same process on ext core : result {}, {} cycles",
        on_ext.exit_code, on_ext.cycles
    );
    println!("ok: one process, two MMViews, identical semantics");
}
