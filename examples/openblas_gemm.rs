//! OpenBLAS-style matrix kernels across heterogeneous cores (a miniature
//! of §6.4 / Fig. 14): dgemm running natively on extension cores,
//! downgraded on base cores, and as MELF's native scalar build.
//!
//! ```sh
//! cargo run --release --example openblas_gemm
//! ```

use chimera::{measure, prepare_process, InputVersion, SystemKind, TaskBinaries};
use chimera_isa::ExtSet;
use chimera_workloads::blas::{gemm, Precision};

fn main() {
    let size = 12;
    println!("dgemm {size}x{size}x{size}, full matrix on one core:");

    let vector = gemm(size, size, size, 0, size, Precision::Double, true);
    let scalar = gemm(size, size, size, 0, size, Precision::Double, false);

    let native_ext = chimera_emu::run_binary(&vector, u64::MAX / 2).expect("vector native");
    let native_base = chimera_emu::run_binary(&scalar, u64::MAX / 2).expect("scalar native");
    assert_eq!(native_ext.exit_code, native_base.exit_code);
    println!(
        "  native RVV on ext core    : checksum {:>8}, {:>9} cycles",
        native_ext.exit_code, native_ext.stats.cycles
    );
    println!(
        "  native scalar (MELF base) : checksum {:>8}, {:>9} cycles ({:.2}x slower)",
        native_base.exit_code,
        native_base.stats.cycles,
        native_base.stats.cycles as f64 / native_ext.stats.cycles as f64
    );

    // Chimera: the vector binary rewritten for base cores.
    let task = TaskBinaries {
        base_version: Some(scalar),
        ext_version: Some(vector),
    };
    let chimera = prepare_process(SystemKind::Chimera, InputVersion::Ext, &task).unwrap();
    let down = measure(&chimera, ExtSet::RV64GC, u64::MAX / 2).expect("downgraded");
    assert_eq!(down.exit_code, native_ext.exit_code);
    println!(
        "  Chimera-rewritten on base : checksum {:>8}, {:>9} cycles ({:.2}x vs RVV), {} faults handled",
        down.exit_code,
        down.cycles,
        down.cycles as f64 / native_ext.stats.cycles as f64,
        down.counters.total()
    );

    // Acceleration ratios relative to "FAM Ext." (vector on ext core),
    // the Fig. 14 normalization.
    println!("\nacceleration ratio relative to FAM Ext. (higher is better):");
    let base = native_ext.stats.cycles as f64;
    println!("  FAM Ext. (vector, ext core) : 1.00");
    println!(
        "  FAM Base (scalar binary)    : {:.2}",
        base / native_base.stats.cycles as f64
    );
    println!(
        "  Chimera (rewritten, base)   : {:.2}",
        base / down.cycles as f64
    );
    println!(
        "  MELF ideal (native per core): 1.00 (ext) / {:.2} (base)",
        base / native_base.stats.cycles as f64
    );
    println!("\nok: all checksums identical — exact FP equality by construction");
}
