//! Integration tests for the many-hart event kernel over the standard
//! heterogeneous scenario (see `chimera_testutil::ManyHartScenario`):
//! native RVV harts, FAM harts that fault-and-migrate mid-run, scalar
//! harts, CHBP-rewritten harts recovering SMILE faults under fuel
//! slicing, and communicator pairs blocking in `wfi` on the event queue.
//!
//! The scaled-up version of the same property — 64 and 256 harts,
//! bit-identical across 1/2/4/8 workers with simulated-IPS reporting —
//! is the `many_hart` bench gate (`crates/bench/src/bin/many_hart.rs`).

use chimera_testutil::{run_many_hart_scenario, ManyHartScenario};

const HARTS: usize = 16;
/// Odd and small, so every task is suspended mid-loop many times and
/// SMILE/FAM faults land on slice boundaries.
const QUANTUM: u64 = 193;

#[test]
fn standard_scenario_completes_every_execution_path() {
    let scn = ManyHartScenario::new();
    let (r, counters) = run_many_hart_scenario(&scn, HARTS, 1, QUANTUM);
    assert_eq!(
        r.exited(),
        HARTS,
        "every hart must exit cleanly: {:?}",
        r.first_failure()
    );

    // The three matrix variants — native RVV, FAM-migrated, and
    // CHBP-rewritten on base — compute the same checksum.
    let native_exit = r.harts[0].exit.expect("hart 0 exits");
    for h in &r.harts {
        match h.hart % 8 {
            0 | 4 => assert_eq!(h.exit, Some(native_exit), "hart {}", h.hart),
            1 | 5 => {
                assert_eq!(h.exit, Some(native_exit), "hart {}", h.hart);
                assert_eq!(h.migrations, 1, "FAM hart {} migrates once", h.hart);
            }
            6 => {
                assert_eq!(h.exit, Some(native_exit), "hart {}", h.hart);
                if h.hart % 16 == 6 {
                    assert!(
                        h.counters.trap_trampolines > 0,
                        "strawman hart {} must round-trip through the trap handler",
                        h.hart
                    );
                }
            }
            2 => assert_eq!(h.migrations, 0, "scalar hart {} never migrates", h.hart),
            _ => {
                // Communicators encode their own id in the exit code, so a
                // cross-hart mixup is visible architecturally.
                let exit = h.exit.expect("communicator exits") as u64;
                assert_eq!(exit / 1000, h.hart, "hart {}: exit {}", h.hart, exit);
            }
        }
    }

    // Aggregates reconcile with the trace counters.
    let counter = |name: &str| counters.get(name).copied().unwrap_or(0);
    assert_eq!(counter("many.migrations"), r.migrations);
    assert_eq!(r.migrations, (HARTS / 4) as u64, "one per FAM hart");
    assert_eq!(counter("many.delivered_timer"), r.delivered.0);
    assert_eq!(counter("many.delivered_ipi"), r.delivered.1);
    assert_eq!(counter("many.delivered_wakeup"), r.delivered.2);
    // Each communicator pair exchanges 3 IPI rounds + a one-shot timer.
    assert_eq!(r.delivered.1, (HARTS / 4) as u64 * 3);
    assert_eq!(r.delivered.0, (HARTS / 4) as u64);
    assert_eq!(counter("many.events_dropped"), 0);
}

#[test]
fn standard_scenario_is_bit_identical_across_worker_counts() {
    let scn = ManyHartScenario::new();
    let (base, base_counters) = run_many_hart_scenario(&scn, HARTS, 1, QUANTUM);
    assert_eq!(base.exited(), HARTS, "{:?}", base.first_failure());
    for workers in [2, 4, 8] {
        let (r, counters) = run_many_hart_scenario(&scn, HARTS, workers, QUANTUM);
        assert_eq!(r, base, "workers={workers}: result diverged");
        assert_eq!(
            counters, base_counters,
            "workers={workers}: trace counters diverged"
        );
    }
}

#[test]
fn quantum_changes_slicing_but_not_architectural_results() {
    let scn = ManyHartScenario::new();
    let (a, _) = run_many_hart_scenario(&scn, HARTS, 2, 64);
    let (b, _) = run_many_hart_scenario(&scn, HARTS, 2, 4096);
    assert_eq!(a.exited(), HARTS, "{:?}", a.first_failure());
    for (ha, hb) in a.harts.iter().zip(&b.harts) {
        assert_eq!(ha.exit, hb.exit, "hart {}", ha.hart);
        assert_eq!(
            ha.retired, hb.retired,
            "hart {}: slicing is transparent",
            ha.hart
        );
        assert_eq!(ha.migrations, hb.migrations, "hart {}", ha.hart);
        assert_eq!(ha.counters, hb.counters, "hart {}", ha.hart);
    }
}
