//! The offline differential suite: every workload generator's output is
//! executed (a) unrewritten on the extension profile vs CHBP-rewritten on
//! the base profile, and (b) with the basic-block decode cache on vs off —
//! asserting identical architectural results each way.
//!
//! (a) is the paper's Claim-1-style semantic-equivalence check over the
//! whole workload zoo; (b) is the decode cache's transparency contract:
//! the cache may change wall-clock time only, never results, traps,
//! register files, memory, or simulated cycle accounting.

use chimera_isa::ExtSet;
use chimera_kernel::{KernelRunner, Process, RunOutcome, RuntimeTables, Variant};
use chimera_obj::Binary;
use chimera_rewrite::{chbp_rewrite, verify_claim1, RewriteOptions};
use chimera_testutil::{run_all_modes, run_keeping_mem, run_rewritten, writable_bytes, FUEL};
use chimera_workloads::blas::{self, Precision};
use chimera_workloads::hetero;
use chimera_workloads::speclike::{generate, GenOptions, APP_PROFILES, SPEC_PROFILES};

/// Every workload generator's output, tiny-scaled for test runtime.
fn workloads() -> Vec<(String, Binary)> {
    let mut v: Vec<(String, Binary)> = Vec::new();
    for p in SPEC_PROFILES {
        v.push((
            format!("spec:{}", p.name),
            generate(
                p,
                GenOptions {
                    size_scale: 1.0 / 512.0,
                    work_scale: 0.25,
                    seed: 7,
                },
            ),
        ));
    }
    for p in APP_PROFILES {
        v.push((
            format!("app:{}", p.name),
            generate(
                p,
                GenOptions {
                    size_scale: 1.0 / 512.0,
                    work_scale: 0.25,
                    seed: 8,
                },
            ),
        ));
    }
    v.push((
        "blas:dgemm".into(),
        blas::gemm(6, 5, 4, 1, 2, Precision::Double, true),
    ));
    v.push((
        "blas:sgemv".into(),
        blas::gemv(6, 5, 1, 2, Precision::Single, true),
    ));
    v.push(("hetero:matrix".into(), hetero::matrix_task(8, 2, true)));
    v.push(("hetero:fib".into(), hetero::fib_task(12, 2)));
    v
}

/// Decode cache on vs off: FULL result equality — exit code, stdout, the
/// whole integer register file, every stats counter (so cycle accounting
/// is provably identical), and the final bytes of every region.
#[test]
fn cache_on_off_identical_for_every_workload() {
    for (name, bin) in workloads() {
        for profile in [ExtSet::RV64GCV, bin.profile] {
            let (on, mut mem_on) = run_keeping_mem(&bin, profile, true);
            let (off, mut mem_off) = run_keeping_mem(&bin, profile, false);
            assert_eq!(on, off, "{name}: cache on/off diverged on {profile}");
            assert_eq!(
                writable_bytes(&mut mem_on, &bin),
                writable_bytes(&mut mem_off, &bin),
                "{name}: output memory diverged on {profile}"
            );
        }
    }
}

/// Unrewritten on RV64GCV vs CHBP-rewritten on RV64GC: identical exit
/// code, stdout and output memory — with the rewritten binary itself run
/// both cache-on and cache-off.
#[test]
fn rewritten_matches_native_for_every_workload() {
    for (name, bin) in workloads() {
        let (native, mut native_mem) = run_keeping_mem(&bin, ExtSet::RV64GCV, true);
        let native = native.unwrap_or_else(|e| panic!("{name}: native run failed: {e}"));
        let rw = chbp_rewrite(&bin, ExtSet::RV64GC, RewriteOptions::default())
            .unwrap_or_else(|e| panic!("{name}: rewrite failed: {e}"));
        verify_claim1(&rw, &bin).unwrap_or_else(|e| panic!("{name}: claim 1: {e}"));
        let native_data = writable_bytes(&mut native_mem, &bin);
        let mut per_cache = Vec::new();
        for cache in [true, false] {
            let mut kr = run_rewritten(&rw, cache);
            assert_eq!(native.exit_code, kr.exit_code, "{name} (cache={cache})");
            assert_eq!(native.stdout, kr.stdout, "{name} (cache={cache})");
            assert_eq!(kr.cpu.stats.vector_insts, 0, "{name}: fully downgraded");
            // The original's writable sections exist untouched (by name and
            // address) in the rewritten binary; final contents must match.
            assert_eq!(
                native_data,
                writable_bytes(&mut kr.mem, &bin),
                "{name} (cache={cache}): output memory diverged"
            );
            per_cache.push(kr.cpu.stats);
        }
        // Cycle accounting of the rewritten run is itself cache-invariant.
        assert_eq!(per_cache[0], per_cache[1], "{name}: stats diverged");
    }
}

/// Error paths must be cache-transparent too: a program that traps
/// (extension instruction on a base core; jump into non-executable data)
/// produces the *same* error with the cache on and off.
#[test]
fn traps_identical_cache_on_off() {
    // Vector program on a base core, unrewritten: illegal instruction.
    let vec_bin = hetero::matrix_task(4, 1, true);
    let (on, _) = run_keeping_mem(&vec_bin, ExtSet::RV64GC, true);
    let (off, _) = run_keeping_mem(&vec_bin, ExtSet::RV64GC, false);
    assert!(on.is_err(), "vector code must trap on RV64GC");
    assert_eq!(on, off, "illegal-instruction trap diverged");

    // A jump into the (non-executable) data region: fetch fault.
    let src = "
        .data
        arr: .dword 7
        .text
        _start:
            la t0, arr
            jr t0
    ";
    let bin = chimera_obj::assemble(src, chimera_obj::AsmOptions::default()).unwrap();
    let (on, _) = run_keeping_mem(&bin, ExtSet::RV64GCV, true);
    let (off, _) = run_keeping_mem(&bin, ExtSet::RV64GCV, false);
    assert!(on.is_err(), "fetch from data must fault");
    assert_eq!(on, off, "fetch-fault trap diverged");
}

/// Tracing is architecturally transparent: every workload produces a
/// bit-identical [`chimera_emu::RunResult`] (exit code, stdout, register
/// file, every stats counter, cycle accounting) with the tracer disabled
/// and enabled — on both the native and the kernel-mediated rewritten
/// path. The enabled runs must actually record events, so the equality is
/// not vacuous.
#[test]
fn tracing_enabled_vs_disabled_identical_for_every_workload() {
    use chimera_kernel::Tracer;
    for (name, bin) in workloads() {
        let baseline = chimera_emu::run_binary_with(&bin, ExtSet::RV64GCV, FUEL, true);
        let disabled =
            chimera_emu::run_binary_traced(&bin, ExtSet::RV64GCV, FUEL, true, &Tracer::disabled());
        let tracer = Tracer::enabled();
        let enabled = chimera_emu::run_binary_traced(&bin, ExtSet::RV64GCV, FUEL, true, &tracer);
        assert_eq!(baseline, disabled, "{name}: disabled tracer not inert");
        assert_eq!(baseline, enabled, "{name}: enabled tracer not transparent");
        assert!(
            !tracer.drain().is_empty(),
            "{name}: the enabled run must record events"
        );
    }

    // The kernel path (SMILE recovery in the loop) is transparent too.
    let bin = hetero::matrix_task(8, 2, true);
    let rw = chbp_rewrite(&bin, ExtSet::RV64GC, RewriteOptions::default()).unwrap();
    let kr = run_rewritten(&rw, true);
    let process = Process::new(vec![Variant {
        binary: rw.binary.clone(),
        tables: RuntimeTables {
            fht: Some(rw.fht.clone()),
            regen: None,
        },
    }]);
    let tracer = Tracer::enabled();
    let (mut tcpu, mut tmem, view) = process.load(ExtSet::RV64GC).unwrap();
    tcpu.tracer = tracer.clone();
    let mut k = KernelRunner::with_tracer(view.tables.clone(), tracer.clone());
    match k.run(&mut tcpu, &mut tmem, FUEL) {
        RunOutcome::Exited(tcode) => {
            assert_eq!(
                (kr.exit_code, &kr.stdout),
                (tcode, &k.stdout),
                "kernel path diverged"
            );
            assert_eq!(kr.cpu.stats, tcpu.stats, "kernel-path stats diverged");
        }
        other => panic!("traced kernel run ended with {other:?}"),
    }
    assert!(!tracer.drain().is_empty(), "kernel run must record events");
}

/// All four execution front ends — reference interpreter, decode-cache
/// interpreter, micro-op engine, and host-code JIT — produce bit-identical
/// results for every workload: exit code, stdout, register file, every
/// stats counter (cycle accounting included), and output memory. The cache
/// counters of the cached modes reconcile exactly: the engine turns a
/// subset of the interpreter's dispatcher hits into chained follows
/// (`hits_interp == hits_engine + chained_engine`) and the JIT turns a
/// subset into in-trace chain-entry passes
/// (`hits_interp == hits_jit + chained_jit + jitted_jit`), while misses,
/// builds and invalidations are identical everywhere.
#[test]
fn engine_matches_interpreter_and_reference_for_every_workload() {
    let mut total_jitted = 0u64;
    for (name, bin) in workloads() {
        for profile in [ExtSet::RV64GCV, bin.profile] {
            let m = run_all_modes(&bin, profile, FUEL);
            let reference = &m.reference.0;
            for (mode, obs) in &m.columns()[1..] {
                assert_eq!(
                    reference, *obs,
                    "{name} ({mode}): observation diverged on {profile}"
                );
            }
            let (i, e, j) = (m.interpreter.1, m.engine.1, m.jit.1);
            assert_eq!(
                i.hits,
                e.hits + e.chained,
                "{name}: chained follows must account exactly for the \
                 dispatcher hits they replace: {i:?} vs {e:?}"
            );
            assert_eq!(
                i.hits,
                j.hits + j.chained + j.jitted,
                "{name}: jitted chain-entry passes must account exactly for \
                 the dispatcher hits they replace: {i:?} vs {j:?}"
            );
            for (mode, c) in [("engine", e), ("jit", j)] {
                assert_eq!(i.misses, c.misses, "{name} ({mode}): misses diverged");
                assert_eq!(
                    i.blocks_built, c.blocks_built,
                    "{name} ({mode}): builds diverged"
                );
                assert_eq!(
                    i.invalidations, c.invalidations,
                    "{name} ({mode}): invals diverged"
                );
            }
            if chimera_emu::jit_available() {
                assert!(
                    j.jit_execs > 0,
                    "{name}: no block ever ran as compiled code: {j:?}"
                );
                total_jitted += j.jitted;
            }
            let r = m.reference.1;
            assert_eq!(
                (r.hits, r.misses, r.blocks_built, r.chained, r.jitted),
                (0, 0, 0, 0, 0),
                "{name}: the reference interpreter must not touch the cache"
            );
        }
    }
    if chimera_emu::jit_available() {
        // Straight-line workloads legitimately never chain (each block
        // runs once); the loopy ones must, or the law above is vacuous.
        assert!(
            total_jitted > 0,
            "jit trace chaining never engaged across the whole zoo"
        );
    }
}

/// Seeded random programs through all four front ends: straight-line
/// arithmetic, shifts, forward branches, aligned loads/stores into a
/// scratch region, and a bounded outer loop — generated deterministically
/// from each seed, so failures reproduce. Programs that trap (an `ebreak`
/// is sometimes emitted) must produce the identical trap in every mode.
#[test]
fn random_programs_identical_across_modes() {
    use chimera_isa::prng::Prng;

    for seed in 0..24u64 {
        let src = random_program(seed);
        let bin = chimera_obj::assemble(&src, chimera_obj::AsmOptions::default())
            .unwrap_or_else(|e| panic!("seed {seed}: generated program must assemble: {e}\n{src}"));
        let m = run_all_modes(&bin, ExtSet::RV64GCV, 1_000_000);
        let reference = &m.reference.0;
        for (mode, obs) in &m.columns()[1..] {
            assert_eq!(reference, *obs, "seed {seed} ({mode}): diverged");
        }
        let (i, e, j) = (m.interpreter.1, m.engine.1, m.jit.1);
        assert_eq!(
            i.hits,
            e.hits + e.chained,
            "seed {seed}: engine hit reconciliation"
        );
        assert_eq!(
            i.hits,
            j.hits + j.chained + j.jitted,
            "seed {seed}: jit hit reconciliation"
        );
        assert_eq!(
            (i.misses, i.blocks_built, i.invalidations),
            (e.misses, e.blocks_built, e.invalidations),
            "seed {seed}: engine cache counters diverged"
        );
        assert_eq!(
            (i.misses, i.blocks_built, i.invalidations),
            (j.misses, j.blocks_built, j.invalidations),
            "seed {seed}: jit cache counters diverged"
        );
    }

    /// One deterministic random program per seed. Always terminates: the
    /// only backward branch is the outer loop on a pre-set counter.
    fn random_program(seed: u64) -> String {
        let mut rng = Prng::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xd1f3);
        // Operand pool: caller-ish temps, avoiding the loop counter (t6),
        // scratch base (s11), zero and the ABI regs the runner owns.
        const REGS: &[&str] = &["t0", "t1", "t2", "a0", "a1", "a2", "a3", "s2", "s3", "s4"];
        let mut src = String::from(
            "
        .data
        scratch: .zero 256
        .text
        _start:
            la s11, scratch
        ",
        );
        for (n, r) in REGS.iter().enumerate() {
            src.push_str(&format!("    li {r}, {}\n", rng.below(1 << 20) + n as u64));
        }
        src.push_str(&format!("    li t6, {}\n", rng.below(40) + 3));
        src.push_str("loop:\n");
        let body_len = rng.range_usize(8, 40);
        let mut label = 0usize;
        let mut skip: Option<(usize, usize)> = None; // (label, insts left)
        for _ in 0..body_len {
            let r = |rng: &mut Prng| *rng.pick(REGS);
            match rng.below(10) {
                0 | 1 => {
                    let op = *rng.pick(&["add", "sub", "xor", "or", "and", "sll", "srl", "mul"]);
                    let (a, b, c) = (r(&mut rng), r(&mut rng), r(&mut rng));
                    src.push_str(&format!("    {op} {a}, {b}, {c}\n"));
                }
                2 | 3 => {
                    let op = *rng.pick(&["addi", "xori", "ori", "andi"]);
                    let imm = rng.range_i64(-2048, 2048);
                    src.push_str(&format!(
                        "    {op} {}, {}, {imm}\n",
                        r(&mut rng),
                        r(&mut rng)
                    ));
                }
                4 => {
                    let op = *rng.pick(&["slli", "srli", "srai"]);
                    let sh = rng.below(63) + 1;
                    src.push_str(&format!(
                        "    {op} {}, {}, {sh}\n",
                        r(&mut rng),
                        r(&mut rng)
                    ));
                }
                5 | 6 => {
                    // Aligned in-bounds access: mask an arbitrary register
                    // into [0, 248] and index the scratch region.
                    let (addr, v) = (r(&mut rng), r(&mut rng));
                    src.push_str(&format!("    andi t3, {addr}, 248\n"));
                    src.push_str("    add t3, t3, s11\n");
                    let (st, ld) = *rng.pick(&[("sd", "ld"), ("sw", "lw"), ("sb", "lbu")]);
                    if rng.next_bool() {
                        src.push_str(&format!("    {st} {v}, 0(t3)\n"));
                    } else {
                        src.push_str(&format!("    {ld} {v}, 0(t3)\n"));
                    }
                }
                7 | 8 => {
                    // Forward conditional branch over the next few insts.
                    if skip.is_none() {
                        let op = *rng.pick(&["beq", "bne", "blt", "bgeu"]);
                        src.push_str(&format!(
                            "    {op} {}, {}, skip{label}\n",
                            r(&mut rng),
                            r(&mut rng)
                        ));
                        skip = Some((label, rng.range_usize(1, 4)));
                        label += 1;
                    }
                }
                _ => {
                    let op = *rng.pick(&["clz", "ctz", "cpop", "andn"]);
                    if op == "andn" {
                        src.push_str(&format!(
                            "    andn {}, {}, {}\n",
                            r(&mut rng),
                            r(&mut rng),
                            r(&mut rng)
                        ));
                    } else {
                        src.push_str(&format!("    {op} {}, {}\n", r(&mut rng), r(&mut rng)));
                    }
                }
            }
            if let Some((l, left)) = skip {
                if left == 1 {
                    src.push_str(&format!("skip{l}:\n"));
                    skip = None;
                } else {
                    skip = Some((l, left - 1));
                }
            }
        }
        if let Some((l, _)) = skip {
            src.push_str(&format!("skip{l}:\n"));
        }
        src.push_str("    addi t6, t6, -1\n    bnez t6, loop\n");
        if rng.chance(0.2) {
            // A trapping tail: the run must end with the identical
            // breakpoint trap (and identical state) in every mode.
            src.push_str("    ebreak\n");
        }
        // Checksum the register pool into the exit code (mod 256 keeps the
        // exit value readable; equality is asserted on full state anyway).
        src.push_str("    xor a0, a0, a1\n    xor a0, a0, s2\n");
        src.push_str("    andi a0, a0, 255\n    li a7, 93\n    ecall\n");
        src
    }
}

/// The cache actually engages on these workloads (hits dominate after the
/// first iteration of any loop) — guards against a silently disabled cache
/// making the equality tests above vacuous.
#[test]
fn cache_counters_engage() {
    let bin = hetero::fib_task(10, 3);
    let (mut cpu, mut mem) = chimera_emu::boot(&bin, ExtSet::RV64GCV);
    assert!(cpu.cache.enabled, "cache must default to enabled");
    let _ = chimera_emu::run_cpu(&mut cpu, &mut mem, FUEL).unwrap();
    let s = cpu.cache.stats;
    assert!(s.blocks_built > 0, "no blocks built: {s:?}");
    assert!(s.misses >= s.blocks_built, "{s:?}");
    // Under the engine front end, loop re-entries are either dispatcher
    // hits or chained follows; together they must dominate the misses.
    assert!(
        s.hits + s.chained > s.misses,
        "loopy code must be re-entry-dominated: {s:?}"
    );
}

/// Yield-point transparency: a run chopped into **1-instruction fuel
/// slices**, with the suspended run forcibly migrated to a fresh OS
/// thread every few slices, observes exactly like the unsliced run — in
/// all four execution modes. This is the contract the many-hart fiber
/// kernel stands on: every `Cpu::run` return is a clean suspension point
/// (batched counters drained, no host-thread residue), so a fiber may
/// resume anywhere, any number of times, without any observable effect.
#[test]
fn slicing_and_forced_migration_are_transparent_in_every_mode() {
    use chimera_emu::ExecMode;
    use chimera_testutil::observe_mode_sliced;

    let zoo = [
        ("hetero:matrix".to_string(), hetero::matrix_task(8, 2, true)),
        ("hetero:fib".to_string(), hetero::fib_task(12, 2)),
        (
            "blas:sgemv".into(),
            blas::gemv(4, 3, 1, 2, Precision::Single, true),
        ),
    ];
    for (name, bin) in zoo {
        let m = run_all_modes(&bin, bin.profile, FUEL);
        let columns = [
            (ExecMode::Reference, false, &m.reference.0),
            (ExecMode::Interpreter, true, &m.interpreter.0),
            (ExecMode::Engine, true, &m.engine.0),
            (ExecMode::Jit, true, &m.jit.0),
        ];
        for (mode, cache, unsliced) in columns {
            // The torture slicing: one instruction per slice, hop to a
            // new OS thread every 64 slices.
            let tortured = observe_mode_sliced(&bin, bin.profile, mode, cache, FUEL, 1, 64);
            assert_eq!(
                &tortured, unsliced,
                "{name} ({mode:?}): 1-instruction slicing diverged"
            );
            // A mid-size odd slice with frequent hops, to catch anything
            // only triggered by multi-instruction partial slices.
            let mid = observe_mode_sliced(&bin, bin.profile, mode, cache, FUEL, 97, 3);
            assert_eq!(
                &mid, unsliced,
                "{name} ({mode:?}): 97-instruction slicing diverged"
            );
        }
    }
}
