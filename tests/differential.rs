//! The offline differential suite: every workload generator's output is
//! executed (a) unrewritten on the extension profile vs CHBP-rewritten on
//! the base profile, and (b) with the basic-block decode cache on vs off —
//! asserting identical architectural results each way.
//!
//! (a) is the paper's Claim-1-style semantic-equivalence check over the
//! whole workload zoo; (b) is the decode cache's transparency contract:
//! the cache may change wall-clock time only, never results, traps,
//! register files, memory, or simulated cycle accounting.

use chimera_isa::ExtSet;
use chimera_kernel::{KernelRunner, Process, RunOutcome, RuntimeTables, Variant};
use chimera_obj::Binary;
use chimera_rewrite::{chbp_rewrite, verify_claim1, RewriteOptions, Rewritten};
use chimera_workloads::blas::{self, Precision};
use chimera_workloads::hetero;
use chimera_workloads::speclike::{generate, GenOptions, APP_PROFILES, SPEC_PROFILES};

const FUEL: u64 = u64::MAX / 2;

/// Every workload generator's output, tiny-scaled for test runtime.
fn workloads() -> Vec<(String, Binary)> {
    let mut v: Vec<(String, Binary)> = Vec::new();
    for p in SPEC_PROFILES {
        v.push((
            format!("spec:{}", p.name),
            generate(
                p,
                GenOptions {
                    size_scale: 1.0 / 512.0,
                    work_scale: 0.25,
                    seed: 7,
                },
            ),
        ));
    }
    for p in APP_PROFILES {
        v.push((
            format!("app:{}", p.name),
            generate(
                p,
                GenOptions {
                    size_scale: 1.0 / 512.0,
                    work_scale: 0.25,
                    seed: 8,
                },
            ),
        ));
    }
    v.push((
        "blas:dgemm".into(),
        blas::gemm(6, 5, 4, 1, 2, Precision::Double, true),
    ));
    v.push((
        "blas:sgemv".into(),
        blas::gemv(6, 5, 1, 2, Precision::Single, true),
    ));
    v.push(("hetero:matrix".into(), hetero::matrix_task(8, 2, true)));
    v.push(("hetero:fib".into(), hetero::fib_task(12, 2)));
    v
}

/// Runs `bin` keeping the final memory, so callers can compare data-section
/// bytes in addition to the [`chimera_emu::RunResult`].
fn run_keeping_mem(
    bin: &Binary,
    profile: ExtSet,
    cache: bool,
) -> (
    Result<chimera_emu::RunResult, chimera_emu::RunError>,
    chimera_emu::Memory,
) {
    let (mut cpu, mut mem) = chimera_emu::boot(bin, profile);
    cpu.cache.enabled = cache;
    let r = chimera_emu::run_cpu(&mut cpu, &mut mem, FUEL);
    (r, mem)
}

/// Runs a CHBP-rewritten binary on the base profile under the simulated
/// kernel (normal flow may route through SMILE trampolines, whose faults
/// the kernel's passive handler resolves), returning exit code, stdout,
/// the CPU (for stats) and the final memory.
fn run_rewritten(
    rw: &Rewritten,
    cache: bool,
) -> (i64, Vec<u8>, chimera_emu::Cpu, chimera_emu::Memory) {
    let variant = Variant {
        binary: rw.binary.clone(),
        tables: RuntimeTables {
            fht: Some(rw.fht.clone()),
            regen: None,
        },
    };
    let process = Process::new(vec![variant]);
    let (mut cpu, mut mem, view) = process.load(ExtSet::RV64GC).expect("loads on RV64GC");
    cpu.cache.enabled = cache;
    let mut k = KernelRunner::new(view.tables.clone());
    match k.run(&mut cpu, &mut mem, FUEL) {
        RunOutcome::Exited(code) => (code, k.stdout, cpu, mem),
        other => panic!("rewritten run (cache={cache}) ended with {other:?}"),
    }
}

/// Final bytes of every writable section the binary declares (the output
/// state a program leaves behind), read from the run's memory.
fn writable_bytes(mem: &mut chimera_emu::Memory, bin: &Binary) -> Vec<(String, Vec<u8>)> {
    bin.sections
        .iter()
        .filter(|s| s.perms.w)
        .map(|s| {
            let bytes = mem
                .peek(s.addr, s.data.len())
                .unwrap_or_else(|| panic!("section {} vanished", s.name));
            (s.name.clone(), bytes)
        })
        .collect()
}

/// Decode cache on vs off: FULL result equality — exit code, stdout, the
/// whole integer register file, every stats counter (so cycle accounting
/// is provably identical), and the final bytes of every region.
#[test]
fn cache_on_off_identical_for_every_workload() {
    for (name, bin) in workloads() {
        for profile in [ExtSet::RV64GCV, bin.profile] {
            let (on, mut mem_on) = run_keeping_mem(&bin, profile, true);
            let (off, mut mem_off) = run_keeping_mem(&bin, profile, false);
            assert_eq!(on, off, "{name}: cache on/off diverged on {profile}");
            assert_eq!(
                writable_bytes(&mut mem_on, &bin),
                writable_bytes(&mut mem_off, &bin),
                "{name}: output memory diverged on {profile}"
            );
        }
    }
}

/// Unrewritten on RV64GCV vs CHBP-rewritten on RV64GC: identical exit
/// code, stdout and output memory — with the rewritten binary itself run
/// both cache-on and cache-off.
#[test]
fn rewritten_matches_native_for_every_workload() {
    for (name, bin) in workloads() {
        let (native, mut native_mem) = run_keeping_mem(&bin, ExtSet::RV64GCV, true);
        let native = native.unwrap_or_else(|e| panic!("{name}: native run failed: {e}"));
        let rw = chbp_rewrite(&bin, ExtSet::RV64GC, RewriteOptions::default())
            .unwrap_or_else(|e| panic!("{name}: rewrite failed: {e}"));
        verify_claim1(&rw, &bin).unwrap_or_else(|e| panic!("{name}: claim 1: {e}"));
        let native_data = writable_bytes(&mut native_mem, &bin);
        let mut per_cache = Vec::new();
        for cache in [true, false] {
            let (code, stdout, cpu, mut down_mem) = run_rewritten(&rw, cache);
            assert_eq!(native.exit_code, code, "{name} (cache={cache})");
            assert_eq!(native.stdout, stdout, "{name} (cache={cache})");
            assert_eq!(cpu.stats.vector_insts, 0, "{name}: fully downgraded");
            // The original's writable sections exist untouched (by name and
            // address) in the rewritten binary; final contents must match.
            assert_eq!(
                native_data,
                writable_bytes(&mut down_mem, &bin),
                "{name} (cache={cache}): output memory diverged"
            );
            per_cache.push(cpu.stats);
        }
        // Cycle accounting of the rewritten run is itself cache-invariant.
        assert_eq!(per_cache[0], per_cache[1], "{name}: stats diverged");
    }
}

/// Error paths must be cache-transparent too: a program that traps
/// (extension instruction on a base core; jump into non-executable data)
/// produces the *same* error with the cache on and off.
#[test]
fn traps_identical_cache_on_off() {
    // Vector program on a base core, unrewritten: illegal instruction.
    let vec_bin = hetero::matrix_task(4, 1, true);
    let (on, _) = run_keeping_mem(&vec_bin, ExtSet::RV64GC, true);
    let (off, _) = run_keeping_mem(&vec_bin, ExtSet::RV64GC, false);
    assert!(on.is_err(), "vector code must trap on RV64GC");
    assert_eq!(on, off, "illegal-instruction trap diverged");

    // A jump into the (non-executable) data region: fetch fault.
    let src = "
        .data
        arr: .dword 7
        .text
        _start:
            la t0, arr
            jr t0
    ";
    let bin = chimera_obj::assemble(src, chimera_obj::AsmOptions::default()).unwrap();
    let (on, _) = run_keeping_mem(&bin, ExtSet::RV64GCV, true);
    let (off, _) = run_keeping_mem(&bin, ExtSet::RV64GCV, false);
    assert!(on.is_err(), "fetch from data must fault");
    assert_eq!(on, off, "fetch-fault trap diverged");
}

/// Tracing is architecturally transparent: every workload produces a
/// bit-identical [`chimera_emu::RunResult`] (exit code, stdout, register
/// file, every stats counter, cycle accounting) with the tracer disabled
/// and enabled — on both the native and the kernel-mediated rewritten
/// path. The enabled runs must actually record events, so the equality is
/// not vacuous.
#[test]
fn tracing_enabled_vs_disabled_identical_for_every_workload() {
    use chimera_kernel::Tracer;
    for (name, bin) in workloads() {
        let baseline = chimera_emu::run_binary_with(&bin, ExtSet::RV64GCV, FUEL, true);
        let disabled =
            chimera_emu::run_binary_traced(&bin, ExtSet::RV64GCV, FUEL, true, &Tracer::disabled());
        let tracer = Tracer::enabled();
        let enabled = chimera_emu::run_binary_traced(&bin, ExtSet::RV64GCV, FUEL, true, &tracer);
        assert_eq!(baseline, disabled, "{name}: disabled tracer not inert");
        assert_eq!(baseline, enabled, "{name}: enabled tracer not transparent");
        assert!(
            !tracer.drain().is_empty(),
            "{name}: the enabled run must record events"
        );
    }

    // The kernel path (SMILE recovery in the loop) is transparent too.
    let bin = hetero::matrix_task(8, 2, true);
    let rw = chbp_rewrite(&bin, ExtSet::RV64GC, RewriteOptions::default()).unwrap();
    let (code, stdout, cpu, _) = run_rewritten(&rw, true);
    let process = Process::new(vec![Variant {
        binary: rw.binary.clone(),
        tables: RuntimeTables {
            fht: Some(rw.fht.clone()),
            regen: None,
        },
    }]);
    let tracer = Tracer::enabled();
    let (mut tcpu, mut tmem, view) = process.load(ExtSet::RV64GC).unwrap();
    tcpu.tracer = tracer.clone();
    let mut k = KernelRunner::with_tracer(view.tables.clone(), tracer.clone());
    match k.run(&mut tcpu, &mut tmem, FUEL) {
        RunOutcome::Exited(tcode) => {
            assert_eq!((code, &stdout), (tcode, &k.stdout), "kernel path diverged");
            assert_eq!(cpu.stats, tcpu.stats, "kernel-path stats diverged");
        }
        other => panic!("traced kernel run ended with {other:?}"),
    }
    assert!(!tracer.drain().is_empty(), "kernel run must record events");
}

/// The cache actually engages on these workloads (hits dominate after the
/// first iteration of any loop) — guards against a silently disabled cache
/// making the equality tests above vacuous.
#[test]
fn cache_counters_engage() {
    let bin = hetero::fib_task(10, 3);
    let (mut cpu, mut mem) = chimera_emu::boot(&bin, ExtSet::RV64GCV);
    assert!(cpu.cache.enabled, "cache must default to enabled");
    let _ = chimera_emu::run_cpu(&mut cpu, &mut mem, FUEL).unwrap();
    let s = cpu.cache.stats;
    assert!(s.blocks_built > 0, "no blocks built: {s:?}");
    assert!(s.misses >= s.blocks_built, "{s:?}");
    assert!(s.hits > s.misses, "loopy code must be hit-dominated: {s:?}");
}
