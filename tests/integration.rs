//! Cross-crate integration: the full pipeline from assembly through
//! rewriting to kernel-supervised heterogeneous execution.

use chimera::{
    empty_patch_with, measure, prepare_process, run_variant, InputVersion, RewriterKind,
    SystemKind, TaskBinaries,
};
use chimera_isa::ExtSet;
use chimera_workloads::blas::{gemv, Precision};
use chimera_workloads::hetero::matrix_task;
use chimera_workloads::speclike::{generate, GenOptions, SPEC_PROFILES};

fn gen_opts() -> GenOptions {
    GenOptions {
        size_scale: 1.0 / 512.0,
        work_scale: 0.4,
        seed: 99,
    }
}

#[test]
fn all_four_systems_produce_identical_results() {
    let task = TaskBinaries {
        base_version: Some(matrix_task(32, 3, false)),
        ext_version: Some(matrix_task(32, 3, true)),
    };
    let reference = chimera_emu::run_binary(task.ext_version.as_ref().unwrap(), u64::MAX / 2)
        .unwrap()
        .exit_code;

    for system in [
        SystemKind::Fam,
        SystemKind::Melf,
        SystemKind::Safer,
        SystemKind::Chimera,
    ] {
        // Downgrading: extension input.
        let p = prepare_process(system, InputVersion::Ext, &task).unwrap();
        let on_ext = measure(&p, ExtSet::RV64GCV, u64::MAX / 2).unwrap();
        assert_eq!(on_ext.exit_code, reference, "{} on ext", system.name());
        if system != SystemKind::Fam {
            let on_base = measure(&p, ExtSet::RV64GC, u64::MAX / 2).unwrap();
            assert_eq!(on_base.exit_code, reference, "{} on base", system.name());
        }

        // Upgrading: base input.
        let p = prepare_process(system, InputVersion::Base, &task).unwrap();
        let on_base = measure(&p, ExtSet::RV64GC, u64::MAX / 2).unwrap();
        assert_eq!(on_base.exit_code, reference, "{} base-input", system.name());
        let on_ext = measure(&p, ExtSet::RV64GCV, u64::MAX / 2).unwrap();
        assert_eq!(on_ext.exit_code, reference, "{} upgraded", system.name());
    }
}

#[test]
fn chimera_upgrade_actually_accelerates() {
    let task = TaskBinaries {
        base_version: Some(matrix_task(64, 6, false)),
        ext_version: Some(matrix_task(64, 6, true)),
    };
    let p = prepare_process(SystemKind::Chimera, InputVersion::Base, &task).unwrap();
    let base = measure(&p, ExtSet::RV64GC, u64::MAX / 2).unwrap();
    let upgraded = measure(&p, ExtSet::RV64GCV, u64::MAX / 2).unwrap();
    assert_eq!(base.exit_code, upgraded.exit_code);
    assert!(
        upgraded.cycles < base.cycles,
        "upgrade must accelerate: {} vs {}",
        upgraded.cycles,
        base.cycles
    );
}

#[test]
fn all_rewriters_preserve_speclike_semantics() {
    // A small SPEC-like program through all four §6.2 rewriters (empty
    // patching on the vector core).
    let bin = generate(&SPEC_PROFILES[2], gen_opts()); // omnetpp-like.
    let native = chimera_emu::run_binary(&bin, u64::MAX / 2).unwrap();
    for rewriter in [
        RewriterKind::Chbp,
        RewriterKind::Strawman,
        RewriterKind::Armore,
        RewriterKind::Safer,
    ] {
        let variant = empty_patch_with(rewriter, &bin).unwrap();
        let m = run_variant(&variant, ExtSet::RV64GCV, u64::MAX / 2)
            .unwrap_or_else(|e| panic!("{}: {e}", rewriter.name()));
        assert_eq!(
            m.exit_code,
            native.exit_code,
            "{} changes semantics",
            rewriter.name()
        );
    }
}

fn overheads_for(bin: &chimera_obj::Binary) -> std::collections::HashMap<&'static str, f64> {
    let native = chimera_emu::run_binary(bin, u64::MAX / 2).unwrap();
    let base = native.stats.cycles as f64;
    let mut out = std::collections::HashMap::new();
    for rewriter in [
        RewriterKind::Chbp,
        RewriterKind::Strawman,
        RewriterKind::Armore,
        RewriterKind::Safer,
    ] {
        let variant = empty_patch_with(rewriter, bin).unwrap();
        let m = run_variant(&variant, ExtSet::RV64GCV, u64::MAX / 2).unwrap();
        assert_eq!(m.exit_code, native.exit_code, "{}", rewriter.name());
        out.insert(rewriter.name(), m.cycles as f64 / base - 1.0);
    }
    out
}

#[test]
fn rewriter_overhead_ordering_matches_fig13() {
    // Indirect-heavy program: CHBP beats the proactive-check and
    // trap-redirect baselines.
    let indirect = generate(&SPEC_PROFILES[0], gen_opts()); // perlbench-like.
    let o = overheads_for(&indirect);
    assert!(
        o["CHBP"] < o["Safer"],
        "CHBP {:.3} must beat Safer {:.3}",
        o["CHBP"],
        o["Safer"]
    );
    assert!(
        o["Safer"] < o["ARMore"],
        "Safer {:.3} must beat ARMore {:.3}",
        o["Safer"],
        o["ARMore"]
    );

    // Vector-dense program (larger scale so trampolines actually run hot):
    // SMILE trampolines beat trap-based entries.
    let dense = generate(
        &SPEC_PROFILES[4], // cactuBSSN-like.
        GenOptions {
            size_scale: 1.0 / 128.0,
            work_scale: 1.0,
            seed: 99,
        },
    );
    let o = overheads_for(&dense);
    assert!(
        o["CHBP"] <= o["Strawman"] + 1e-9,
        "CHBP {:.4} must not lose to the strawman {:.4}",
        o["CHBP"],
        o["Strawman"]
    );
}

#[test]
fn blas_kernels_through_chimera() {
    let v = gemv(16, 16, 0, 16, Precision::Double, true);
    let s = gemv(16, 16, 0, 16, Precision::Double, false);
    let reference = chimera_emu::run_binary(&v, u64::MAX / 2).unwrap().exit_code;
    let task = TaskBinaries {
        base_version: Some(s),
        ext_version: Some(v),
    };
    let p = prepare_process(SystemKind::Chimera, InputVersion::Ext, &task).unwrap();
    let down = measure(&p, ExtSet::RV64GC, u64::MAX / 2).unwrap();
    assert_eq!(down.exit_code, reference);
}
