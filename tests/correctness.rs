//! §6.3-style correctness: differential execution of original vs.
//! rewritten binaries over the synthetic benchmark suite and randomized
//! programs, plus exhaustive erroneous-jump recovery (Claims 1 and 2).

use chimera_isa::prng::Prng;
use chimera_isa::{Ext, ExtSet};
use chimera_kernel::{KernelRunner, Process, RunOutcome, RuntimeTables, Variant};
use chimera_obj::{assemble, AsmOptions};
use chimera_rewrite::{chbp_rewrite, verify_claim1, Mode, RewriteOptions};
use chimera_workloads::speclike::{
    generate, BenchProfile, GenOptions, APP_PROFILES, SPEC_PROFILES,
};

fn gen_small(p: &BenchProfile, seed: u64) -> chimera_obj::Binary {
    generate(
        p,
        GenOptions {
            size_scale: 1.0 / 512.0,
            work_scale: 0.3,
            seed,
        },
    )
}

#[test]
fn downgraded_spec_suite_is_semantically_equal() {
    // The §6.3 experiment: every benchmark translated to the base ISA and
    // compared against the original run.
    for p in SPEC_PROFILES.iter().take(6) {
        let bin = gen_small(p, 1);
        let native = chimera_emu::run_binary(&bin, u64::MAX / 2).unwrap();
        let rw = chbp_rewrite(&bin, ExtSet::RV64GC, RewriteOptions::default()).unwrap();
        verify_claim1(&rw, &bin).unwrap_or_else(|e| panic!("{}: {e}", p.name));
        let down = chimera_emu::run_binary_on(&rw.binary, ExtSet::RV64GC, u64::MAX / 2).unwrap();
        assert_eq!(native.exit_code, down.exit_code, "{}", p.name);
        assert_eq!(down.stats.vector_insts, 0, "{}: fully downgraded", p.name);
    }
}

#[test]
fn real_world_profiles_pass_differential_suite() {
    for p in APP_PROFILES.iter().take(3) {
        let bin = gen_small(p, 2);
        let native = chimera_emu::run_binary(&bin, u64::MAX / 2).unwrap();
        let rw = chbp_rewrite(&bin, ExtSet::RV64GC, RewriteOptions::default()).unwrap();
        let down = chimera_emu::run_binary_on(&rw.binary, ExtSet::RV64GC, u64::MAX / 2).unwrap();
        assert_eq!(native.exit_code, down.exit_code, "{}", p.name);
    }
}

#[test]
fn claim2_every_erroneous_jump_recovers_on_speclike() {
    // For a benchmark program: every fault-handling-table entry, when
    // jumped to erroneously, reproduces the original binary's behaviour
    // for that jump.
    let bin = gen_small(&SPEC_PROFILES[4], 3); // cactuBSSN-like: vector-dense.
    let rw = chbp_rewrite(&bin, ExtSet::RV64GC, RewriteOptions::default()).unwrap();
    let variant = Variant {
        binary: rw.binary,
        tables: RuntimeTables {
            fht: Some(rw.fht.clone()),
            regen: None,
        },
    };
    let process = Process::new(vec![variant]);

    // Outcome equivalence: if the original binary (jumped to the same
    // address) exits with a code, the rewritten one must exit with the
    // same code; if the original crashes, the rewritten one must not
    // "succeed" differently. Either way the first step must be the
    // deterministic fault + redirect.
    let mut exits = 0;
    for (&fault_addr, _) in rw.fht.redirects.iter().take(40) {
        let (mut ref_cpu, mut ref_mem) = chimera_emu::boot(&bin, ExtSet::RV64GCV);
        ref_cpu.hart.pc = fault_addr;
        let native = chimera_emu::run_cpu(&mut ref_cpu, &mut ref_mem, 500_000_000);

        let (mut cpu, mut mem, view) = process.load(ExtSet::RV64GC).unwrap();
        let mut k = KernelRunner::new(view.tables.clone());
        cpu.hart.pc = fault_addr;
        let outcome = k.run(&mut cpu, &mut mem, u64::MAX / 2);
        assert!(
            k.counters.total() >= 1,
            "{fault_addr:#x}: the erroneous jump must fault deterministically"
        );
        match (native, outcome) {
            (Ok(r), RunOutcome::Exited(code)) => {
                assert_eq!(code, r.exit_code, "erroneous jump to {fault_addr:#x}");
                exits += 1;
            }
            (Ok(r), other) => {
                panic!(
                    "{fault_addr:#x}: original exits {} but rewritten {other:?}",
                    r.exit_code
                )
            }
            (Err(_), RunOutcome::Exited(code)) => {
                panic!("{fault_addr:#x}: original crashes but rewritten exits {code}")
            }
            (Err(_), _) => {} // Both fail: equivalent.
        }
    }
    // Some redirect targets lie mid-function where a cold jump crashes in
    // both binaries; at least the early ones complete.
    let _ = exits;
}

#[test]
fn empty_patch_differential_on_compressed_code() {
    // Compressed encodings make P2/P3 constraints kick in; semantics must
    // still hold.
    let bin = gen_small(&SPEC_PROFILES[9], 4); // imagick-like.
    let native = chimera_emu::run_binary(&bin, u64::MAX / 2).unwrap();
    let rw = chbp_rewrite(
        &bin,
        ExtSet::RV64GCV,
        RewriteOptions {
            mode: Mode::EmptyPatch(Ext::V),
            ..Default::default()
        },
    )
    .unwrap();
    verify_claim1(&rw, &bin).unwrap();
    let patched = chimera_emu::run_binary_on(&rw.binary, ExtSet::RV64GCV, u64::MAX / 2).unwrap();
    assert_eq!(native.exit_code, patched.exit_code);
}

/// Generates a small random vector program: a data array, a handful of
/// vector operations, and a reduction to an exit code (seeded replacement
/// for the former proptest strategy).
fn gen_vector_program(rng: &mut Prng) -> String {
    const OPS: [&str; 8] = [
        "vadd.vv v3, v1, v2",
        "vsub.vv v3, v1, v2",
        "vmul.vv v3, v1, v2",
        "vand.vv v3, v1, v2",
        "vxor.vv v3, v1, v2",
        "vmax.vv v3, v1, v2",
        "vadd.vi v3, v1, 7",
        "vmacc.vv v3, v1, v2",
    ];
    let mut src = String::from(".data\narr:\n");
    for _ in 0..8 {
        src.push_str(&format!("    .dword {}\n", rng.range_i64(-50, 50)));
    }
    src.push_str(
        ".text\n_start:\n    li t0, 8\n    vsetvli t1, t0, e64, m1, ta, ma\n    la a0, arr\n    vle64.v v1, (a0)\n    vmv.v.i v2, 3\n    vmv.v.i v3, 0\n",
    );
    for _ in 0..rng.range_usize(1, 6) {
        let op = *rng.pick(&OPS);
        src.push_str("    ");
        src.push_str(op);
        src.push('\n');
    }
    src.push_str(
        "    vmv.v.i v4, 0\n    vredsum.vs v5, v3, v4\n    vmv.x.s a0, v5\n    li a7, 93\n    ecall\n",
    );
    src
}

/// Differential equivalence: original (vector core) vs. CHBP-downgraded
/// (base core) over random vector programs.
#[test]
fn random_vector_programs_downgrade_equivalently() {
    for seed in 0..48u64 {
        let src = gen_vector_program(&mut Prng::new(0xd1ff ^ seed));
        let bin = assemble(
            &src,
            AsmOptions {
                compress: true,
                ..Default::default()
            },
        )
        .expect("assembles");
        let native = chimera_emu::run_binary(&bin, 10_000_000).expect("native");
        let rw = chbp_rewrite(&bin, ExtSet::RV64GC, RewriteOptions::default()).expect("rewrites");
        verify_claim1(&rw, &bin).expect("claim 1");
        let down = chimera_emu::run_binary_on(&rw.binary, ExtSet::RV64GC, 50_000_000)
            .expect("downgraded runs bare (no faults in normal flow)");
        assert_eq!(native.exit_code, down.exit_code, "seed {seed}");
        assert_eq!(down.stats.vector_insts, 0, "seed {seed}");
    }
}

/// Claim 1, randomized: jumping to ANY overwritten instruction raises a
/// deterministic fault whose redirect the kernel resolves — never an
/// unhandled wild execution.
#[test]
fn random_erroneous_jumps_always_recover() {
    for seed in 0..48u64 {
        let mut rng = Prng::new(0x3a2b ^ seed);
        let src = gen_vector_program(&mut rng);
        let bin = assemble(
            &src,
            AsmOptions {
                compress: true,
                ..Default::default()
            },
        )
        .expect("assembles");
        let rw = chbp_rewrite(&bin, ExtSet::RV64GC, RewriteOptions::default()).expect("rewrites");
        if rw.fht.redirects.is_empty() {
            continue;
        }
        let keys: Vec<u64> = rw.fht.redirects.keys().copied().collect();
        let fault_addr = *rng.pick(&keys);
        let variant = Variant {
            binary: rw.binary,
            tables: RuntimeTables {
                fht: Some(rw.fht),
                regen: None,
            },
        };
        let process = Process::new(vec![variant]);
        let (mut cpu, mut mem, view) = process.load(ExtSet::RV64GC).unwrap();
        let mut k = KernelRunner::new(view.tables.clone());
        cpu.hart.pc = fault_addr;
        let outcome = k.run(&mut cpu, &mut mem, 50_000_000);
        assert!(
            matches!(outcome, RunOutcome::Exited(_)),
            "seed {seed}: jump to {fault_addr:#x} ended with {outcome:?}"
        );
        assert!(k.counters.smile_faults >= 1, "seed {seed}");
    }
}
