//! End-to-end heterogeneous-systems properties (the §6.1 claims at test
//! scale): ordering of latencies, FAM's idle-core pathology, and the
//! accelerated-task share of Fig. 12.

use chimera::{
    measure, measure_or_fam_probe, prepare_process, FamResult, InputVersion, SystemKind,
    TaskBinaries,
};
use chimera_isa::ExtSet;
use chimera_kernel::{simulate_work_stealing, Pool, SimMachine, TaskCost};
use chimera_workloads::hetero::{fib_task, matrix_task};

struct SystemCosts {
    matrix: TaskCost,
    fib: TaskCost,
}

fn costs_for(system: SystemKind, input: InputVersion) -> SystemCosts {
    let task = TaskBinaries {
        base_version: Some(matrix_task(48, 4, false)),
        ext_version: Some(matrix_task(48, 4, true)),
    };
    let fib_bins = TaskBinaries {
        base_version: Some(fib_task(800, 4)),
        ext_version: Some(fib_task(800, 4)),
    };
    let matrix = prepare_process(system, input, &task).unwrap();
    let fib = prepare_process(system, input, &fib_bins).unwrap();

    let m_ext = measure(&matrix, ExtSet::RV64GCV, u64::MAX / 2).unwrap();
    let (on_base, probe) =
        match measure_or_fam_probe(&matrix, ExtSet::RV64GC, u64::MAX / 2).unwrap() {
            FamResult::Completed(m) => (Some(m.cycles), 0),
            FamResult::Migrated { probe_cycles } => (None, probe_cycles),
        };
    let f = measure(&fib, ExtSet::RV64GC, u64::MAX / 2).unwrap();
    // Whether extension cores actually accelerate the matrix task under
    // this system/input (FAM with base input does not upgrade).
    let accelerated = on_base.map(|b| m_ext.cycles * 100 < b * 97).unwrap_or(true);
    SystemCosts {
        matrix: TaskCost {
            prefers: Pool::Ext,
            on_ext: m_ext.cycles,
            on_base,
            fam_probe: probe,
            ext_accelerated: accelerated,
        },
        fib: TaskCost {
            prefers: Pool::Base,
            on_ext: f.cycles,
            on_base: Some(f.cycles),
            fam_probe: 0,
            ext_accelerated: false,
        },
    }
}

fn latency(system: SystemKind, input: InputVersion, ext_share: f64) -> (u64, f64) {
    let costs = costs_for(system, input);
    let machine = SimMachine {
        base_cores: 4,
        ext_cores: 4,
        migrate_cost: 4000,
    };
    let n = 120;
    let n_ext = (n as f64 * ext_share) as usize;
    let mut tasks = vec![costs.matrix; n_ext];
    tasks.extend(vec![costs.fib; n - n_ext]);
    let r = simulate_work_stealing(machine, &tasks);
    let accel = r.accelerated_ext_tasks as f64 / r.ext_tasks.max(1) as f64;
    (r.latency, accel)
}

#[test]
fn downgrading_latency_ordering() {
    // Fig. 11b at 80% extension tasks: MELF ≤ Chimera < FAM and
    // Chimera ≤ Safer (passive vs proactive fault handling).
    // Evaluate at full extension load, where offloading matters most.
    let (fam, _) = latency(SystemKind::Fam, InputVersion::Ext, 1.0);
    let (melf, _) = latency(SystemKind::Melf, InputVersion::Ext, 1.0);
    let (safer, _) = latency(SystemKind::Safer, InputVersion::Ext, 1.0);
    let (chimera, _) = latency(SystemKind::Chimera, InputVersion::Ext, 1.0);

    assert!(
        melf <= chimera,
        "MELF ({melf}) is the ideal: Chimera ({chimera})"
    );
    assert!(chimera < fam, "Chimera ({chimera}) must beat FAM ({fam})");
    assert!(chimera <= safer, "Chimera ({chimera}) vs Safer ({safer})");
}

#[test]
fn upgrading_gives_chimera_an_edge_over_fam() {
    // Fig. 11d: with base-version input, FAM cannot accelerate anything
    // (its latency curve is flat); Chimera's upgraded binaries exploit the
    // extension cores.
    let (fam, fam_accel) = latency(SystemKind::Fam, InputVersion::Base, 0.8);
    let (chimera, ch_accel) = latency(SystemKind::Chimera, InputVersion::Base, 0.8);
    assert!(chimera < fam, "upgrading must help: {chimera} vs {fam}");
    assert_eq!(fam_accel, 0.0, "FAM never accelerates base binaries");
    assert!(
        ch_accel > 0.3,
        "Chimera accelerates a real share: {ch_accel}"
    );
}

#[test]
fn fig12_accelerated_share_band() {
    // Fig. 12a at 100% extension tasks: 60–70% of tasks stay accelerated
    // for offloading systems; FAM pins everything to extension cores.
    let (_, fam_accel) = latency(SystemKind::Fam, InputVersion::Ext, 1.0);
    let (_, chimera_accel) = latency(SystemKind::Chimera, InputVersion::Ext, 1.0);
    assert!((0.99..=1.0).contains(&fam_accel), "FAM: {fam_accel}");
    assert!(
        (0.4..0.95).contains(&chimera_accel),
        "Chimera offloads 30-40%: accelerated share {chimera_accel}"
    );
}

#[test]
fn fam_u_shape_in_downgrading_latency() {
    // Fig. 11b: FAM's latency decreases then rises as the extension share
    // grows (base cores idle); Chimera keeps falling.
    let (fam_20, _) = latency(SystemKind::Fam, InputVersion::Ext, 0.2);
    let (fam_100, _) = latency(SystemKind::Fam, InputVersion::Ext, 1.0);
    let (chimera_20, _) = latency(SystemKind::Chimera, InputVersion::Ext, 0.2);
    let (chimera_100, _) = latency(SystemKind::Chimera, InputVersion::Ext, 1.0);
    // At 100% ext, FAM wastes the base pool entirely.
    let fam_gap = fam_100 as f64 / chimera_100 as f64;
    let early_gap = fam_20 as f64 / chimera_20 as f64;
    assert!(
        fam_gap > early_gap,
        "FAM's disadvantage must grow with extension share: {early_gap:.2} -> {fam_gap:.2}"
    );
}
