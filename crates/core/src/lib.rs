//! # chimera
//!
//! The public facade of the Chimera reproduction: transparent,
//! high-performance ISAX heterogeneous computing via binary rewriting
//! (EuroSys '26).
//!
//! The crate ties the substrates together behind two entry points:
//!
//! * [`prepare_process`] — given a task's binaries and a
//!   [`SystemKind`], produce the multi-view [`Process`] that system would
//!   run (CHBP-rewritten views for Chimera, regenerated views for the
//!   Safer baseline, native views for MELF, a single view for FAM);
//! * [`measure`] — run one process view on one core profile under the
//!   kernel and report cycles plus fault-handling counters.
//!
//! ```
//! use chimera::{prepare_process, measure, SystemKind, InputVersion, TaskBinaries};
//! use chimera_obj::{assemble, AsmOptions};
//!
//! let vec_src = "
//!     .data
//!     a: .dword 1
//!        .dword 2
//!        .dword 3
//!        .dword 4
//!     .text
//!     _start:
//!         li t0, 4
//!         vsetvli t1, t0, e64, m1, ta, ma
//!         la a0, a
//!         vle64.v v1, (a0)
//!         vmv.v.i v2, 0
//!         vredsum.vs v3, v1, v2
//!         vmv.x.s a0, v3
//!         li a7, 93
//!         ecall
//! ";
//! let ext = assemble(vec_src, AsmOptions::default()).unwrap();
//! let task = TaskBinaries { base_version: None, ext_version: Some(ext) };
//! let process =
//!     prepare_process(SystemKind::Chimera, InputVersion::Ext, &task).unwrap();
//! // The rewritten view runs on a base (non-vector) core:
//! let m = measure(&process, chimera_isa::ExtSet::RV64GC, 1_000_000).unwrap();
//! assert_eq!(m.exit_code, 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use chimera_analysis as analysis;
pub use chimera_emu as emu;
pub use chimera_isa as isa;
pub use chimera_kernel as kernel;
pub use chimera_obj as obj;
pub use chimera_rewrite as rewrite;
pub use chimera_trace as trace;
pub use chimera_workloads as workloads;

pub use chimera_emu::CacheStats;
pub use chimera_trace::{export_json, summarize, MetricsRegistry, TraceEvent, Tracer};

use chimera_isa::ExtSet;
use chimera_kernel::{FaultCounters, KernelRunner, Process, RunOutcome, RuntimeTables, Variant};
use chimera_obj::Binary;
use chimera_rewrite::{
    default_workers, run, upgrade_rewrite, ChbpEngine, Flavor, IdentityEngine, Mode, RegenEngine,
    RewriteEngine, RewriteOptions,
};

/// The heterogeneous computing systems compared in §6.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// Fault-and-migrate scheduling: no rewriting; unsupported
    /// instructions trigger migration to a capable core.
    Fam,
    /// MELF-style compilation: native binaries for every core class
    /// (requires both versions — the source-code ideal).
    Melf,
    /// Safer-style binary regeneration with proactive indirect-jump checks.
    Safer,
    /// Chimera: CHBP binary patching with SMILE trampolines and passive
    /// fault handling.
    Chimera,
}

impl SystemKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::Fam => "FAM",
            SystemKind::Melf => "MELF",
            SystemKind::Safer => "Safer",
            SystemKind::Chimera => "Chimera",
        }
    }
}

/// Which input version the system receives (§6.1: the *extension* version
/// evaluates downgrading, the *base* version upgrading).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputVersion {
    /// RV64GCV input: the system must downgrade for base cores.
    Ext,
    /// RV64GC input: the system may upgrade for extension cores.
    Base,
}

/// A task's natively compiled binaries. Systems other than MELF receive
/// only the [`InputVersion`]'s binary; MELF uses both (it has the source).
#[derive(Debug, Clone, Default)]
pub struct TaskBinaries {
    /// Native RV64GC compilation (if available).
    pub base_version: Option<Binary>,
    /// Native RV64GCV compilation (if available).
    pub ext_version: Option<Binary>,
}

/// Errors from process preparation.
#[derive(Debug)]
pub enum PrepareError {
    /// The required input binary version is missing.
    MissingInput(&'static str),
    /// Rewriting failed.
    Rewrite(chimera_rewrite::RewriteError),
}

impl core::fmt::Display for PrepareError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PrepareError::MissingInput(v) => write!(f, "missing input binary: {v}"),
            PrepareError::Rewrite(e) => write!(f, "rewrite failed: {e}"),
        }
    }
}

impl std::error::Error for PrepareError {}

impl From<chimera_rewrite::RewriteError> for PrepareError {
    fn from(e: chimera_rewrite::RewriteError) -> Self {
        PrepareError::Rewrite(e)
    }
}

/// How one process view is produced from its input binary. Every system's
/// view plan is a list of these; [`prepare_process`] builds them through
/// one uniform loop over the [`RewriteEngine`] pipeline.
enum Build {
    /// Run the binary as-is (FAM/MELF native views): the identity engine
    /// passes it through the pipeline unchanged, and no runtime tables are
    /// attached.
    Identity,
    /// Rewrite through the staged pass pipeline.
    Engine(Box<dyn RewriteEngine>),
    /// The vectorizing upgrade rewriter (sequential; consumes the shared
    /// translate/emit primitives but predates the unit pipeline).
    Upgrade,
}

/// Runs one view plan: the single dispatch point through which every
/// system's rewriting flows.
fn build_view(build: Build, bin: Binary) -> Result<Variant, PrepareError> {
    Ok(match build {
        Build::Identity => {
            let r = run(
                &IdentityEngine,
                &bin,
                default_workers(),
                &Tracer::disabled(),
            )?;
            Variant::native(r.rewritten.binary)
        }
        Build::Engine(engine) => {
            let r = run(
                engine.as_ref(),
                &bin,
                default_workers(),
                &Tracer::disabled(),
            )?;
            Variant {
                binary: r.rewritten.binary,
                tables: RuntimeTables {
                    fht: Some(r.rewritten.fht),
                    regen: r.regen,
                },
            }
        }
        Build::Upgrade => {
            let up = upgrade_rewrite(&bin, RewriteOptions::default())?;
            Variant {
                binary: up.binary,
                tables: RuntimeTables {
                    fht: Some(up.fht),
                    regen: None,
                },
            }
        }
    })
}

/// Builds the multi-view process `system` would run for `task`, given the
/// input version (§6.1 methodology). Every system dispatches through the
/// same [`RewriteEngine`] pipeline: the `(system, input)` match only
/// *plans* the views (most-specific first); [`build_view`] executes them.
pub fn prepare_process(
    system: SystemKind,
    input: InputVersion,
    task: &TaskBinaries,
) -> Result<Process, PrepareError> {
    let ext_in = || {
        task.ext_version
            .clone()
            .ok_or(PrepareError::MissingInput("ext_version"))
    };
    let base_in = || {
        task.base_version
            .clone()
            .ok_or(PrepareError::MissingInput("base_version"))
    };
    let safer = |mode: Mode| -> Box<dyn RewriteEngine> {
        Box::new(RegenEngine {
            target: ExtSet::RV64GC,
            mode,
            flavor: Flavor::Safer,
        })
    };
    let plans: Vec<(Binary, Build)> = match (system, input) {
        // FAM: the input binary runs only on cores that support it; others
        // fault and the scheduler migrates.
        (SystemKind::Fam, InputVersion::Ext) => vec![(ext_in()?, Build::Identity)],
        (SystemKind::Fam, InputVersion::Base) => vec![(base_in()?, Build::Identity)],
        // MELF: native binaries for both core classes (it has the source).
        (SystemKind::Melf, _) => vec![(ext_in()?, Build::Identity), (base_in()?, Build::Identity)],
        (SystemKind::Safer, InputVersion::Ext) => {
            let b = ext_in()?;
            vec![
                (b.clone(), Build::Identity),
                (b, Build::Engine(safer(Mode::Downgrade))),
            ]
        }
        // Safer has no upgrade story of its own; per §6.1 it is adapted
        // for ISAX by pairing its regenerated base binary with the
        // vectorizer's output for extension cores, keeping its
        // per-indirect-jump checks on the base side.
        (SystemKind::Safer, InputVersion::Base) => {
            let b = base_in()?;
            vec![
                (b.clone(), Build::Upgrade),
                (
                    b,
                    Build::Engine(safer(Mode::EmptyPatch(chimera_isa::Ext::V))),
                ),
            ]
        }
        (SystemKind::Chimera, InputVersion::Ext) => {
            let b = ext_in()?;
            vec![
                (b.clone(), Build::Identity),
                (
                    b,
                    Build::Engine(Box::new(ChbpEngine {
                        target: ExtSet::RV64GC,
                        opts: RewriteOptions::default(),
                    })),
                ),
            ]
        }
        (SystemKind::Chimera, InputVersion::Base) => {
            let b = base_in()?;
            vec![(b.clone(), Build::Upgrade), (b, Build::Identity)]
        }
    };
    let views = plans
        .into_iter()
        .map(|(bin, build)| build_view(build, bin))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Process::new(views))
}

/// The result of a measured run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Measurement {
    /// Exit code of the task.
    pub exit_code: i64,
    /// Cycles under the deterministic cost model (kernel traps included).
    pub cycles: u64,
    /// Retired instructions.
    pub instret: u64,
    /// Dynamic indirect-jump count (Safer's check count).
    pub indirect_jumps: u64,
    /// Fault-handling counters (Table 2).
    pub counters: FaultCounters,
    /// Decode-cache counters (hits/misses/invalidations/blocks built/
    /// chained follows) — observability for the basic-block cache and the
    /// micro-op engine's block chaining; lazy rewriting shows up here as
    /// invalidations.
    pub cache: CacheStats,
}

/// `(registry name, accessor)` for every numeric [`Measurement`] field —
/// the single source of truth [`Measurement::publish`] and
/// [`Measurement::from_registry`] share.
#[allow(clippy::type_complexity)]
const MEASUREMENT_COUNTERS: [(&str, fn(&Measurement) -> u64); 15] = [
    ("measure.cycles", |m| m.cycles),
    ("measure.instret", |m| m.instret),
    ("measure.indirect_jumps", |m| m.indirect_jumps),
    ("measure.smile_faults", |m| m.counters.smile_faults),
    ("measure.trap_trampolines", |m| m.counters.trap_trampolines),
    ("measure.safer_corrections", |m| {
        m.counters.safer_corrections
    }),
    ("measure.lazy_rewrites", |m| m.counters.lazy_rewrites),
    ("measure.signals_gp_restored", |m| {
        m.counters.signals_gp_restored
    }),
    ("measure.cache_hits", |m| m.cache.hits),
    ("measure.cache_misses", |m| m.cache.misses),
    ("measure.cache_invalidations", |m| m.cache.invalidations),
    ("measure.blocks_built", |m| m.cache.blocks_built),
    ("measure.cache_chained", |m| m.cache.chained),
    ("measure.cache_jitted", |m| m.cache.jitted),
    ("measure.jit_execs", |m| m.cache.jit_execs),
];

impl Measurement {
    /// The single construction point from a finished kernel run.
    fn from_run(cpu: &chimera_emu::Cpu, exit_code: i64, counters: FaultCounters) -> Measurement {
        Measurement {
            exit_code,
            cycles: cpu.stats.cycles,
            instret: cpu.stats.instret,
            indirect_jumps: cpu.stats.indirect_jumps,
            counters,
            cache: cpu.cache.stats,
        }
    }

    /// Publishes every field into `metrics` as `measure.*` counters
    /// (monotonic: repeated publishes accumulate, matching runs that span
    /// several measurements). The exit code is stored as
    /// `measure.exit_code` and must be non-negative (every workload in
    /// this repo exits 0..=255).
    pub fn publish(&self, metrics: &MetricsRegistry) {
        debug_assert!(self.exit_code >= 0, "negative exit codes not published");
        metrics
            .counter("measure.exit_code")
            .add(self.exit_code as u64);
        for (name, get) in MEASUREMENT_COUNTERS {
            metrics.counter(name).add(get(self));
        }
    }

    /// Reconstructs a measurement from `measure.*` counters previously
    /// [`Measurement::publish`]ed into `metrics`. Returns `None` when no
    /// measurement was published (the `measure.cycles` counter is absent).
    pub fn from_registry(metrics: &MetricsRegistry) -> Option<Measurement> {
        metrics.counter_value("measure.cycles")?;
        let get = |name: &str| metrics.counter_value(name).unwrap_or(0);
        Some(Measurement {
            exit_code: get("measure.exit_code") as i64,
            cycles: get("measure.cycles"),
            instret: get("measure.instret"),
            indirect_jumps: get("measure.indirect_jumps"),
            counters: FaultCounters {
                smile_faults: get("measure.smile_faults"),
                trap_trampolines: get("measure.trap_trampolines"),
                safer_corrections: get("measure.safer_corrections"),
                lazy_rewrites: get("measure.lazy_rewrites"),
                signals_gp_restored: get("measure.signals_gp_restored"),
            },
            cache: CacheStats {
                hits: get("measure.cache_hits"),
                misses: get("measure.cache_misses"),
                invalidations: get("measure.cache_invalidations"),
                blocks_built: get("measure.blocks_built"),
                chained: get("measure.cache_chained"),
                jitted: get("measure.cache_jitted"),
                jit_execs: get("measure.jit_execs"),
            },
        })
    }
}

/// Errors from [`measure`].
#[derive(Debug)]
pub enum MeasureError {
    /// No view of the process runs on the given profile.
    NoView,
    /// The run did not complete.
    Run(String),
}

impl core::fmt::Display for MeasureError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MeasureError::NoView => write!(f, "no view for the requested core profile"),
            MeasureError::Run(s) => write!(f, "run failed: {s}"),
        }
    }
}

impl std::error::Error for MeasureError {}

/// Runs the process's view for `profile` to completion under the kernel.
pub fn measure(process: &Process, profile: ExtSet, fuel: u64) -> Result<Measurement, MeasureError> {
    measure_traced(process, profile, fuel, &Tracer::disabled())
}

/// [`measure`] with a trace handle threaded through the CPU and the
/// kernel runner. On completion the measurement is also
/// [`Measurement::publish`]ed into the tracer's metrics registry, so the
/// trace dump carries the authoritative run totals to reconcile against.
pub fn measure_traced(
    process: &Process,
    profile: ExtSet,
    fuel: u64,
    tracer: &Tracer,
) -> Result<Measurement, MeasureError> {
    let (mut cpu, mut mem, view) = process.load(profile).ok_or(MeasureError::NoView)?;
    cpu.tracer = tracer.clone();
    let mut k = KernelRunner::with_tracer(view.tables.clone(), tracer.clone());
    match k.run(&mut cpu, &mut mem, fuel) {
        RunOutcome::Exited(code) => {
            let m = Measurement::from_run(&cpu, code, k.counters);
            if let Some(reg) = tracer.metrics() {
                m.publish(reg);
            }
            Ok(m)
        }
        RunOutcome::NeedsMigration { pc } => {
            Err(MeasureError::Run(format!("needs migration at {pc:#x}")))
        }
        RunOutcome::OutOfFuel => Err(MeasureError::Run("out of fuel".into())),
        RunOutcome::Fatal(m) => Err(MeasureError::Run(m)),
    }
}

/// Like [`measure`], but returns the cycles burnt until the first
/// migration request (the FAM probe cost) when the view cannot complete on
/// this core.
pub fn measure_or_fam_probe(
    process: &Process,
    profile: ExtSet,
    fuel: u64,
) -> Result<FamResult, MeasureError> {
    let (mut cpu, mut mem, view) = match process.load(profile) {
        Some(t) => t,
        None => {
            // No view at all for this profile: FAM faults on the first
            // unsupported instruction of the preferred view. Model by
            // loading the first view regardless and letting it trap.
            let view = &process.views[0];
            let mut mem = chimera_emu::Memory::load(&view.binary);
            let mut cpu = chimera_emu::Cpu::new(profile);
            cpu.hart.pc = view.binary.entry;
            cpu.hart
                .set_x(chimera_isa::XReg::SP, chimera_obj::STACK_TOP - 64);
            cpu.hart.set_x(chimera_isa::XReg::GP, view.binary.gp);
            let mut k = KernelRunner::new(view.tables.clone());
            return Ok(match k.run(&mut cpu, &mut mem, fuel) {
                RunOutcome::Exited(code) => {
                    FamResult::Completed(Measurement::from_run(&cpu, code, k.counters))
                }
                RunOutcome::NeedsMigration { .. } => FamResult::Migrated {
                    probe_cycles: cpu.stats.cycles,
                },
                other => return Err(MeasureError::Run(format!("{other:?}"))),
            });
        }
    };
    let mut k = KernelRunner::new(view.tables.clone());
    match k.run(&mut cpu, &mut mem, fuel) {
        RunOutcome::Exited(code) => Ok(FamResult::Completed(Measurement::from_run(
            &cpu, code, k.counters,
        ))),
        RunOutcome::NeedsMigration { .. } => Ok(FamResult::Migrated {
            probe_cycles: cpu.stats.cycles,
        }),
        RunOutcome::OutOfFuel => Err(MeasureError::Run("out of fuel".into())),
        RunOutcome::Fatal(m) => Err(MeasureError::Run(m)),
    }
}

/// Outcome of a FAM-style attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FamResult {
    /// The task completed on this core.
    Completed(Measurement),
    /// The task hit an unsupported instruction after burning this many
    /// cycles; the scheduler must migrate it.
    Migrated {
        /// Cycles burnt before the fault.
        probe_cycles: u64,
    },
}

/// The binary rewriting methods compared in §6.2 (Fig. 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RewriterKind {
    /// CHBP (ours): SMILE trampolines, passive fault handling.
    Chbp,
    /// Strawman binary patching: trap-based entry trampolines.
    Strawman,
    /// ARMore-style relocation with original-section redirects.
    Armore,
    /// Safer-style regeneration with indirect-jump checks.
    Safer,
}

impl RewriterKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            RewriterKind::Chbp => "CHBP",
            RewriterKind::Strawman => "Strawman",
            RewriterKind::Armore => "ARMore",
            RewriterKind::Safer => "Safer",
        }
    }
}

/// Applies a §6.2 rewriter in empty-patching mode (source instructions of
/// the V extension re-emitted verbatim) and returns the runnable variant.
/// All four rewriters are [`RewriteEngine`]s run through the same pass
/// pipeline.
pub fn empty_patch_with(
    rewriter: RewriterKind,
    binary: &Binary,
) -> Result<Variant, chimera_rewrite::RewriteError> {
    let mode = Mode::EmptyPatch(chimera_isa::Ext::V);
    let engine: Box<dyn RewriteEngine> = match rewriter {
        RewriterKind::Chbp => Box::new(ChbpEngine {
            target: ExtSet::RV64GCV,
            opts: RewriteOptions {
                mode,
                ..Default::default()
            },
        }),
        RewriterKind::Strawman => Box::new(ChbpEngine {
            target: ExtSet::RV64GCV,
            opts: RewriteOptions {
                mode,
                force_trap_entries: true,
                ..Default::default()
            },
        }),
        RewriterKind::Armore => Box::new(RegenEngine {
            target: ExtSet::RV64GCV,
            mode,
            flavor: Flavor::Armore,
        }),
        RewriterKind::Safer => Box::new(RegenEngine {
            target: ExtSet::RV64GCV,
            mode,
            flavor: Flavor::Safer,
        }),
    };
    let r = run(
        engine.as_ref(),
        binary,
        default_workers(),
        &Tracer::disabled(),
    )?;
    Ok(Variant {
        binary: r.rewritten.binary,
        tables: RuntimeTables {
            fht: Some(r.rewritten.fht),
            regen: r.regen,
        },
    })
}

/// Runs a single standalone variant to completion under the kernel.
pub fn run_variant(
    variant: &Variant,
    profile: ExtSet,
    fuel: u64,
) -> Result<Measurement, MeasureError> {
    let process = Process::new(vec![variant.clone()]);
    measure(&process, profile, fuel)
}
