//! The kernel-side runtime: trap routing and Chimera's passive fault
//! handling (§4.3).
//!
//! The kernel drives an emulated core, intercepting every trap:
//!
//! * **Deterministic SMILE faults** — a fetch fault in the data segment
//!   (P1: partial trampoline execution jumped through the unmodified `gp`)
//!   or an illegal-instruction fault at an address with a fault-handling
//!   table entry (P2/P3/padding). The handler computes the fault address
//!   (pc for SIGILL; `gp - 4` for SIGSEGV, since the SMILE `jalr` wrote its
//!   return address into `gp`), restores `gp` to the psABI constant, and
//!   redirects to the copied instruction.
//! * **Trap-based trampolines** — `ebreak` entries/exits of the strawman
//!   and fallback paths, ARMore original-section slots, and Safer slow
//!   paths. Each costs a full kernel round trip
//!   ([`chimera_emu::CostModel::trap`]).
//! * **Unrecognized extension instructions** — rewritten lazily: the kernel
//!   translates the instruction on the spot, patches the site with a
//!   trap-based entry, and resumes (§4.1/§4.3).
//! * **Unsupported instructions** (FAM, or untranslatable sites) — reported
//!   to the scheduler as a migration request.

use chimera_emu::{Access, Cpu, Memory, Stop, Trap};
use chimera_isa::{decode, ExtSet, Inst, XReg};
use chimera_rewrite::emitter::BlockEmitter;
use chimera_rewrite::translate::Translator;
use chimera_rewrite::{ebreak_patch, emit_site_translation, FaultTable, Mode, RegenInfo};
use chimera_trace::{TraceEvent, Tracer};
use std::collections::BTreeMap;

/// The magic return address installed in `ra` for signal handlers; a jump
/// here (handler return) traps as an unmapped fetch the kernel recognizes
/// as `sigreturn`.
pub const SIGRETURN_ADDR: u64 = 0xffff_f000;

/// Counters for every correctness-mechanism invocation (Table 2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Deterministic SMILE faults handled (CHBP's passive mechanism).
    pub smile_faults: u64,
    /// Trap-based trampoline entries/exits taken.
    pub trap_trampolines: u64,
    /// Safer slow-path corrections.
    pub safer_corrections: u64,
    /// Lazily rewritten instructions.
    pub lazy_rewrites: u64,
    /// Signals delivered while inside a SMILE trampoline (gp restored).
    pub signals_gp_restored: u64,
}

impl FaultCounters {
    /// Total correctness-mechanism triggers.
    pub fn total(&self) -> u64 {
        self.smile_faults + self.trap_trampolines + self.safer_corrections + self.lazy_rewrites
    }
}

/// Why a kernel-supervised run stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// The task exited with this code.
    Exited(i64),
    /// The task executed an instruction this core cannot run (and that has
    /// no translation): the scheduler must migrate it (FAM path).
    NeedsMigration {
        /// pc of the unsupported instruction.
        pc: u64,
    },
    /// Fuel exhausted (still runnable).
    OutOfFuel,
    /// Unrecoverable fault.
    Fatal(String),
}

/// Runtime metadata for one loaded binary variant.
#[derive(Debug, Clone, Default)]
pub struct RuntimeTables {
    /// CHBP / regeneration fault-handling table.
    pub fht: Option<FaultTable>,
    /// Safer regeneration slow-path metadata.
    pub regen: Option<RegenInfo>,
}

/// A kernel supervising one task on one core.
#[derive(Debug)]
pub struct KernelRunner {
    /// Tables for the active binary variant.
    pub tables: RuntimeTables,
    /// Accumulated fault counters.
    pub counters: FaultCounters,
    /// Lazily-added trap entries (runtime rewrites).
    lazy_entries: BTreeMap<u64, u64>,
    /// Where the next lazy block goes (grows past the target section).
    lazy_cursor: Option<u64>,
    /// Captured stdout.
    pub stdout: Vec<u8>,
    /// Saved context while a signal handler runs.
    signal_ctx: Option<chimera_emu::Hart>,
    /// The trace handle (disabled by default). The kernel emits
    /// [`TraceEvent::SmileFaultRecovered`] and [`TraceEvent::LazyRewrite`]
    /// and mirrors every [`FaultCounters`] field into `kernel.*` counters,
    /// so traces reconcile exactly against the struct.
    pub tracer: Tracer,
}

impl KernelRunner {
    /// Creates a runner with the given tables.
    pub fn new(tables: RuntimeTables) -> Self {
        KernelRunner::with_tracer(tables, Tracer::disabled())
    }

    /// Creates a runner with the given tables and trace handle.
    pub fn with_tracer(tables: RuntimeTables, tracer: Tracer) -> Self {
        KernelRunner {
            tables,
            counters: FaultCounters::default(),
            lazy_entries: BTreeMap::new(),
            lazy_cursor: None,
            stdout: Vec::new(),
            signal_ctx: None,
            tracer,
        }
    }

    /// Delivers a signal (§4.3, Figure 10): saves the interrupted context,
    /// and — when the interruption landed inside a SMILE trampoline, where
    /// `gp` is temporarily overwritten — restores `gp` so the user-space
    /// handler observes the correct psABI value. The handler runs with
    /// `ra = `[`SIGRETURN_ADDR`]; its return restores the saved context
    /// (including the trampoline's in-flight `gp`).
    pub fn deliver_signal(&mut self, cpu: &mut Cpu, handler: u64) {
        assert!(self.signal_ctx.is_none(), "nested signals unsupported");
        self.signal_ctx = Some(cpu.hart.clone());
        if let Some(fht) = &self.tables.fht {
            if fht.inside_trampoline(cpu.hart.pc) || fht.in_target_section(cpu.hart.pc) {
                // "Restoring gp" before the handler observes it.
                cpu.hart.set_x(XReg::GP, fht.abi_gp);
                self.counters.signals_gp_restored += 1;
                self.tracer.count("kernel.signals_gp_restored", 1);
            }
        }
        cpu.hart.set_x(XReg::RA, SIGRETURN_ADDR);
        cpu.hart.pc = handler;
    }

    /// Runs the task until exit, migration request or fuel exhaustion.
    ///
    /// The cost of each kernel entry (fault handling, trap trampolines) is
    /// charged to `cpu.stats.cycles` at [`chimera_emu::CostModel::trap`].
    pub fn run(&mut self, cpu: &mut Cpu, mem: &mut Memory, fuel: u64) -> RunOutcome {
        let start = cpu.stats.instret;
        loop {
            let used = cpu.stats.instret - start;
            if used >= fuel {
                return RunOutcome::OutOfFuel;
            }
            let stop = cpu.run(mem, fuel - used);
            let Stop::Trap(trap) = stop else {
                return RunOutcome::OutOfFuel;
            };
            match self.service_trap(trap, cpu, mem) {
                TrapDisposition::Resume => continue,
                TrapDisposition::Exited(code) => return RunOutcome::Exited(code),
                TrapDisposition::Migrate { pc } => return RunOutcome::NeedsMigration { pc },
                TrapDisposition::HartCall { call, .. } => {
                    // Hart-control calls need an event scheduler; a
                    // single-hart run has nobody to deliver the wakeup.
                    return RunOutcome::Fatal(format!(
                        "hart call {call:?} outside the many-hart kernel"
                    ));
                }
                TrapDisposition::Fatal(msg) => return RunOutcome::Fatal(msg),
            }
        }
    }

    /// Emits the trace event + metrics for one recovered SMILE fault.
    fn trace_smile_recovery(&self, cpu: &Cpu, fault_addr: u64, redirect: u64) {
        if !self.tracer.is_enabled() {
            return;
        }
        self.tracer.record(
            cpu.stats.cycles,
            TraceEvent::SmileFaultRecovered {
                fault_addr,
                redirect,
            },
        );
        self.tracer.count("kernel.smile_faults", 1);
        self.tracer.observe("kernel.fault_cycles", cpu.cost.trap);
    }

    /// Services one delivered trap and reports its disposition.
    ///
    /// This is the single trap-routing entry point: [`KernelRunner::run`]
    /// folds the disposition into a [`RunOutcome`] for single-hart runs,
    /// and the many-hart event kernel (`crate::ManyHartKernel`) routes
    /// [`TrapDisposition::HartCall`] and [`TrapDisposition::Migrate`] into
    /// its logical-time event queue instead.
    pub fn service_trap(&mut self, trap: Trap, cpu: &mut Cpu, mem: &mut Memory) -> TrapDisposition {
        match trap {
            Trap::Ecall { pc } => {
                let n = cpu.hart.get_x(XReg::A7);
                match n {
                    chimera_emu::sys::EXIT => {
                        TrapDisposition::Exited(cpu.hart.get_x(XReg::A0) as i64)
                    }
                    chimera_emu::sys::WRITE => {
                        let buf = cpu.hart.get_x(XReg::A1);
                        let len = cpu.hart.get_x(XReg::A2) as usize;
                        if let Some(bytes) = mem.peek(buf, len) {
                            self.stdout.extend_from_slice(&bytes);
                            cpu.hart.set_x(XReg::A0, len as u64);
                        } else {
                            cpu.hart.set_x(XReg::A0, u64::MAX);
                        }
                        cpu.hart.pc = pc + 4;
                        cpu.stats.cycles += cpu.cost.trap / 8; // Light syscall.
                        TrapDisposition::Resume
                    }
                    // Hart-control calls: decoded here (one routing point
                    // for the whole syscall surface) but *serviced* by the
                    // event scheduler, which advances pc, fills a0 and
                    // charges the light-syscall cost on completion.
                    chimera_emu::sys::HART_ID => TrapDisposition::HartCall {
                        call: HartCall::Id,
                        pc,
                    },
                    chimera_emu::sys::WFI => TrapDisposition::HartCall {
                        call: HartCall::Wfi,
                        pc,
                    },
                    chimera_emu::sys::IPI => TrapDisposition::HartCall {
                        call: HartCall::Ipi {
                            target: cpu.hart.get_x(XReg::A0),
                        },
                        pc,
                    },
                    chimera_emu::sys::SET_TIMER => TrapDisposition::HartCall {
                        call: HartCall::SetTimer {
                            delta: cpu.hart.get_x(XReg::A0),
                        },
                        pc,
                    },
                    other => TrapDisposition::Fatal(format!("unknown syscall {other}")),
                }
            }
            Trap::Mem { fault, .. } if fault.access == Access::Fetch => {
                // Handler return? Restore the interrupted context.
                if fault.addr == SIGRETURN_ADDR {
                    if let Some(saved) = self.signal_ctx.take() {
                        cpu.hart = saved;
                        return TrapDisposition::Resume;
                    }
                }
                // Candidate SMILE P1 fault: the jalr stored its return
                // address (P1 + 4) in gp before jumping into the data
                // segment.
                cpu.stats.cycles += cpu.cost.trap;
                let Some(fht) = self.tables.fht.clone() else {
                    return TrapDisposition::Fatal(format!("fetch fault: {fault}"));
                };
                let fault_addr = cpu.hart.gp().wrapping_sub(4);
                if let Some(&redirect) = fht.redirects.get(&fault_addr) {
                    self.counters.smile_faults += 1;
                    self.trace_smile_recovery(cpu, fault_addr, redirect);
                    // Restore gp and redirect (§4.3).
                    cpu.hart.set_x(XReg::GP, fht.abi_gp);
                    cpu.hart.pc = redirect;
                    TrapDisposition::Resume
                } else {
                    TrapDisposition::Fatal(format!(
                        "fetch fault with no redirect (gp-4 = {fault_addr:#x}): {fault}"
                    ))
                }
            }
            Trap::Mem { fault, pc } => {
                TrapDisposition::Fatal(format!("data fault at pc {pc:#x}: {fault}"))
            }
            Trap::Illegal { pc, raw } => {
                cpu.stats.cycles += cpu.cost.trap;
                let fht = self.tables.fht.clone();
                // 1. P2/P3/padding or relocation slot: redirect via table.
                if let Some(fht) = &fht {
                    if let Some(&redirect) = fht.redirects.get(&pc) {
                        self.counters.smile_faults += 1;
                        self.trace_smile_recovery(cpu, pc, redirect);
                        cpu.hart.set_x(XReg::GP, fht.abi_gp);
                        cpu.hart.pc = redirect;
                        return TrapDisposition::Resume;
                    }
                    // 2. Known-untranslatable source instruction: migrate.
                    if fht.untranslated.contains(&pc) {
                        return TrapDisposition::Migrate { pc };
                    }
                }
                // 3. Unrecognized-but-decodable extension instruction on a
                //    core that lacks it: lazy rewriting when we have a
                //    translator context, else migration (FAM).
                match decode(raw) {
                    Ok(d) if !d.inst.runnable_on(cpu.profile) => {
                        if let Some(fht) = &fht {
                            if let Some(block) =
                                self.lazy_rewrite(pc, d.inst, d.len, fht, cpu.profile, mem)
                            {
                                self.counters.lazy_rewrites += 1;
                                self.tracer.record(
                                    cpu.stats.cycles,
                                    TraceEvent::LazyRewrite { pc, block },
                                );
                                self.tracer.count("kernel.lazy_rewrites", 1);
                                // Resume at the same pc: it now traps into
                                // the freshly built block.
                                return TrapDisposition::Resume;
                            }
                        }
                        TrapDisposition::Migrate { pc }
                    }
                    _ => TrapDisposition::Fatal(format!(
                        "illegal instruction {raw:#x} at {pc:#x} with no handler"
                    )),
                }
            }
            Trap::Breakpoint { pc } => {
                cpu.stats.cycles += cpu.cost.trap;
                // Lazy entries first (they shadow nothing else).
                if let Some(&block) = self.lazy_entries.get(&pc) {
                    self.counters.trap_trampolines += 1;
                    self.tracer.count("kernel.trap_trampolines", 1);
                    cpu.hart.pc = block;
                    return TrapDisposition::Resume;
                }
                if let Some(regen) = &self.tables.regen {
                    if let Some(st) = regen.slow_traps.get(&pc) {
                        let old = cpu.hart.get_x(st.target_reg);
                        let Some(fht) = &self.tables.fht else {
                            return TrapDisposition::Fatal("safer trap without tables".into());
                        };
                        let Some(&new) = fht.redirects.get(&old) else {
                            return TrapDisposition::Fatal(format!(
                                "safer: uncorrectable indirect target {old:#x}"
                            ));
                        };
                        if let Some(link) = st.link {
                            cpu.hart.set_x(link, st.link_value);
                        }
                        self.counters.safer_corrections += 1;
                        self.tracer.count("kernel.safer_corrections", 1);
                        cpu.hart.pc = new;
                        return TrapDisposition::Resume;
                    }
                }
                if let Some(fht) = &self.tables.fht {
                    if let Some(&block) = fht.trap_entries.get(&pc) {
                        self.counters.trap_trampolines += 1;
                        self.tracer.count("kernel.trap_trampolines", 1);
                        cpu.hart.pc = block;
                        return TrapDisposition::Resume;
                    }
                    if let Some(&resume) = fht.trap_exits.get(&pc) {
                        self.counters.trap_trampolines += 1;
                        self.tracer.count("kernel.trap_trampolines", 1);
                        cpu.hart.pc = resume;
                        return TrapDisposition::Resume;
                    }
                }
                TrapDisposition::Fatal(format!("stray breakpoint at {pc:#x}"))
            }
        }
    }

    /// Lazy rewriting (§4.1/§4.3): translate the faulting instruction now,
    /// append the block after the target section, patch the site with a
    /// trap entry, and let execution re-trap into it. Returns the address
    /// of the freshly emitted block.
    fn lazy_rewrite(
        &mut self,
        pc: u64,
        inst: Inst,
        len: u8,
        fht: &FaultTable,
        _profile: ExtSet,
        mem: &mut Memory,
    ) -> Option<u64> {
        // Grow region: right after the target section (the loader maps the
        // section with slack; see `Process::load`).
        let cursor = self
            .lazy_cursor
            .get_or_insert(fht.target_range.1)
            .to_owned();
        // The same translate/emit primitive the static pipeline uses for
        // its site units (gp restore + downgrade), so lazily built blocks
        // can never diverge from statically built ones.
        let mut translator = Translator::new(fht.spill_base, fht.abi_gp);
        let mut em = BlockEmitter::new(cursor);
        if emit_site_translation(&inst, Mode::Downgrade, &mut translator, &mut em).is_err() {
            return None;
        }
        let resume = pc + len as u64;
        // Exit: a register trampoline cannot be chosen lazily without
        // liveness; use a trap exit (rare path, already lazy).
        let exit_at = em.addr();
        em.inst(Inst::Ebreak);
        let bytes = em.finish();
        if mem.poke_code(cursor, &bytes).is_err() {
            return None;
        }
        self.lazy_cursor = Some(cursor + bytes.len() as u64);
        // Patch the site with the pipeline's in-place trap entry.
        if mem.poke_code(pc, &ebreak_patch(len)).is_err() {
            return None;
        }
        self.lazy_entries.insert(pc, cursor);
        // Exit trap returns to the instruction after the site.
        if let Some(fht_mut) = self.tables.fht.as_mut() {
            fht_mut.trap_exits.insert(exit_at, resume);
        }
        Some(cursor)
    }
}

/// What the kernel decided about one delivered trap (see
/// [`KernelRunner::service_trap`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrapDisposition {
    /// Handled in place; resume the hart.
    Resume,
    /// The task exited with this code.
    Exited(i64),
    /// Unsupported instruction with no translation: the scheduler must
    /// migrate the task to a core that has the extension (FAM).
    Migrate {
        /// pc of the unsupported instruction.
        pc: u64,
    },
    /// A hart-control call (`chimera_emu::sys::{HART_ID, WFI, IPI,
    /// SET_TIMER}`) only an event scheduler can service: it advances
    /// `pc` past the `ecall`, fills `a0`, charges the syscall cost, and
    /// enqueues/delivers the event.
    HartCall {
        /// The decoded call.
        call: HartCall,
        /// pc of the `ecall` instruction.
        pc: u64,
    },
    /// Unrecoverable fault.
    Fatal(String),
}

/// A decoded guest hart-control call (the `chimera_emu::sys` numbers
/// outside the Linux table), serviced by `crate::ManyHartKernel`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HartCall {
    /// `hartid()`: the calling hart's id into `a0`.
    Id,
    /// `wfi()`: block until an event arrives (or consume a latched one).
    Wfi,
    /// `ipi(target)`: wake hart `target` next slot.
    Ipi {
        /// Destination hart id.
        target: u64,
    },
    /// `set_timer(delta)`: a one-shot self-wakeup `delta` slots ahead.
    SetTimer {
        /// Slots from now (clamped to at least 1).
        delta: u64,
    },
}
