//! Task scheduling across ISAX cores (§6.1's methodology).
//!
//! Two schedulers are provided:
//!
//! * [`simulate_work_stealing`] — a deterministic discrete-event simulator
//!   of the paper's policy: a base-core pool and an extension-core pool,
//!   each task initially queued on its preferred pool, idle workers
//!   stealing first from their own pool and then from the other. Per-task
//!   per-core cycle costs come from real emulated runs (measured once per
//!   distinct task/core/system combination by the bench harness), so the
//!   simulation reproduces queueing dynamics without re-emulating thousands
//!   of identical tasks.
//! * [`ThreadedPool`] — a real work-stealing executor on OS threads
//!   (two mutex-protected deques, one per core class), used by the examples
//!   and integration tests to run emulated tasks genuinely concurrently.

use chimera_trace::{TraceEvent, Tracer};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Which pool a core (or task) belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pool {
    /// Base-ISA cores.
    Base,
    /// Extension (vector-capable) cores.
    Ext,
}

/// The cost profile of one task under one system.
#[derive(Debug, Clone, Copy)]
pub struct TaskCost {
    /// The pool the task prefers (extension tasks prefer `Ext`).
    pub prefers: Pool,
    /// Cycles to complete on an extension core.
    pub on_ext: u64,
    /// Cycles to complete on a base core; `None` means the base core
    /// cannot finish it (FAM): it burns [`TaskCost::fam_probe`] cycles,
    /// pays migration, and requeues on the extension pool.
    pub on_base: Option<u64>,
    /// Cycles burnt on a base core before the illegal-instruction fault
    /// (FAM only).
    pub fam_probe: u64,
    /// Whether running on an extension core uses vector acceleration
    /// (false for base-version binaries under FAM, which are never
    /// upgraded).
    pub ext_accelerated: bool,
}

/// Machine shape for the simulator.
#[derive(Debug, Clone, Copy)]
pub struct SimMachine {
    /// Number of base cores.
    pub base_cores: usize,
    /// Number of extension cores.
    pub ext_cores: usize,
    /// Cycles charged for a cross-pool migration (FAM).
    pub migrate_cost: u64,
}

/// The simulator's result.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimResult {
    /// End-to-end latency in cycles (makespan).
    pub latency: u64,
    /// Accumulated busy cycles over all cores.
    pub cpu_time: u64,
    /// Extension tasks that ran with vector acceleration.
    pub accelerated_ext_tasks: usize,
    /// Extension tasks total.
    pub ext_tasks: usize,
    /// Tasks that ran on base cores.
    pub ran_on_base: usize,
    /// FAM migrations performed.
    pub migrations: usize,
}

/// Runs the deterministic work-stealing simulation to completion.
pub fn simulate_work_stealing(machine: SimMachine, tasks: &[TaskCost]) -> SimResult {
    simulate_work_stealing_traced(machine, tasks, &Tracer::disabled())
}

/// [`simulate_work_stealing`] with a trace handle.
///
/// Task ids in the emitted events are indices into `tasks`. Per task, one
/// [`TraceEvent::TaskScheduled`] fires for every dispatch (including the
/// base-core attempt a FAM task faults out of), one
/// [`TraceEvent::TaskMigrated`] per FAM requeue, and a
/// [`TraceEvent::StealAttempt`] per cross-pool steal probe — so for every
/// task, `scheduled - migrated == 1` exactly.
pub fn simulate_work_stealing_traced(
    machine: SimMachine,
    tasks: &[TaskCost],
    tracer: &Tracer,
) -> SimResult {
    #[derive(Debug)]
    struct Core {
        pool: Pool,
        free_at: u64,
        busy: u64,
    }
    let mut cores: Vec<Core> = Vec::new();
    for _ in 0..machine.base_cores {
        cores.push(Core {
            pool: Pool::Base,
            free_at: 0,
            busy: 0,
        });
    }
    for _ in 0..machine.ext_cores {
        cores.push(Core {
            pool: Pool::Ext,
            free_at: 0,
            busy: 0,
        });
    }

    /// A queued task; `pinned` marks FAM tasks already migrated once, so
    /// base cores stop re-stealing (and re-faulting on) them.
    #[derive(Clone, Copy)]
    struct QTask {
        /// Index into the caller's task slice (stable across requeues).
        id: usize,
        cost: TaskCost,
        pinned: bool,
        /// Earliest time the task may start (FAM requeues arrive when the
        /// faulting base core finishes migrating them).
        ready_at: u64,
    }
    let mut base_q: VecDeque<QTask> = VecDeque::new();
    let mut ext_q: VecDeque<QTask> = VecDeque::new();
    let mut result = SimResult::default();
    for (id, t) in tasks.iter().enumerate() {
        let q = QTask {
            id,
            cost: *t,
            pinned: false,
            ready_at: 0,
        };
        if t.prefers == Pool::Ext {
            result.ext_tasks += 1;
            ext_q.push_back(q);
        } else {
            base_q.push_back(q);
        }
    }

    loop {
        if base_q.is_empty() && ext_q.is_empty() {
            break;
        }
        // Among cores in earliest-free order, pick the first that can take
        // a task: own pool's queue first, then stealing from the other —
        // except that a base core never steals a pinned (already-migrated
        // FAM) task.
        let mut order: Vec<usize> = (0..cores.len()).collect();
        order.sort_by_key(|&i| (cores[i].free_at, i));
        let mut picked: Option<(usize, QTask, bool)> = None;
        for idx in order {
            let pool = cores[idx].pool;
            let free_at = cores[idx].free_at;
            let (own, other) = match pool {
                Pool::Base => (&mut base_q, &mut ext_q),
                Pool::Ext => (&mut ext_q, &mut base_q),
            };
            if let Some(t) = own.pop_front() {
                picked = Some((idx, t, false));
                break;
            }
            let stealable = other.iter().position(|t| pool == Pool::Ext || !t.pinned);
            if tracer.is_enabled() && !other.is_empty() {
                tracer.record(
                    free_at,
                    TraceEvent::StealAttempt {
                        worker: idx as u64,
                        from_ext: pool == Pool::Base,
                        success: stealable.is_some(),
                    },
                );
                if stealable.is_some() {
                    tracer.count("sched.steals", 1);
                }
            }
            if let Some(i) = stealable {
                picked = Some((idx, other.remove(i).expect("indexed"), true));
                break;
            }
        }
        let Some((idx, task, stolen)) = picked else {
            // Only pinned extension work remains and there are no
            // extension cores: nothing can make progress.
            break;
        };
        let core = &mut cores[idx];
        let start = core.free_at.max(task.ready_at);
        tracer.record(
            start,
            TraceEvent::TaskScheduled {
                task: task.id as u64,
                on_ext: core.pool == Pool::Ext,
                stolen,
            },
        );
        tracer.count("sched.tasks_scheduled", 1);
        match (core.pool, task.cost.on_base) {
            (Pool::Ext, _) => {
                core.free_at = start + task.cost.on_ext;
                core.busy += task.cost.on_ext;
                if task.cost.prefers == Pool::Ext && task.cost.ext_accelerated {
                    result.accelerated_ext_tasks += 1;
                }
            }
            (Pool::Base, Some(cycles)) => {
                core.free_at = start + cycles;
                core.busy += cycles;
                result.ran_on_base += 1;
            }
            (Pool::Base, None) => {
                // FAM: fault, migrate, requeue pinned on the ext pool.
                let burn = task.cost.fam_probe + machine.migrate_cost;
                core.free_at = start + burn;
                core.busy += burn;
                result.migrations += 1;
                if tracer.is_enabled() {
                    tracer.record(
                        start + burn,
                        TraceEvent::TaskMigrated {
                            task: task.id as u64,
                            from_base: true,
                        },
                    );
                    tracer.count("sched.migrations", 1);
                    tracer.observe("sched.migrate_cycles", burn);
                }
                ext_q.push_back(QTask {
                    id: task.id,
                    cost: task.cost,
                    pinned: true,
                    ready_at: start + burn,
                });
            }
        }
    }
    result.latency = cores.iter().map(|c| c.free_at).max().unwrap_or(0);
    result.cpu_time = cores.iter().map(|c| c.busy).sum();
    result
}

/// A real work-stealing thread pool over two core classes, executing
/// closures (each closure typically runs one emulated task to completion).
pub struct ThreadedPool {
    queue_base: Arc<Mutex<VecDeque<Job>>>,
    queue_ext: Arc<Mutex<VecDeque<Job>>>,
    results: Arc<Mutex<Vec<(usize, u64)>>>,
    remaining: Arc<AtomicUsize>,
    base_workers: usize,
    ext_workers: usize,
    tracer: Tracer,
}

type Job = Box<dyn FnOnce(Pool) -> u64 + Send>;

impl ThreadedPool {
    /// Creates a pool with the given worker counts.
    pub fn new(base_workers: usize, ext_workers: usize) -> Self {
        ThreadedPool::with_tracer(base_workers, ext_workers, Tracer::disabled())
    }

    /// Creates a pool that emits [`TraceEvent::TaskScheduled`] (task id =
    /// completion index, timestamp = the job's simulated cycles) and a
    /// successful [`TraceEvent::StealAttempt`] per cross-pool steal.
    /// Idle-spin probe misses are *not* recorded (they would flood the
    /// trace while workers wait), only steals that dequeued work.
    pub fn with_tracer(base_workers: usize, ext_workers: usize, tracer: Tracer) -> Self {
        ThreadedPool {
            queue_base: Arc::new(Mutex::new(VecDeque::new())),
            queue_ext: Arc::new(Mutex::new(VecDeque::new())),
            results: Arc::new(Mutex::new(Vec::new())),
            remaining: Arc::new(AtomicUsize::new(0)),
            base_workers,
            ext_workers,
            tracer,
        }
    }

    /// Queues a job on its preferred pool. The job receives the pool of the
    /// worker that actually ran it (so it can pick the right binary
    /// variant) and returns its simulated cycle count.
    pub fn spawn(&self, prefers: Pool, job: impl FnOnce(Pool) -> u64 + Send + 'static) {
        self.remaining.fetch_add(1, Ordering::SeqCst);
        let q = match prefers {
            Pool::Base => &self.queue_base,
            Pool::Ext => &self.queue_ext,
        };
        q.lock().expect("queue poisoned").push_back(Box::new(job));
    }

    /// Runs all queued jobs to completion; returns per-job
    /// `(job_index, cycles)` in completion order.
    pub fn run(self) -> Vec<(usize, u64)> {
        let mut handles = Vec::new();
        let seq = Arc::new(AtomicUsize::new(0));
        for wid in 0..self.base_workers + self.ext_workers {
            let pool = if wid < self.base_workers {
                Pool::Base
            } else {
                Pool::Ext
            };
            let own = match pool {
                Pool::Base => Arc::clone(&self.queue_base),
                Pool::Ext => Arc::clone(&self.queue_ext),
            };
            let other = match pool {
                Pool::Base => Arc::clone(&self.queue_ext),
                Pool::Ext => Arc::clone(&self.queue_base),
            };
            let results = Arc::clone(&self.results);
            let remaining = Arc::clone(&self.remaining);
            let seq = Arc::clone(&seq);
            let tracer = self.tracer.clone();
            handles.push(std::thread::spawn(move || loop {
                if remaining.load(Ordering::SeqCst) == 0 {
                    break;
                }
                // Own pool first, then steal from the other. The own-queue
                // guard must drop before the other queue is locked: base and
                // ext workers lock in opposite orders, so holding both
                // ABBA-deadlocks two workers idling concurrently.
                let job = own.lock().expect("queue poisoned").pop_front();
                let mut stolen = false;
                let job = job.or_else(|| {
                    let j = other.lock().expect("queue poisoned").pop_front();
                    stolen = j.is_some();
                    j
                });
                match job {
                    Some(j) => {
                        if stolen {
                            tracer.record(
                                0,
                                TraceEvent::StealAttempt {
                                    worker: wid as u64,
                                    from_ext: pool == Pool::Base,
                                    success: true,
                                },
                            );
                            tracer.count("pool.steals", 1);
                        }
                        let cycles = j(pool);
                        let idx = seq.fetch_add(1, Ordering::SeqCst);
                        tracer.record(
                            cycles,
                            TraceEvent::TaskScheduled {
                                task: idx as u64,
                                on_ext: pool == Pool::Ext,
                                stolen,
                            },
                        );
                        tracer.count("pool.tasks_run", 1);
                        results
                            .lock()
                            .expect("results poisoned")
                            .push((idx, cycles));
                        remaining.fetch_sub(1, Ordering::SeqCst);
                    }
                    None => std::thread::yield_now(),
                }
            }));
        }
        for h in handles {
            h.join().expect("worker panicked");
        }
        Arc::try_unwrap(self.results)
            .expect("all workers joined")
            .into_inner()
            .expect("results poisoned")
    }
}

/// A pool of `workers` *logical* host workers multiplexing hart fibers:
/// each barrier-synchronous round, the runnable slot indices are claimed
/// off a shared cursor and stepped concurrently, one slot per claim.
///
/// Logical workers may exceed hardware threads (the determinism gates run
/// 8 logical workers on 1-hw-thread CI hosts). Results never depend on
/// the worker count because a step touches only its own slot's state —
/// cross-hart effects are buffered in per-slot outboxes the coordinator
/// merges in hart-id order after the barrier (`crate::ManyHartKernel`).
#[derive(Debug, Clone, Copy)]
pub struct FiberPool {
    workers: usize,
}

impl FiberPool {
    /// A pool with the given logical worker count (min 1).
    pub fn new(workers: usize) -> FiberPool {
        FiberPool {
            workers: workers.max(1),
        }
    }

    /// The logical worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Steps every slot listed in `runnable` exactly once, spreading the
    /// calls over the pool's workers; returns after all complete (the
    /// round barrier). With one worker everything runs on the calling
    /// thread — the baseline the multi-worker runs must bit-match.
    pub fn run_round<S, F>(&self, slots: &[Mutex<S>], runnable: &[usize], step: F)
    where
        S: Send,
        F: Fn(usize, &mut S) + Sync,
    {
        let workers = self.workers.min(runnable.len());
        if workers <= 1 {
            for &i in runnable {
                step(i, &mut slots[i].lock().expect("slot poisoned"));
            }
            return;
        }
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&i) = runnable.get(k) else {
                        break;
                    };
                    step(i, &mut slots[i].lock().expect("slot poisoned"));
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_task(cycles: u64) -> TaskCost {
        TaskCost {
            prefers: Pool::Base,
            on_ext: cycles,
            on_base: Some(cycles),
            fam_probe: 0,
            ext_accelerated: false,
        }
    }

    fn ext_task(on_ext: u64, on_base: Option<u64>) -> TaskCost {
        TaskCost {
            prefers: Pool::Ext,
            on_ext,
            on_base,
            fam_probe: 10,
            ext_accelerated: true,
        }
    }

    #[test]
    fn all_cores_utilized_with_stealing() {
        // 8 identical base tasks on 2+2 cores: latency = 2 task times.
        let m = SimMachine {
            base_cores: 2,
            ext_cores: 2,
            migrate_cost: 100,
        };
        let tasks = vec![base_task(1000); 8];
        let r = simulate_work_stealing(m, &tasks);
        assert_eq!(r.latency, 2000);
        assert_eq!(r.cpu_time, 8000);
    }

    #[test]
    fn fam_idles_base_cores_on_ext_only_load() {
        // Only extension tasks that base cores cannot run: FAM burns the
        // probe + migration on base cores but all real work is on ext.
        let m = SimMachine {
            base_cores: 2,
            ext_cores: 2,
            migrate_cost: 100,
        };
        let tasks = vec![ext_task(1000, None); 40];
        let fam = simulate_work_stealing(m, &tasks);
        // Chimera-like: base cores CAN run them (translated, 2x slower).
        let tasks = vec![ext_task(1000, Some(2000)); 40];
        let chimera = simulate_work_stealing(m, &tasks);
        assert!(
            chimera.latency < fam.latency,
            "offloading must beat fault-and-migrate: {} vs {}",
            chimera.latency,
            fam.latency
        );
        assert!(chimera.ran_on_base > 0);
        assert!(fam.migrations > 0);
    }

    #[test]
    fn accelerated_share_counts() {
        let m = SimMachine {
            base_cores: 4,
            ext_cores: 4,
            migrate_cost: 100,
        };
        let tasks = vec![ext_task(1000, Some(2000)); 16];
        let r = simulate_work_stealing(m, &tasks);
        assert_eq!(r.ext_tasks, 16);
        assert!(r.accelerated_ext_tasks < 16, "some offloaded to base");
        assert!(r.accelerated_ext_tasks > 0);
        assert_eq!(r.accelerated_ext_tasks + r.ran_on_base, 16);
    }

    #[test]
    fn threaded_pool_runs_everything() {
        let pool = ThreadedPool::new(2, 2);
        for i in 0..32u64 {
            pool.spawn(if i % 2 == 0 { Pool::Base } else { Pool::Ext }, move |_p| i);
        }
        let results = pool.run();
        assert_eq!(results.len(), 32);
    }

    /// Deadlock regression: idle base workers probe base→ext while idle ext
    /// workers probe ext→base, so holding the own-queue lock across the
    /// steal ABBA-deadlocks once both queues run dry with jobs in flight.
    /// Tiny jobs and many iterations keep workers idle-spinning almost the
    /// whole time, which hung reliably before the guard was dropped first.
    #[test]
    fn threaded_pool_idle_stealing_does_not_deadlock() {
        for _ in 0..200 {
            let pool = ThreadedPool::new(2, 2);
            for i in 0..4u64 {
                pool.spawn(if i % 2 == 0 { Pool::Base } else { Pool::Ext }, move |_p| i);
            }
            assert_eq!(pool.run().len(), 4);
        }
    }
}
