//! The many-hart event kernel: N guest harts as cooperative fibers
//! multiplexed over M logical host workers, N ≫ M, under a deterministic
//! logical-time scheduler.
//!
//! ## Determinism model
//!
//! Execution proceeds in **barrier-synchronous slots**. In slot `t`:
//!
//! 1. The coordinator (single-threaded) delivers every event due at `t`
//!    from the [`EventQueue`], in the queue's `(at, hart, kind)` order.
//! 2. The runnable harts — a pure function of per-hart state — each
//!    execute up to `quantum` instructions on the [`FiberPool`]. A hart's
//!    step touches only its own slot: its fiber (CPU + private memory),
//!    its kernel runner, and its **outbox** of produced events. Nothing a
//!    step does can observe another hart's progress within the slot.
//! 3. The coordinator merges the outboxes into the queue in hart-id
//!    order. Cross-hart effects (IPIs, migration commits) are stamped
//!    `t + 1` or later, so they become visible only at the next barrier.
//!
//! Which host worker ran a hart, and in what real-time order, therefore
//! cannot influence anything: the run — final architectural state, stats,
//! stdout, fault counters, trace streams — is **bit-identical across
//! every worker count, including 1**. The `many_hart` bench gate asserts
//! this for 64- and 256-hart heterogeneous scenarios at 1/2/4/8 workers.
//!
//! Blocking (`sys::WFI`) uses a pending-wake latch: an event delivered to
//! a *running* hart latches, and the hart's next WFI consumes the latch
//! and returns immediately — so the symmetric send-then-wait idiom
//! (`ipi(peer); wfi()`) can never deadlock on delivery order. When every
//! live hart is blocked, logical time fast-forwards to the next pending
//! event; if none is pending the blocked harts are failed (guest
//! deadlock) rather than spinning forever.

use crate::event::{EventQueue, HartEvent, HartEventKind};
use crate::pool::ProcessPool;
use crate::runtime::{FaultCounters, HartCall, KernelRunner, RuntimeTables, TrapDisposition};
use crate::sched::FiberPool;
use chimera_emu::{ExecMode, ExecStats, FiberYield, HartFiber};
use chimera_isa::{ExtSet, XReg};
use chimera_obj::Binary;
use chimera_trace::{TraceEvent, Tracer};
use std::sync::Mutex;

/// Configuration of a [`ManyHartKernel`].
#[derive(Debug, Clone, Copy)]
pub struct ManyHartConfig {
    /// Logical host workers multiplexing the harts (may exceed hardware
    /// threads; never affects results).
    pub workers: usize,
    /// Fuel quantum: instructions one hart may retire per slot.
    pub quantum: u64,
    /// Simulated cycles charged when a migration commits.
    pub migrate_cost: u64,
    /// Hard bound on scheduler slots (runaway/livelock backstop): when
    /// exceeded, still-live harts are failed and the run reports.
    pub max_slots: u64,
    /// Execution front end for every hart.
    pub mode: ExecMode,
    /// Guest stack committed per hart. The single-hart default (8 MiB,
    /// [`chimera_obj::STACK_SIZE`]) is the wrong trade at N ≫ M scale:
    /// 256 harts would eagerly zero 2 GiB of stack pages per run, so the
    /// many-hart default is 256 KiB. The stack always ends at the same
    /// top address; only guests recursing past the chosen size notice.
    pub stack_bytes: u64,
}

impl Default for ManyHartConfig {
    fn default() -> Self {
        ManyHartConfig {
            workers: 1,
            quantum: 4096,
            migrate_cost: 600,
            max_slots: 1 << 22,
            mode: ExecMode::Engine,
            stack_bytes: 256 * 1024,
        }
    }
}

/// Why a hart is (not) schedulable.
#[derive(Debug, Clone, PartialEq, Eq)]
enum HartStatus {
    /// Eligible to run next slot.
    Runnable,
    /// Blocked in `wfi` until an event arrives.
    Waiting,
    /// Blocked awaiting its migration-commit event.
    Migrating,
    /// Exited with a code.
    Done(i64),
    /// Failed fatally.
    Failed(String),
}

/// One hart's scheduling slot: the fiber plus everything the kernel
/// tracks about it. Steps mutate only this (under its own mutex), which
/// is the whole determinism argument — see the module docs.
struct HartSlot {
    fiber: HartFiber,
    kernel: KernelRunner,
    status: HartStatus,
    /// Latched wakeup: an event delivered while not `Waiting`.
    pending_wake: bool,
    /// The profile a migration commit switches the CPU to.
    ext_profile: ExtSet,
    /// Events produced this slot, merged after the barrier.
    outbox: Vec<HartEvent>,
    /// Committed migrations.
    migrations: u64,
    /// The hart's trace handle (shared seq counter with its CPU/kernel).
    tracer: Tracer,
    /// The [`crate::ProcessPool`] key this hart's memory slot came from
    /// (`None` for eagerly booted harts), so [`ManyHartKernel::recycle_into`]
    /// knows where to return it.
    pool_key: Option<u64>,
}

/// Final report for one hart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HartReport {
    /// Hart id.
    pub hart: u64,
    /// Exit code, if the guest exited.
    pub exit: Option<i64>,
    /// Fatal-failure description, if any.
    pub failure: Option<String>,
    /// Digest of final architectural state + stats + stdout + counters.
    pub checksum: u64,
    /// Instructions retired.
    pub retired: u64,
    /// Simulated cycles consumed.
    pub cycles: u64,
    /// Migrations committed (base → extension profile).
    pub migrations: u64,
    /// The hart's fault counters (SMILE recoveries, lazy rewrites…).
    pub counters: FaultCounters,
}

/// The outcome of a many-hart run. `PartialEq`-comparable across runs:
/// two runs of the same scenario must produce equal results whatever the
/// worker count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManyHartResult {
    /// Per-hart reports, in hart-id order.
    pub harts: Vec<HartReport>,
    /// Scheduler slots executed (logical time at completion).
    pub slots: u64,
    /// Total instructions retired across all harts.
    pub retired: u64,
    /// Total simulated cycles across all harts.
    pub cycles: u64,
    /// Total committed migrations.
    pub migrations: u64,
    /// Events delivered, by kind: (timers, ipis, wakeups).
    pub delivered: (u64, u64, u64),
    /// Fold of the per-hart checksums (the gate's bit-identity scalar).
    pub checksum: u64,
}

impl ManyHartResult {
    /// Harts that exited successfully (code 0 a convention, not checked).
    pub fn exited(&self) -> usize {
        self.harts.iter().filter(|h| h.exit.is_some()).count()
    }

    /// First failure, if any hart failed.
    pub fn first_failure(&self) -> Option<(u64, &str)> {
        self.harts
            .iter()
            .find_map(|h| h.failure.as_deref().map(|f| (h.hart, f)))
    }
}

/// The many-hart kernel. Build with [`ManyHartKernel::new`], add harts,
/// then [`ManyHartKernel::run`].
pub struct ManyHartKernel {
    cfg: ManyHartConfig,
    pool: FiberPool,
    slots: Vec<Mutex<HartSlot>>,
    queue: EventQueue,
    now: u64,
    tracer: Tracer,
}

impl ManyHartKernel {
    /// A kernel with no harts yet.
    pub fn new(cfg: ManyHartConfig) -> ManyHartKernel {
        ManyHartKernel::with_tracer(cfg, Tracer::disabled())
    }

    /// A kernel whose harts trace into `tracer` (each hart records
    /// through its own [`Tracer::for_hart`] stream, so fiber migration
    /// across workers never scrambles a hart's records).
    pub fn with_tracer(cfg: ManyHartConfig, tracer: Tracer) -> ManyHartKernel {
        ManyHartKernel {
            pool: FiberPool::new(cfg.workers),
            cfg,
            slots: Vec::new(),
            queue: EventQueue::new(),
            now: 0,
            tracer,
        }
    }

    /// Adds a hart booted from `binary` on `profile`; a FAM migration
    /// switches it to `ext_profile`. Returns the hart id.
    pub fn add_hart(
        &mut self,
        binary: &Binary,
        profile: ExtSet,
        ext_profile: ExtSet,
        tables: RuntimeTables,
    ) -> u64 {
        let id = self.slots.len() as u64;
        let hart_tracer = self.tracer.for_hart(id);
        let mut fiber = HartFiber::boot_with_stack(id, binary, profile, self.cfg.stack_bytes);
        fiber.cpu.set_mode(self.cfg.mode);
        fiber.cpu.tracer = hart_tracer.clone();
        let kernel = KernelRunner::with_tracer(tables, hart_tracer.clone());
        self.slots.push(Mutex::new(HartSlot {
            fiber,
            kernel,
            status: HartStatus::Runnable,
            pending_wake: false,
            ext_profile,
            outbox: Vec::new(),
            migrations: 0,
            tracer: hart_tracer,
            pool_key: None,
        }));
        id
    }

    /// Adds a hart spawned from a [`ProcessPool`] slot (the churn fast
    /// path): the memory is a pooled copy-on-write instantiation of the
    /// variant registered under `key`, and [`ManyHartKernel::recycle_into`]
    /// can return it after the run. Returns the hart id, or `None` when
    /// `key` is not registered.
    pub fn add_pooled_hart(
        &mut self,
        pool: &mut ProcessPool,
        key: u64,
        profile: ExtSet,
        ext_profile: ExtSet,
    ) -> Option<u64> {
        let (cpu, mem) = pool.spawn(key, profile)?;
        let tables = pool.variant(key).expect("spawned key").tables.clone();
        let id = self.slots.len() as u64;
        let hart_tracer = self.tracer.for_hart(id);
        let mut fiber = HartFiber::new(id, cpu, mem);
        fiber.cpu.set_mode(self.cfg.mode);
        fiber.cpu.tracer = hart_tracer.clone();
        let kernel = KernelRunner::with_tracer(tables, hart_tracer.clone());
        self.slots.push(Mutex::new(HartSlot {
            fiber,
            kernel,
            status: HartStatus::Runnable,
            pending_wake: false,
            ext_profile,
            outbox: Vec::new(),
            migrations: 0,
            tracer: hart_tracer,
            pool_key: Some(key),
        }));
        Some(id)
    }

    /// Drains every hart slot and returns pooled memories to `pool`
    /// (restoring only the spans each run dirtied). Consumes the kernel's
    /// harts — call after [`ManyHartKernel::run`] and before reusing the
    /// kernel for another round. Returns the number of slots recycled.
    pub fn recycle_into(&mut self, pool: &mut ProcessPool) -> usize {
        let mut recycled = 0;
        for slot in self.slots.drain(..) {
            let s = slot.into_inner().expect("slot poisoned");
            if let Some(key) = s.pool_key {
                if pool.recycle(key, s.fiber.hart_id, s.fiber.mem).is_some() {
                    recycled += 1;
                }
            }
        }
        recycled
    }

    /// Harts added so far.
    pub fn harts(&self) -> usize {
        self.slots.len()
    }

    /// Runs every hart to completion (exit or failure) and reports.
    pub fn run(&mut self) -> ManyHartResult {
        let mut slots_run = 0u64;
        let mut delivered = (0u64, 0u64, 0u64);
        loop {
            let (live, runnable_now) = self.census();
            if live == 0 {
                break;
            }
            if slots_run >= self.cfg.max_slots {
                self.fail_live("slot budget exhausted (livelock?)");
                break;
            }
            slots_run += 1;
            // Advance logical time; when every live hart is blocked, jump
            // straight to the next pending event (or fail on guest
            // deadlock). All of this reads only per-hart state and the
            // queue — both worker-count-invariant.
            self.now += 1;
            if runnable_now == 0 {
                match self.queue.next_at() {
                    Some(at) => self.now = self.now.max(at),
                    None => {
                        self.fail_live("blocked in wfi with no pending events (guest deadlock)");
                        break;
                    }
                }
            }
            for ev in self.queue.pop_due(self.now) {
                self.deliver(ev, &mut delivered);
            }
            let runnable: Vec<usize> = self
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.lock().expect("slot poisoned").status == HartStatus::Runnable)
                .map(|(i, _)| i)
                .collect();
            if runnable.is_empty() {
                continue;
            }
            let (now, quantum) = (self.now, self.cfg.quantum);
            self.pool.run_round(&self.slots, &runnable, |id, slot| {
                step_slot(slot, id as u64, now, quantum);
            });
            // Merge outboxes in hart-id order (the queue re-sorts anyway;
            // the fixed order keeps multiset insertion history identical
            // too, so even counted duplicates can't diverge).
            for slot in &self.slots {
                let mut s = slot.lock().expect("slot poisoned");
                for ev in s.outbox.drain(..) {
                    self.queue.push(ev);
                }
            }
        }
        self.report(slots_run, delivered)
    }

    /// (live harts, currently runnable harts).
    fn census(&self) -> (usize, usize) {
        let mut live = 0;
        let mut runnable = 0;
        for slot in &self.slots {
            match slot.lock().expect("slot poisoned").status {
                HartStatus::Runnable => {
                    live += 1;
                    runnable += 1;
                }
                HartStatus::Waiting | HartStatus::Migrating => live += 1,
                HartStatus::Done(_) | HartStatus::Failed(_) => {}
            }
        }
        (live, runnable)
    }

    fn fail_live(&mut self, msg: &str) {
        for slot in &self.slots {
            let mut s = slot.lock().expect("slot poisoned");
            if matches!(
                s.status,
                HartStatus::Runnable | HartStatus::Waiting | HartStatus::Migrating
            ) {
                s.status = HartStatus::Failed(msg.to_string());
            }
        }
    }

    fn deliver(&mut self, ev: HartEvent, delivered: &mut (u64, u64, u64)) {
        let Some(slot) = self.slots.get(ev.hart as usize) else {
            // IPI to a hart that doesn't exist: dropped, counted.
            self.tracer.count("many.events_dropped", 1);
            return;
        };
        let mut s = slot.lock().expect("slot poisoned");
        match ev.kind {
            HartEventKind::Migrate => {
                if s.status == HartStatus::Migrating {
                    s.fiber.cpu.profile = s.ext_profile;
                    s.fiber.cpu.stats.cycles += self.cfg.migrate_cost;
                    // Reset the tiering state: cached blocks are keyed by
                    // (pc, profile) so they cannot alias, but the JIT's
                    // hotness/trace state is rebuilt from scratch — the
                    // same deterministic reset every worker count sees.
                    let mode = s.fiber.cpu.mode();
                    s.fiber.cpu.set_mode(mode);
                    s.migrations += 1;
                    s.status = HartStatus::Runnable;
                    let cycles = s.fiber.cpu.stats.cycles;
                    s.tracer.record(
                        cycles,
                        TraceEvent::TaskMigrated {
                            task: ev.hart,
                            from_base: true,
                        },
                    );
                    s.tracer.count("many.migrations", 1);
                }
            }
            HartEventKind::Timer | HartEventKind::Ipi { .. } | HartEventKind::Wakeup => {
                match ev.kind {
                    HartEventKind::Timer => delivered.0 += 1,
                    HartEventKind::Ipi { .. } => delivered.1 += 1,
                    _ => delivered.2 += 1,
                }
                s.tracer
                    .count(&format!("many.delivered_{}", ev.kind.name()), 1);
                match s.status {
                    HartStatus::Waiting => s.status = HartStatus::Runnable,
                    // Delivered to a running (or migrating) hart: latch,
                    // so its next wfi returns immediately.
                    HartStatus::Runnable | HartStatus::Migrating => s.pending_wake = true,
                    // Late event to a finished hart: dropped.
                    HartStatus::Done(_) | HartStatus::Failed(_) => {}
                }
            }
        }
    }

    fn report(&self, slots_run: u64, delivered: (u64, u64, u64)) -> ManyHartResult {
        let mut harts = Vec::with_capacity(self.slots.len());
        let mut total = ManyHartResult {
            harts: Vec::new(),
            slots: slots_run,
            retired: 0,
            cycles: 0,
            migrations: 0,
            delivered,
            checksum: 0xcbf2_9ce4_8422_2325,
        };
        for (id, slot) in self.slots.iter().enumerate() {
            let s = slot.lock().expect("slot poisoned");
            let (exit, failure) = match &s.status {
                HartStatus::Done(code) => (Some(*code), None),
                HartStatus::Failed(msg) => (None, Some(msg.clone())),
                // Unreachable after `run`, but report honestly anyway.
                other => (None, Some(format!("still live: {other:?}"))),
            };
            let checksum = hart_checksum(&s, exit, failure.as_deref());
            let r = HartReport {
                hart: id as u64,
                exit,
                failure,
                checksum,
                retired: s.fiber.cpu.stats.instret,
                cycles: s.fiber.cpu.stats.cycles,
                migrations: s.migrations,
                counters: s.kernel.counters,
            };
            total.retired += r.retired;
            total.cycles += r.cycles;
            total.migrations += r.migrations;
            total.checksum = fnv(total.checksum, r.checksum);
            harts.push(r);
        }
        total.harts = harts;
        total
    }
}

/// Runs one hart for one slot: up to `quantum` retired instructions,
/// servicing traps through the hart's own kernel runner. Touches only
/// `slot` — the precondition for running slots concurrently.
fn step_slot(slot: &mut HartSlot, hart: u64, now: u64, quantum: u64) {
    let mut budget = quantum;
    loop {
        if budget == 0 {
            return;
        }
        let before = slot.fiber.cpu.stats.instret;
        let yielded = slot.fiber.resume(budget);
        budget -= (slot.fiber.cpu.stats.instret - before).min(budget);
        let trap = match yielded {
            FiberYield::FuelExhausted => return,
            FiberYield::Trap(t) => t,
        };
        match slot
            .kernel
            .service_trap(trap, &mut slot.fiber.cpu, &mut slot.fiber.mem)
        {
            TrapDisposition::Resume => {}
            TrapDisposition::Exited(code) => {
                slot.status = HartStatus::Done(code);
                return;
            }
            TrapDisposition::Migrate { .. } => {
                slot.status = HartStatus::Migrating;
                slot.outbox.push(HartEvent {
                    at: now + 1,
                    hart,
                    kind: HartEventKind::Migrate,
                });
                return;
            }
            TrapDisposition::HartCall { call, pc } => {
                let cpu = &mut slot.fiber.cpu;
                cpu.stats.cycles += cpu.cost.trap / 8; // Light syscall.
                cpu.hart.pc = pc + 4;
                match call {
                    HartCall::Id => cpu.hart.set_x(XReg::A0, hart),
                    HartCall::Wfi => {
                        if slot.pending_wake {
                            slot.pending_wake = false; // Latched: no block.
                        } else {
                            slot.status = HartStatus::Waiting;
                            return;
                        }
                    }
                    HartCall::Ipi { target } => {
                        cpu.hart.set_x(XReg::A0, 0);
                        slot.outbox.push(HartEvent {
                            at: now + 1,
                            hart: target,
                            kind: HartEventKind::Ipi { from: hart },
                        });
                    }
                    HartCall::SetTimer { delta } => {
                        cpu.hart.set_x(XReg::A0, 0);
                        slot.outbox.push(HartEvent {
                            at: now + delta.max(1),
                            hart,
                            kind: HartEventKind::Timer,
                        });
                    }
                }
            }
            TrapDisposition::Fatal(msg) => {
                slot.status = HartStatus::Failed(msg);
                return;
            }
        }
    }
}

#[inline]
fn fnv(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x100_0000_01b3)
}

fn fnv_stats(mut h: u64, s: &ExecStats) -> u64 {
    for v in [
        s.instret,
        s.cycles,
        s.vector_insts,
        s.indirect_jumps,
        s.branches,
        s.loads,
        s.stores,
        s.ebreaks,
    ] {
        h = fnv(h, v);
    }
    h
}

fn hart_checksum(s: &HartSlot, exit: Option<i64>, failure: Option<&str>) -> u64 {
    let mut h = s.fiber.cpu.hart.state_hash();
    h = fnv_stats(h, &s.fiber.cpu.stats);
    for &b in &s.kernel.stdout {
        h = fnv(h, b as u64);
    }
    let c = &s.kernel.counters;
    for v in [
        c.smile_faults,
        c.trap_trampolines,
        c.safer_corrections,
        c.lazy_rewrites,
        c.signals_gp_restored,
        s.migrations,
    ] {
        h = fnv(h, v);
    }
    h = fnv(h, exit.map(|c| c as u64).unwrap_or(u64::MAX));
    if let Some(f) = failure {
        for b in f.bytes() {
            h = fnv(h, b as u64);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_obj::{assemble, AsmOptions};

    fn asm(src: &str) -> Binary {
        assemble(src, AsmOptions::default()).expect("assembles")
    }

    /// Ping-pong communicator: pairs (2k, 2k+1) exchange `rounds` IPIs.
    fn pingpong() -> Binary {
        asm("
            _start:
                li a7, 0x7a00       # HART_ID
                ecall
                mv s0, a0
                xori s1, s0, 1      # peer = id ^ 1
                li s2, 3            # rounds
            round:
                li a7, 0x7a02       # IPI peer
                mv a0, s1
                ecall
                li a7, 0x7a01       # WFI
                ecall
                addi s2, s2, -1
                bnez s2, round
                li a7, 93
                mv a0, s0
                ecall
            ")
    }

    fn run_with(
        workers: usize,
        quantum: u64,
        build: impl Fn(&mut ManyHartKernel),
    ) -> ManyHartResult {
        let mut k = ManyHartKernel::new(ManyHartConfig {
            workers,
            quantum,
            ..Default::default()
        });
        build(&mut k);
        k.run()
    }

    #[test]
    fn pingpong_pairs_complete_and_are_worker_invariant() {
        let bin = pingpong();
        let build = |k: &mut ManyHartKernel| {
            for _ in 0..8 {
                k.add_hart(&bin, bin.profile, bin.profile, RuntimeTables::default());
            }
        };
        let base = run_with(1, 512, build);
        assert_eq!(
            base.exited(),
            8,
            "all harts exit: {:?}",
            base.first_failure()
        );
        for (i, h) in base.harts.iter().enumerate() {
            assert_eq!(h.exit, Some(i as i64), "exit code is the hart id");
        }
        // 8 harts × 3 rounds, each round one IPI.
        assert_eq!(base.delivered.1, 24);
        for workers in [2, 4, 8] {
            assert_eq!(run_with(workers, 512, build), base, "workers={workers}");
        }
        // Different quantum slices differently but must reach the same
        // architectural result (slot/cycle accounting may differ only in
        // scheduler bookkeeping, which is also deterministic — compare
        // the full result for one alternate quantum across workers).
        let alt = run_with(1, 7, build);
        assert_eq!(run_with(8, 7, build), alt);
        for (a, b) in base.harts.iter().zip(&alt.harts) {
            assert_eq!(a.exit, b.exit);
            assert_eq!(a.retired, b.retired, "slicing is transparent");
        }
    }

    #[test]
    fn timer_wakes_a_lone_hart() {
        let bin = asm("
            _start:
                li a7, 0x7a03       # SET_TIMER
                li a0, 5
                ecall
                li a7, 0x7a01       # WFI
                ecall
                li a7, 93
                li a0, 42
                ecall
            ");
        let r = run_with(1, 64, |k| {
            k.add_hart(&bin, bin.profile, bin.profile, RuntimeTables::default());
        });
        assert_eq!(r.harts[0].exit, Some(42), "{:?}", r.first_failure());
        assert_eq!(r.delivered.0, 1);
        // The scheduler fast-forwarded across the idle gap rather than
        // spinning 5 empty slots one by one… but slots still advance
        // monotonically past the timer's delivery time.
        assert!(r.slots >= 2);
    }

    #[test]
    fn wfi_with_no_events_is_a_detected_deadlock() {
        let bin = asm("
            _start:
                li a7, 0x7a01
                ecall
                li a7, 93
                ecall
            ");
        let r = run_with(2, 64, |k| {
            k.add_hart(&bin, bin.profile, bin.profile, RuntimeTables::default());
        });
        let (hart, msg) = r.first_failure().expect("deadlock detected");
        assert_eq!(hart, 0);
        assert!(msg.contains("deadlock"), "{msg}");
    }

    #[test]
    fn ipi_to_missing_hart_is_dropped() {
        let bin = asm("
            _start:
                li a7, 0x7a02
                li a0, 99           # no such hart
                ecall
                li a7, 93
                li a0, 7
                ecall
            ");
        let r = run_with(1, 64, |k| {
            k.add_hart(&bin, bin.profile, bin.profile, RuntimeTables::default());
        });
        assert_eq!(r.harts[0].exit, Some(7), "{:?}", r.first_failure());
        assert_eq!(r.delivered, (0, 0, 0));
    }

    #[test]
    fn hart_calls_outside_many_hart_kernel_are_fatal() {
        let bin = asm("
            _start:
                li a7, 0x7a01
                ecall
                li a7, 93
                ecall
            ");
        let (mut cpu, mut mem) = chimera_emu::boot(&bin, bin.profile);
        let mut kr = KernelRunner::new(RuntimeTables::default());
        match kr.run(&mut cpu, &mut mem, 1 << 20) {
            crate::RunOutcome::Fatal(msg) => {
                assert!(msg.contains("many-hart"), "{msg}")
            }
            other => panic!("expected Fatal, got {other:?}"),
        }
    }
}
