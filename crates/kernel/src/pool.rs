//! Pooled process instantiation: content-addressed masters + slot reuse.
//!
//! A [`ProcessPool`] keeps one [`MemoryPool`] per registered [`Variant`],
//! keyed by the variant binary's content key. [`ProcessPool::spawn`] is the
//! fast path the `process_churn` gate measures: acquire a copy-on-write
//! slot (or a recycled one whose dirt was already restored), point a fresh
//! CPU at the master's entry, done — O(µs), independent of image size.
//! [`ProcessPool::recycle`] returns a slot after its guest exits, restoring
//! only the spans the run dirtied and emitting
//! [`TraceEvent::SlotRecycled`] so the trace-overhead gate can reconcile
//! recycles exactly against the `pool.slots_recycled` counter.
//!
//! The master image mirrors what [`crate::Process::load`] maps for the
//! same variant — sections, a default-size stack, and the `[lazy]`
//! rewrite slack when the variant has a fault-handling table — so pooled
//! and eagerly loaded processes observe identical address spaces.

use crate::process::{Variant, LAZY_SLACK};
use chimera_emu::{boot_pooled, Cpu, MasterImage, Memory, MemoryPool, PoolStats};
use chimera_isa::ExtSet;
use chimera_obj::{Perms, DEFAULT_STACK_SIZE};
use chimera_rewrite::content_key;
use chimera_trace::{TraceEvent, Tracer};
use std::time::Instant;

/// One registered variant: its content key, runtime tables, and the
/// memory pool over its master image.
struct PoolEntry {
    key: u64,
    variant: Variant,
    pool: MemoryPool,
}

/// A pool of spawnable processes, one slot pool per registered variant.
pub struct ProcessPool {
    entries: Vec<PoolEntry>,
    stack_bytes: u64,
    tracer: Tracer,
}

impl ProcessPool {
    /// An empty pool with the default per-process stack
    /// ([`chimera_obj::DEFAULT_STACK_SIZE`]) and no tracing.
    pub fn new() -> ProcessPool {
        ProcessPool::with_config(DEFAULT_STACK_SIZE, Tracer::disabled())
    }

    /// An empty pool with an explicit stack size and trace handle.
    pub fn with_config(stack_bytes: u64, tracer: Tracer) -> ProcessPool {
        assert!(stack_bytes > 0, "stack must be at least one byte");
        ProcessPool {
            entries: Vec::new(),
            stack_bytes,
            tracer,
        }
    }

    /// Registers a variant and returns its content key. Registering the
    /// same content twice returns the existing key without building a
    /// second master; the `[lazy]` slack is folded into the key's flags so
    /// table-less and table-bearing builds of the same bytes never alias.
    pub fn register(&mut self, variant: Variant) -> u64 {
        let lazy = lazy_base(&variant);
        let key = content_key(&variant.binary, "process-pool", lazy.unwrap_or(0));
        if self.entries.iter().any(|e| e.key == key) {
            return key;
        }
        let mut master = MasterImage::new(&variant.binary, self.stack_bytes);
        if let Some(base) = lazy {
            master.push_region(base, vec![0; LAZY_SLACK as usize], Perms::RX, "[lazy]");
        }
        self.entries.push(PoolEntry {
            key,
            variant,
            pool: MemoryPool::new(master),
        });
        key
    }

    /// Pre-reserves `slots` instantiated memories for `key`'s pool.
    pub fn prewarm(&mut self, key: u64, slots: usize) {
        if let Some(e) = self.entry_mut(key) {
            e.pool.prewarm(slots);
        }
    }

    /// The registered variant for `key`.
    pub fn variant(&self, key: u64) -> Option<&Variant> {
        self.entries
            .iter()
            .find(|e| e.key == key)
            .map(|e| &e.variant)
    }

    /// Lifetime slot counters for `key`'s pool.
    pub fn stats(&self, key: u64) -> Option<PoolStats> {
        self.entries
            .iter()
            .find(|e| e.key == key)
            .map(|e| e.pool.stats())
    }

    /// Slots currently free in `key`'s pool.
    pub fn free_slots(&self, key: u64) -> usize {
        self.entries
            .iter()
            .find(|e| e.key == key)
            .map_or(0, |e| e.pool.free_slots())
    }

    /// The spawn fast path: a booted CPU on a pooled slot. Observes the
    /// wall-clock spawn latency into the `pool.spawn_ns` histogram and
    /// bumps `pool.spawns`.
    pub fn spawn(&mut self, key: u64, profile: ExtSet) -> Option<(Cpu, Memory)> {
        let enabled = self.tracer.is_enabled();
        let start = enabled.then(Instant::now);
        let e = self.entry_mut(key)?;
        let booted = boot_pooled(&mut e.pool, profile);
        if let Some(start) = start {
            self.tracer
                .observe("pool.spawn_ns", start.elapsed().as_nanos() as u64);
            self.tracer.count("pool.spawns", 1);
        }
        Some(booted)
    }

    /// Returns a slot after its guest ran on `hart`. On a successful
    /// recycle, emits [`TraceEvent::SlotRecycled`] with the restored byte
    /// count and bumps `pool.slots_recycled`; a slot whose layout diverged
    /// (or that belongs to no registered pool) is dropped and counted
    /// under `pool.slots_discarded`. Returns the restored byte count.
    pub fn recycle(&mut self, key: u64, hart: u64, mem: Memory) -> Option<u64> {
        let Some(e) = self.entry_mut(key) else {
            self.tracer.count("pool.slots_discarded", 1);
            return None;
        };
        match e.pool.release(mem) {
            Some(restored_bytes) => {
                if self.tracer.is_enabled() {
                    self.tracer.record(
                        0,
                        TraceEvent::SlotRecycled {
                            hart,
                            restored_bytes,
                        },
                    );
                    self.tracer.count("pool.slots_recycled", 1);
                }
                Some(restored_bytes)
            }
            None => {
                self.tracer.count("pool.slots_discarded", 1);
                None
            }
        }
    }

    fn entry_mut(&mut self, key: u64) -> Option<&mut PoolEntry> {
        self.entries.iter_mut().find(|e| e.key == key)
    }
}

impl Default for ProcessPool {
    fn default() -> Self {
        ProcessPool::new()
    }
}

/// Where the variant's `[lazy]` rewrite slack starts, if it has any —
/// mirrors the [`crate::Process::load`] mapping rule.
fn lazy_base(variant: &Variant) -> Option<u64> {
    let fht = variant.tables.fht.as_ref()?;
    (fht.target_range.1 > fht.target_range.0).then_some(fht.target_range.1)
}
