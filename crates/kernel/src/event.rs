//! The deterministic logical-time event queue of the many-hart kernel.
//!
//! Logical time is the scheduler's **slot** index — one slot is one
//! barrier-synchronous round in which every runnable hart executes up to
//! its fuel quantum. Cross-hart effects produced inside a slot (IPIs,
//! timer arms, migration commits) are buffered per hart and merged into
//! this queue *after* the round, so the queue's contents never depend on
//! which host worker ran which hart, or in what real-time order.
//!
//! Delivery order is the derived `Ord` on [`HartEvent`] — `(at, hart,
//! kind)` — a **pure function of the events themselves**: two queues
//! holding the same multiset of events pop identically regardless of
//! insertion order or of how many host workers produced them. That single
//! property is what makes N-hart runs bit-identical across host worker
//! counts (`sched_properties.rs` asserts it directly; the `many_hart`
//! gate asserts the end-to-end consequence).

use std::collections::BTreeMap;

/// What a delivered event does to its destination hart.
///
/// The variant order (then the payload) is the fixed tie-break among
/// events delivered to the same hart in the same slot: timers before
/// IPIs, IPIs in sender order, wakeups, then migration commits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HartEventKind {
    /// A one-shot timer the hart armed (`sys::SET_TIMER`) fired.
    Timer,
    /// An inter-processor wakeup (`sys::IPI`) from hart `from`.
    Ipi {
        /// The sending hart.
        from: u64,
    },
    /// A scheduler-initiated wakeup (no guest sender).
    Wakeup,
    /// The hart's pending migration to its extension profile commits.
    Migrate,
}

impl HartEventKind {
    /// Short identifier (metrics names, JSON).
    pub fn name(&self) -> &'static str {
        match self {
            HartEventKind::Timer => "timer",
            HartEventKind::Ipi { .. } => "ipi",
            HartEventKind::Wakeup => "wakeup",
            HartEventKind::Migrate => "migrate",
        }
    }
}

/// One queued event: deliver `kind` to `hart` at logical time `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct HartEvent {
    /// Delivery slot.
    pub at: u64,
    /// Destination hart.
    pub hart: u64,
    /// Payload.
    pub kind: HartEventKind,
}

/// A multiset of pending [`HartEvent`]s, popped in `(at, hart, kind)`
/// order. Identical events (two IPIs from the same sender landing in the
/// same slot) are counted, not collapsed.
#[derive(Debug, Default, Clone)]
pub struct EventQueue {
    due: BTreeMap<HartEvent, u64>,
    len: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// Enqueues one event.
    pub fn push(&mut self, ev: HartEvent) {
        *self.due.entry(ev).or_insert(0) += 1;
        self.len += 1;
    }

    /// Pending events (multiset cardinality).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The earliest pending delivery slot.
    pub fn next_at(&self) -> Option<u64> {
        self.due.keys().next().map(|ev| ev.at)
    }

    /// Removes and returns every event due at or before `now`, in
    /// delivery order.
    pub fn pop_due(&mut self, now: u64) -> Vec<HartEvent> {
        let mut out = Vec::new();
        while let Some((&ev, _)) = self.due.first_key_value() {
            if ev.at > now {
                break;
            }
            let (ev, n) = self.due.pop_first().expect("non-empty");
            self.len -= n;
            out.extend(std::iter::repeat_n(ev, n as usize));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, hart: u64, kind: HartEventKind) -> HartEvent {
        HartEvent { at, hart, kind }
    }

    #[test]
    fn pops_in_time_hart_kind_order() {
        let mut q = EventQueue::new();
        q.push(ev(2, 0, HartEventKind::Wakeup));
        q.push(ev(1, 5, HartEventKind::Ipi { from: 3 }));
        q.push(ev(1, 5, HartEventKind::Timer));
        q.push(ev(1, 2, HartEventKind::Migrate));
        q.push(ev(1, 5, HartEventKind::Ipi { from: 1 }));
        assert_eq!(q.len(), 5);
        assert_eq!(q.next_at(), Some(1));
        let due = q.pop_due(1);
        assert_eq!(
            due,
            vec![
                ev(1, 2, HartEventKind::Migrate),
                ev(1, 5, HartEventKind::Timer),
                ev(1, 5, HartEventKind::Ipi { from: 1 }),
                ev(1, 5, HartEventKind::Ipi { from: 3 }),
            ]
        );
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_due(1), vec![]);
        assert_eq!(q.pop_due(2), vec![ev(2, 0, HartEventKind::Wakeup)]);
        assert!(q.is_empty());
    }

    #[test]
    fn duplicates_are_counted() {
        let mut q = EventQueue::new();
        let e = ev(3, 1, HartEventKind::Ipi { from: 1 });
        q.push(e);
        q.push(e);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_due(3), vec![e, e]);
        assert!(q.is_empty());
    }
}
