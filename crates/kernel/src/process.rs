//! The Chimera process model: one process, multiple address-space views
//! (MMViews, §4.3), one per heterogeneous core class.
//!
//! Each view is instantiated from the rewritten (or native) binary for its
//! core class. Code and read-only sections are per-view; writable sections
//! — `.data`, the stack, and the `.chimera.vregs` simulated-vector-state
//! section — are shared, so a task's memory state survives migration.
//! Migration additionally synchronizes the *architectural* vector state
//! with the simulated one: a native (vector-capable) view keeps vectors in
//! hart registers, a downgraded view keeps them in the spill section, and
//! the kernel converts on the way across (§4.1's "consistent behavior
//! across heterogeneous cores").

use crate::runtime::RuntimeTables;
use chimera_emu::{Cpu, Memory, VLENB};
use chimera_isa::{Eew, ExtSet, VReg, XReg};
use chimera_obj::{Binary, Perms, DEFAULT_STACK_SIZE, STACK_TOP};
use chimera_rewrite::translate::SpillLayout;
use chimera_trace::{TraceEvent, Tracer};

/// Extra executable slack mapped after the target section for lazy
/// rewriting at runtime.
pub const LAZY_SLACK: u64 = 64 * 1024;

/// One binary variant (one MMView's backing image).
#[derive(Debug, Clone)]
pub struct Variant {
    /// The executable image for this core class.
    pub binary: Binary,
    /// Its runtime tables (empty for native binaries).
    pub tables: RuntimeTables,
}

impl Variant {
    /// A native (unrewritten) variant.
    pub fn native(binary: Binary) -> Variant {
        Variant {
            binary,
            tables: RuntimeTables::default(),
        }
    }

    /// The profile this variant's code requires.
    pub fn profile(&self) -> ExtSet {
        self.binary.profile
    }
}

/// A process with one MMView per core class.
#[derive(Debug, Clone)]
pub struct Process {
    /// The views: `(profile, variant)` pairs, first match wins.
    pub views: Vec<Variant>,
}

impl Process {
    /// Creates a process from its per-core-class variants.
    pub fn new(views: Vec<Variant>) -> Process {
        assert!(!views.is_empty(), "a process needs at least one view");
        Process { views }
    }

    /// The view whose code a core with `profile` can execute.
    pub fn view_for(&self, profile: ExtSet) -> Option<&Variant> {
        self.views
            .iter()
            .find(|v| profile.is_superset_of(v.profile()))
    }

    /// Loads the process with the view for `profile` active: maps that
    /// view's sections, the shared stack, and lazy-rewrite slack; returns a
    /// booted CPU and memory.
    pub fn load(&self, profile: ExtSet) -> Option<(Cpu, Memory, &Variant)> {
        let view = self.view_for(profile)?;
        let mut mem = Memory::new();
        for s in &view.binary.sections {
            mem.map_bytes(s.addr, s.data.clone(), s.perms, &s.name);
        }
        mem.map(
            STACK_TOP - DEFAULT_STACK_SIZE,
            DEFAULT_STACK_SIZE,
            Perms::RW,
            "[stack]",
        );
        if let Some(fht) = &view.tables.fht {
            if fht.target_range.1 > fht.target_range.0 {
                mem.map(fht.target_range.1, LAZY_SLACK, Perms::RX, "[lazy]");
            }
        }
        let mut cpu = Cpu::new(profile);
        cpu.hart.pc = view.binary.entry;
        cpu.hart.set_x(XReg::SP, STACK_TOP - 64);
        cpu.hart.set_x(XReg::GP, view.binary.gp);
        Some((cpu, mem, view))
    }

    /// Switches the active MMView: swaps per-view code/read-only regions,
    /// keeps shared writable regions, and re-points the CPU's profile and
    /// pc-invariant state. The caller must ensure pc is at a
    /// view-equivalent address (not inside target instructions — see
    /// [`Process::migration_safe`]).
    pub fn switch_view(&self, mem: &mut Memory, cpu: &mut Cpu, to_profile: ExtSet) -> bool {
        let Some(to) = self.view_for(to_profile) else {
            return false;
        };
        // Remove all non-writable regions (per-view), keep RW (shared).
        let names: Vec<String> = mem
            .regions()
            .iter()
            .filter(|r| !r.perms.w)
            .map(|r| r.name.clone())
            .collect();
        for n in names {
            mem.unmap(&n);
        }
        mem.unmap("[lazy]");
        // Map the new view's non-writable sections, and any writable
        // section the shared state does not have yet (e.g. the spill
        // section when coming from a native view).
        for s in &to.binary.sections {
            if !s.perms.w || mem.region(&s.name).is_none() {
                mem.map_bytes(s.addr, s.data.clone(), s.perms, &s.name);
            }
        }
        if let Some(fht) = &to.tables.fht {
            if fht.target_range.1 > fht.target_range.0 {
                mem.unmap("[lazy]");
                mem.map(fht.target_range.1, LAZY_SLACK, Perms::RX, "[lazy]");
            }
        }
        cpu.profile = to_profile;
        true
    }

    /// [`Process::switch_view`] with migration tracing: on success, emits
    /// [`TraceEvent::TaskMigrated`] (`from_base` = the new view is strictly
    /// more capable than the old, i.e. the task is moving *up* off a base
    /// core) and bumps `process.view_switches`.
    pub fn switch_view_traced(
        &self,
        mem: &mut Memory,
        cpu: &mut Cpu,
        to_profile: ExtSet,
        task: u64,
        tracer: &Tracer,
    ) -> bool {
        let from_profile = cpu.profile;
        if !self.switch_view(mem, cpu, to_profile) {
            return false;
        }
        if tracer.is_enabled() {
            let from_base = to_profile != from_profile && to_profile.is_superset_of(from_profile);
            tracer.record(
                cpu.stats.cycles,
                TraceEvent::TaskMigrated { task, from_base },
            );
            tracer.count("process.view_switches", 1);
        }
        true
    }

    /// Whether the task can migrate right now: pc must not be inside the
    /// active view's target-instruction section (whose contents are not
    /// semantically equivalent across views, §4.3). When `false`, the
    /// scheduler delays migration and re-checks at the next safe point
    /// (the paper inserts an exit-position probe; our kernel simply steps
    /// until the probe condition — pc outside the section — holds).
    pub fn migration_safe(active: &Variant, pc: u64) -> bool {
        match &active.tables.fht {
            Some(fht) => !fht.in_target_section(pc) && !fht.inside_trampoline(pc),
            None => true,
        }
    }
}

/// Copies the hart's architectural vector state into the spill section
/// (native → downgraded migration).
pub fn sync_vectors_to_spill(cpu: &Cpu, mem: &mut Memory, spill_base: u64) {
    let sew = cpu
        .hart
        .vtype
        .map(|t| t.sew.bytes())
        .unwrap_or(Eew::E64.bytes());
    let _ = mem.write(
        spill_base + SpillLayout::VL as u64,
        &cpu.hart.vl.to_le_bytes(),
    );
    let _ = mem.write(spill_base + SpillLayout::SEW as u64, &sew.to_le_bytes());
    for v in VReg::all() {
        let off = spill_base + SpillLayout::vreg_off(v) as u64;
        let _ = mem.write(off, cpu.hart.get_v(v));
    }
}

/// Copies the spill section into the hart's architectural vector state
/// (downgraded → native migration).
pub fn sync_vectors_from_spill(cpu: &mut Cpu, mem: &mut Memory, spill_base: u64) {
    if let Ok(vl) = mem.read_u64(spill_base + SpillLayout::VL as u64) {
        cpu.hart.vl = vl;
    }
    if let Ok(sew) = mem.read_u64(spill_base + SpillLayout::SEW as u64) {
        let sew = match sew {
            4 => Eew::E32,
            _ => Eew::E64,
        };
        cpu.hart.vtype = Some(chimera_isa::VType {
            sew,
            lmul: 1,
            ta: true,
            ma: true,
        });
    }
    for v in VReg::all() {
        let off = spill_base + SpillLayout::vreg_off(v) as u64;
        if let Some(bytes) = mem.peek(off, VLENB) {
            cpu.hart.get_v_mut(v).copy_from_slice(&bytes);
        }
    }
}
