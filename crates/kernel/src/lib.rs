//! # chimera-kernel
//!
//! The simulated operating-system runtime of the Chimera reproduction:
//! trap routing and passive fault handling ([`KernelRunner`]), the
//! multi-view process model ([`Process`], MMViews), signal delivery with
//! `gp` restoration, and ISAX-aware work-stealing scheduling (a
//! deterministic simulator for the benchmarks plus a real threaded pool).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod process;
mod refresh;
mod runtime;
mod sched;

pub use process::{sync_vectors_from_spill, sync_vectors_to_spill, Process, Variant, LAZY_SLACK};
pub use refresh::VariantRefresher;
pub use runtime::{FaultCounters, KernelRunner, RunOutcome, RuntimeTables, SIGRETURN_ADDR};
pub use sched::{
    simulate_work_stealing, simulate_work_stealing_traced, Pool, SimMachine, SimResult, TaskCost,
    ThreadedPool,
};
// Re-exported so kernel users can construct tracers without a separate
// chimera-trace dependency line.
pub use chimera_trace::{TraceEvent, Tracer};
