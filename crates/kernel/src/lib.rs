//! # chimera-kernel
//!
//! The simulated operating-system runtime of the Chimera reproduction:
//! trap routing and passive fault handling ([`KernelRunner`]), the
//! multi-view process model ([`Process`], MMViews), signal delivery with
//! `gp` restoration, ISAX-aware work-stealing scheduling (a deterministic
//! simulator for the benchmarks plus a real threaded pool), and the
//! many-hart event kernel ([`ManyHartKernel`]): N guest harts as
//! cooperative fibers over M logical host workers, scheduled in
//! deterministic logical time so results are bit-identical at every
//! worker count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod many;
mod pool;
mod process;
mod refresh;
mod runtime;
mod sched;

pub use event::{EventQueue, HartEvent, HartEventKind};
pub use many::{HartReport, ManyHartConfig, ManyHartKernel, ManyHartResult};
pub use pool::ProcessPool;
pub use process::{sync_vectors_from_spill, sync_vectors_to_spill, Process, Variant, LAZY_SLACK};
pub use refresh::VariantRefresher;
pub use runtime::{
    FaultCounters, HartCall, KernelRunner, RunOutcome, RuntimeTables, TrapDisposition,
    SIGRETURN_ADDR,
};
pub use sched::{
    simulate_work_stealing, simulate_work_stealing_traced, FiberPool, Pool, SimMachine, SimResult,
    TaskCost, ThreadedPool,
};
// Re-exported so kernel users can construct tracers without a separate
// chimera-trace dependency line.
pub use chimera_trace::{TraceEvent, Tracer};
