//! Incremental variant refresh: the kernel-side consumer of the
//! rewriter's per-unit cache.
//!
//! At load time the kernel rewrites each variant from scratch and keeps
//! the [`RewriteCache`] the run primed. At runtime, code mutations —
//! lazy-rewrite patches, guest self-modification through `poke_code`,
//! MMView remaps — all funnel through the emulator's dirty-region
//! channel (`Memory::dirty_regions_since`), stamped with workspace-unique
//! region generations. [`VariantRefresher::refresh`] drains that channel
//! past its watermark and re-rewrites *only* the units the mutations
//! invalidated; every clean unit's bytes are reused verbatim. The
//! refreshed variant is bit-identical to a from-scratch rewrite (the
//! incremental driver hard-asserts it per re-emitted unit).

use crate::process::Variant;
use crate::runtime::RuntimeTables;
use chimera_emu::Memory;
use chimera_obj::Binary;
use chimera_rewrite::{
    run_cached, run_incremental, DirtySpan, RewriteCache, RewriteEngine, RewriteError,
};
use chimera_trace::Tracer;

/// Owns one variant's rewrite engine, input binary and per-unit cache,
/// and rebuilds the variant incrementally when the runtime memory image
/// reports code mutations.
pub struct VariantRefresher {
    engine: Box<dyn RewriteEngine>,
    input: Binary,
    workers: usize,
    cache: RewriteCache,
    /// Generation watermark: dirty spans at or below it were already
    /// consumed by a previous refresh (or predate the variant).
    watermark: u64,
}

impl VariantRefresher {
    /// Rewrites `input` from scratch with `engine`, returning the
    /// refresher (cache primed, watermark zero — call
    /// [`Self::mark_clean`] once the image is loaded) and the initial
    /// variant.
    pub fn build(
        engine: Box<dyn RewriteEngine>,
        input: Binary,
        workers: usize,
        tracer: &Tracer,
    ) -> Result<(VariantRefresher, Variant), RewriteError> {
        let (result, cache) = run_cached(engine.as_ref(), &input, workers, tracer)?;
        let refresher = VariantRefresher {
            engine,
            input,
            workers,
            cache,
            watermark: 0,
        };
        Ok((refresher, variant_of(result)))
    }

    /// Advances the watermark past every mutation `mem` has seen so far
    /// — typically called right after loading the variant's image, so
    /// the load-time mappings don't count as invalidations.
    pub fn mark_clean(&mut self, mem: &Memory) {
        self.watermark = mem.generation_watermark();
    }

    /// Units in the cached partition.
    pub fn unit_count(&self) -> usize {
        self.cache.unit_count()
    }

    /// Re-rewrites the variant against the code mutations `mem` reports
    /// past the watermark. Returns `Ok(None)` when nothing was mutated
    /// (no work done); otherwise the refreshed variant — bit-identical
    /// to a from-scratch rewrite — with only the dirty units redone.
    pub fn refresh(
        &mut self,
        mem: &Memory,
        tracer: &Tracer,
    ) -> Result<Option<Variant>, RewriteError> {
        let dirty = mem.dirty_regions_since(self.watermark);
        if dirty.is_empty() {
            return Ok(None);
        }
        let dirty: Vec<DirtySpan> = dirty
            .iter()
            .map(|d| DirtySpan {
                start: d.start,
                end: d.end,
                generation: d.generation,
            })
            .collect();
        let result = run_incremental(
            self.engine.as_ref(),
            &self.input,
            &mut self.cache,
            &dirty,
            self.workers,
            tracer,
        )?;
        self.watermark = mem.generation_watermark();
        Ok(Some(variant_of(result)))
    }
}

fn variant_of(result: chimera_rewrite::EngineResult) -> Variant {
    Variant {
        binary: result.rewritten.binary,
        tables: RuntimeTables {
            fht: Some(result.rewritten.fht),
            regen: result.regen,
        },
    }
}
