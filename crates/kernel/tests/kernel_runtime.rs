//! Integration tests for the kernel runtime: passive fault handling,
//! MMView migration, signal compatibility, and lazy rewriting.

use chimera_isa::{Ext, ExtSet, XReg};
use chimera_kernel::{KernelRunner, Process, RunOutcome, RuntimeTables, Variant};
use chimera_obj::{assemble, AsmOptions};
use chimera_rewrite::{chbp_rewrite, Mode, RewriteOptions};

const VEC_PROG: &str = "
    .data
    a: .dword 2
       .dword 3
       .dword 4
       .dword 5
    .text
    _start:
        li t0, 4
        vsetvli t1, t0, e64, m1, ta, ma
        la a0, a
        vle64.v v1, (a0)
        vmv.v.i v2, 0
        vredsum.vs v3, v1, v2
        vmv.x.s a0, v3
        li a7, 93
        ecall
";

fn chbp_variant(src: &str) -> Variant {
    let bin = assemble(src, AsmOptions::default()).unwrap();
    let rw = chbp_rewrite(&bin, ExtSet::RV64GC, RewriteOptions::default()).unwrap();
    Variant {
        binary: rw.binary,
        tables: RuntimeTables {
            fht: Some(rw.fht),
            regen: None,
        },
    }
}

#[test]
fn kernel_runs_downgraded_binary_with_zero_fault_handling() {
    let variant = chbp_variant(VEC_PROG);
    let process = Process::new(vec![variant]);
    let (mut cpu, mut mem, view) = process.load(ExtSet::RV64GC).unwrap();
    let mut k = KernelRunner::new(view.tables.clone());
    let outcome = k.run(&mut cpu, &mut mem, 1_000_000);
    assert_eq!(outcome, RunOutcome::Exited(14));
    // Assertion 2: normal executions trigger no fault handling at all.
    assert_eq!(k.counters.total(), 0);
}

/// Runs the *original* binary with pc forced to `start`: the reference
/// behaviour an erroneous jump must reproduce after rewriting (Claim 2 is
/// semantic equivalence, not a fixed result).
fn original_outcome(src: &str, start: u64) -> i64 {
    let bin = assemble(src, AsmOptions::default()).unwrap();
    let (mut cpu, mut mem) = chimera_emu::boot(&bin, ExtSet::RV64GCV);
    cpu.hart.pc = start;
    chimera_emu::run_cpu(&mut cpu, &mut mem, 1_000_000)
        .expect("original runs")
        .exit_code
}

#[test]
fn erroneous_jump_is_recovered_passively() {
    let variant = chbp_variant(VEC_PROG);
    let fht = variant.tables.fht.clone().unwrap();
    let process = Process::new(vec![variant]);
    let (mut cpu, mut mem, view) = process.load(ExtSet::RV64GC).unwrap();
    let mut k = KernelRunner::new(view.tables.clone());

    // Force an erroneous jump onto an overwritten neighbour and let the
    // kernel recover: execution continues with the original semantics of
    // a jump to that address (Claim 2).
    let (&fault_addr, _) = fht.redirects.iter().next().expect("redirects exist");
    let expected = original_outcome(VEC_PROG, fault_addr);
    cpu.hart.pc = fault_addr;
    let outcome = k.run(&mut cpu, &mut mem, 1_000_000);
    assert_eq!(outcome, RunOutcome::Exited(expected));
    assert_eq!(k.counters.smile_faults, 1);
}

#[test]
fn every_redirect_target_recovers() {
    // Exhaustive Claim 2 check: for EVERY fault-handling-table entry, an
    // erroneous jump onto the overwritten instruction reproduces the
    // original binary's behaviour for a jump to that address.
    let variant = chbp_variant(VEC_PROG);
    let fht = variant.tables.fht.clone().unwrap();
    let process = Process::new(vec![variant]);
    for (&fault_addr, _) in fht.redirects.iter() {
        let expected = original_outcome(VEC_PROG, fault_addr);
        let (mut cpu, mut mem, view) = process.load(ExtSet::RV64GC).unwrap();
        let mut k = KernelRunner::new(view.tables.clone());
        cpu.hart.pc = fault_addr;
        let outcome = k.run(&mut cpu, &mut mem, 1_000_000);
        assert_eq!(
            outcome,
            RunOutcome::Exited(expected),
            "erroneous jump to {fault_addr:#x} must recover"
        );
        assert!(k.counters.smile_faults >= 1);
    }
}

#[test]
fn signal_inside_trampoline_sees_correct_gp() {
    let variant = chbp_variant(VEC_PROG);
    let fht = variant.tables.fht.clone().unwrap();
    let abi_gp = fht.abi_gp;
    let tramp = *fht.trampolines.iter().next().unwrap();
    let process = Process::new(vec![variant]);
    let (mut cpu, _mem, view) = process.load(ExtSet::RV64GC).unwrap();
    let mut k = KernelRunner::new(view.tables.clone());

    // Park mid-trampoline with gp clobbered (as if the auipc executed).
    cpu.hart.pc = tramp + 4;
    cpu.hart.set_x(XReg::GP, 0x9999_0000);
    k.deliver_signal(&mut cpu, 0x4444_0000);
    // Figure 10: the handler observes the correct (ABI) gp...
    assert_eq!(cpu.hart.gp(), abi_gp);
    assert_eq!(cpu.hart.get_x(XReg::RA), chimera_kernel::SIGRETURN_ADDR);
    assert_eq!(k.counters.signals_gp_restored, 1);

    // ...and outside a trampoline, gp passes through untouched.
    let (mut cpu2, _mem2, view2) = process.load(ExtSet::RV64GC).unwrap();
    let mut k2 = KernelRunner::new(view2.tables.clone());
    cpu2.hart.set_x(XReg::GP, abi_gp);
    k2.deliver_signal(&mut cpu2, 0x4444_0000);
    assert_eq!(k2.counters.signals_gp_restored, 0);
}

#[test]
fn sigreturn_restores_interrupted_context_and_program_completes() {
    // Full Figure-10 scenario: a signal lands mid-trampoline (between the
    // auipc and the jalr), the handler observes the ABI gp and records it,
    // sigreturn restores the in-flight gp, and the program completes with
    // the correct result.
    let src_with_handler = "
        .data
        a: .dword 2
           .dword 3
           .dword 4
           .dword 5
        seen_gp: .dword 0
        .text
        _start:
            li t0, 4
            vsetvli t1, t0, e64, m1, ta, ma
            la a0, a
            vle64.v v1, (a0)
            vmv.v.i v2, 0
            vredsum.vs v3, v1, v2
            vmv.x.s a0, v3
            li a7, 93
            ecall
        handler:
            la t6, seen_gp
            sd gp, 0(t6)
            ret
    ";
    let bin = assemble(src_with_handler, AsmOptions::default()).unwrap();
    let rw = chbp_rewrite(&bin, ExtSet::RV64GC, RewriteOptions::default()).unwrap();
    let abi_gp = rw.fht.abi_gp;
    let tramp = *rw.fht.trampolines.iter().next().unwrap();
    // Locate the handler (the `la t6, seen_gp` auipc).
    let d = chimera_analysis::disassemble(&rw.binary);
    let handler = d
        .iter()
        .find(|di| matches!(di.inst, chimera_isa::Inst::Auipc { rd: XReg::T6, .. }))
        .expect("handler present")
        .addr;
    let data_addr = rw.binary.section(".data").unwrap().addr;
    let variant = Variant {
        binary: rw.binary,
        tables: RuntimeTables {
            fht: Some(rw.fht),
            regen: None,
        },
    };
    let process = Process::new(vec![variant]);
    let (mut cpu, mut mem, view) = process.load(ExtSet::RV64GC).unwrap();
    let mut k = KernelRunner::new(view.tables.clone());

    // Execute naturally up to the point *between* the trampoline's auipc
    // and jalr: gp now holds the in-flight target, registers are live.
    while cpu.hart.pc != tramp + 4 {
        cpu.step(&mut mem).expect("pre-signal execution is normal");
    }
    let inflight_gp = cpu.hart.gp();
    assert_ne!(inflight_gp, abi_gp, "auipc must have clobbered gp");

    k.deliver_signal(&mut cpu, handler);
    assert_eq!(cpu.hart.gp(), abi_gp, "handler sees the ABI gp");

    // Run to completion: handler -> sigreturn -> trampoline resumes with
    // the in-flight gp -> program finishes normally.
    let outcome = k.run(&mut cpu, &mut mem, 1_000_000);
    assert_eq!(outcome, RunOutcome::Exited(14));
    // The handler recorded the gp it observed into `seen_gp` (registers
    // are restored by sigreturn, so memory is the only channel).
    let seen = mem.read_u64(data_addr + 32).unwrap();
    assert_eq!(seen, abi_gp, "the gp value the handler recorded");
}

#[test]
fn untranslated_source_requests_migration() {
    // lmul=8 has no downgrade template: the site stays unpatched and the
    // kernel requests migration when it executes (FAM fallback).
    let src = "
        _start:
            li t0, 4
            vsetvli t1, t0, e64, m8, ta, ma
            li a0, 1
            li a7, 93
            ecall
    ";
    let bin = assemble(src, AsmOptions::default()).unwrap();
    let rw = chbp_rewrite(&bin, ExtSet::RV64GC, RewriteOptions::default()).unwrap();
    assert!(!rw.fht.untranslated.is_empty());
    let variant = Variant {
        binary: rw.binary,
        tables: RuntimeTables {
            fht: Some(rw.fht),
            regen: None,
        },
    };
    let process = Process::new(vec![variant]);
    let (mut cpu, mut mem, view) = process.load(ExtSet::RV64GC).unwrap();
    let mut k = KernelRunner::new(view.tables.clone());
    match k.run(&mut cpu, &mut mem, 10_000) {
        RunOutcome::NeedsMigration { pc } => {
            let fht = process.views[0].tables.fht.as_ref().unwrap();
            assert!(fht.untranslated.contains(&pc));
        }
        other => panic!("expected migration request, got {other:?}"),
    }
}

#[test]
fn mmview_migration_mid_task() {
    // Run the first chunk on an extension core with the native binary,
    // migrate, and finish on a base core with the downgraded view. Vector
    // state carries over through the spill section.
    let src = "
        .data
        a: .dword 100
           .dword 200
           .dword 300
           .dword 400
        .text
        _start:
            li t0, 4
            vsetvli t1, t0, e64, m1, ta, ma
            la a0, a
            vle64.v v1, (a0)
            vmv.v.i v2, 0
            vredsum.vs v3, v1, v2
            vmv.x.s a0, v3
            li a7, 93
            ecall
    ";
    let bin = assemble(src, AsmOptions::default()).unwrap();
    let rw = chbp_rewrite(&bin, ExtSet::RV64GC, RewriteOptions::default()).unwrap();
    let spill = rw.fht.spill_base;
    let process = Process::new(vec![
        Variant::native(bin.clone()),
        Variant {
            binary: rw.binary,
            tables: RuntimeTables {
                fht: Some(rw.fht),
                regen: None,
            },
        },
    ]);

    // Phase 1: native on the extension core, stop after the vle64.
    let (mut cpu, mut mem, _view) = process.load(ExtSet::RV64GCV).unwrap();
    for _ in 0..64 {
        if cpu.stats.vector_insts == 2 {
            break;
        }
        cpu.step(&mut mem).unwrap();
    }
    assert_eq!(cpu.stats.vector_insts, 2, "vsetvli + vle64 executed");

    // Migrate: switch views first (mapping the spill section), then sync
    // the architectural vector state into it.
    assert!(Process::migration_safe(&process.views[0], cpu.hart.pc));
    assert!(process.switch_view(&mut mem, &mut cpu, ExtSet::RV64GC));
    chimera_kernel::sync_vectors_to_spill(&cpu, &mut mem, spill);

    // Phase 2: kernel-supervised run on the base core.
    let view = process.view_for(ExtSet::RV64GC).unwrap();
    let mut k = KernelRunner::new(view.tables.clone());
    let outcome = k.run(&mut cpu, &mut mem, 1_000_000);
    assert_eq!(outcome, RunOutcome::Exited(1000));
}

#[test]
fn lazy_rewriting_recovers_hidden_vector_code() {
    // A vector block reachable only through a pointer the scan cannot see
    // (stored doubled, halved at runtime): static rewriting misses it, so
    // the kernel must rewrite lazily on the illegal-instruction fault.
    let src = "
        .data
        a: .dword 7
           .dword 8
           .dword 9
           .dword 10
        coded_ptr: .dword 0
        .text
        _start:
            li t0, 4
            vsetvli t1, t0, e64, m1, ta, ma
            la a0, a
            la t2, coded_ptr
            ld t3, 0(t2)
            srli t3, t3, 1
            jr t3
        hidden:
            vle64.v v1, (a0)
            vmv.v.i v2, 0
            vredsum.vs v3, v1, v2
            vmv.x.s a0, v3
            li a7, 93
            ecall
    ";
    // Locate `hidden` using a reference build with a visible pointer.
    let ref_bin = assemble(
        &src.replace("coded_ptr: .dword 0", "coded_ptr: .dword hidden"),
        AsmOptions::default(),
    )
    .unwrap();
    let dref = chimera_analysis::disassemble(&ref_bin);
    let hidden = dref
        .iter()
        .find(|di| matches!(di.inst, chimera_isa::Inst::VLoad { .. }))
        .unwrap()
        .addr;

    let mut bin = assemble(src, AsmOptions::default()).unwrap();
    let data = bin.section(".data").unwrap().addr;
    bin.write(data + 32, &(hidden * 2).to_le_bytes());

    // Sanity: the coded program runs natively.
    let native = chimera_emu::run_binary(&bin, 100_000).unwrap();
    assert_eq!(native.exit_code, 34);

    // The static pass cannot see `hidden` (not in the redirect scan).
    let rw = chbp_rewrite(&bin, ExtSet::RV64GC, RewriteOptions::default()).unwrap();
    let variant = Variant {
        binary: rw.binary,
        tables: RuntimeTables {
            fht: Some(rw.fht),
            regen: None,
        },
    };
    let process = Process::new(vec![variant]);
    let (mut cpu, mut mem, view) = process.load(ExtSet::RV64GC).unwrap();
    let mut k = KernelRunner::new(view.tables.clone());
    let outcome = k.run(&mut cpu, &mut mem, 1_000_000);
    assert_eq!(outcome, RunOutcome::Exited(34));
    assert!(k.counters.lazy_rewrites > 0, "lazy rewriting must trigger");
}

/// Lazy rewriting severs only the *bumped* regions' cached blocks: every
/// `poke_code` the kernel issues (the ebreak site patch in `.text`, the
/// emitted block in the `[lazy]` slack) invalidates blocks of those two
/// regions only. A hot loop living in a third executable region keeps its
/// cached blocks — and its chain links — across repeated lazy rewrites,
/// so invalidations and rebuilds stay proportional to the number of
/// rewrites, never to the hot loop's re-entry count. (These per-CPU cache
/// stats are exactly what `Measurement::cache` publishes.)
#[test]
fn lazy_rewrite_severs_only_bumped_region() {
    const ROUNDS: usize = 6;
    const EXTRA_BASE: u64 = 0x100_0000;

    // Trigger sites: each block holds one vector instruction the static
    // scan cannot reach (entered only through doubled pointers in `vtab`),
    // so each first execution forces one lazy rewrite (= two `poke_code`s).
    let mut src = String::from(
        "
        .data
        vtab:
    ",
    );
    for i in 0..ROUNDS {
        src.push_str(&format!("        .dword trig{i}\n"));
    }
    src.push_str(&format!(
        "
        .text
        _start:
            li t0, 4
            vsetvli t1, t0, e64, m1, ta, ma
            la s3, vtab
            li s2, {EXTRA_BASE}
            jr s2
        "
    ));
    for i in 0..ROUNDS {
        src.push_str(&format!(
            "
        trig{i}:
            vmv.v.i v2, {i}
            jr s4
        "
        ));
    }
    let mut bin = assemble(&src, AsmOptions::default()).unwrap();
    // Double the trigger pointers in place so the static scan sees garbage
    // addresses and leaves every trigger un-rewritten (the lazy path).
    let data = bin.section(".data").unwrap().clone();
    for i in 0..ROUNDS {
        let off = i * 8;
        let ptr = u64::from_le_bytes(data.data[off..off + 8].try_into().unwrap());
        bin.write(data.addr + off as u64, &(ptr * 2).to_le_bytes());
    }

    // The hot region: a separate position-independent blob mapped at
    // EXTRA_BASE, never poked by anyone. It runs a tight inner loop, then
    // fires the next trigger, ROUNDS times.
    let extra_src = "
        _start:
            li s5, 6
            li s6, 0
        round:
            li t0, 50
        inner:
            addi a1, a1, 3
            xor a1, a1, t0
            addi t0, t0, -1
            bnez t0, inner
            slli t1, s6, 3
            add t1, t1, s3
            ld t2, 0(t1)
            srli t2, t2, 1
            la s4, back
            jr t2
        back:
            addi s6, s6, 1
            addi s5, s5, -1
            bnez s5, round
            li a0, 77
            li a7, 93
            ecall
    ";
    let extra_bin = assemble(extra_src, AsmOptions::default()).unwrap();
    let extra_bytes = extra_bin.section(".text").unwrap().data.clone();

    let rw = chbp_rewrite(&bin, ExtSet::RV64GC, RewriteOptions::default()).unwrap();
    let process = Process::new(vec![Variant {
        binary: rw.binary,
        tables: RuntimeTables {
            fht: Some(rw.fht),
            regen: None,
        },
    }]);
    let (mut cpu, mut mem, view) = process.load(ExtSet::RV64GC).unwrap();
    mem.map_bytes(EXTRA_BASE, extra_bytes, chimera_obj::Perms::RX, ".text.hot");
    let mut k = KernelRunner::new(view.tables.clone());
    let outcome = k.run(&mut cpu, &mut mem, 1_000_000);
    assert_eq!(outcome, RunOutcome::Exited(77));
    assert_eq!(
        k.counters.lazy_rewrites, ROUNDS as u64,
        "each trigger must lazily rewrite exactly once"
    );

    let s = cpu.cache.stats;
    // The hot loop body re-enters ~50 times per round; those re-entries
    // ride chain links in the untouched hot region.
    assert!(
        s.chained >= 200,
        "hot-region chains must survive the lazy rewrites: {s:?}"
    );
    // Invalidations track the bumped regions only: ~one stale re-lookup
    // per rewrite (the patched trigger site). A validation scheme that
    // flushed on the *global* generation would additionally invalidate
    // the hot region's blocks every round and blow this bound.
    assert!(
        s.invalidations <= 2 * ROUNDS as u64,
        "invalidations must scale with rewrites, not hot re-entries: {s:?}"
    );
    assert!(
        s.hits + s.chained > 5 * s.misses,
        "the hot region must stay cache-resident throughout: {s:?}"
    );
}

#[test]
fn empty_patch_mode_via_kernel() {
    let bin = assemble(VEC_PROG, AsmOptions::default()).unwrap();
    let rw = chbp_rewrite(
        &bin,
        ExtSet::RV64GCV,
        RewriteOptions {
            mode: Mode::EmptyPatch(Ext::V),
            ..Default::default()
        },
    )
    .unwrap();
    let variant = Variant {
        binary: rw.binary,
        tables: RuntimeTables {
            fht: Some(rw.fht),
            regen: None,
        },
    };
    let process = Process::new(vec![variant]);
    let (mut cpu, mut mem, view) = process.load(ExtSet::RV64GCV).unwrap();
    let mut k = KernelRunner::new(view.tables.clone());
    assert_eq!(k.run(&mut cpu, &mut mem, 1_000_000), RunOutcome::Exited(14));
}

/// The kernel's lazy-rewrite pokes flow through the same generation /
/// dirty-region channel that incremental re-rewriting consumes: every
/// patch severs cached blocks (cache stats), lands in
/// `dirty_regions_since`, and is correctly classified by the refresher —
/// lazy patches mutate the *runtime image*, not the input binary, so a
/// refresh reuses every unit and still reproduces the full rewrite bit
/// for bit; an SMC poke on a patch site, by contrast, invalidates its
/// unit.
#[test]
fn lazy_rewrite_feeds_incremental_dirty_channel() {
    use chimera_kernel::{TraceEvent, Tracer, VariantRefresher};
    use chimera_rewrite::{run, ChbpEngine};

    let bin = assemble(VEC_PROG, AsmOptions::default()).unwrap();
    let opts = RewriteOptions {
        mode: Mode::EmptyPatch(Ext::V),
        ..Default::default()
    };
    let engine = ChbpEngine {
        target: ExtSet::RV64GC,
        opts,
    };
    let full = run(&engine, &bin, 2, &Tracer::disabled()).unwrap();
    let (mut refresher, variant) =
        VariantRefresher::build(Box::new(engine), bin.clone(), 2, &Tracer::disabled()).unwrap();
    assert_eq!(variant.binary, full.rewritten.binary);
    let fht = variant.tables.fht.clone().unwrap();

    let process = Process::new(vec![variant]);
    let (mut cpu, mut mem, view) = process.load(ExtSet::RV64GC).unwrap();
    let entry = cpu.hart.pc;
    refresher.mark_clean(&mem);
    assert!(
        refresher
            .refresh(&mem, &Tracer::disabled())
            .unwrap()
            .is_none(),
        "a clean image needs no refresh"
    );
    let watermark = mem.generation_watermark();

    // EmptyPatch keeps the vector instructions verbatim in the target
    // section: each one faults on RV64GC and is lazily rewritten.
    let mut k = KernelRunner::new(view.tables.clone());
    assert_eq!(k.run(&mut cpu, &mut mem, 1_000_000), RunOutcome::Exited(14));
    assert!(k.counters.lazy_rewrites >= 4, "{:?}", k.counters);

    // The pokes bumped the patched regions' generations: a second pass
    // over the same code must drop every block decoded before the last
    // patch (invalidations are counted at the stale lookup), and the
    // re-run still behaves identically — now with zero new rewrites.
    let first_run = cpu.cache.stats;
    cpu.hart.pc = entry;
    assert_eq!(k.run(&mut cpu, &mut mem, 1_000_000), RunOutcome::Exited(14));
    assert!(
        cpu.cache.stats.invalidations > first_run.invalidations,
        "lazy pokes must sever cached blocks: {:?}",
        cpu.cache.stats
    );
    assert!(k.counters.lazy_rewrites >= 4, "{:?}", k.counters);

    // Every lazy patch is visible in the dirty channel, inside the
    // patched target section (or the [lazy] slack after it).
    let dirty = mem.dirty_regions_since(watermark);
    assert!(!dirty.is_empty(), "lazy rewrites must report dirty spans");
    assert!(
        dirty.iter().all(|d| d.start >= fht.target_range.0),
        "lazy patches live past the target base: {dirty:?}"
    );

    // The refresher consumes the report: target-section patches overlap
    // no unit's *input* source range, so the refreshed variant reuses
    // every unit — and is still bit-identical to the full rewrite.
    let tracer = Tracer::enabled();
    let refreshed = refresher
        .refresh(&mem, &tracer)
        .unwrap()
        .expect("a dirty image refreshes");
    assert_eq!(refreshed.binary, full.rewritten.binary);
    let redone: Vec<u64> = tracer
        .drain()
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::RewriteIncremental { units_redone, .. } => Some(units_redone),
            _ => None,
        })
        .collect();
    assert_eq!(redone, vec![0], "lazy patches invalidate no input units");

    // An SMC poke on a patch site, through the very same channel, does
    // invalidate its unit — and the output still matches bit for bit.
    let site = *fht.trampolines.iter().next().expect("sites exist");
    mem.poke_code(site, &[0x13, 0x00, 0x00, 0x00]).unwrap();
    let tracer = Tracer::enabled();
    let refreshed = refresher
        .refresh(&mem, &tracer)
        .unwrap()
        .expect("the poke dirties the image");
    assert_eq!(refreshed.binary, full.rewritten.binary);
    let m = tracer.metrics().unwrap();
    assert!(
        m.counter_value("rewrite.units_redone").unwrap_or(0) >= 1,
        "an SMC poke on a site must redo its unit"
    );
}
