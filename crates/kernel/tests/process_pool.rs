//! Determinism of pooled process instantiation.
//!
//! The pooling fast path must be *transparent*: a many-hart run whose
//! guests boot from pooled copy-on-write slots — fresh, recycled, or
//! checked out warm from the cross-process variant cache — produces a
//! [`ManyHartResult`] bit-identical to every other combination, at every
//! worker count. Slot state is allowed to change spawn *latency*, never
//! results.

use chimera_isa::ExtSet;
use chimera_kernel::{
    ManyHartConfig, ManyHartKernel, ManyHartResult, ProcessPool, RuntimeTables, Variant,
};
use chimera_obj::{assemble, AsmOptions, DEFAULT_STACK_SIZE};
use chimera_rewrite::{chbp_rewrite, ChbpEngine, RewriteOptions, SharedVariantCache};
use chimera_trace::Tracer;

const N: usize = 64;
const WORKERS: [usize; 4] = [1, 2, 4, 8];

/// A guest that dirties its stack and `.data`, runs vector code (so the
/// CHBP rewrite is non-trivial), and exits with a hart-dependent code.
const GUEST: &str = "
    .data
    buf: .dword 2
         .dword 3
         .dword 4
         .dword 5
    acc: .dword 0
    .text
    _start:
        li a7, 0x7a00       # HART_ID
        ecall
        mv s0, a0
        addi sp, sp, -32    # dirty the pooled stack
        sd s0, 0(sp)
        sd s0, 8(sp)
        li t0, 4
        vsetvli t1, t0, e64, m1, ta, ma
        la a0, buf
        vle64.v v1, (a0)
        vmv.v.i v2, 0
        vredsum.vs v3, v1, v2
        vmv.x.s t2, v3
        la a1, acc
        sd t2, 0(a1)        # dirty .data
        ld t3, 0(sp)
        add a0, t2, t3      # 14 + hart id
        addi sp, sp, 32
        li a7, 93
        ecall
";

fn chbp_variant() -> Variant {
    let bin = assemble(GUEST, AsmOptions::default()).unwrap();
    let rw = chbp_rewrite(&bin, ExtSet::RV64GC, RewriteOptions::default()).unwrap();
    Variant {
        binary: rw.binary,
        tables: RuntimeTables {
            fht: Some(rw.fht),
            regen: None,
        },
    }
}

/// Spawns `N` pooled guests, runs them, recycles every slot back, and
/// returns the result plus the kernel tracer's counter snapshot.
fn run_round(
    pool: &mut ProcessPool,
    key: u64,
    workers: usize,
) -> (ManyHartResult, Vec<(String, u64)>) {
    let tracer = Tracer::enabled();
    let mut k = ManyHartKernel::with_tracer(
        ManyHartConfig {
            workers,
            ..Default::default()
        },
        tracer.clone(),
    );
    for _ in 0..N {
        k.add_pooled_hart(pool, key, ExtSet::RV64GC, ExtSet::RV64GC)
            .expect("key is registered");
    }
    let r = k.run();
    assert_eq!(r.exited(), N, "all guests exit: {:?}", r.first_failure());
    for (i, h) in r.harts.iter().enumerate() {
        assert_eq!(h.exit, Some(14 + i as i64), "hart-dependent exit code");
    }
    let recycled = k.recycle_into(pool);
    assert_eq!(recycled, N, "every slot recycles (no layout divergence)");
    let counters = tracer.metrics().expect("enabled").counter_snapshot();
    (r, counters)
}

#[test]
fn pooled_runs_are_bit_identical_across_slot_states_and_workers() {
    let variant = chbp_variant();

    // Slot state 1: fresh copy-on-write instantiations (new pool per run).
    let mut fresh: Vec<(ManyHartResult, Vec<(String, u64)>)> = Vec::new();
    for &w in &WORKERS {
        let mut pool = ProcessPool::new();
        let key = pool.register(variant.clone());
        fresh.push(run_round(&mut pool, key, w));
        let stats = pool.stats(key).unwrap();
        assert_eq!(stats.instantiated, N as u64);
        assert_eq!(stats.recycled, N as u64);
        assert_eq!(stats.discarded, 0);
    }

    // Slot state 2: recycled slots — a warm-up round dirties and returns
    // every slot, then the measured round reuses them all.
    let mut recycled: Vec<(ManyHartResult, Vec<(String, u64)>)> = Vec::new();
    for &w in &WORKERS {
        let mut pool = ProcessPool::new();
        let key = pool.register(variant.clone());
        let _ = run_round(&mut pool, key, w);
        assert_eq!(pool.free_slots(key), N, "warm-up filled the free list");
        recycled.push(run_round(&mut pool, key, w));
        let stats = pool.stats(key).unwrap();
        assert_eq!(stats.reused, N as u64, "second round ran on recycled slots");
        assert_eq!(stats.discarded, 0);
    }

    // Slot state 3: the variant itself comes warm from the shared
    // cross-process cache (a checkout hit), registered into a fresh pool.
    let base = assemble(GUEST, AsmOptions::default()).unwrap();
    let engine = ChbpEngine {
        target: ExtSet::RV64GC,
        opts: RewriteOptions::default(),
    };
    let shared = SharedVariantCache::new();
    let cold = shared
        .checkout(&engine, &base, 0, 2, &Tracer::disabled())
        .unwrap();
    assert!(!cold.shared_hit, "first checkout pays the rewrite");
    let warm_handle = shared
        .checkout(&engine, &base, 0, 2, &Tracer::disabled())
        .unwrap();
    assert!(warm_handle.shared_hit, "second checkout is served shared");
    let warm_variant = Variant {
        binary: warm_handle.rewritten().binary.clone(),
        tables: RuntimeTables {
            fht: Some(warm_handle.rewritten().fht.clone()),
            regen: warm_handle.regen().cloned(),
        },
    };
    assert_eq!(
        warm_variant.binary, variant.binary,
        "engine checkout and direct rewrite are bit-identical"
    );
    let mut warm: Vec<(ManyHartResult, Vec<(String, u64)>)> = Vec::new();
    for &w in &WORKERS {
        let mut pool = ProcessPool::with_config(DEFAULT_STACK_SIZE, Tracer::disabled());
        let key = pool.register(warm_variant.clone());
        warm.push(run_round(&mut pool, key, w));
    }

    // Bit-identity across every (slot state × worker count) combination.
    let baseline = &fresh[0].0;
    for (state, runs) in [("fresh", &fresh), ("recycled", &recycled), ("warm", &warm)] {
        for (w, (r, _)) in WORKERS.iter().zip(runs.iter()) {
            assert_eq!(r, baseline, "{state} slots at workers={w} diverged");
        }
        // Counter snapshots are deterministic across worker counts within
        // one slot state (pool.* counters legitimately differ *between*
        // states, so they are compared per state).
        for (w, (_, counters)) in WORKERS.iter().zip(runs.iter()) {
            assert_eq!(
                counters, &runs[0].1,
                "{state} counter snapshot at workers={w} diverged"
            );
        }
    }
}

#[test]
fn pooled_and_eager_boots_agree() {
    // The pooled fast path must observe exactly like an eager
    // `Process::load` boot of the same variant.
    let variant = chbp_variant();
    let mut pool = ProcessPool::new();
    let key = pool.register(variant.clone());

    let tracer = Tracer::disabled();
    let mut eager = ManyHartKernel::with_tracer(ManyHartConfig::default(), tracer.clone());
    for _ in 0..4 {
        eager.add_hart(
            &variant.binary,
            ExtSet::RV64GC,
            ExtSet::RV64GC,
            variant.tables.clone(),
        );
    }
    let eager_r = eager.run();

    let mut pooled = ManyHartKernel::with_tracer(ManyHartConfig::default(), tracer);
    for _ in 0..4 {
        pooled
            .add_pooled_hart(&mut pool, key, ExtSet::RV64GC, ExtSet::RV64GC)
            .unwrap();
    }
    let pooled_r = pooled.run();
    assert_eq!(pooled_r, eager_r, "pooling is transparent to results");
}

#[test]
fn unknown_key_spawns_nothing() {
    let mut pool = ProcessPool::new();
    let mut k = ManyHartKernel::new(ManyHartConfig::default());
    assert_eq!(
        k.add_pooled_hart(&mut pool, 0xdead_beef, ExtSet::RV64GC, ExtSet::RV64GC),
        None
    );
    assert_eq!(k.harts(), 0);
}
