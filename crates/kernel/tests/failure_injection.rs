//! Failure injection (DESIGN.md §7): corrupted fault tables, stray traps,
//! and unmapped redirects must produce *clean* errors, never silent
//! mis-execution.

use chimera_isa::ExtSet;
use chimera_kernel::{KernelRunner, Process, RunOutcome, RuntimeTables, Variant};
use chimera_obj::{assemble, AsmOptions};
use chimera_rewrite::{chbp_rewrite, RewriteOptions};

const VEC_PROG: &str = "
    .data
    a: .dword 2
       .dword 3
       .dword 4
       .dword 5
    .text
    _start:
        li t0, 4
        vsetvli t1, t0, e64, m1, ta, ma
        la a0, a
        vle64.v v1, (a0)
        vmv.v.i v2, 0
        vredsum.vs v3, v1, v2
        vmv.x.s a0, v3
        li a7, 93
        ecall
";

fn rewritten() -> (chimera_obj::Binary, chimera_rewrite::Rewritten) {
    let bin = assemble(VEC_PROG, AsmOptions::default()).unwrap();
    let rw = chbp_rewrite(&bin, ExtSet::RV64GC, RewriteOptions::default()).unwrap();
    (bin, rw)
}

#[test]
fn emptied_fault_table_fails_loudly_not_wrongly() {
    let (_, rw) = rewritten();
    let mut fht = rw.fht.clone();
    fht.redirects.clear(); // Corruption: the kernel cannot recover faults.
    let variant = Variant {
        binary: rw.binary,
        tables: RuntimeTables {
            fht: Some(fht),
            regen: None,
        },
    };
    let process = Process::new(vec![variant]);
    let (mut cpu, mut mem, view) = process.load(ExtSet::RV64GC).unwrap();
    let mut k = KernelRunner::new(view.tables.clone());
    // Normal flow still completes (the table is only for erroneous jumps).
    assert_eq!(k.run(&mut cpu, &mut mem, 1_000_000), RunOutcome::Exited(14));

    // An erroneous jump with the table gone: a *fatal* error, not a wrong
    // answer.
    let (mut cpu, mut mem, view) = process.load(ExtSet::RV64GC).unwrap();
    let mut k = KernelRunner::new(view.tables.clone());
    let (&p1, _) = rw.fht.redirects.iter().next().unwrap();
    cpu.hart.pc = p1;
    match k.run(&mut cpu, &mut mem, 1_000_000) {
        RunOutcome::Fatal(_) => {}
        other => panic!("corrupted table must be fatal, got {other:?}"),
    }
}

#[test]
fn redirect_to_garbage_is_contained() {
    let (_, rw) = rewritten();
    let mut fht = rw.fht.clone();
    // Corruption: point every redirect at unmapped memory.
    for (_, v) in fht.redirects.iter_mut() {
        *v = 0xdead_0000;
    }
    let variant = Variant {
        binary: rw.binary,
        tables: RuntimeTables {
            fht: Some(fht),
            regen: None,
        },
    };
    let process = Process::new(vec![variant]);
    let (mut cpu, mut mem, view) = process.load(ExtSet::RV64GC).unwrap();
    let mut k = KernelRunner::new(view.tables.clone());
    let (&p1, _) = rw.fht.redirects.iter().next().unwrap();
    cpu.hart.pc = p1;
    match k.run(&mut cpu, &mut mem, 1_000_000) {
        RunOutcome::Fatal(_) => {}
        other => panic!("garbage redirect must be fatal, got {other:?}"),
    }
}

#[test]
fn stray_breakpoint_is_fatal() {
    // An ebreak the tables know nothing about: fatal, not ignored.
    let bin = assemble(
        "
        _start:
            ebreak
            li a7, 93
            ecall
        ",
        AsmOptions::default(),
    )
    .unwrap();
    let variant = Variant::native(bin);
    let process = Process::new(vec![variant]);
    let (mut cpu, mut mem, view) = process.load(ExtSet::RV64GCV).unwrap();
    let mut k = KernelRunner::new(view.tables.clone());
    match k.run(&mut cpu, &mut mem, 1000) {
        RunOutcome::Fatal(msg) => assert!(msg.contains("breakpoint"), "{msg}"),
        other => panic!("stray ebreak must be fatal, got {other:?}"),
    }
}

#[test]
fn wild_store_is_reported() {
    let bin = assemble(
        "
        _start:
            li t0, 0x9990000
            sd zero, 0(t0)
            li a7, 93
            ecall
        ",
        AsmOptions::default(),
    )
    .unwrap();
    let process = Process::new(vec![Variant::native(bin)]);
    let (mut cpu, mut mem, view) = process.load(ExtSet::RV64GCV).unwrap();
    let mut k = KernelRunner::new(view.tables.clone());
    match k.run(&mut cpu, &mut mem, 1000) {
        RunOutcome::Fatal(msg) => assert!(msg.contains("fault"), "{msg}"),
        other => panic!("wild store must be fatal, got {other:?}"),
    }
}

#[test]
fn fuel_exhaustion_is_distinguishable() {
    let bin = assemble("_start:\nspin:\n    j spin\n", AsmOptions::default()).unwrap();
    let process = Process::new(vec![Variant::native(bin)]);
    let (mut cpu, mut mem, view) = process.load(ExtSet::RV64GCV).unwrap();
    let mut k = KernelRunner::new(view.tables.clone());
    assert_eq!(k.run(&mut cpu, &mut mem, 1000), RunOutcome::OutOfFuel);
}
