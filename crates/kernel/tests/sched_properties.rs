//! Property tests for the work-stealing schedulers over seeded random
//! task mixes.
//!
//! For each seed the suite generates a random machine shape and task mix
//! (plain base tasks, translated extension tasks, and FAM tasks that base
//! cores cannot finish) and checks the scheduling invariants the paper's
//! §6.1 methodology relies on:
//!
//! * every task completes exactly once: per task id,
//!   `scheduled - migrated == 1` in the trace;
//! * a FAM task migrates at most once — after the first migration it is
//!   pinned to the extension pool and base cores never re-steal it;
//! * the trace reconciles exactly with the [`MetricsRegistry`] counters
//!   and with the returned [`SimResult`];
//! * the whole simulation is deterministic: same seed, same result, same
//!   event stream.

use chimera_isa::prng::Prng;
use chimera_kernel::{
    simulate_work_stealing_traced, EventQueue, FiberPool, HartEvent, HartEventKind, Pool,
    SimMachine, SimResult, TaskCost, ThreadedPool, TraceEvent, Tracer,
};
use chimera_trace::TraceRecord;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// A seeded random machine + task mix. Extension cores are kept >= 1 so
/// that pinned FAM work can always make progress.
fn random_scenario(seed: u64) -> (SimMachine, Vec<TaskCost>) {
    let mut rng = Prng::new(seed);
    let machine = SimMachine {
        base_cores: rng.below(4) as usize + 1,
        ext_cores: rng.below(3) as usize + 1,
        migrate_cost: rng.below(500) + 50,
    };
    let n = rng.below(32) as usize + 8;
    let tasks = (0..n)
        .map(|_| {
            let cycles = rng.below(5_000) + 100;
            match rng.below(3) {
                // A plain base task.
                0 => TaskCost {
                    prefers: Pool::Base,
                    on_ext: cycles,
                    on_base: Some(cycles),
                    fam_probe: 0,
                    ext_accelerated: false,
                },
                // A translated extension task (Chimera: base cores can run
                // the rewritten variant, slower).
                1 => TaskCost {
                    prefers: Pool::Ext,
                    on_ext: cycles,
                    on_base: Some(cycles * 2),
                    fam_probe: 0,
                    ext_accelerated: true,
                },
                // FAM: base cores fault and migrate it.
                _ => TaskCost {
                    prefers: Pool::Ext,
                    on_ext: cycles,
                    on_base: None,
                    fam_probe: rng.below(100) + 10,
                    ext_accelerated: true,
                },
            }
        })
        .collect();
    (machine, tasks)
}

struct Observed {
    result: SimResult,
    records: Vec<TraceRecord>,
    scheduled: BTreeMap<u64, usize>,
    migrated: BTreeMap<u64, usize>,
    steals_ok: usize,
    counters: BTreeMap<String, u64>,
}

fn run_traced(machine: SimMachine, tasks: &[TaskCost]) -> Observed {
    let tracer = Tracer::enabled();
    let result = simulate_work_stealing_traced(machine, tasks, &tracer);
    let records = tracer.drain();
    assert_eq!(tracer.dropped(), 0, "the ring must hold the whole run");
    let mut scheduled = BTreeMap::new();
    let mut migrated = BTreeMap::new();
    let mut steals_ok = 0;
    for r in &records {
        match r.event {
            TraceEvent::TaskScheduled { task, .. } => *scheduled.entry(task).or_insert(0) += 1,
            TraceEvent::TaskMigrated { task, .. } => *migrated.entry(task).or_insert(0) += 1,
            TraceEvent::StealAttempt { success, .. } => steals_ok += usize::from(success),
            _ => panic!("unexpected event kind in a scheduler run: {:?}", r.event),
        }
    }
    let counters = tracer
        .metrics()
        .expect("enabled tracer has metrics")
        .counter_snapshot()
        .into_iter()
        .collect();
    Observed {
        result,
        records,
        scheduled,
        migrated,
        steals_ok,
        counters,
    }
}

#[test]
fn every_task_completes_exactly_once_across_seeds() {
    for seed in 0..64u64 {
        let (machine, tasks) = random_scenario(seed);
        let o = run_traced(machine, &tasks);

        for (id, task) in tasks.iter().enumerate() {
            let id = id as u64;
            let s = o.scheduled.get(&id).copied().unwrap_or(0);
            let m = o.migrated.get(&id).copied().unwrap_or(0);
            assert_eq!(
                s - m,
                1,
                "seed {seed}: task {id} must complete exactly once \
                 (scheduled {s}, migrated {m})"
            );
            if task.on_base.is_some() {
                assert_eq!(m, 0, "seed {seed}: only FAM tasks migrate");
            } else {
                assert!(
                    m <= 1,
                    "seed {seed}: FAM task {id} is pinned after its first \
                     migration and must never migrate twice (got {m})"
                );
            }
        }
        // No phantom ids: every traced task is a real input task.
        for &id in o.scheduled.keys().chain(o.migrated.keys()) {
            assert!(
                (id as usize) < tasks.len(),
                "seed {seed}: phantom task {id}"
            );
        }
    }
}

#[test]
fn trace_reconciles_with_counters_and_sim_result() {
    for seed in 0..64u64 {
        let (machine, tasks) = random_scenario(seed);
        let o = run_traced(machine, &tasks);
        let counter = |name: &str| o.counters.get(name).copied().unwrap_or(0);

        let scheduled_total: usize = o.scheduled.values().sum();
        let migrated_total: usize = o.migrated.values().sum();
        assert_eq!(scheduled_total as u64, counter("sched.tasks_scheduled"));
        assert_eq!(migrated_total as u64, counter("sched.migrations"));
        assert_eq!(o.steals_ok as u64, counter("sched.steals"));
        assert_eq!(migrated_total, o.result.migrations);
        assert_eq!(scheduled_total, tasks.len() + o.result.migrations);

        // Sanity on the aggregate result: the makespan cannot beat perfect
        // parallelism over the accumulated busy time.
        let cores = (machine.base_cores + machine.ext_cores) as u64;
        assert!(o.result.latency * cores >= o.result.cpu_time, "seed {seed}");
    }
}

#[test]
fn same_seed_same_schedule_same_trace() {
    for seed in [0u64, 1, 7, 42, 0xdead_beef] {
        let (machine, tasks) = random_scenario(seed);
        let a = run_traced(machine, &tasks);
        let b = run_traced(machine, &tasks);
        assert_eq!(a.result, b.result, "seed {seed}: SimResult must repeat");
        assert_eq!(
            a.records, b.records,
            "seed {seed}: the full event stream must repeat bit-for-bit"
        );
    }
}

/// A seeded random batch of hart events over a small logical-time window.
fn random_events(seed: u64) -> Vec<HartEvent> {
    let mut rng = Prng::new(seed);
    let n = rng.below(64) as usize + 16;
    (0..n)
        .map(|_| {
            let at = rng.below(10) + 1;
            let hart = rng.below(8);
            let kind = match rng.below(4) {
                0 => HartEventKind::Timer,
                1 => HartEventKind::Ipi { from: rng.below(8) },
                2 => HartEventKind::Wakeup,
                _ => HartEventKind::Migrate,
            };
            HartEvent { at, hart, kind }
        })
        .collect()
}

/// Drains a queue slot by slot, returning the full delivery schedule.
fn delivery_schedule(mut q: EventQueue) -> Vec<(u64, HartEvent)> {
    let mut out = Vec::new();
    let mut now = 0;
    while let Some(at) = q.next_at() {
        now = now.max(at);
        for ev in q.pop_due(now) {
            out.push((now, ev));
        }
    }
    out
}

#[test]
fn event_delivery_order_is_a_pure_function_of_the_events() {
    for seed in 0..64u64 {
        let events = random_events(seed);

        // Baseline: insertion in generation order.
        let mut q = EventQueue::new();
        for &ev in &events {
            q.push(ev);
        }
        let baseline = delivery_schedule(q);
        assert_eq!(baseline.len(), events.len(), "seed {seed}: conservation");

        // Delivery order is (at, hart, kind): logical time first, then
        // hart id, then the fixed kind rank — never insertion order.
        for w in baseline.windows(2) {
            let (a, b) = (w[0].1, w[1].1);
            assert!(
                (a.at, a.hart, a.kind) <= (b.at, b.hart, b.kind),
                "seed {seed}: out of order: {a:?} then {b:?}"
            );
        }

        // Any permutation of the insertions delivers identically. Reversed
        // and seeded-shuffled insertion orders stand in for "whatever
        // real-time order M host workers produced the events in".
        let mut reversed = EventQueue::new();
        for &ev in events.iter().rev() {
            reversed.push(ev);
        }
        assert_eq!(delivery_schedule(reversed), baseline, "seed {seed}");

        let mut shuffled_events = events.clone();
        let mut rng = Prng::new(seed ^ 0x0ddc_0ffe);
        for i in (1..shuffled_events.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            shuffled_events.swap(i, j);
        }
        let mut shuffled = EventQueue::new();
        for &ev in &shuffled_events {
            shuffled.push(ev);
        }
        assert_eq!(delivery_schedule(shuffled), baseline, "seed {seed}");
    }
}

#[test]
fn event_schedule_is_stable_across_fiber_pool_worker_counts() {
    // The many-hart loop's merge step: N producer slots each hold an
    // outbox; a FiberPool round runs the producers, then the coordinator
    // merges outboxes in hart-id order. The resulting queue — and hence
    // the delivery schedule — must be identical at every worker count.
    for seed in 0..16u64 {
        let events = random_events(seed);
        let schedule_with = |workers: usize| {
            let slots: Vec<Mutex<Vec<HartEvent>>> =
                (0..8).map(|_| Mutex::new(Vec::new())).collect();
            let runnable: Vec<usize> = (0..8).collect();
            let pool = FiberPool::new(workers);
            assert_eq!(pool.workers(), workers.max(1));
            pool.run_round(&slots, &runnable, |i, outbox| {
                // Slot i "produces" the events whose *sender* hashes to
                // it — any disjoint partition works; what matters is that
                // production order across slots is a race.
                for (k, &ev) in events.iter().enumerate() {
                    if k % 8 == i {
                        outbox.push(ev);
                    }
                }
            });
            let mut q = EventQueue::new();
            for slot in &slots {
                for &ev in slot.lock().unwrap().iter() {
                    q.push(ev);
                }
            }
            delivery_schedule(q)
        };
        let baseline = schedule_with(1);
        assert_eq!(baseline.len(), events.len(), "seed {seed}: conservation");
        for workers in [2, 4, 8] {
            assert_eq!(
                schedule_with(workers),
                baseline,
                "seed {seed}, workers {workers}"
            );
        }
    }
}

#[test]
fn threaded_pool_conserves_tasks_under_tracing() {
    for seed in 0..8u64 {
        let mut rng = Prng::new(seed ^ 0x5eed);
        let n = rng.below(48) as usize + 16;
        let tracer = Tracer::enabled();
        let pool = ThreadedPool::with_tracer(2, 2, tracer.clone());
        for i in 0..n {
            let prefers = if rng.next_bool() {
                Pool::Base
            } else {
                Pool::Ext
            };
            pool.spawn(prefers, move |_p| i as u64);
        }
        let results = pool.run();
        assert_eq!(results.len(), n, "seed {seed}: every job ran");

        // Completion indices are a permutation of 0..n — nothing ran twice,
        // nothing was lost.
        let mut seen = vec![false; n];
        for &(idx, _cycles) in &results {
            assert!(!seen[idx], "seed {seed}: job index {idx} completed twice");
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&s| s), "seed {seed}: job indices missing");

        let records = tracer.drain();
        assert_eq!(tracer.dropped(), 0);
        let ran = records
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::TaskScheduled { .. }))
            .count();
        assert_eq!(ran, n, "seed {seed}: one TaskScheduled per completed job");
        let metrics = tracer.metrics().expect("enabled tracer has metrics");
        assert_eq!(metrics.counter_value("pool.tasks_run"), Some(n as u64));
    }
}
