//! Seeded encode/decode roundtrip suite (replaces the former proptest
//! strategies with the workspace's dependency-free [`Prng`]).
//!
//! The rewriter patches binaries at the byte level, so the system-wide
//! contract is *exactness*: `decode(encode(i)) == i` for every well-formed
//! instruction, and every reserved encoding is rejected rather than
//! misdecoded. Each constructor family below is exercised with ~10k random
//! operand combinations; instructions that also have a compressed (RVC)
//! form roundtrip through their 16-bit encoding in the same pass.

use chimera_isa::prng::Prng;
use chimera_isa::{
    decode, encode, encode_compressed, BranchKind, DecodeError, Decoded, Eew, FCmpKind, FMaKind,
    FOpKind, FReg, FpWidth, Inst, IntWidth, LoadKind, OpImmKind, OpKind, StoreKind, UnaryKind,
    VArithOp, VReg, VSrc, VType, XReg,
};

const CASES: usize = 10_000;

fn xreg(r: &mut Prng) -> XReg {
    XReg::of(r.below(32) as u8)
}

fn freg(r: &mut Prng) -> FReg {
    FReg::of(r.below(32) as u8)
}

fn vreg(r: &mut Prng) -> VReg {
    VReg::of(r.below(32) as u8)
}

fn i12(r: &mut Prng) -> i32 {
    r.range_i64(-2048, 2048) as i32
}

fn imm20(r: &mut Prng) -> i32 {
    r.range_i64(-(1 << 19), 1 << 19) as i32
}

fn fp_width(r: &mut Prng) -> FpWidth {
    *r.pick(&[FpWidth::S, FpWidth::D])
}

fn int_width(r: &mut Prng) -> IntWidth {
    *r.pick(&[IntWidth::W, IntWidth::L])
}

fn eew(r: &mut Prng) -> Eew {
    *r.pick(&[Eew::E8, Eew::E16, Eew::E32, Eew::E64])
}

fn vtype(r: &mut Prng) -> VType {
    VType {
        sew: eew(r),
        lmul: *r.pick(&[1u8, 2, 4, 8]),
        ta: r.next_bool(),
        ma: r.next_bool(),
    }
}

const BRANCH_KINDS: [BranchKind; 6] = [
    BranchKind::Beq,
    BranchKind::Bne,
    BranchKind::Blt,
    BranchKind::Bge,
    BranchKind::Bltu,
    BranchKind::Bgeu,
];

const LOAD_KINDS: [LoadKind; 7] = [
    LoadKind::Lb,
    LoadKind::Lh,
    LoadKind::Lw,
    LoadKind::Ld,
    LoadKind::Lbu,
    LoadKind::Lhu,
    LoadKind::Lwu,
];

const STORE_KINDS: [StoreKind; 4] = [StoreKind::Sb, StoreKind::Sh, StoreKind::Sw, StoreKind::Sd];

const OPIMM_KINDS: [OpImmKind; 14] = [
    OpImmKind::Addi,
    OpImmKind::Slti,
    OpImmKind::Sltiu,
    OpImmKind::Xori,
    OpImmKind::Ori,
    OpImmKind::Andi,
    OpImmKind::Slli,
    OpImmKind::Srli,
    OpImmKind::Srai,
    OpImmKind::Addiw,
    OpImmKind::Slliw,
    OpImmKind::Srliw,
    OpImmKind::Sraiw,
    OpImmKind::Rori,
];

const OP_KINDS: [OpKind; 41] = [
    OpKind::Add,
    OpKind::Sub,
    OpKind::Sll,
    OpKind::Slt,
    OpKind::Sltu,
    OpKind::Xor,
    OpKind::Srl,
    OpKind::Sra,
    OpKind::Or,
    OpKind::And,
    OpKind::Addw,
    OpKind::Subw,
    OpKind::Sllw,
    OpKind::Srlw,
    OpKind::Sraw,
    OpKind::Mul,
    OpKind::Mulh,
    OpKind::Mulhsu,
    OpKind::Mulhu,
    OpKind::Div,
    OpKind::Divu,
    OpKind::Rem,
    OpKind::Remu,
    OpKind::Mulw,
    OpKind::Divw,
    OpKind::Divuw,
    OpKind::Remw,
    OpKind::Remuw,
    OpKind::Sh1add,
    OpKind::Sh2add,
    OpKind::Sh3add,
    OpKind::AddUw,
    OpKind::Andn,
    OpKind::Orn,
    OpKind::Xnor,
    OpKind::Min,
    OpKind::Minu,
    OpKind::Max,
    OpKind::Maxu,
    OpKind::Rol,
    OpKind::Ror,
];

const UNARY_KINDS: [UnaryKind; 7] = [
    UnaryKind::Clz,
    UnaryKind::Ctz,
    UnaryKind::Cpop,
    UnaryKind::SextB,
    UnaryKind::SextH,
    UnaryKind::ZextH,
    UnaryKind::Rev8,
];

const FOP_KINDS: [FOpKind; 9] = [
    FOpKind::Add,
    FOpKind::Sub,
    FOpKind::Mul,
    FOpKind::Div,
    FOpKind::Min,
    FOpKind::Max,
    FOpKind::SgnJ,
    FOpKind::SgnJN,
    FOpKind::SgnJX,
];

const FCMP_KINDS: [FCmpKind; 3] = [FCmpKind::Feq, FCmpKind::Flt, FCmpKind::Fle];

const FMA_KINDS: [FMaKind; 4] = [FMaKind::Madd, FMaKind::Msub, FMaKind::Nmsub, FMaKind::Nmadd];

/// Allowed source forms per vector arithmetic op, exactly mirroring the
/// decoder's `(funct6, funct3)` table: `V`/`X`/`I`/`F` = `.vv`/`.vx`/
/// `.vi`/`.vf`.
const VARITH_FORMS: [(VArithOp, &str); 17] = [
    (VArithOp::Vadd, "VXI"),
    (VArithOp::Vsub, "VX"),
    (VArithOp::Vmin, "VX"),
    (VArithOp::Vmax, "VX"),
    (VArithOp::Vand, "VXI"),
    (VArithOp::Vor, "VXI"),
    (VArithOp::Vxor, "VXI"),
    (VArithOp::Vmv, "VXI"),
    (VArithOp::Vmul, "VX"),
    (VArithOp::Vmacc, "VX"),
    (VArithOp::Vredsum, "V"),
    (VArithOp::Vfadd, "VF"),
    (VArithOp::Vfsub, "VF"),
    (VArithOp::Vfmul, "VF"),
    (VArithOp::Vfdiv, "VF"),
    (VArithOp::Vfmacc, "VF"),
    (VArithOp::Vfredusum, "V"),
];

fn gen_varith(r: &mut Prng) -> Inst {
    let (op, forms) = *r.pick(&VARITH_FORMS);
    let form = *r.pick(forms.as_bytes());
    let src = match form {
        b'V' => VSrc::V(vreg(r)),
        b'X' => VSrc::X(xreg(r)),
        b'F' => VSrc::F(freg(r)),
        b'I' => VSrc::I(r.range_i64(-16, 16) as i8),
        _ => unreachable!(),
    };
    // vmv.v.* fixes the vs2 field at zero; any other value is reserved.
    let vs2 = if op == VArithOp::Vmv {
        VReg::of(0)
    } else {
        vreg(r)
    };
    Inst::VArith {
        op,
        vd: vreg(r),
        vs2,
        src,
    }
}

fn gen_op_imm(r: &mut Prng) -> Inst {
    let kind = *r.pick(&OPIMM_KINDS);
    let imm = match kind {
        OpImmKind::Slli | OpImmKind::Srli | OpImmKind::Srai | OpImmKind::Rori => r.below(64) as i32,
        OpImmKind::Slliw | OpImmKind::Srliw | OpImmKind::Sraiw => r.below(32) as i32,
        _ => i12(r),
    };
    Inst::OpImm {
        kind,
        rd: xreg(r),
        rs1: xreg(r),
        imm,
    }
}

type Gen = fn(&mut Prng) -> Inst;

/// One random well-formed instruction per constructor family, as a list of
/// `(name, generator)` pairs so failures identify the family.
fn generators() -> Vec<(&'static str, Gen)> {
    vec![
        ("lui", |r| Inst::Lui {
            rd: xreg(r),
            imm20: imm20(r),
        }),
        ("auipc", |r| Inst::Auipc {
            rd: xreg(r),
            imm20: imm20(r),
        }),
        ("jal", |r| Inst::Jal {
            rd: xreg(r),
            offset: (r.range_i64(-(1 << 19), 1 << 19) * 2) as i32,
        }),
        ("jalr", |r| Inst::Jalr {
            rd: xreg(r),
            rs1: xreg(r),
            offset: i12(r),
        }),
        ("branch", |r| Inst::Branch {
            kind: *r.pick(&BRANCH_KINDS),
            rs1: xreg(r),
            rs2: xreg(r),
            offset: (r.range_i64(-(1 << 11), 1 << 11) * 2) as i32,
        }),
        ("load", |r| Inst::Load {
            kind: *r.pick(&LOAD_KINDS),
            rd: xreg(r),
            rs1: xreg(r),
            offset: i12(r),
        }),
        ("store", |r| Inst::Store {
            kind: *r.pick(&STORE_KINDS),
            rs1: xreg(r),
            rs2: xreg(r),
            offset: i12(r),
        }),
        ("op_imm", gen_op_imm),
        ("op", |r| Inst::Op {
            kind: *r.pick(&OP_KINDS),
            rd: xreg(r),
            rs1: xreg(r),
            rs2: xreg(r),
        }),
        ("unary", |r| Inst::Unary {
            kind: *r.pick(&UNARY_KINDS),
            rd: xreg(r),
            rs1: xreg(r),
        }),
        ("system", |r| {
            *r.pick(&[Inst::Fence, Inst::Ecall, Inst::Ebreak])
        }),
        ("fload", |r| Inst::FLoad {
            width: fp_width(r),
            frd: freg(r),
            rs1: xreg(r),
            offset: i12(r),
        }),
        ("fstore", |r| Inst::FStore {
            width: fp_width(r),
            frs2: freg(r),
            rs1: xreg(r),
            offset: i12(r),
        }),
        ("fop", |r| Inst::FOp {
            kind: *r.pick(&FOP_KINDS),
            width: fp_width(r),
            frd: freg(r),
            frs1: freg(r),
            frs2: freg(r),
        }),
        ("fcmp", |r| Inst::FCmp {
            kind: *r.pick(&FCMP_KINDS),
            width: fp_width(r),
            rd: xreg(r),
            frs1: freg(r),
            frs2: freg(r),
        }),
        ("fmv_to_x", |r| Inst::FMvToX {
            width: fp_width(r),
            rd: xreg(r),
            frs1: freg(r),
        }),
        ("fmv_to_f", |r| Inst::FMvToF {
            width: fp_width(r),
            frd: freg(r),
            rs1: xreg(r),
        }),
        ("fcvt_to_f", |r| Inst::FCvtToF {
            width: fp_width(r),
            from: int_width(r),
            signed: r.next_bool(),
            frd: freg(r),
            rs1: xreg(r),
        }),
        ("fcvt_to_int", |r| Inst::FCvtToInt {
            width: fp_width(r),
            to: int_width(r),
            signed: r.next_bool(),
            rd: xreg(r),
            frs1: freg(r),
        }),
        ("fcvt_ff", |r| Inst::FCvtFF {
            to: fp_width(r),
            frd: freg(r),
            frs1: freg(r),
        }),
        ("fma", |r| Inst::FMa {
            kind: *r.pick(&FMA_KINDS),
            width: fp_width(r),
            frd: freg(r),
            frs1: freg(r),
            frs2: freg(r),
            frs3: freg(r),
        }),
        ("vsetvli", |r| Inst::Vsetvli {
            rd: xreg(r),
            rs1: xreg(r),
            vtype: vtype(r),
        }),
        ("vload", |r| Inst::VLoad {
            eew: eew(r),
            vd: vreg(r),
            rs1: xreg(r),
        }),
        ("vstore", |r| Inst::VStore {
            eew: eew(r),
            vs3: vreg(r),
            rs1: xreg(r),
        }),
        ("varith", gen_varith),
        ("vmv_x_s", |r| Inst::VMvXS {
            rd: xreg(r),
            vs2: vreg(r),
        }),
        ("vmv_s_x", |r| Inst::VMvSX {
            vd: vreg(r),
            rs1: xreg(r),
        }),
    ]
}

/// The core contract: `decode(encode(i)) == i` (with `len == 4`) for ~10k
/// random operand combinations per constructor family, and when the
/// instruction also has a compressed form, `decode` of that 16-bit word
/// yields the identical canonical instruction with `len == 2`.
#[test]
fn encode_decode_roundtrip_per_constructor() {
    for (name, gen) in generators() {
        let mut r = Prng::new(0x5eed_0000 ^ name.len() as u64 ^ (name.as_bytes()[0] as u64) << 8);
        for case in 0..CASES {
            let inst = gen(&mut r);
            let word = encode(&inst)
                .unwrap_or_else(|e| panic!("{name}[{case}]: `{inst}` failed to encode: {e}"));
            let back = decode(word)
                .unwrap_or_else(|e| panic!("{name}[{case}]: `{inst}` ({word:#010x}): {e}"));
            assert_eq!(
                back,
                Decoded { inst, len: 4 },
                "{name}[{case}]: {word:#010x} misdecoded"
            );
            if let Some(half) = encode_compressed(&inst) {
                let cback = decode(half as u32).unwrap_or_else(|e| {
                    panic!("{name}[{case}]: compressed `{inst}` ({half:#06x}): {e}")
                });
                assert_eq!(
                    cback,
                    Decoded { inst, len: 2 },
                    "{name}[{case}]: compressed {half:#06x} misdecoded"
                );
            }
        }
    }
}

/// The ≥48-bit reserved prefix (`bits[4:0] = 11111`) must always decode to
/// [`DecodeError::ReservedLong`], never to an instruction — the property
/// Chimera's compressed-safe SMILE interior-byte placement (P2) rests on.
#[test]
fn reserved_long_prefixes_always_reject() {
    let mut r = Prng::new(0x4e5e4ed);
    for _ in 0..CASES {
        let word = (r.next_u32() & !0b11111) | 0b11111;
        match decode(word) {
            Err(DecodeError::ReservedLong(w)) => assert_eq!(w, word),
            other => panic!("{word:#010x}: expected ReservedLong, got {other:?}"),
        }
    }
    // The two anchor cases: 48-bit space (0011111) and 64-bit+ (1111111).
    assert!(matches!(
        decode(0b0011111),
        Err(DecodeError::ReservedLong(_))
    ));
    assert!(matches!(
        decode(0b1111111),
        Err(DecodeError::ReservedLong(_))
    ));
}

/// Targeted reserved/illegal encodings reject rather than misdecode.
#[test]
fn reserved_encodings_reject() {
    // The all-zero word is defined illegal in the C extension.
    assert!(decode(0).is_err());
    // c.fld (op=00, funct3=001) is outside the modelled subset.
    assert!(decode(0x2000).is_err());

    // vsetvli with bit 31 set (vsetvl/vsetivli space, outside the subset).
    let vsetvli = encode(&Inst::Vsetvli {
        rd: XReg::T0,
        rs1: XReg::A0,
        vtype: VType {
            sew: Eew::E64,
            lmul: 1,
            ta: true,
            ma: true,
        },
    })
    .unwrap();
    assert!(decode(vsetvli | 1 << 31).is_err());

    // Fractional-LMUL vtype (vlmul = 0b101) is outside the subset.
    let frac = (vsetvli & !(0b111 << 20)) | (0b101 << 20);
    assert!(decode(frac).is_err());

    // A masked vector op (vm = 0): all supported arithmetic is unmasked.
    let vadd = encode(&Inst::VArith {
        op: VArithOp::Vadd,
        vd: VReg::of(1),
        vs2: VReg::of(2),
        src: VSrc::V(VReg::of(3)),
    })
    .unwrap();
    assert!(decode(vadd & !(1 << 25)).is_err());

    // vmv.v.v with a nonzero vs2 field is reserved.
    let vmv = encode(&Inst::VArith {
        op: VArithOp::Vmv,
        vd: VReg::of(1),
        vs2: VReg::of(0),
        src: VSrc::V(VReg::of(3)),
    })
    .unwrap();
    assert!(decode(vmv | (7 << 20)).is_err());
}

/// `decode` is total: arbitrary 32-bit words either decode or return an
/// error — never panic, and a decoded result always re-encodes to bytes
/// that decode back to itself (decode∘encode idempotence on the image).
#[test]
fn decode_never_panics_and_is_stable() {
    let mut r = Prng::new(0xf0220);
    for _ in 0..20 * CASES {
        let word = r.next_u32();
        if let Ok(d) = decode(word) {
            // Every decodable word's canonical form re-encodes to 32 bits
            // (some RVC HINT-adjacent forms, e.g. `c.addi rd, 0`, decode
            // but are deliberately never *emitted* compressed).
            let re = encode(&d.inst).expect("decoded inst must re-encode");
            let d2 = decode(re).expect("re-encoded inst must decode");
            assert_eq!(d2.inst, d.inst, "{word:#010x} -> {re:#010x} unstable");
            if d.len == 2 {
                if let Some(half) = encode_compressed(&d.inst) {
                    let d3 = decode(half as u32).expect("re-encoded RVC inst must decode");
                    assert_eq!(d3.inst, d.inst, "{word:#010x} -> {half:#06x} unstable");
                }
            }
        }
    }
}
