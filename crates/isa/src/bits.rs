//! Bit-field packing helpers shared by the encoder and decoder.
//!
//! All helpers operate on `u32`/`u16` machine words; immediates travel as
//! sign-extended `i32` in their natural unit (bytes for offsets).

/// Extracts bits `[lo, lo+len)` of `word`.
#[inline]
pub fn field(word: u32, lo: u32, len: u32) -> u32 {
    (word >> lo) & ((1u32 << len) - 1)
}

/// Extracts bits `[lo, lo+len)` of a 16-bit compressed word.
#[inline]
pub fn cfield(word: u16, lo: u32, len: u32) -> u32 {
    ((word as u32) >> lo) & ((1u32 << len) - 1)
}

/// Sign-extends the low `bits` bits of `value`.
#[inline]
pub fn sext(value: u32, bits: u32) -> i32 {
    debug_assert!((1..=32).contains(&bits));
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

/// Whether `value` fits in a signed `bits`-bit field.
#[inline]
pub fn fits_signed(value: i64, bits: u32) -> bool {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    value >= min && value <= max
}

/// Whether `value` fits in an unsigned `bits`-bit field.
#[inline]
pub fn fits_unsigned(value: i64, bits: u32) -> bool {
    value >= 0 && value < (1i64 << bits)
}

/// Packs a 12-bit I-type immediate into bits [20, 32).
#[inline]
pub fn itype_imm(imm: i32) -> u32 {
    ((imm as u32) & 0xfff) << 20
}

/// Unpacks a 12-bit I-type immediate.
#[inline]
pub fn itype_imm_of(word: u32) -> i32 {
    sext(field(word, 20, 12), 12)
}

/// Packs a 12-bit S-type immediate (split across bits [7,12) and [25,32)).
#[inline]
pub fn stype_imm(imm: i32) -> u32 {
    let u = imm as u32;
    (field(u, 0, 5) << 7) | (field(u, 5, 7) << 25)
}

/// Unpacks a 12-bit S-type immediate.
#[inline]
pub fn stype_imm_of(word: u32) -> i32 {
    sext(field(word, 7, 5) | (field(word, 25, 7) << 5), 12)
}

/// Packs a 13-bit B-type immediate (byte offset, bit 0 implicit zero).
#[inline]
pub fn btype_imm(offset: i32) -> u32 {
    let u = offset as u32;
    (field(u, 11, 1) << 7)
        | (field(u, 1, 4) << 8)
        | (field(u, 5, 6) << 25)
        | (field(u, 12, 1) << 31)
}

/// Unpacks a 13-bit B-type immediate.
#[inline]
pub fn btype_imm_of(word: u32) -> i32 {
    let v = (field(word, 8, 4) << 1)
        | (field(word, 25, 6) << 5)
        | (field(word, 7, 1) << 11)
        | (field(word, 31, 1) << 12);
    sext(v, 13)
}

/// Packs a 21-bit J-type immediate (byte offset, bit 0 implicit zero).
#[inline]
pub fn jtype_imm(offset: i32) -> u32 {
    let u = offset as u32;
    (field(u, 12, 8) << 12)
        | (field(u, 11, 1) << 20)
        | (field(u, 1, 10) << 21)
        | (field(u, 20, 1) << 31)
}

/// Unpacks a 21-bit J-type immediate.
#[inline]
pub fn jtype_imm_of(word: u32) -> i32 {
    let v = (field(word, 21, 10) << 1)
        | (field(word, 20, 1) << 11)
        | (field(word, 12, 8) << 12)
        | (field(word, 31, 1) << 20);
    sext(v, 21)
}

/// Packs a 20-bit U-type immediate field into bits [12, 32).
#[inline]
pub fn utype_imm(imm20: i32) -> u32 {
    ((imm20 as u32) & 0xfffff) << 12
}

/// Unpacks a 20-bit U-type immediate field (the raw field, not shifted).
#[inline]
pub fn utype_imm_of(word: u32) -> i32 {
    sext(field(word, 12, 20), 20)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sext_behaviour() {
        assert_eq!(sext(0xfff, 12), -1);
        assert_eq!(sext(0x7ff, 12), 2047);
        assert_eq!(sext(0x800, 12), -2048);
        assert_eq!(sext(0, 12), 0);
    }

    #[test]
    fn fits_bounds() {
        assert!(fits_signed(2047, 12));
        assert!(!fits_signed(2048, 12));
        assert!(fits_signed(-2048, 12));
        assert!(!fits_signed(-2049, 12));
        assert!(fits_unsigned(4095, 12));
        assert!(!fits_unsigned(4096, 12));
        assert!(!fits_unsigned(-1, 12));
    }

    #[test]
    fn itype_roundtrip() {
        for imm in [-2048, -1, 0, 1, 2047] {
            assert_eq!(itype_imm_of(itype_imm(imm)), imm);
        }
    }

    #[test]
    fn stype_roundtrip() {
        for imm in [-2048, -7, 0, 5, 2047] {
            assert_eq!(stype_imm_of(stype_imm(imm)), imm);
        }
    }

    #[test]
    fn btype_roundtrip() {
        for off in [-4096, -2, 0, 2, 4094] {
            assert_eq!(btype_imm_of(btype_imm(off)), off);
        }
    }

    #[test]
    fn jtype_roundtrip() {
        for off in [-(1 << 20), -2, 0, 2, (1 << 20) - 2] {
            assert_eq!(jtype_imm_of(jtype_imm(off)), off);
        }
    }

    #[test]
    fn utype_roundtrip() {
        for imm in [-(1 << 19), -1, 0, 1, (1 << 19) - 1] {
            assert_eq!(utype_imm_of(utype_imm(imm)), imm);
        }
    }
}
