//! ISA extension identifiers and extension sets.
//!
//! ISAX heterogeneity is defined by cores that share a *base* ISA and differ
//! only in which *extensions* they implement. [`ExtSet`] describes a core's
//! capability profile; the emulator raises an illegal-instruction trap when a
//! hart executes an instruction whose extension is absent from its profile,
//! which is exactly the fault-and-migrate (FAM) trigger and the lazy-rewrite
//! trigger in Chimera's runtime.

use core::fmt;

/// A single RISC-V ISA extension (beyond bare RV64I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Ext {
    /// Integer multiplication/division (`M`).
    M,
    /// Single-precision floating point (`F`).
    F,
    /// Double-precision floating point (`D`).
    D,
    /// Compressed instructions (`C`).
    C,
    /// Vector extension (`V`, RVV 1.0).
    V,
    /// Bit manipulation (`Zba`/`Zbb` subset, referred to as `B`).
    B,
}

impl Ext {
    const ALL: [Ext; 6] = [Ext::M, Ext::F, Ext::D, Ext::C, Ext::V, Ext::B];

    /// All extensions the model knows about.
    pub fn all() -> impl Iterator<Item = Ext> {
        Self::ALL.into_iter()
    }

    const fn bit(self) -> u8 {
        match self {
            Ext::M => 1 << 0,
            Ext::F => 1 << 1,
            Ext::D => 1 << 2,
            Ext::C => 1 << 3,
            Ext::V => 1 << 4,
            Ext::B => 1 << 5,
        }
    }

    /// The conventional lowercase letter for the extension.
    pub const fn letter(self) -> char {
        match self {
            Ext::M => 'm',
            Ext::F => 'f',
            Ext::D => 'd',
            Ext::C => 'c',
            Ext::V => 'v',
            Ext::B => 'b',
        }
    }
}

impl fmt::Display for Ext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// A set of ISA extensions, describing a core's capability profile.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ExtSet(u8);

impl ExtSet {
    /// The empty set: bare RV64I.
    pub const RV64I: ExtSet = ExtSet(0);

    /// `RV64GC`: the "general" profile the paper uses for base cores
    /// (IMAFDC; we do not model `A` separately, so this is M+F+D+C).
    pub const RV64GC: ExtSet =
        ExtSet(Ext::M.bit() | Ext::F.bit() | Ext::D.bit() | Ext::C.bit() | Ext::B.bit());

    /// `RV64GCV`: the profile of the paper's extension cores
    /// (RV64GC plus the vector extension).
    pub const RV64GCV: ExtSet = ExtSet(ExtSet::RV64GC.0 | Ext::V.bit());

    /// Creates an extension set from a list of extensions.
    pub fn of(exts: &[Ext]) -> ExtSet {
        let mut s = ExtSet::RV64I;
        for &e in exts {
            s = s.with(e);
        }
        s
    }

    /// Returns the set with `ext` added.
    pub const fn with(self, ext: Ext) -> ExtSet {
        ExtSet(self.0 | ext.bit())
    }

    /// Returns the set with `ext` removed.
    pub const fn without(self, ext: Ext) -> ExtSet {
        ExtSet(self.0 & !ext.bit())
    }

    /// Whether `ext` is in the set.
    pub const fn contains(self, ext: Ext) -> bool {
        self.0 & ext.bit() != 0
    }

    /// Whether every extension in `other` is also in `self`.
    pub const fn is_superset_of(self, other: ExtSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// The extensions present in `self` but missing from `other` — i.e. what
    /// must be *downgraded* when migrating a binary built for `self` onto a
    /// core implementing `other`.
    pub const fn missing_from(self, other: ExtSet) -> ExtSet {
        ExtSet(self.0 & !other.0)
    }

    /// Whether the set is empty.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over the extensions in the set.
    pub fn iter(self) -> impl Iterator<Item = Ext> {
        Ext::all().filter(move |e| self.contains(*e))
    }
}

impl fmt::Debug for ExtSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ExtSet({self})")
    }
}

impl fmt::Display for ExtSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rv64i")?;
        for e in self.iter() {
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_contents() {
        assert!(ExtSet::RV64GC.contains(Ext::M));
        assert!(ExtSet::RV64GC.contains(Ext::C));
        assert!(!ExtSet::RV64GC.contains(Ext::V));
        assert!(ExtSet::RV64GCV.contains(Ext::V));
        assert!(ExtSet::RV64GCV.is_superset_of(ExtSet::RV64GC));
        assert!(!ExtSet::RV64GC.is_superset_of(ExtSet::RV64GCV));
    }

    #[test]
    fn missing_from_identifies_downgrade_set() {
        let missing = ExtSet::RV64GCV.missing_from(ExtSet::RV64GC);
        assert_eq!(missing.iter().collect::<Vec<_>>(), vec![Ext::V]);
        assert!(ExtSet::RV64GC.missing_from(ExtSet::RV64GCV).is_empty());
    }

    #[test]
    fn with_without_roundtrip() {
        for e in Ext::all() {
            let s = ExtSet::RV64I.with(e);
            assert!(s.contains(e));
            assert!(s.without(e).is_empty());
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(ExtSet::RV64I.to_string(), "rv64i");
        assert_eq!(ExtSet::RV64GCV.to_string(), "rv64imfdcvb");
    }
}
