//! The instruction model: a typed enum covering the RV64IMFDCVB subset the
//! Chimera reproduction uses, plus per-instruction properties (extension
//! classification, register defs/uses, control-flow role).
//!
//! Design notes:
//!
//! * Instructions are stored in *canonical* (uncompressed) form; whether a
//!   given machine word was 2 or 4 bytes is carried separately by
//!   [`crate::decode::Decoded::len`]. The rewriter operates on raw bytes and
//!   only needs the canonical semantics plus the length.
//! * Immediates are stored as sign-extended values in their natural unit
//!   (bytes for control-flow offsets and memory offsets; the raw 20-bit
//!   field for `lui`/`auipc`).

use crate::reg::{FReg, VReg, XReg};
use crate::{Ext, ExtSet};
use core::fmt;

/// Conditional branch comparison kinds (`beq`..`bgeu`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// Branch if equal.
    Beq,
    /// Branch if not equal.
    Bne,
    /// Branch if less than (signed).
    Blt,
    /// Branch if greater or equal (signed).
    Bge,
    /// Branch if less than (unsigned).
    Bltu,
    /// Branch if greater or equal (unsigned).
    Bgeu,
}

impl BranchKind {
    /// The assembler mnemonic.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            BranchKind::Beq => "beq",
            BranchKind::Bne => "bne",
            BranchKind::Blt => "blt",
            BranchKind::Bge => "bge",
            BranchKind::Bltu => "bltu",
            BranchKind::Bgeu => "bgeu",
        }
    }
}

/// Integer load kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadKind {
    /// Load byte (sign-extended).
    Lb,
    /// Load halfword (sign-extended).
    Lh,
    /// Load word (sign-extended).
    Lw,
    /// Load doubleword.
    Ld,
    /// Load byte (zero-extended).
    Lbu,
    /// Load halfword (zero-extended).
    Lhu,
    /// Load word (zero-extended).
    Lwu,
}

impl LoadKind {
    /// The assembler mnemonic.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            LoadKind::Lb => "lb",
            LoadKind::Lh => "lh",
            LoadKind::Lw => "lw",
            LoadKind::Ld => "ld",
            LoadKind::Lbu => "lbu",
            LoadKind::Lhu => "lhu",
            LoadKind::Lwu => "lwu",
        }
    }

    /// Access size in bytes.
    pub const fn size(self) -> u64 {
        match self {
            LoadKind::Lb | LoadKind::Lbu => 1,
            LoadKind::Lh | LoadKind::Lhu => 2,
            LoadKind::Lw | LoadKind::Lwu => 4,
            LoadKind::Ld => 8,
        }
    }
}

/// Integer store kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreKind {
    /// Store byte.
    Sb,
    /// Store halfword.
    Sh,
    /// Store word.
    Sw,
    /// Store doubleword.
    Sd,
}

impl StoreKind {
    /// The assembler mnemonic.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            StoreKind::Sb => "sb",
            StoreKind::Sh => "sh",
            StoreKind::Sw => "sw",
            StoreKind::Sd => "sd",
        }
    }

    /// Access size in bytes.
    pub const fn size(self) -> u64 {
        match self {
            StoreKind::Sb => 1,
            StoreKind::Sh => 2,
            StoreKind::Sw => 4,
            StoreKind::Sd => 8,
        }
    }
}

/// Register-immediate ALU operations (`OP-IMM` and `OP-IMM-32`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpImmKind {
    /// Add immediate.
    Addi,
    /// Set if less than immediate (signed).
    Slti,
    /// Set if less than immediate (unsigned).
    Sltiu,
    /// XOR immediate.
    Xori,
    /// OR immediate.
    Ori,
    /// AND immediate.
    Andi,
    /// Shift left logical immediate (6-bit shamt).
    Slli,
    /// Shift right logical immediate.
    Srli,
    /// Shift right arithmetic immediate.
    Srai,
    /// Add immediate, 32-bit result sign-extended.
    Addiw,
    /// Shift left logical immediate, 32-bit.
    Slliw,
    /// Shift right logical immediate, 32-bit.
    Srliw,
    /// Shift right arithmetic immediate, 32-bit.
    Sraiw,
    /// Rotate right immediate (Zbb).
    Rori,
}

impl OpImmKind {
    /// The assembler mnemonic.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            OpImmKind::Addi => "addi",
            OpImmKind::Slti => "slti",
            OpImmKind::Sltiu => "sltiu",
            OpImmKind::Xori => "xori",
            OpImmKind::Ori => "ori",
            OpImmKind::Andi => "andi",
            OpImmKind::Slli => "slli",
            OpImmKind::Srli => "srli",
            OpImmKind::Srai => "srai",
            OpImmKind::Addiw => "addiw",
            OpImmKind::Slliw => "slliw",
            OpImmKind::Srliw => "srliw",
            OpImmKind::Sraiw => "sraiw",
            OpImmKind::Rori => "rori",
        }
    }

    /// Whether the immediate is a shift amount (6-bit for RV64, 5-bit for
    /// the `*w` forms) rather than a 12-bit I-immediate.
    pub const fn is_shift(self) -> bool {
        matches!(
            self,
            OpImmKind::Slli
                | OpImmKind::Srli
                | OpImmKind::Srai
                | OpImmKind::Slliw
                | OpImmKind::Srliw
                | OpImmKind::Sraiw
                | OpImmKind::Rori
        )
    }
}

/// Register-register ALU operations (`OP` and `OP-32`), including the M
/// extension and the Zba/Zbb register-register subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Add.
    Add,
    /// Subtract.
    Sub,
    /// Shift left logical.
    Sll,
    /// Set if less than (signed).
    Slt,
    /// Set if less than (unsigned).
    Sltu,
    /// XOR.
    Xor,
    /// Shift right logical.
    Srl,
    /// Shift right arithmetic.
    Sra,
    /// OR.
    Or,
    /// AND.
    And,
    /// Add, 32-bit.
    Addw,
    /// Subtract, 32-bit.
    Subw,
    /// Shift left logical, 32-bit.
    Sllw,
    /// Shift right logical, 32-bit.
    Srlw,
    /// Shift right arithmetic, 32-bit.
    Sraw,
    /// Multiply (M).
    Mul,
    /// Multiply high, signed×signed (M).
    Mulh,
    /// Multiply high, signed×unsigned (M).
    Mulhsu,
    /// Multiply high, unsigned×unsigned (M).
    Mulhu,
    /// Divide, signed (M).
    Div,
    /// Divide, unsigned (M).
    Divu,
    /// Remainder, signed (M).
    Rem,
    /// Remainder, unsigned (M).
    Remu,
    /// Multiply, 32-bit (M).
    Mulw,
    /// Divide signed, 32-bit (M).
    Divw,
    /// Divide unsigned, 32-bit (M).
    Divuw,
    /// Remainder signed, 32-bit (M).
    Remw,
    /// Remainder unsigned, 32-bit (M).
    Remuw,
    /// Shift left by 1 and add (Zba).
    Sh1add,
    /// Shift left by 2 and add (Zba).
    Sh2add,
    /// Shift left by 3 and add (Zba).
    Sh3add,
    /// Add unsigned word (Zba).
    AddUw,
    /// AND with inverted operand (Zbb).
    Andn,
    /// OR with inverted operand (Zbb).
    Orn,
    /// XNOR (Zbb).
    Xnor,
    /// Minimum, signed (Zbb).
    Min,
    /// Minimum, unsigned (Zbb).
    Minu,
    /// Maximum, signed (Zbb).
    Max,
    /// Maximum, unsigned (Zbb).
    Maxu,
    /// Rotate left (Zbb).
    Rol,
    /// Rotate right (Zbb).
    Ror,
}

impl OpKind {
    /// The assembler mnemonic.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            OpKind::Add => "add",
            OpKind::Sub => "sub",
            OpKind::Sll => "sll",
            OpKind::Slt => "slt",
            OpKind::Sltu => "sltu",
            OpKind::Xor => "xor",
            OpKind::Srl => "srl",
            OpKind::Sra => "sra",
            OpKind::Or => "or",
            OpKind::And => "and",
            OpKind::Addw => "addw",
            OpKind::Subw => "subw",
            OpKind::Sllw => "sllw",
            OpKind::Srlw => "srlw",
            OpKind::Sraw => "sraw",
            OpKind::Mul => "mul",
            OpKind::Mulh => "mulh",
            OpKind::Mulhsu => "mulhsu",
            OpKind::Mulhu => "mulhu",
            OpKind::Div => "div",
            OpKind::Divu => "divu",
            OpKind::Rem => "rem",
            OpKind::Remu => "remu",
            OpKind::Mulw => "mulw",
            OpKind::Divw => "divw",
            OpKind::Divuw => "divuw",
            OpKind::Remw => "remw",
            OpKind::Remuw => "remuw",
            OpKind::Sh1add => "sh1add",
            OpKind::Sh2add => "sh2add",
            OpKind::Sh3add => "sh3add",
            OpKind::AddUw => "add.uw",
            OpKind::Andn => "andn",
            OpKind::Orn => "orn",
            OpKind::Xnor => "xnor",
            OpKind::Min => "min",
            OpKind::Minu => "minu",
            OpKind::Max => "max",
            OpKind::Maxu => "maxu",
            OpKind::Rol => "rol",
            OpKind::Ror => "ror",
        }
    }

    /// The extension the operation belongs to (`None` for base RV64I).
    pub const fn ext(self) -> Option<Ext> {
        match self {
            OpKind::Mul
            | OpKind::Mulh
            | OpKind::Mulhsu
            | OpKind::Mulhu
            | OpKind::Div
            | OpKind::Divu
            | OpKind::Rem
            | OpKind::Remu
            | OpKind::Mulw
            | OpKind::Divw
            | OpKind::Divuw
            | OpKind::Remw
            | OpKind::Remuw => Some(Ext::M),
            OpKind::Sh1add
            | OpKind::Sh2add
            | OpKind::Sh3add
            | OpKind::AddUw
            | OpKind::Andn
            | OpKind::Orn
            | OpKind::Xnor
            | OpKind::Min
            | OpKind::Minu
            | OpKind::Max
            | OpKind::Maxu
            | OpKind::Rol
            | OpKind::Ror => Some(Ext::B),
            _ => None,
        }
    }
}

/// Single-operand bit-manipulation operations (Zbb, encoded in `OP-IMM`
/// space with a fixed `rs2` selector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryKind {
    /// Count leading zeros.
    Clz,
    /// Count trailing zeros.
    Ctz,
    /// Population count.
    Cpop,
    /// Sign-extend byte.
    SextB,
    /// Sign-extend halfword.
    SextH,
    /// Zero-extend halfword.
    ZextH,
    /// Byte-reverse the register.
    Rev8,
}

impl UnaryKind {
    /// The assembler mnemonic.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            UnaryKind::Clz => "clz",
            UnaryKind::Ctz => "ctz",
            UnaryKind::Cpop => "cpop",
            UnaryKind::SextB => "sext.b",
            UnaryKind::SextH => "sext.h",
            UnaryKind::ZextH => "zext.h",
            UnaryKind::Rev8 => "rev8",
        }
    }
}

/// Floating-point operand width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpWidth {
    /// Single precision (`.s`, F extension).
    S,
    /// Double precision (`.d`, D extension).
    D,
}

impl FpWidth {
    /// The mnemonic suffix (`s` or `d`).
    pub const fn suffix(self) -> char {
        match self {
            FpWidth::S => 's',
            FpWidth::D => 'd',
        }
    }

    /// The extension implied by the width.
    pub const fn ext(self) -> Ext {
        match self {
            FpWidth::S => Ext::F,
            FpWidth::D => Ext::D,
        }
    }

    /// The `fmt` field value in F/D encodings.
    pub const fn fmt_bits(self) -> u32 {
        match self {
            FpWidth::S => 0b00,
            FpWidth::D => 0b01,
        }
    }
}

/// Two-source floating-point ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FOpKind {
    /// Add.
    Add,
    /// Subtract.
    Sub,
    /// Multiply.
    Mul,
    /// Divide.
    Div,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Sign-injection (`fsgnj`; `fmv.f.f` is `fsgnj rd, rs, rs`).
    SgnJ,
    /// Negated sign-injection (`fsgnjn`; `fneg` alias).
    SgnJN,
    /// XORed sign-injection (`fsgnjx`; `fabs` alias).
    SgnJX,
}

impl FOpKind {
    /// The assembler mnemonic stem (width suffix appended separately).
    pub const fn stem(self) -> &'static str {
        match self {
            FOpKind::Add => "fadd",
            FOpKind::Sub => "fsub",
            FOpKind::Mul => "fmul",
            FOpKind::Div => "fdiv",
            FOpKind::Min => "fmin",
            FOpKind::Max => "fmax",
            FOpKind::SgnJ => "fsgnj",
            FOpKind::SgnJN => "fsgnjn",
            FOpKind::SgnJX => "fsgnjx",
        }
    }
}

/// Floating-point comparison kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FCmpKind {
    /// Equal.
    Feq,
    /// Less than.
    Flt,
    /// Less than or equal.
    Fle,
}

impl FCmpKind {
    /// The assembler mnemonic stem.
    pub const fn stem(self) -> &'static str {
        match self {
            FCmpKind::Feq => "feq",
            FCmpKind::Flt => "flt",
            FCmpKind::Fle => "fle",
        }
    }
}

/// Fused multiply-add variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FMaKind {
    /// `frd = frs1 * frs2 + frs3`.
    Madd,
    /// `frd = frs1 * frs2 - frs3`.
    Msub,
    /// `frd = -(frs1 * frs2) + frs3`.
    Nmsub,
    /// `frd = -(frs1 * frs2) - frs3`.
    Nmadd,
}

impl FMaKind {
    /// The assembler mnemonic stem.
    pub const fn stem(self) -> &'static str {
        match self {
            FMaKind::Madd => "fmadd",
            FMaKind::Msub => "fmsub",
            FMaKind::Nmsub => "fnmsub",
            FMaKind::Nmadd => "fnmadd",
        }
    }
}

/// Integer width for FP↔integer conversions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntWidth {
    /// 32-bit (`.w`/`.wu`).
    W,
    /// 64-bit (`.l`/`.lu`).
    L,
}

/// Element width for vector memory operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Eew {
    /// 8-bit elements.
    E8,
    /// 16-bit elements.
    E16,
    /// 32-bit elements.
    E32,
    /// 64-bit elements.
    E64,
}

impl Eew {
    /// Element size in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            Eew::E8 => 1,
            Eew::E16 => 2,
            Eew::E32 => 4,
            Eew::E64 => 8,
        }
    }

    /// Element size in bits.
    pub const fn bits(self) -> u32 {
        self.bytes() as u32 * 8
    }
}

/// Selected element width (`vsew`) for `vtype`.
pub type Sew = Eew;

/// The `vtype` CSR value established by `vsetvli`: element width, register
/// grouping, and tail/mask agnosticism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VType {
    /// Selected element width.
    pub sew: Sew,
    /// Register group multiplier (1, 2, 4 or 8).
    pub lmul: u8,
    /// Tail-agnostic bit.
    pub ta: bool,
    /// Mask-agnostic bit.
    pub ma: bool,
}

impl VType {
    /// Encodes the `vtype` immediate field of `vsetvli`.
    pub fn to_bits(self) -> u32 {
        let vlmul = match self.lmul {
            1 => 0b000,
            2 => 0b001,
            4 => 0b010,
            8 => 0b011,
            _ => unreachable!("lmul validated at construction"),
        };
        let vsew = match self.sew {
            Eew::E8 => 0b000,
            Eew::E16 => 0b001,
            Eew::E32 => 0b010,
            Eew::E64 => 0b011,
        };
        vlmul | (vsew << 3) | ((self.ta as u32) << 6) | ((self.ma as u32) << 7)
    }

    /// Decodes a `vtype` immediate field; `None` for encodings outside the
    /// supported subset (fractional LMUL, reserved widths).
    pub fn from_bits(bits: u32) -> Option<VType> {
        let lmul = match bits & 0b111 {
            0b000 => 1,
            0b001 => 2,
            0b010 => 4,
            0b011 => 8,
            _ => return None,
        };
        let sew = match (bits >> 3) & 0b111 {
            0b000 => Eew::E8,
            0b001 => Eew::E16,
            0b010 => Eew::E32,
            0b011 => Eew::E64,
            _ => return None,
        };
        Some(VType {
            sew,
            lmul,
            ta: bits & (1 << 6) != 0,
            ma: bits & (1 << 7) != 0,
        })
    }
}

/// Vector arithmetic operations in the supported RVV subset (all unmasked).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VArithOp {
    /// Integer add.
    Vadd,
    /// Integer subtract.
    Vsub,
    /// Bitwise AND.
    Vand,
    /// Bitwise OR.
    Vor,
    /// Bitwise XOR.
    Vxor,
    /// Integer multiply.
    Vmul,
    /// Integer multiply-accumulate (`vd += vs1/rs1 * vs2`).
    Vmacc,
    /// Integer minimum (signed).
    Vmin,
    /// Integer maximum (signed).
    Vmax,
    /// Whole-register/broadcast move (`vmv.v.v` / `vmv.v.x` / `vmv.v.i`).
    Vmv,
    /// Integer reduction sum (`vredsum.vs`).
    Vredsum,
    /// FP add.
    Vfadd,
    /// FP subtract.
    Vfsub,
    /// FP multiply.
    Vfmul,
    /// FP divide.
    Vfdiv,
    /// FP multiply-accumulate (`vd += vs1/fs1 * vs2`).
    Vfmacc,
    /// FP unordered reduction sum (`vfredusum.vs`).
    Vfredusum,
}

impl VArithOp {
    /// The assembler mnemonic stem.
    pub const fn stem(self) -> &'static str {
        match self {
            VArithOp::Vadd => "vadd",
            VArithOp::Vsub => "vsub",
            VArithOp::Vand => "vand",
            VArithOp::Vor => "vor",
            VArithOp::Vxor => "vxor",
            VArithOp::Vmul => "vmul",
            VArithOp::Vmacc => "vmacc",
            VArithOp::Vmin => "vmin",
            VArithOp::Vmax => "vmax",
            VArithOp::Vmv => "vmv",
            VArithOp::Vredsum => "vredsum",
            VArithOp::Vfadd => "vfadd",
            VArithOp::Vfsub => "vfsub",
            VArithOp::Vfmul => "vfmul",
            VArithOp::Vfdiv => "vfdiv",
            VArithOp::Vfmacc => "vfmacc",
            VArithOp::Vfredusum => "vfredusum",
        }
    }

    /// Whether the operation is floating-point (uses `OPFVV`/`OPFVF` funct3).
    pub const fn is_fp(self) -> bool {
        matches!(
            self,
            VArithOp::Vfadd
                | VArithOp::Vfsub
                | VArithOp::Vfmul
                | VArithOp::Vfdiv
                | VArithOp::Vfmacc
                | VArithOp::Vfredusum
        )
    }

    /// Whether the operation is a reduction (`.vs` form: scalar in element 0
    /// of `vs1`, result in element 0 of `vd`).
    pub const fn is_reduction(self) -> bool {
        matches!(self, VArithOp::Vredsum | VArithOp::Vfredusum)
    }
}

/// The scalar/vector second source of a vector arithmetic operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VSrc {
    /// Vector register (`.vv` form).
    V(VReg),
    /// Integer scalar register (`.vx` form).
    X(XReg),
    /// FP scalar register (`.vf` form).
    F(FReg),
    /// 5-bit signed immediate (`.vi` form).
    I(i8),
}

/// A decoded RISC-V instruction in canonical (uncompressed) form.
///
/// See the module docs for immediate conventions. The enum is deliberately
/// closed: anything the decoder cannot map into it is an *unrecognized*
/// instruction, which the emulator treats as illegal and Chimera's runtime
/// handles by lazy rewriting (§4.1/§4.3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// Load upper immediate: `rd = sext(imm20 << 12)`.
    Lui {
        /// Destination.
        rd: XReg,
        /// 20-bit immediate field (signed).
        imm20: i32,
    },
    /// Add upper immediate to pc: `rd = pc + sext(imm20 << 12)`.
    Auipc {
        /// Destination.
        rd: XReg,
        /// 20-bit immediate field (signed).
        imm20: i32,
    },
    /// Jump and link: `rd = pc + len; pc += offset`.
    Jal {
        /// Link register (`zero` for plain jumps).
        rd: XReg,
        /// Byte offset from this instruction (±1 MiB).
        offset: i32,
    },
    /// Indirect jump and link: `rd = pc + len; pc = (rs1 + offset) & !1`.
    Jalr {
        /// Link register.
        rd: XReg,
        /// Base register.
        rs1: XReg,
        /// 12-bit signed byte offset.
        offset: i32,
    },
    /// Conditional branch.
    Branch {
        /// Comparison kind.
        kind: BranchKind,
        /// First comparand.
        rs1: XReg,
        /// Second comparand.
        rs2: XReg,
        /// Byte offset from this instruction (±4 KiB).
        offset: i32,
    },
    /// Integer load.
    Load {
        /// Access kind/width.
        kind: LoadKind,
        /// Destination.
        rd: XReg,
        /// Base register.
        rs1: XReg,
        /// 12-bit signed byte offset.
        offset: i32,
    },
    /// Integer store.
    Store {
        /// Access kind/width.
        kind: StoreKind,
        /// Base register.
        rs1: XReg,
        /// Value register.
        rs2: XReg,
        /// 12-bit signed byte offset.
        offset: i32,
    },
    /// Register-immediate ALU operation.
    OpImm {
        /// Operation.
        kind: OpImmKind,
        /// Destination.
        rd: XReg,
        /// Source.
        rs1: XReg,
        /// Immediate (12-bit signed, or shift amount).
        imm: i32,
    },
    /// Register-register ALU operation.
    Op {
        /// Operation.
        kind: OpKind,
        /// Destination.
        rd: XReg,
        /// First source.
        rs1: XReg,
        /// Second source.
        rs2: XReg,
    },
    /// Single-operand Zbb operation.
    Unary {
        /// Operation.
        kind: UnaryKind,
        /// Destination.
        rd: XReg,
        /// Source.
        rs1: XReg,
    },
    /// Memory fence (modelled as a no-op with ordering significance only).
    Fence,
    /// Environment call (syscall into the simulated kernel).
    Ecall,
    /// Breakpoint; used by trap-based trampolines in the baseline rewriters.
    Ebreak,
    /// Floating-point load.
    FLoad {
        /// Operand width.
        width: FpWidth,
        /// Destination.
        frd: FReg,
        /// Base register.
        rs1: XReg,
        /// 12-bit signed byte offset.
        offset: i32,
    },
    /// Floating-point store.
    FStore {
        /// Operand width.
        width: FpWidth,
        /// Value register.
        frs2: FReg,
        /// Base register.
        rs1: XReg,
        /// 12-bit signed byte offset.
        offset: i32,
    },
    /// Two-source floating-point ALU operation.
    FOp {
        /// Operation.
        kind: FOpKind,
        /// Operand width.
        width: FpWidth,
        /// Destination.
        frd: FReg,
        /// First source.
        frs1: FReg,
        /// Second source.
        frs2: FReg,
    },
    /// Floating-point comparison into an integer register.
    FCmp {
        /// Comparison kind.
        kind: FCmpKind,
        /// Operand width.
        width: FpWidth,
        /// Destination (0/1 result).
        rd: XReg,
        /// First source.
        frs1: FReg,
        /// Second source.
        frs2: FReg,
    },
    /// Move FP register bits to an integer register (`fmv.x.w`/`fmv.x.d`).
    FMvToX {
        /// Operand width.
        width: FpWidth,
        /// Destination.
        rd: XReg,
        /// Source.
        frs1: FReg,
    },
    /// Move integer register bits to an FP register (`fmv.w.x`/`fmv.d.x`).
    FMvToF {
        /// Operand width.
        width: FpWidth,
        /// Destination.
        frd: FReg,
        /// Source.
        rs1: XReg,
    },
    /// Convert integer to floating point (`fcvt.{s,d}.{w,wu,l,lu}`).
    FCvtToF {
        /// Result width.
        width: FpWidth,
        /// Source integer width.
        from: IntWidth,
        /// Whether the integer source is signed.
        signed: bool,
        /// Destination.
        frd: FReg,
        /// Source.
        rs1: XReg,
    },
    /// Convert floating point to integer (`fcvt.{w,wu,l,lu}.{s,d}`).
    FCvtToInt {
        /// Source width.
        width: FpWidth,
        /// Result integer width.
        to: IntWidth,
        /// Whether the integer result is signed.
        signed: bool,
        /// Destination.
        rd: XReg,
        /// Source.
        frs1: FReg,
    },
    /// Convert between FP widths (`fcvt.d.s` / `fcvt.s.d`).
    FCvtFF {
        /// Result width.
        to: FpWidth,
        /// Destination.
        frd: FReg,
        /// Source.
        frs1: FReg,
    },
    /// Fused multiply-add family.
    FMa {
        /// Variant.
        kind: FMaKind,
        /// Operand width.
        width: FpWidth,
        /// Destination.
        frd: FReg,
        /// Multiplicand.
        frs1: FReg,
        /// Multiplier.
        frs2: FReg,
        /// Addend.
        frs3: FReg,
    },
    /// Configure the vector unit: `rd = vl = min(rs1, VLMAX)` (with the
    /// `rs1 = zero, rd != zero` form requesting VLMAX).
    Vsetvli {
        /// Receives the granted vector length.
        rd: XReg,
        /// Requested application vector length.
        rs1: XReg,
        /// Requested element width/grouping.
        vtype: VType,
    },
    /// Unit-stride vector load (`vle<eew>.v vd, (rs1)`).
    VLoad {
        /// Element width.
        eew: Eew,
        /// Destination vector register.
        vd: VReg,
        /// Base address register.
        rs1: XReg,
    },
    /// Unit-stride vector store (`vse<eew>.v vs3, (rs1)`).
    VStore {
        /// Element width.
        eew: Eew,
        /// Source vector register.
        vs3: VReg,
        /// Base address register.
        rs1: XReg,
    },
    /// Vector arithmetic (unmasked).
    VArith {
        /// Operation.
        op: VArithOp,
        /// Destination vector register.
        vd: VReg,
        /// Vector source operand (`vs2`).
        vs2: VReg,
        /// Second source: vector, scalar or immediate.
        src: VSrc,
    },
    /// Move element 0 of a vector register to an integer register
    /// (`vmv.x.s`).
    VMvXS {
        /// Destination.
        rd: XReg,
        /// Source vector register.
        vs2: VReg,
    },
    /// Move an integer register to element 0 of a vector register
    /// (`vmv.s.x`).
    VMvSX {
        /// Destination vector register.
        vd: VReg,
        /// Source.
        rs1: XReg,
    },
}

impl Inst {
    /// The extension required to execute the instruction (`None` = base
    /// RV64I, always available).
    pub fn ext(&self) -> Option<Ext> {
        match self {
            Inst::Op { kind, .. } => kind.ext(),
            Inst::OpImm { kind, .. } => {
                if matches!(kind, OpImmKind::Rori) {
                    Some(Ext::B)
                } else {
                    None
                }
            }
            Inst::Unary { .. } => Some(Ext::B),
            Inst::FLoad { width, .. }
            | Inst::FStore { width, .. }
            | Inst::FOp { width, .. }
            | Inst::FCmp { width, .. }
            | Inst::FMvToX { width, .. }
            | Inst::FMvToF { width, .. }
            | Inst::FCvtToF { width, .. }
            | Inst::FCvtToInt { width, .. }
            | Inst::FMa { width, .. } => Some(width.ext()),
            Inst::FCvtFF { .. } => Some(Ext::D),
            Inst::Vsetvli { .. }
            | Inst::VLoad { .. }
            | Inst::VStore { .. }
            | Inst::VArith { .. }
            | Inst::VMvXS { .. }
            | Inst::VMvSX { .. } => Some(Ext::V),
            _ => None,
        }
    }

    /// Whether the instruction can execute on a core with profile `profile`
    /// (ignoring the C extension, which is a property of the *encoding*, not
    /// the canonical instruction).
    pub fn runnable_on(&self, profile: ExtSet) -> bool {
        match self.ext() {
            None => true,
            Some(e) => profile.contains(e),
        }
    }

    /// Whether the instruction unconditionally diverts control flow
    /// (`jal`, `jalr`).
    pub fn is_jump(&self) -> bool {
        matches!(self, Inst::Jal { .. } | Inst::Jalr { .. })
    }

    /// Whether the instruction is a conditional branch.
    pub fn is_branch(&self) -> bool {
        matches!(self, Inst::Branch { .. })
    }

    /// Whether the instruction ends a basic block (jump, branch, `ecall`,
    /// `ebreak`).
    pub fn is_terminator(&self) -> bool {
        self.is_jump() || self.is_branch() || matches!(self, Inst::Ecall | Inst::Ebreak)
    }

    /// Whether control flow after this instruction is *indirect* (target not
    /// statically known): a `jalr` through any register.
    pub fn is_indirect_jump(&self) -> bool {
        matches!(self, Inst::Jalr { .. })
    }

    /// The integer registers the instruction *reads*.
    pub fn uses_x(&self) -> Vec<XReg> {
        let mut v = Vec::with_capacity(2);
        match *self {
            Inst::Lui { .. } | Inst::Auipc { .. } | Inst::Jal { .. } => {}
            Inst::Jalr { rs1, .. } => v.push(rs1),
            Inst::Branch { rs1, rs2, .. } => {
                v.push(rs1);
                v.push(rs2);
            }
            Inst::Load { rs1, .. } => v.push(rs1),
            Inst::Store { rs1, rs2, .. } => {
                v.push(rs1);
                v.push(rs2);
            }
            Inst::OpImm { rs1, .. } => v.push(rs1),
            Inst::Op { rs1, rs2, .. } => {
                v.push(rs1);
                v.push(rs2);
            }
            Inst::Unary { rs1, .. } => v.push(rs1),
            Inst::Fence | Inst::Ecall | Inst::Ebreak => {}
            Inst::FLoad { rs1, .. } | Inst::FStore { rs1, .. } => v.push(rs1),
            Inst::FOp { .. }
            | Inst::FCmp { .. }
            | Inst::FMvToX { .. }
            | Inst::FCvtToInt { .. }
            | Inst::FCvtFF { .. }
            | Inst::FMa { .. } => {}
            Inst::FMvToF { rs1, .. } | Inst::FCvtToF { rs1, .. } => v.push(rs1),
            Inst::Vsetvli { rs1, .. } => v.push(rs1),
            Inst::VLoad { rs1, .. } | Inst::VStore { rs1, .. } => v.push(rs1),
            Inst::VArith { src, .. } => {
                if let VSrc::X(rs1) = src {
                    v.push(rs1);
                }
            }
            Inst::VMvXS { .. } => {}
            Inst::VMvSX { rs1, .. } => v.push(rs1),
        }
        v.retain(|r| *r != XReg::ZERO);
        v
    }

    /// The integer register the instruction *writes*, if any. Writes to
    /// `zero` are reported as `None` (they are architectural no-ops).
    pub fn def_x(&self) -> Option<XReg> {
        let rd = match *self {
            Inst::Lui { rd, .. }
            | Inst::Auipc { rd, .. }
            | Inst::Jal { rd, .. }
            | Inst::Jalr { rd, .. }
            | Inst::Load { rd, .. }
            | Inst::OpImm { rd, .. }
            | Inst::Op { rd, .. }
            | Inst::Unary { rd, .. }
            | Inst::FCmp { rd, .. }
            | Inst::FMvToX { rd, .. }
            | Inst::FCvtToInt { rd, .. }
            | Inst::Vsetvli { rd, .. }
            | Inst::VMvXS { rd, .. } => rd,
            _ => return None,
        };
        if rd == XReg::ZERO {
            None
        } else {
            Some(rd)
        }
    }

    /// The statically known control-flow target of a direct jump or branch,
    /// given the instruction's own address. `None` for non-control-flow
    /// instructions and for indirect jumps.
    pub fn direct_target(&self, addr: u64) -> Option<u64> {
        match *self {
            Inst::Jal { offset, .. } | Inst::Branch { offset, .. } => {
                Some(addr.wrapping_add(offset as i64 as u64))
            }
            _ => None,
        }
    }

    /// Whether this instruction has an encoding in the compressed (RVC)
    /// subset we model, i.e. could occupy 2 bytes in a binary.
    pub fn has_compressed_form(&self) -> bool {
        crate::encode::encode_compressed(self).is_some()
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Lui { rd, imm20 } => write!(f, "lui {rd}, {imm20:#x}"),
            Inst::Auipc { rd, imm20 } => write!(f, "auipc {rd}, {imm20:#x}"),
            Inst::Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Inst::Jalr { rd, rs1, offset } => write!(f, "jalr {rd}, {offset}({rs1})"),
            Inst::Branch {
                kind,
                rs1,
                rs2,
                offset,
            } => write!(f, "{} {rs1}, {rs2}, {offset}", kind.mnemonic()),
            Inst::Load {
                kind,
                rd,
                rs1,
                offset,
            } => write!(f, "{} {rd}, {offset}({rs1})", kind.mnemonic()),
            Inst::Store {
                kind,
                rs1,
                rs2,
                offset,
            } => write!(f, "{} {rs2}, {offset}({rs1})", kind.mnemonic()),
            Inst::OpImm { kind, rd, rs1, imm } => {
                write!(f, "{} {rd}, {rs1}, {imm}", kind.mnemonic())
            }
            Inst::Op { kind, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", kind.mnemonic())
            }
            Inst::Unary { kind, rd, rs1 } => write!(f, "{} {rd}, {rs1}", kind.mnemonic()),
            Inst::Fence => write!(f, "fence"),
            Inst::Ecall => write!(f, "ecall"),
            Inst::Ebreak => write!(f, "ebreak"),
            Inst::FLoad {
                width,
                frd,
                rs1,
                offset,
            } => write!(f, "fl{} {frd}, {offset}({rs1})", width_letter(width)),
            Inst::FStore {
                width,
                frs2,
                rs1,
                offset,
            } => write!(f, "fs{} {frs2}, {offset}({rs1})", width_letter(width)),
            Inst::FOp {
                kind,
                width,
                frd,
                frs1,
                frs2,
            } => write!(
                f,
                "{}.{} {frd}, {frs1}, {frs2}",
                kind.stem(),
                width.suffix()
            ),
            Inst::FCmp {
                kind,
                width,
                rd,
                frs1,
                frs2,
            } => write!(f, "{}.{} {rd}, {frs1}, {frs2}", kind.stem(), width.suffix()),
            Inst::FMvToX { width, rd, frs1 } => {
                let w = match width {
                    FpWidth::S => 'w',
                    FpWidth::D => 'd',
                };
                write!(f, "fmv.x.{w} {rd}, {frs1}")
            }
            Inst::FMvToF { width, frd, rs1 } => {
                let w = match width {
                    FpWidth::S => 'w',
                    FpWidth::D => 'd',
                };
                write!(f, "fmv.{w}.x {frd}, {rs1}")
            }
            Inst::FCvtToF {
                width,
                from,
                signed,
                frd,
                rs1,
            } => {
                let i = int_suffix(from, signed);
                write!(f, "fcvt.{}.{i} {frd}, {rs1}", width.suffix())
            }
            Inst::FCvtToInt {
                width,
                to,
                signed,
                rd,
                frs1,
            } => {
                let i = int_suffix(to, signed);
                write!(f, "fcvt.{i}.{} {rd}, {frs1}", width.suffix())
            }
            Inst::FCvtFF { to, frd, frs1 } => {
                let from = match to {
                    FpWidth::S => 'd',
                    FpWidth::D => 's',
                };
                write!(f, "fcvt.{}.{from} {frd}, {frs1}", to.suffix())
            }
            Inst::FMa {
                kind,
                width,
                frd,
                frs1,
                frs2,
                frs3,
            } => write!(
                f,
                "{}.{} {frd}, {frs1}, {frs2}, {frs3}",
                kind.stem(),
                width.suffix()
            ),
            Inst::Vsetvli { rd, rs1, vtype } => {
                let sew = vtype.sew.bits();
                write!(
                    f,
                    "vsetvli {rd}, {rs1}, e{sew}, m{}, {}, {}",
                    vtype.lmul,
                    if vtype.ta { "ta" } else { "tu" },
                    if vtype.ma { "ma" } else { "mu" },
                )
            }
            Inst::VLoad { eew, vd, rs1 } => write!(f, "vle{}.v {vd}, ({rs1})", eew.bits()),
            Inst::VStore { eew, vs3, rs1 } => write!(f, "vse{}.v {vs3}, ({rs1})", eew.bits()),
            Inst::VArith { op, vd, vs2, src } => match src {
                VSrc::V(vs1) => {
                    if op.is_reduction() {
                        write!(f, "{}.vs {vd}, {vs2}, {vs1}", op.stem())
                    } else if op == VArithOp::Vmv {
                        write!(f, "vmv.v.v {vd}, {vs1}")
                    } else {
                        write!(f, "{}.vv {vd}, {vs2}, {vs1}", op.stem())
                    }
                }
                VSrc::X(rs1) => {
                    if op == VArithOp::Vmv {
                        write!(f, "vmv.v.x {vd}, {rs1}")
                    } else {
                        write!(f, "{}.vx {vd}, {vs2}, {rs1}", op.stem())
                    }
                }
                VSrc::F(frs1) => write!(f, "{}.vf {vd}, {vs2}, {frs1}", op.stem()),
                VSrc::I(imm) => {
                    if op == VArithOp::Vmv {
                        write!(f, "vmv.v.i {vd}, {imm}")
                    } else {
                        write!(f, "{}.vi {vd}, {vs2}, {imm}", op.stem())
                    }
                }
            },
            Inst::VMvXS { rd, vs2 } => write!(f, "vmv.x.s {rd}, {vs2}"),
            Inst::VMvSX { vd, rs1 } => write!(f, "vmv.s.x {vd}, {rs1}"),
        }
    }
}

fn width_letter(w: FpWidth) -> char {
    match w {
        FpWidth::S => 'w',
        FpWidth::D => 'd',
    }
}

fn int_suffix(w: IntWidth, signed: bool) -> &'static str {
    match (w, signed) {
        (IntWidth::W, true) => "w",
        (IntWidth::W, false) => "wu",
        (IntWidth::L, true) => "l",
        (IntWidth::L, false) => "lu",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext_classification() {
        let add = Inst::Op {
            kind: OpKind::Add,
            rd: XReg::A0,
            rs1: XReg::A1,
            rs2: XReg::A2,
        };
        assert_eq!(add.ext(), None);
        assert!(add.runnable_on(ExtSet::RV64I));

        let mul = Inst::Op {
            kind: OpKind::Mul,
            rd: XReg::A0,
            rs1: XReg::A1,
            rs2: XReg::A2,
        };
        assert_eq!(mul.ext(), Some(Ext::M));
        assert!(!mul.runnable_on(ExtSet::RV64I));
        assert!(mul.runnable_on(ExtSet::RV64GC));

        let vadd = Inst::VArith {
            op: VArithOp::Vadd,
            vd: VReg::of(1),
            vs2: VReg::of(2),
            src: VSrc::V(VReg::of(3)),
        };
        assert_eq!(vadd.ext(), Some(Ext::V));
        assert!(!vadd.runnable_on(ExtSet::RV64GC));
        assert!(vadd.runnable_on(ExtSet::RV64GCV));
    }

    #[test]
    fn defs_and_uses() {
        let i = Inst::Op {
            kind: OpKind::Add,
            rd: XReg::A0,
            rs1: XReg::A1,
            rs2: XReg::A2,
        };
        assert_eq!(i.def_x(), Some(XReg::A0));
        assert_eq!(i.uses_x(), vec![XReg::A1, XReg::A2]);

        // Writes to zero are architectural no-ops.
        let nop = Inst::OpImm {
            kind: OpImmKind::Addi,
            rd: XReg::ZERO,
            rs1: XReg::ZERO,
            imm: 0,
        };
        assert_eq!(nop.def_x(), None);
        assert!(nop.uses_x().is_empty());

        let st = Inst::Store {
            kind: StoreKind::Sd,
            rs1: XReg::SP,
            rs2: XReg::A0,
            offset: 8,
        };
        assert_eq!(st.def_x(), None);
        assert_eq!(st.uses_x(), vec![XReg::SP, XReg::A0]);
    }

    #[test]
    fn control_flow_properties() {
        let jal = Inst::Jal {
            rd: XReg::RA,
            offset: 64,
        };
        assert!(jal.is_jump());
        assert!(!jal.is_indirect_jump());
        assert_eq!(jal.direct_target(0x1000), Some(0x1040));

        let jalr = Inst::Jalr {
            rd: XReg::ZERO,
            rs1: XReg::A0,
            offset: 0,
        };
        assert!(jalr.is_indirect_jump());
        assert_eq!(jalr.direct_target(0x1000), None);

        let b = Inst::Branch {
            kind: BranchKind::Beq,
            rs1: XReg::A0,
            rs2: XReg::A1,
            offset: -8,
        };
        assert!(b.is_branch());
        assert!(b.is_terminator());
        assert_eq!(b.direct_target(0x1008), Some(0x1000));
    }

    #[test]
    fn vtype_bits_roundtrip() {
        for sew in [Eew::E8, Eew::E16, Eew::E32, Eew::E64] {
            for lmul in [1u8, 2, 4, 8] {
                for ta in [false, true] {
                    for ma in [false, true] {
                        let vt = VType { sew, lmul, ta, ma };
                        assert_eq!(VType::from_bits(vt.to_bits()), Some(vt));
                    }
                }
            }
        }
        // Fractional LMUL encodings are outside the subset.
        assert_eq!(VType::from_bits(0b101), None);
    }

    #[test]
    fn display_smoke() {
        let i = Inst::Vsetvli {
            rd: XReg::T0,
            rs1: XReg::A0,
            vtype: VType {
                sew: Eew::E64,
                lmul: 1,
                ta: true,
                ma: true,
            },
        };
        assert_eq!(i.to_string(), "vsetvli t0, a0, e64, m1, ta, ma");

        let l = Inst::Load {
            kind: LoadKind::Ld,
            rd: XReg::A0,
            rs1: XReg::SP,
            offset: 16,
        };
        assert_eq!(l.to_string(), "ld a0, 16(sp)");
    }
}
