//! # chimera-isa
//!
//! The RISC-V ISA model underpinning the Chimera reproduction: typed
//! instructions ([`Inst`]), registers ([`XReg`], [`FReg`], [`VReg`]),
//! extension profiles ([`ExtSet`]), and exact binary encode/decode for the
//! RV64IMFDCVB subset, including compressed (RVC) encodings.
//!
//! Everything above this crate — the emulator, the binary analysis, and the
//! CHBP rewriter — manipulates instructions through this model. Two
//! properties matter system-wide:
//!
//! 1. **Exactness.** `decode(encode(i)) == i` for every well-formed
//!    instruction (property-tested). The rewriter depends on this to patch
//!    binaries at the byte level without corrupting neighbours.
//! 2. **Faithful illegality.** Encodings outside the subset decode to
//!    errors, and the *reserved* spaces the paper's SMILE trampoline relies
//!    on (the ≥48-bit `xxx11111` prefix and the RVC-reserved rows) are
//!    reported as such, so "partial trampoline execution always traps"
//!    can be verified by construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
mod decode;
mod encode;
mod ext;
mod inst;
mod reg;

pub use decode::{decode, decode_compressed, encoded_len, DecodeError, Decoded};
pub use encode::{encode, encode_compressed, EncodeError};
pub use ext::{Ext, ExtSet};
pub use inst::*;
pub use reg::{FReg, VReg, XReg};

/// The vector register width in bits our machine model uses (matching the
/// SpacemiT K1 in the paper's testbed).
pub const VLEN: u32 = 256;

/// Convenience: the canonical 4-byte `nop` (`addi zero, zero, 0`).
pub fn nop() -> Inst {
    Inst::OpImm {
        kind: OpImmKind::Addi,
        rd: XReg::ZERO,
        rs1: XReg::ZERO,
        imm: 0,
    }
}

/// Convenience: a register move (`addi rd, rs, 0`).
pub fn mv(rd: XReg, rs: XReg) -> Inst {
    Inst::OpImm {
        kind: OpImmKind::Addi,
        rd,
        rs1: rs,
        imm: 0,
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_xreg() -> impl Strategy<Value = XReg> {
        (0u8..32).prop_map(XReg::of)
    }

    fn arb_freg() -> impl Strategy<Value = FReg> {
        (0u8..32).prop_map(FReg::of)
    }

    fn arb_vreg() -> impl Strategy<Value = VReg> {
        (0u8..32).prop_map(VReg::of)
    }

    fn arb_i12() -> impl Strategy<Value = i32> {
        -2048i32..=2047
    }

    prop_compose! {
        fn arb_branch()(
            k in prop_oneof![
                Just(BranchKind::Beq), Just(BranchKind::Bne), Just(BranchKind::Blt),
                Just(BranchKind::Bge), Just(BranchKind::Bltu), Just(BranchKind::Bgeu)
            ],
            rs1 in arb_xreg(), rs2 in arb_xreg(),
            off in (-2048i32..=2047).prop_map(|x| x * 2),
        ) -> Inst {
            Inst::Branch { kind: k, rs1, rs2, offset: off }
        }
    }

    fn arb_inst() -> impl Strategy<Value = Inst> {
        prop_oneof![
            (arb_xreg(), -(1i32 << 19)..(1 << 19))
                .prop_map(|(rd, imm20)| Inst::Lui { rd, imm20 }),
            (arb_xreg(), -(1i32 << 19)..(1 << 19))
                .prop_map(|(rd, imm20)| Inst::Auipc { rd, imm20 }),
            (arb_xreg(), (-(1i32 << 19)..(1 << 19)).prop_map(|x| x * 2))
                .prop_map(|(rd, offset)| Inst::Jal { rd, offset }),
            (arb_xreg(), arb_xreg(), arb_i12())
                .prop_map(|(rd, rs1, offset)| Inst::Jalr { rd, rs1, offset }),
            arb_branch(),
            (
                prop_oneof![
                    Just(LoadKind::Lb), Just(LoadKind::Lh), Just(LoadKind::Lw),
                    Just(LoadKind::Ld), Just(LoadKind::Lbu), Just(LoadKind::Lhu),
                    Just(LoadKind::Lwu)
                ],
                arb_xreg(), arb_xreg(), arb_i12()
            )
                .prop_map(|(kind, rd, rs1, offset)| Inst::Load { kind, rd, rs1, offset }),
            (
                prop_oneof![
                    Just(StoreKind::Sb), Just(StoreKind::Sh),
                    Just(StoreKind::Sw), Just(StoreKind::Sd)
                ],
                arb_xreg(), arb_xreg(), arb_i12()
            )
                .prop_map(|(kind, rs1, rs2, offset)| Inst::Store { kind, rs1, rs2, offset }),
            (
                prop_oneof![
                    Just(OpImmKind::Addi), Just(OpImmKind::Slti), Just(OpImmKind::Sltiu),
                    Just(OpImmKind::Xori), Just(OpImmKind::Ori), Just(OpImmKind::Andi),
                    Just(OpImmKind::Addiw)
                ],
                arb_xreg(), arb_xreg(), arb_i12()
            )
                .prop_map(|(kind, rd, rs1, imm)| Inst::OpImm { kind, rd, rs1, imm }),
            (
                prop_oneof![
                    Just(OpImmKind::Slli), Just(OpImmKind::Srli),
                    Just(OpImmKind::Srai), Just(OpImmKind::Rori)
                ],
                arb_xreg(), arb_xreg(), 0i32..64
            )
                .prop_map(|(kind, rd, rs1, imm)| Inst::OpImm { kind, rd, rs1, imm }),
            (
                prop_oneof![
                    Just(OpKind::Add), Just(OpKind::Sub), Just(OpKind::Sll),
                    Just(OpKind::Slt), Just(OpKind::Sltu), Just(OpKind::Xor),
                    Just(OpKind::Srl), Just(OpKind::Sra), Just(OpKind::Or),
                    Just(OpKind::And), Just(OpKind::Addw), Just(OpKind::Subw),
                    Just(OpKind::Mul), Just(OpKind::Mulhu), Just(OpKind::Div),
                    Just(OpKind::Remu), Just(OpKind::Mulw), Just(OpKind::Divw),
                    Just(OpKind::Sh1add), Just(OpKind::Sh2add), Just(OpKind::Sh3add),
                    Just(OpKind::Andn), Just(OpKind::Orn), Just(OpKind::Xnor),
                    Just(OpKind::Min), Just(OpKind::Maxu), Just(OpKind::Rol),
                    Just(OpKind::Ror), Just(OpKind::AddUw)
                ],
                arb_xreg(), arb_xreg(), arb_xreg()
            )
                .prop_map(|(kind, rd, rs1, rs2)| Inst::Op { kind, rd, rs1, rs2 }),
            (
                prop_oneof![
                    Just(UnaryKind::Clz), Just(UnaryKind::Ctz), Just(UnaryKind::Cpop),
                    Just(UnaryKind::SextB), Just(UnaryKind::SextH),
                    Just(UnaryKind::ZextH), Just(UnaryKind::Rev8)
                ],
                arb_xreg(), arb_xreg()
            )
                .prop_map(|(kind, rd, rs1)| Inst::Unary { kind, rd, rs1 }),
            Just(Inst::Fence),
            Just(Inst::Ecall),
            Just(Inst::Ebreak),
            (
                prop_oneof![Just(FpWidth::S), Just(FpWidth::D)],
                arb_freg(), arb_xreg(), arb_i12()
            )
                .prop_map(|(width, frd, rs1, offset)| Inst::FLoad { width, frd, rs1, offset }),
            (
                prop_oneof![Just(FpWidth::S), Just(FpWidth::D)],
                arb_freg(), arb_xreg(), arb_i12()
            )
                .prop_map(|(width, frs2, rs1, offset)| Inst::FStore { width, frs2, rs1, offset }),
            (
                prop_oneof![
                    Just(FOpKind::Add), Just(FOpKind::Sub), Just(FOpKind::Mul),
                    Just(FOpKind::Div), Just(FOpKind::Min), Just(FOpKind::Max),
                    Just(FOpKind::SgnJ), Just(FOpKind::SgnJN), Just(FOpKind::SgnJX)
                ],
                prop_oneof![Just(FpWidth::S), Just(FpWidth::D)],
                arb_freg(), arb_freg(), arb_freg()
            )
                .prop_map(|(kind, width, frd, frs1, frs2)| Inst::FOp {
                    kind, width, frd, frs1, frs2
                }),
            (
                prop_oneof![Just(FMaKind::Madd), Just(FMaKind::Msub),
                            Just(FMaKind::Nmsub), Just(FMaKind::Nmadd)],
                prop_oneof![Just(FpWidth::S), Just(FpWidth::D)],
                arb_freg(), arb_freg(), arb_freg(), arb_freg()
            )
                .prop_map(|(kind, width, frd, frs1, frs2, frs3)| Inst::FMa {
                    kind, width, frd, frs1, frs2, frs3
                }),
            (
                arb_xreg(), arb_xreg(),
                prop_oneof![Just(Eew::E8), Just(Eew::E16), Just(Eew::E32), Just(Eew::E64)],
                1u8..=4u8, any::<bool>(), any::<bool>()
            )
                .prop_map(|(rd, rs1, sew, lg, ta, ma)| Inst::Vsetvli {
                    rd, rs1,
                    vtype: VType { sew, lmul: 1 << (lg - 1), ta, ma }
                }),
            (
                prop_oneof![Just(Eew::E8), Just(Eew::E16), Just(Eew::E32), Just(Eew::E64)],
                arb_vreg(), arb_xreg()
            )
                .prop_map(|(eew, vd, rs1)| Inst::VLoad { eew, vd, rs1 }),
            (
                prop_oneof![Just(Eew::E8), Just(Eew::E16), Just(Eew::E32), Just(Eew::E64)],
                arb_vreg(), arb_xreg()
            )
                .prop_map(|(eew, vs3, rs1)| Inst::VStore { eew, vs3, rs1 }),
            (
                prop_oneof![
                    Just(VArithOp::Vadd), Just(VArithOp::Vsub), Just(VArithOp::Vand),
                    Just(VArithOp::Vor), Just(VArithOp::Vxor), Just(VArithOp::Vmul),
                    Just(VArithOp::Vmacc), Just(VArithOp::Vmin), Just(VArithOp::Vmax),
                    Just(VArithOp::Vfadd), Just(VArithOp::Vfsub), Just(VArithOp::Vfmul),
                    Just(VArithOp::Vfdiv), Just(VArithOp::Vfmacc)
                ],
                arb_vreg(), arb_vreg(), arb_xreg(), arb_freg(), any::<u8>()
            )
                .prop_map(|(op, vd, vs2, rs1, frs1, pick)| {
                    let src = if op.is_fp() {
                        if pick % 2 == 0 {
                            VSrc::V(VReg::of(pick % 32))
                        } else {
                            VSrc::F(frs1)
                        }
                    } else {
                        match pick % 2 {
                            0 => VSrc::V(VReg::of(pick % 32)),
                            _ => VSrc::X(rs1),
                        }
                    };
                    Inst::VArith { op, vd, vs2, src }
                }),
            (arb_xreg(), arb_vreg()).prop_map(|(rd, vs2)| Inst::VMvXS { rd, vs2 }),
            (arb_vreg(), arb_xreg()).prop_map(|(vd, rs1)| Inst::VMvSX { vd, rs1 }),
        ]
    }

    proptest! {
        /// `decode(encode(i)) == i` for every well-formed instruction.
        #[test]
        fn decode_encode_roundtrip(inst in arb_inst()) {
            let word = encode(&inst).expect("generated instructions encode");
            let d = decode(word).expect("encoded instructions decode");
            prop_assert_eq!(d.inst, inst);
            prop_assert_eq!(d.len, 4);
        }

        /// Compressed encodings expand back to the same canonical form.
        #[test]
        fn compressed_roundtrip(inst in arb_inst()) {
            if let Some(hw) = encode_compressed(&inst) {
                let d = decode(hw as u32).expect("compressed encodings decode");
                prop_assert_eq!(d.inst, inst);
                prop_assert_eq!(d.len, 2);
                prop_assert_ne!(hw & 0b11, 0b11);
            }
        }

        /// `Inst::ext()` agrees with `runnable_on` for all profiles.
        #[test]
        fn ext_runnable_consistency(inst in arb_inst()) {
            for profile in [ExtSet::RV64I, ExtSet::RV64GC, ExtSet::RV64GCV] {
                let expect = match inst.ext() {
                    None => true,
                    Some(e) => profile.contains(e),
                };
                prop_assert_eq!(inst.runnable_on(profile), expect);
            }
        }

        /// Decoding arbitrary words never panics.
        #[test]
        fn decode_total(word in any::<u32>()) {
            let _ = decode(word);
        }
    }
}
