//! # chimera-isa
//!
//! The RISC-V ISA model underpinning the Chimera reproduction: typed
//! instructions ([`Inst`]), registers ([`XReg`], [`FReg`], [`VReg`]),
//! extension profiles ([`ExtSet`]), and exact binary encode/decode for the
//! RV64IMFDCVB subset, including compressed (RVC) encodings.
//!
//! Everything above this crate — the emulator, the binary analysis, and the
//! CHBP rewriter — manipulates instructions through this model. Two
//! properties matter system-wide:
//!
//! 1. **Exactness.** `decode(encode(i)) == i` for every well-formed
//!    instruction (property-tested). The rewriter depends on this to patch
//!    binaries at the byte level without corrupting neighbours.
//! 2. **Faithful illegality.** Encodings outside the subset decode to
//!    errors, and the *reserved* spaces the paper's SMILE trampoline relies
//!    on (the ≥48-bit `xxx11111` prefix and the RVC-reserved rows) are
//!    reported as such, so "partial trampoline execution always traps"
//!    can be verified by construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
mod decode;
mod encode;
mod ext;
mod inst;
pub mod prng;
mod reg;

pub use decode::{decode, decode_compressed, encoded_len, DecodeError, Decoded};
pub use encode::{encode, encode_compressed, EncodeError};
pub use ext::{Ext, ExtSet};
pub use inst::*;
pub use reg::{FReg, VReg, XReg};

/// The vector register width in bits our machine model uses (matching the
/// SpacemiT K1 in the paper's testbed).
pub const VLEN: u32 = 256;

/// Convenience: the canonical 4-byte `nop` (`addi zero, zero, 0`).
pub fn nop() -> Inst {
    Inst::OpImm {
        kind: OpImmKind::Addi,
        rd: XReg::ZERO,
        rs1: XReg::ZERO,
        imm: 0,
    }
}

/// Convenience: a register move (`addi rd, rs, 0`).
pub fn mv(rd: XReg, rs: XReg) -> Inst {
    Inst::OpImm {
        kind: OpImmKind::Addi,
        rd,
        rs1: rs,
        imm: 0,
    }
}
