//! Register definitions for the RV64 integer, floating-point and vector
//! register files.
//!
//! The integer register file follows the RISC-V psABI calling convention
//! ([`XReg::abi_name`]); the `gp` register (`x3`) plays a central role in
//! Chimera's SMILE trampoline because the psABI guarantees its value is a
//! link-time constant pointing into the data segment.

use core::fmt;

/// An integer (`x`) register, `x0`..`x31`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct XReg(u8);

impl XReg {
    /// Hard-wired zero register.
    pub const ZERO: XReg = XReg(0);
    /// Return address (`x1`).
    pub const RA: XReg = XReg(1);
    /// Stack pointer (`x2`).
    pub const SP: XReg = XReg(2);
    /// Global pointer (`x3`). Under the RISC-V psABI this register holds a
    /// constant address inside the data segment; Chimera's SMILE trampoline
    /// depends on both properties (constant, hence restorable; data-segment,
    /// hence a jump through the *unmodified* gp faults deterministically).
    pub const GP: XReg = XReg(3);
    /// Thread pointer (`x4`).
    pub const TP: XReg = XReg(4);
    /// Temporary `t0` (`x5`).
    pub const T0: XReg = XReg(5);
    /// Temporary `t1` (`x6`).
    pub const T1: XReg = XReg(6);
    /// Temporary `t2` (`x7`).
    pub const T2: XReg = XReg(7);
    /// Saved register / frame pointer `s0` (`x8`).
    pub const S0: XReg = XReg(8);
    /// Saved register `s1` (`x9`).
    pub const S1: XReg = XReg(9);
    /// Argument/return register `a0` (`x10`).
    pub const A0: XReg = XReg(10);
    /// Argument/return register `a1` (`x11`).
    pub const A1: XReg = XReg(11);
    /// Argument register `a2` (`x12`).
    pub const A2: XReg = XReg(12);
    /// Argument register `a3` (`x13`).
    pub const A3: XReg = XReg(13);
    /// Argument register `a4` (`x14`).
    pub const A4: XReg = XReg(14);
    /// Argument register `a5` (`x15`).
    pub const A5: XReg = XReg(15);
    /// Argument register `a6` (`x16`).
    pub const A6: XReg = XReg(16);
    /// Argument register `a7` (`x17`), also the syscall number register.
    pub const A7: XReg = XReg(17);
    /// Saved register `s2` (`x18`).
    pub const S2: XReg = XReg(18);
    /// Saved register `s3` (`x19`).
    pub const S3: XReg = XReg(19);
    /// Saved register `s4` (`x20`).
    pub const S4: XReg = XReg(20);
    /// Saved register `s5` (`x21`).
    pub const S5: XReg = XReg(21);
    /// Saved register `s6` (`x22`).
    pub const S6: XReg = XReg(22);
    /// Saved register `s7` (`x23`).
    pub const S7: XReg = XReg(23);
    /// Saved register `s8` (`x24`).
    pub const S8: XReg = XReg(24);
    /// Saved register `s9` (`x25`).
    pub const S9: XReg = XReg(25);
    /// Saved register `s10` (`x26`).
    pub const S10: XReg = XReg(26);
    /// Saved register `s11` (`x27`).
    pub const S11: XReg = XReg(27);
    /// Temporary `t3` (`x28`).
    pub const T3: XReg = XReg(28);
    /// Temporary `t4` (`x29`).
    pub const T4: XReg = XReg(29);
    /// Temporary `t5` (`x30`).
    pub const T5: XReg = XReg(30);
    /// Temporary `t6` (`x31`).
    pub const T6: XReg = XReg(31);

    /// Creates a register from its index, returning `None` for indices > 31.
    pub const fn new(index: u8) -> Option<XReg> {
        if index < 32 {
            Some(XReg(index))
        } else {
            None
        }
    }

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index > 31`; use [`XReg::new`] for a fallible constructor.
    pub const fn of(index: u8) -> XReg {
        assert!(index < 32, "x-register index out of range");
        XReg(index)
    }

    /// Creates a register from the 3-bit index used by compressed (RVC)
    /// encodings, which address only `x8`..`x15`.
    pub const fn of_compressed(index3: u8) -> XReg {
        assert!(index3 < 8, "compressed register index out of range");
        XReg(index3 + 8)
    }

    /// The register's numeric index (0..=31).
    pub const fn index(self) -> u8 {
        self.0
    }

    /// Whether the register is addressable by 3-bit compressed encodings
    /// (`x8`..`x15`).
    pub const fn is_compressed_addressable(self) -> bool {
        self.0 >= 8 && self.0 < 16
    }

    /// The psABI name of the register (e.g. `a0`, `gp`).
    pub const fn abi_name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
            "t3", "t4", "t5", "t6",
        ];
        NAMES[self.0 as usize]
    }

    /// All 32 integer registers in index order.
    pub fn all() -> impl Iterator<Item = XReg> {
        (0u8..32).map(XReg)
    }

    /// Caller-saved temporaries in the psABI (`t0`..`t6`, `a0`..`a7`, `ra`).
    ///
    /// These are the candidates the rewriter's exit-register selection
    /// considers first, because a dead temporary is most likely among them.
    pub fn caller_saved() -> impl Iterator<Item = XReg> {
        [5u8, 6, 7, 28, 29, 30, 31, 10, 11, 12, 13, 14, 15, 16, 17, 1]
            .into_iter()
            .map(XReg)
    }
}

impl fmt::Display for XReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

/// A floating-point (`f`) register, `f0`..`f31`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FReg(u8);

impl FReg {
    /// FP argument/return register `fa0` (`f10`).
    pub const FA0: FReg = FReg(10);
    /// FP argument register `fa1` (`f11`).
    pub const FA1: FReg = FReg(11);
    /// FP temporary `ft0` (`f0`).
    pub const FT0: FReg = FReg(0);
    /// FP temporary `ft1` (`f1`).
    pub const FT1: FReg = FReg(1);

    /// Creates a register from its index, returning `None` for indices > 31.
    pub const fn new(index: u8) -> Option<FReg> {
        if index < 32 {
            Some(FReg(index))
        } else {
            None
        }
    }

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index > 31`.
    pub const fn of(index: u8) -> FReg {
        assert!(index < 32, "f-register index out of range");
        FReg(index)
    }

    /// The register's numeric index (0..=31).
    pub const fn index(self) -> u8 {
        self.0
    }

    /// The psABI name of the register (e.g. `fa0`, `ft3`).
    pub const fn abi_name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7", "fs0", "fs1", "fa0", "fa1",
            "fa2", "fa3", "fa4", "fa5", "fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7",
            "fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
        ];
        NAMES[self.0 as usize]
    }

    /// All 32 floating-point registers in index order.
    pub fn all() -> impl Iterator<Item = FReg> {
        (0u8..32).map(FReg)
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

/// A vector (`v`) register, `v0`..`v31` (RVV 1.0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VReg(u8);

impl VReg {
    /// Vector register `v0` (the mask register in masked operations).
    pub const V0: VReg = VReg(0);

    /// Creates a register from its index, returning `None` for indices > 31.
    pub const fn new(index: u8) -> Option<VReg> {
        if index < 32 {
            Some(VReg(index))
        } else {
            None
        }
    }

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index > 31`.
    pub const fn of(index: u8) -> VReg {
        assert!(index < 32, "v-register index out of range");
        VReg(index)
    }

    /// The register's numeric index (0..=31).
    pub const fn index(self) -> u8 {
        self.0
    }

    /// All 32 vector registers in index order.
    pub fn all() -> impl Iterator<Item = VReg> {
        (0u8..32).map(VReg)
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xreg_abi_names_match_indices() {
        assert_eq!(XReg::ZERO.abi_name(), "zero");
        assert_eq!(XReg::GP.abi_name(), "gp");
        assert_eq!(XReg::GP.index(), 3);
        assert_eq!(XReg::A0.abi_name(), "a0");
        assert_eq!(XReg::T6.abi_name(), "t6");
        assert_eq!(XReg::T6.index(), 31);
    }

    #[test]
    fn xreg_new_bounds() {
        assert!(XReg::new(31).is_some());
        assert!(XReg::new(32).is_none());
    }

    #[test]
    fn compressed_addressable_window() {
        assert!(!XReg::T2.is_compressed_addressable());
        assert!(XReg::S0.is_compressed_addressable());
        assert!(XReg::A5.is_compressed_addressable());
        assert!(!XReg::A6.is_compressed_addressable());
        assert_eq!(XReg::of_compressed(0), XReg::S0);
        assert_eq!(XReg::of_compressed(7), XReg::A5);
    }

    #[test]
    fn caller_saved_excludes_gp_sp() {
        let cs: Vec<XReg> = XReg::caller_saved().collect();
        assert!(!cs.contains(&XReg::GP));
        assert!(!cs.contains(&XReg::SP));
        assert!(!cs.contains(&XReg::ZERO));
        assert!(cs.contains(&XReg::T0));
        assert!(cs.contains(&XReg::A0));
    }

    #[test]
    fn freg_and_vreg_display() {
        assert_eq!(FReg::FA0.to_string(), "fa0");
        assert_eq!(FReg::of(31).to_string(), "ft11");
        assert_eq!(VReg::of(7).to_string(), "v7");
    }

    #[test]
    fn all_iterators_cover_register_files() {
        assert_eq!(XReg::all().count(), 32);
        assert_eq!(FReg::all().count(), 32);
        assert_eq!(VReg::all().count(), 32);
    }
}
