//! Instruction decoding: 32-bit and compressed 16-bit machine words into
//! canonical [`Inst`] values.
//!
//! Anything outside the modelled subset decodes to
//! [`DecodeError::Unrecognized`]; the emulator turns that into an
//! illegal-instruction trap, which is both the FAM migration trigger and the
//! trigger for Chimera's lazy rewriting of instructions the static
//! disassembly missed (§4.1 of the paper). [`DecodeError::ReservedLong`]
//! flags the `xxx11111`/`x1111111` prefixes that RISC-V reserves for ≥48-bit
//! encodings — the prefix Chimera's compressed-safe SMILE placement relies
//! on for the `P2` interior jump target.

use crate::bits::*;
use crate::inst::*;
use crate::reg::{FReg, VReg, XReg};
use core::fmt;

/// A successfully decoded instruction plus its encoded length in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decoded {
    /// The canonical instruction.
    pub inst: Inst,
    /// Encoded length: 2 (compressed) or 4.
    pub len: u8,
}

/// Decoding failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The bits do not encode an instruction in the modelled subset. The
    /// payload is the raw word (low 16 bits significant for compressed).
    Unrecognized(u32),
    /// The bits carry a reserved longer-than-32-bit encoding prefix
    /// (`bits[4:0] = 11111`); always an illegal instruction on RV64GC(V)
    /// hardware of today.
    ReservedLong(u32),
}

impl DecodeError {
    /// The raw bits that failed to decode.
    pub fn raw(&self) -> u32 {
        match *self {
            DecodeError::Unrecognized(w) | DecodeError::ReservedLong(w) => w,
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Unrecognized(w) => write!(f, "unrecognized instruction {w:#010x}"),
            DecodeError::ReservedLong(w) => {
                write!(f, "reserved long-encoding prefix {w:#010x}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// The byte length implied by an encoding's length bits, without decoding:
/// 2 if `bits[1:0] != 11`, else 4.
///
/// Reserved ≥48-bit prefixes also report 4; they never execute (the fetch
/// traps), so the value only guides linear disassembly skips.
pub fn encoded_len(halfword: u16) -> u8 {
    if halfword & 0b11 == 0b11 {
        4
    } else {
        2
    }
}

fn xr(word: u32, lo: u32) -> XReg {
    XReg::of(field(word, lo, 5) as u8)
}

fn fr(word: u32, lo: u32) -> FReg {
    FReg::of(field(word, lo, 5) as u8)
}

fn vr(word: u32, lo: u32) -> VReg {
    VReg::of(field(word, lo, 5) as u8)
}

/// Decodes a machine word. `word` carries the full 32 bits at the fetch
/// address; for a compressed instruction only the low 16 bits are used.
pub fn decode(word: u32) -> Result<Decoded, DecodeError> {
    if word & 0b11 != 0b11 {
        return decode_compressed(word as u16).map(|inst| Decoded { inst, len: 2 });
    }
    if word & 0b11111 == 0b11111 {
        // 48-bit+ reserved prefix (covers both `011111` 48-bit and
        // `x1111111` 64-bit+ spaces for our purposes).
        return Err(DecodeError::ReservedLong(word));
    }
    decode32(word).map(|inst| Decoded { inst, len: 4 })
}

fn decode32(word: u32) -> Result<Inst, DecodeError> {
    let opcode = word & 0x7f;
    let rd = || xr(word, 7);
    let rs1 = || xr(word, 15);
    let rs2 = || xr(word, 20);
    let funct3 = field(word, 12, 3);
    let funct7 = field(word, 25, 7);
    let err = Err(DecodeError::Unrecognized(word));

    Ok(match opcode {
        0b0110111 => Inst::Lui {
            rd: rd(),
            imm20: utype_imm_of(word),
        },
        0b0010111 => Inst::Auipc {
            rd: rd(),
            imm20: utype_imm_of(word),
        },
        0b1101111 => Inst::Jal {
            rd: rd(),
            offset: jtype_imm_of(word),
        },
        0b1100111 => {
            if funct3 != 0 {
                return err;
            }
            Inst::Jalr {
                rd: rd(),
                rs1: rs1(),
                offset: itype_imm_of(word),
            }
        }
        0b1100011 => {
            let kind = match funct3 {
                0b000 => BranchKind::Beq,
                0b001 => BranchKind::Bne,
                0b100 => BranchKind::Blt,
                0b101 => BranchKind::Bge,
                0b110 => BranchKind::Bltu,
                0b111 => BranchKind::Bgeu,
                _ => return err,
            };
            Inst::Branch {
                kind,
                rs1: rs1(),
                rs2: rs2(),
                offset: btype_imm_of(word),
            }
        }
        0b0000011 => {
            let kind = match funct3 {
                0b000 => LoadKind::Lb,
                0b001 => LoadKind::Lh,
                0b010 => LoadKind::Lw,
                0b011 => LoadKind::Ld,
                0b100 => LoadKind::Lbu,
                0b101 => LoadKind::Lhu,
                0b110 => LoadKind::Lwu,
                _ => return err,
            };
            Inst::Load {
                kind,
                rd: rd(),
                rs1: rs1(),
                offset: itype_imm_of(word),
            }
        }
        0b0100011 => {
            let kind = match funct3 {
                0b000 => StoreKind::Sb,
                0b001 => StoreKind::Sh,
                0b010 => StoreKind::Sw,
                0b011 => StoreKind::Sd,
                _ => return err,
            };
            Inst::Store {
                kind,
                rs1: rs1(),
                rs2: rs2(),
                offset: stype_imm_of(word),
            }
        }
        0b0010011 => {
            let imm = itype_imm_of(word);
            let kind = match funct3 {
                0b000 => OpImmKind::Addi,
                0b010 => OpImmKind::Slti,
                0b011 => OpImmKind::Sltiu,
                0b100 => OpImmKind::Xori,
                0b110 => OpImmKind::Ori,
                0b111 => OpImmKind::Andi,
                0b001 => {
                    let funct6 = field(word, 26, 6);
                    let sel = field(word, 20, 5);
                    if funct6 == 0b000000 {
                        return Ok(Inst::OpImm {
                            kind: OpImmKind::Slli,
                            rd: rd(),
                            rs1: rs1(),
                            imm: field(word, 20, 6) as i32,
                        });
                    }
                    if funct7 == 0b0110000 {
                        let kind = match sel {
                            0b00000 => UnaryKind::Clz,
                            0b00001 => UnaryKind::Ctz,
                            0b00010 => UnaryKind::Cpop,
                            0b00100 => UnaryKind::SextB,
                            0b00101 => UnaryKind::SextH,
                            _ => return err,
                        };
                        return Ok(Inst::Unary {
                            kind,
                            rd: rd(),
                            rs1: rs1(),
                        });
                    }
                    return err;
                }
                0b101 => {
                    let funct6 = field(word, 26, 6);
                    let shamt = field(word, 20, 6) as i32;
                    return match funct6 {
                        0b000000 => Ok(Inst::OpImm {
                            kind: OpImmKind::Srli,
                            rd: rd(),
                            rs1: rs1(),
                            imm: shamt,
                        }),
                        0b010000 => Ok(Inst::OpImm {
                            kind: OpImmKind::Srai,
                            rd: rd(),
                            rs1: rs1(),
                            imm: shamt,
                        }),
                        0b011000 => Ok(Inst::OpImm {
                            kind: OpImmKind::Rori,
                            rd: rd(),
                            rs1: rs1(),
                            imm: shamt,
                        }),
                        0b011010 if field(word, 20, 5) == 0b11000 && funct7 == 0b0110101 => {
                            Ok(Inst::Unary {
                                kind: UnaryKind::Rev8,
                                rd: rd(),
                                rs1: rs1(),
                            })
                        }
                        _ => err,
                    };
                }
                _ => return err,
            };
            Inst::OpImm {
                kind,
                rd: rd(),
                rs1: rs1(),
                imm,
            }
        }
        0b0011011 => match funct3 {
            0b000 => Inst::OpImm {
                kind: OpImmKind::Addiw,
                rd: rd(),
                rs1: rs1(),
                imm: itype_imm_of(word),
            },
            0b001 if funct7 == 0b0000000 => Inst::OpImm {
                kind: OpImmKind::Slliw,
                rd: rd(),
                rs1: rs1(),
                imm: field(word, 20, 5) as i32,
            },
            0b101 if funct7 == 0b0000000 => Inst::OpImm {
                kind: OpImmKind::Srliw,
                rd: rd(),
                rs1: rs1(),
                imm: field(word, 20, 5) as i32,
            },
            0b101 if funct7 == 0b0100000 => Inst::OpImm {
                kind: OpImmKind::Sraiw,
                rd: rd(),
                rs1: rs1(),
                imm: field(word, 20, 5) as i32,
            },
            _ => return err,
        },
        0b0110011 | 0b0111011 => {
            let is32 = opcode == 0b0111011;
            let kind = match (is32, funct7, funct3) {
                (false, 0b0000000, 0b000) => OpKind::Add,
                (false, 0b0100000, 0b000) => OpKind::Sub,
                (false, 0b0000000, 0b001) => OpKind::Sll,
                (false, 0b0000000, 0b010) => OpKind::Slt,
                (false, 0b0000000, 0b011) => OpKind::Sltu,
                (false, 0b0000000, 0b100) => OpKind::Xor,
                (false, 0b0000000, 0b101) => OpKind::Srl,
                (false, 0b0100000, 0b101) => OpKind::Sra,
                (false, 0b0000000, 0b110) => OpKind::Or,
                (false, 0b0000000, 0b111) => OpKind::And,
                (false, 0b0000001, 0b000) => OpKind::Mul,
                (false, 0b0000001, 0b001) => OpKind::Mulh,
                (false, 0b0000001, 0b010) => OpKind::Mulhsu,
                (false, 0b0000001, 0b011) => OpKind::Mulhu,
                (false, 0b0000001, 0b100) => OpKind::Div,
                (false, 0b0000001, 0b101) => OpKind::Divu,
                (false, 0b0000001, 0b110) => OpKind::Rem,
                (false, 0b0000001, 0b111) => OpKind::Remu,
                (false, 0b0010000, 0b010) => OpKind::Sh1add,
                (false, 0b0010000, 0b100) => OpKind::Sh2add,
                (false, 0b0010000, 0b110) => OpKind::Sh3add,
                (false, 0b0100000, 0b111) => OpKind::Andn,
                (false, 0b0100000, 0b110) => OpKind::Orn,
                (false, 0b0100000, 0b100) => OpKind::Xnor,
                (false, 0b0000101, 0b100) => OpKind::Min,
                (false, 0b0000101, 0b101) => OpKind::Minu,
                (false, 0b0000101, 0b110) => OpKind::Max,
                (false, 0b0000101, 0b111) => OpKind::Maxu,
                (false, 0b0110000, 0b001) => OpKind::Rol,
                (false, 0b0110000, 0b101) => OpKind::Ror,
                (true, 0b0000000, 0b000) => OpKind::Addw,
                (true, 0b0100000, 0b000) => OpKind::Subw,
                (true, 0b0000000, 0b001) => OpKind::Sllw,
                (true, 0b0000000, 0b101) => OpKind::Srlw,
                (true, 0b0100000, 0b101) => OpKind::Sraw,
                (true, 0b0000001, 0b000) => OpKind::Mulw,
                (true, 0b0000001, 0b100) => OpKind::Divw,
                (true, 0b0000001, 0b101) => OpKind::Divuw,
                (true, 0b0000001, 0b110) => OpKind::Remw,
                (true, 0b0000001, 0b111) => OpKind::Remuw,
                (true, 0b0000100, 0b000) => OpKind::AddUw,
                (true, 0b0000100, 0b100) if field(word, 20, 5) == 0 => {
                    return Ok(Inst::Unary {
                        kind: UnaryKind::ZextH,
                        rd: rd(),
                        rs1: rs1(),
                    });
                }
                _ => return err,
            };
            Inst::Op {
                kind,
                rd: rd(),
                rs1: rs1(),
                rs2: rs2(),
            }
        }
        0b0001111 => Inst::Fence,
        0b1110011 => match word >> 7 {
            0 => Inst::Ecall,
            0x2000 => Inst::Ebreak,
            _ => return err,
        },
        0b0000111 => {
            // flw/fld or vector unit-stride load.
            match funct3 {
                0b010 | 0b011 => Inst::FLoad {
                    width: if funct3 == 0b010 {
                        FpWidth::S
                    } else {
                        FpWidth::D
                    },
                    frd: fr(word, 7),
                    rs1: rs1(),
                    offset: itype_imm_of(word),
                },
                0b000 | 0b101 | 0b110 | 0b111 => {
                    // Require nf=0, mew=0, mop=00, vm=1, lumop=00000.
                    if field(word, 20, 12) != 0b0000_0010_0000 {
                        return err;
                    }
                    let eew = match funct3 {
                        0b000 => Eew::E8,
                        0b101 => Eew::E16,
                        0b110 => Eew::E32,
                        _ => Eew::E64,
                    };
                    Inst::VLoad {
                        eew,
                        vd: vr(word, 7),
                        rs1: rs1(),
                    }
                }
                _ => return err,
            }
        }
        0b0100111 => {
            match funct3 {
                0b010 | 0b011 => Inst::FStore {
                    width: if funct3 == 0b010 {
                        FpWidth::S
                    } else {
                        FpWidth::D
                    },
                    frs2: fr(word, 20),
                    rs1: rs1(),
                    offset: stype_imm_of(word),
                },
                0b000 | 0b101 | 0b110 | 0b111 => {
                    // Require nf=0, mew=0, mop=00, vm=1, sumop=00000;
                    // the S-immediate split puts sumop in rs2's slot.
                    if field(word, 25, 7) != 0b0000001 || field(word, 20, 5) != 0 {
                        return err;
                    }
                    let eew = match funct3 {
                        0b000 => Eew::E8,
                        0b101 => Eew::E16,
                        0b110 => Eew::E32,
                        _ => Eew::E64,
                    };
                    Inst::VStore {
                        eew,
                        vs3: vr(word, 7),
                        rs1: rs1(),
                    }
                }
                _ => return err,
            }
        }
        0b1010011 => return decode_opfp(word),
        0b1000011 | 0b1000111 | 0b1001011 | 0b1001111 => {
            let kind = match opcode {
                0b1000011 => FMaKind::Madd,
                0b1000111 => FMaKind::Msub,
                0b1001011 => FMaKind::Nmsub,
                _ => FMaKind::Nmadd,
            };
            let width = match field(word, 25, 2) {
                0b00 => FpWidth::S,
                0b01 => FpWidth::D,
                _ => return err,
            };
            Inst::FMa {
                kind,
                width,
                frd: fr(word, 7),
                frs1: fr(word, 15),
                frs2: fr(word, 20),
                frs3: fr(word, 27),
            }
        }
        0b1010111 => return decode_opv(word),
        _ => return err,
    })
}

fn decode_opfp(word: u32) -> Result<Inst, DecodeError> {
    let err = Err(DecodeError::Unrecognized(word));
    let funct7 = field(word, 25, 7);
    let funct3 = field(word, 12, 3);
    let funct5 = funct7 >> 2;
    let width = match funct7 & 0b11 {
        0b00 => FpWidth::S,
        0b01 => FpWidth::D,
        _ => return err,
    };
    let rd = xr(word, 7);
    let frd = fr(word, 7);
    let rs1 = xr(word, 15);
    let frs1 = fr(word, 15);
    let frs2 = fr(word, 20);
    let sel = field(word, 20, 5);

    Ok(match funct5 {
        0b00000 => Inst::FOp {
            kind: FOpKind::Add,
            width,
            frd,
            frs1,
            frs2,
        },
        0b00001 => Inst::FOp {
            kind: FOpKind::Sub,
            width,
            frd,
            frs1,
            frs2,
        },
        0b00010 => Inst::FOp {
            kind: FOpKind::Mul,
            width,
            frd,
            frs1,
            frs2,
        },
        0b00011 => Inst::FOp {
            kind: FOpKind::Div,
            width,
            frd,
            frs1,
            frs2,
        },
        0b00100 => {
            let kind = match funct3 {
                0b000 => FOpKind::SgnJ,
                0b001 => FOpKind::SgnJN,
                0b010 => FOpKind::SgnJX,
                _ => return err,
            };
            Inst::FOp {
                kind,
                width,
                frd,
                frs1,
                frs2,
            }
        }
        0b00101 => {
            let kind = match funct3 {
                0b000 => FOpKind::Min,
                0b001 => FOpKind::Max,
                _ => return err,
            };
            Inst::FOp {
                kind,
                width,
                frd,
                frs1,
                frs2,
            }
        }
        0b01000 => {
            // fcvt between widths.
            match (width, sel) {
                (FpWidth::S, 0b00001) => Inst::FCvtFF {
                    to: FpWidth::S,
                    frd,
                    frs1,
                },
                (FpWidth::D, 0b00000) => Inst::FCvtFF {
                    to: FpWidth::D,
                    frd,
                    frs1,
                },
                _ => return err,
            }
        }
        0b10100 => {
            let kind = match funct3 {
                0b000 => FCmpKind::Fle,
                0b001 => FCmpKind::Flt,
                0b010 => FCmpKind::Feq,
                _ => return err,
            };
            Inst::FCmp {
                kind,
                width,
                rd,
                frs1,
                frs2,
            }
        }
        0b11000 => {
            let (to, signed) = int_sel(sel).ok_or(DecodeError::Unrecognized(word))?;
            Inst::FCvtToInt {
                width,
                to,
                signed,
                rd,
                frs1,
            }
        }
        0b11010 => {
            let (from, signed) = int_sel(sel).ok_or(DecodeError::Unrecognized(word))?;
            Inst::FCvtToF {
                width,
                from,
                signed,
                frd,
                rs1,
            }
        }
        0b11100 if funct3 == 0b000 && sel == 0 => Inst::FMvToX { width, rd, frs1 },
        0b11110 if funct3 == 0b000 && sel == 0 => Inst::FMvToF { width, frd, rs1 },
        _ => return err,
    })
}

fn int_sel(sel: u32) -> Option<(IntWidth, bool)> {
    match sel {
        0b00000 => Some((IntWidth::W, true)),
        0b00001 => Some((IntWidth::W, false)),
        0b00010 => Some((IntWidth::L, true)),
        0b00011 => Some((IntWidth::L, false)),
        _ => None,
    }
}

fn decode_opv(word: u32) -> Result<Inst, DecodeError> {
    let err = Err(DecodeError::Unrecognized(word));
    let funct3 = field(word, 12, 3);
    if funct3 == 0b111 {
        // vsetvli (bit 31 must be 0 in the supported form).
        if word >> 31 != 0 {
            return err;
        }
        let vtype = VType::from_bits(field(word, 20, 11)).ok_or(DecodeError::Unrecognized(word))?;
        return Ok(Inst::Vsetvli {
            rd: xr(word, 7),
            rs1: xr(word, 15),
            vtype,
        });
    }
    // All supported arithmetic forms are unmasked.
    if field(word, 25, 1) != 1 {
        return err;
    }
    let funct6 = field(word, 26, 6);
    let vd = vr(word, 7);
    let vs2 = vr(word, 20);

    // Special unary moves first.
    if funct6 == 0b010000 {
        return match funct3 {
            0b010 if field(word, 15, 5) == 0 => Ok(Inst::VMvXS {
                rd: xr(word, 7),
                vs2,
            }),
            0b110 if field(word, 20, 5) == 0 => Ok(Inst::VMvSX {
                vd,
                rs1: xr(word, 15),
            }),
            _ => err,
        };
    }

    let src = match funct3 {
        0b000..=0b010 => VSrc::V(vr(word, 15)),
        0b100 | 0b110 => VSrc::X(xr(word, 15)),
        0b101 => VSrc::F(fr(word, 15)),
        0b011 => VSrc::I(sext(field(word, 15, 5), 5) as i8),
        _ => return err,
    };

    let op = match (funct6, funct3) {
        (0b000000, 0b000 | 0b011 | 0b100) => VArithOp::Vadd,
        (0b000010, 0b000 | 0b100) => VArithOp::Vsub,
        (0b000101, 0b000 | 0b100) => VArithOp::Vmin,
        (0b000111, 0b000 | 0b100) => VArithOp::Vmax,
        (0b001001, 0b000 | 0b011 | 0b100) => VArithOp::Vand,
        (0b001010, 0b000 | 0b011 | 0b100) => VArithOp::Vor,
        (0b001011, 0b000 | 0b011 | 0b100) => VArithOp::Vxor,
        (0b010111, 0b000 | 0b011 | 0b100) => {
            // vmv.v.* requires vs2 = v0 field = 0.
            if vs2.index() != 0 {
                return err;
            }
            VArithOp::Vmv
        }
        (0b100101, 0b010 | 0b110) => VArithOp::Vmul,
        (0b101101, 0b010 | 0b110) => VArithOp::Vmacc,
        (0b000000, 0b010) => VArithOp::Vredsum,
        (0b000000, 0b001 | 0b101) => VArithOp::Vfadd,
        (0b000010, 0b001 | 0b101) => VArithOp::Vfsub,
        (0b100100, 0b001 | 0b101) => VArithOp::Vfmul,
        (0b100000, 0b001 | 0b101) => VArithOp::Vfdiv,
        (0b101100, 0b001 | 0b101) => VArithOp::Vfmacc,
        (0b000001, 0b001) => VArithOp::Vfredusum,
        _ => return err,
    };
    Ok(Inst::VArith { op, vd, vs2, src })
}

/// Decodes a compressed (RVC) 16-bit word into its canonical expansion.
pub fn decode_compressed(word: u16) -> Result<Inst, DecodeError> {
    let err = Err(DecodeError::Unrecognized(word as u32));
    if word == 0 {
        // Defined illegal instruction.
        return err;
    }
    let op = word & 0b11;
    let funct3 = cfield(word, 13, 3);
    match op {
        0b00 => {
            let rdc = XReg::of_compressed(cfield(word, 2, 3) as u8);
            let rs1c = XReg::of_compressed(cfield(word, 7, 3) as u8);
            match funct3 {
                0b000 => {
                    // c.addi4spn
                    let imm = (cfield(word, 6, 1) << 2)
                        | (cfield(word, 5, 1) << 3)
                        | (cfield(word, 11, 2) << 4)
                        | (cfield(word, 7, 4) << 6);
                    if imm == 0 {
                        return err;
                    }
                    Ok(Inst::OpImm {
                        kind: OpImmKind::Addi,
                        rd: rdc,
                        rs1: XReg::SP,
                        imm: imm as i32,
                    })
                }
                0b010 => {
                    // c.lw
                    let imm = (cfield(word, 6, 1) << 2)
                        | (cfield(word, 10, 3) << 3)
                        | (cfield(word, 5, 1) << 6);
                    Ok(Inst::Load {
                        kind: LoadKind::Lw,
                        rd: rdc,
                        rs1: rs1c,
                        offset: imm as i32,
                    })
                }
                0b011 => {
                    // c.ld
                    let imm = (cfield(word, 10, 3) << 3) | (cfield(word, 5, 2) << 6);
                    Ok(Inst::Load {
                        kind: LoadKind::Ld,
                        rd: rdc,
                        rs1: rs1c,
                        offset: imm as i32,
                    })
                }
                0b110 => {
                    // c.sw
                    let imm = (cfield(word, 6, 1) << 2)
                        | (cfield(word, 10, 3) << 3)
                        | (cfield(word, 5, 1) << 6);
                    Ok(Inst::Store {
                        kind: StoreKind::Sw,
                        rs1: rs1c,
                        rs2: rdc,
                        offset: imm as i32,
                    })
                }
                0b111 => {
                    // c.sd
                    let imm = (cfield(word, 10, 3) << 3) | (cfield(word, 5, 2) << 6);
                    Ok(Inst::Store {
                        kind: StoreKind::Sd,
                        rs1: rs1c,
                        rs2: rdc,
                        offset: imm as i32,
                    })
                }
                // 0b100 is the RVC-reserved row (the encoding space the paper
                // notes SMILE can draw an always-illegal halfword from);
                // 0b001/0b101 are c.fld/c.fsd, outside the modelled subset.
                _ => err,
            }
        }
        0b01 => {
            match funct3 {
                0b000 => {
                    // c.nop / c.addi
                    let rd = xr(word as u32, 7);
                    let imm = ci_imm(word);
                    if rd == XReg::ZERO {
                        if imm != 0 {
                            return err; // HINT space; treat as unsupported.
                        }
                        return Ok(Inst::OpImm {
                            kind: OpImmKind::Addi,
                            rd: XReg::ZERO,
                            rs1: XReg::ZERO,
                            imm: 0,
                        });
                    }
                    Ok(Inst::OpImm {
                        kind: OpImmKind::Addi,
                        rd,
                        rs1: rd,
                        imm,
                    })
                }
                0b001 => {
                    // c.addiw
                    let rd = xr(word as u32, 7);
                    if rd == XReg::ZERO {
                        return err; // Reserved.
                    }
                    Ok(Inst::OpImm {
                        kind: OpImmKind::Addiw,
                        rd,
                        rs1: rd,
                        imm: ci_imm(word),
                    })
                }
                0b010 => {
                    // c.li
                    let rd = xr(word as u32, 7);
                    if rd == XReg::ZERO {
                        return err; // HINT.
                    }
                    Ok(Inst::OpImm {
                        kind: OpImmKind::Addi,
                        rd,
                        rs1: XReg::ZERO,
                        imm: ci_imm(word),
                    })
                }
                0b011 => {
                    let rd = xr(word as u32, 7);
                    if rd == XReg::SP {
                        // c.addi16sp
                        let imm = (cfield(word, 6, 1) << 4)
                            | (cfield(word, 2, 1) << 5)
                            | (cfield(word, 5, 1) << 6)
                            | (cfield(word, 3, 2) << 7)
                            | (cfield(word, 12, 1) << 9);
                        let imm = sext(imm, 10);
                        if imm == 0 {
                            return err; // Reserved.
                        }
                        return Ok(Inst::OpImm {
                            kind: OpImmKind::Addi,
                            rd: XReg::SP,
                            rs1: XReg::SP,
                            imm,
                        });
                    }
                    // c.lui
                    let imm = ci_imm(word);
                    if rd == XReg::ZERO || imm == 0 {
                        return err;
                    }
                    Ok(Inst::Lui { rd, imm20: imm })
                }
                0b100 => {
                    let rdc = XReg::of_compressed(cfield(word, 7, 3) as u8);
                    match cfield(word, 10, 2) {
                        0b00 | 0b01 => {
                            // c.srli / c.srai
                            let shamt = (cfield(word, 2, 5) | (cfield(word, 12, 1) << 5)) as i32;
                            if shamt == 0 {
                                return err; // HINT / RV128.
                            }
                            let kind = if cfield(word, 10, 2) == 0b00 {
                                OpImmKind::Srli
                            } else {
                                OpImmKind::Srai
                            };
                            Ok(Inst::OpImm {
                                kind,
                                rd: rdc,
                                rs1: rdc,
                                imm: shamt,
                            })
                        }
                        0b10 => {
                            // c.andi
                            Ok(Inst::OpImm {
                                kind: OpImmKind::Andi,
                                rd: rdc,
                                rs1: rdc,
                                imm: ci_imm(word),
                            })
                        }
                        _ => {
                            // Register-register row.
                            let rs2c = XReg::of_compressed(cfield(word, 2, 3) as u8);
                            let kind = match (cfield(word, 12, 1), cfield(word, 5, 2)) {
                                (0, 0b00) => OpKind::Sub,
                                (0, 0b01) => OpKind::Xor,
                                (0, 0b10) => OpKind::Or,
                                (0, 0b11) => OpKind::And,
                                (1, 0b00) => OpKind::Subw,
                                (1, 0b01) => OpKind::Addw,
                                _ => return err, // Reserved.
                            };
                            Ok(Inst::Op {
                                kind,
                                rd: rdc,
                                rs1: rdc,
                                rs2: rs2c,
                            })
                        }
                    }
                }
                0b101 => {
                    // c.j
                    let imm = (cfield(word, 3, 3) << 1)
                        | (cfield(word, 11, 1) << 4)
                        | (cfield(word, 2, 1) << 5)
                        | (cfield(word, 7, 1) << 6)
                        | (cfield(word, 6, 1) << 7)
                        | (cfield(word, 9, 2) << 8)
                        | (cfield(word, 8, 1) << 10)
                        | (cfield(word, 12, 1) << 11);
                    Ok(Inst::Jal {
                        rd: XReg::ZERO,
                        offset: sext(imm, 12),
                    })
                }
                0b110 | 0b111 => {
                    // c.beqz / c.bnez
                    let rs1c = XReg::of_compressed(cfield(word, 7, 3) as u8);
                    let imm = (cfield(word, 3, 2) << 1)
                        | (cfield(word, 10, 2) << 3)
                        | (cfield(word, 2, 1) << 5)
                        | (cfield(word, 5, 2) << 6)
                        | (cfield(word, 12, 1) << 8);
                    let kind = if funct3 == 0b110 {
                        BranchKind::Beq
                    } else {
                        BranchKind::Bne
                    };
                    Ok(Inst::Branch {
                        kind,
                        rs1: rs1c,
                        rs2: XReg::ZERO,
                        offset: sext(imm, 9),
                    })
                }
                _ => err,
            }
        }
        0b10 => {
            match funct3 {
                0b000 => {
                    // c.slli
                    let rd = xr(word as u32, 7);
                    let shamt = (cfield(word, 2, 5) | (cfield(word, 12, 1) << 5)) as i32;
                    if rd == XReg::ZERO || shamt == 0 {
                        return err; // HINT.
                    }
                    Ok(Inst::OpImm {
                        kind: OpImmKind::Slli,
                        rd,
                        rs1: rd,
                        imm: shamt,
                    })
                }
                0b010 => {
                    // c.lwsp
                    let rd = xr(word as u32, 7);
                    if rd == XReg::ZERO {
                        return err;
                    }
                    let imm = (cfield(word, 4, 3) << 2)
                        | (cfield(word, 12, 1) << 5)
                        | (cfield(word, 2, 2) << 6);
                    Ok(Inst::Load {
                        kind: LoadKind::Lw,
                        rd,
                        rs1: XReg::SP,
                        offset: imm as i32,
                    })
                }
                0b011 => {
                    // c.ldsp
                    let rd = xr(word as u32, 7);
                    if rd == XReg::ZERO {
                        return err;
                    }
                    let imm = (cfield(word, 5, 2) << 3)
                        | (cfield(word, 12, 1) << 5)
                        | (cfield(word, 2, 3) << 6);
                    Ok(Inst::Load {
                        kind: LoadKind::Ld,
                        rd,
                        rs1: XReg::SP,
                        offset: imm as i32,
                    })
                }
                0b100 => {
                    let rs1 = xr(word as u32, 7);
                    let rs2 = xr(word as u32, 2);
                    if cfield(word, 12, 1) == 0 {
                        if rs2 == XReg::ZERO {
                            if rs1 == XReg::ZERO {
                                return err; // Reserved.
                            }
                            // c.jr
                            return Ok(Inst::Jalr {
                                rd: XReg::ZERO,
                                rs1,
                                offset: 0,
                            });
                        }
                        if rs1 == XReg::ZERO {
                            return err; // HINT.
                        }
                        // c.mv
                        Ok(Inst::Op {
                            kind: OpKind::Add,
                            rd: rs1,
                            rs1: XReg::ZERO,
                            rs2,
                        })
                    } else {
                        if rs2 == XReg::ZERO {
                            if rs1 == XReg::ZERO {
                                return Ok(Inst::Ebreak); // c.ebreak
                            }
                            // c.jalr
                            return Ok(Inst::Jalr {
                                rd: XReg::RA,
                                rs1,
                                offset: 0,
                            });
                        }
                        if rs1 == XReg::ZERO {
                            return err; // HINT.
                        }
                        // c.add
                        Ok(Inst::Op {
                            kind: OpKind::Add,
                            rd: rs1,
                            rs1,
                            rs2,
                        })
                    }
                }
                0b110 => {
                    // c.swsp
                    let imm = (cfield(word, 9, 4) << 2) | (cfield(word, 7, 2) << 6);
                    Ok(Inst::Store {
                        kind: StoreKind::Sw,
                        rs1: XReg::SP,
                        rs2: xr(word as u32, 2),
                        offset: imm as i32,
                    })
                }
                0b111 => {
                    // c.sdsp
                    let imm = (cfield(word, 10, 3) << 3) | (cfield(word, 7, 3) << 6);
                    Ok(Inst::Store {
                        kind: StoreKind::Sd,
                        rs1: XReg::SP,
                        rs2: xr(word as u32, 2),
                        offset: imm as i32,
                    })
                }
                _ => err, // c.fldsp / c.fsdsp outside the subset.
            }
        }
        _ => unreachable!("op==11 is a 32-bit encoding"),
    }
}

/// Decodes the CI-format signed 6-bit immediate.
fn ci_imm(word: u16) -> i32 {
    sext(cfield(word, 2, 5) | (cfield(word, 12, 1) << 5), 6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{encode, encode_compressed};

    #[test]
    fn decode_known_words() {
        assert_eq!(
            decode(0x0000_0013).unwrap().inst,
            Inst::OpImm {
                kind: OpImmKind::Addi,
                rd: XReg::ZERO,
                rs1: XReg::ZERO,
                imm: 0
            }
        );
        assert_eq!(decode(0x0000_0073).unwrap().inst, Inst::Ecall);
        assert_eq!(decode(0x0010_0073).unwrap().inst, Inst::Ebreak);
        // ret = jalr zero, 0(ra)
        assert_eq!(
            decode(0x0000_8067).unwrap().inst,
            Inst::Jalr {
                rd: XReg::ZERO,
                rs1: XReg::RA,
                offset: 0
            }
        );
    }

    #[test]
    fn decode_known_compressed() {
        let d = decode(0x0001).unwrap();
        assert_eq!(d.len, 2);
        assert_eq!(
            d.inst,
            Inst::OpImm {
                kind: OpImmKind::Addi,
                rd: XReg::ZERO,
                rs1: XReg::ZERO,
                imm: 0
            }
        );
        // c.mv a0, a1
        assert_eq!(
            decode(0x852e).unwrap().inst,
            Inst::Op {
                kind: OpKind::Add,
                rd: XReg::A0,
                rs1: XReg::ZERO,
                rs2: XReg::A1
            }
        );
        // c.jr ra
        assert_eq!(
            decode(0x8082).unwrap().inst,
            Inst::Jalr {
                rd: XReg::ZERO,
                rs1: XReg::RA,
                offset: 0
            }
        );
        // c.ebreak
        assert_eq!(decode(0x9002).unwrap().inst, Inst::Ebreak);
    }

    #[test]
    fn all_zero_halfword_is_illegal() {
        assert!(decode(0x0000).is_err());
    }

    #[test]
    fn reserved_long_prefix_detected() {
        assert!(matches!(
            decode(0x0000_001f),
            Err(DecodeError::ReservedLong(_))
        ));
        assert!(matches!(
            decode(0xffff_ffff),
            Err(DecodeError::ReservedLong(_))
        ));
    }

    #[test]
    fn rvc_reserved_row_is_illegal() {
        // Quadrant 0, funct3=100 is reserved in RVC.
        let w: u16 = 0b100 << 13;
        assert!(decode_compressed(w).is_err());
    }

    #[test]
    fn encode_decode_agree_on_samples() {
        use crate::reg::{FReg, VReg};
        let samples = vec![
            Inst::Lui {
                rd: XReg::A0,
                imm20: -1,
            },
            Inst::Auipc {
                rd: XReg::GP,
                imm20: 0x7ffff,
            },
            Inst::Jal {
                rd: XReg::RA,
                offset: -2048,
            },
            Inst::Branch {
                kind: BranchKind::Bgeu,
                rs1: XReg::S3,
                rs2: XReg::T4,
                offset: 4094,
            },
            Inst::Op {
                kind: OpKind::Sh3add,
                rd: XReg::T0,
                rs1: XReg::T1,
                rs2: XReg::T2,
            },
            Inst::Unary {
                kind: UnaryKind::Cpop,
                rd: XReg::A3,
                rs1: XReg::A4,
            },
            Inst::Unary {
                kind: UnaryKind::Rev8,
                rd: XReg::A3,
                rs1: XReg::A4,
            },
            Inst::Unary {
                kind: UnaryKind::ZextH,
                rd: XReg::A3,
                rs1: XReg::A4,
            },
            Inst::FMa {
                kind: FMaKind::Nmadd,
                width: FpWidth::D,
                frd: FReg::of(4),
                frs1: FReg::of(5),
                frs2: FReg::of(6),
                frs3: FReg::of(7),
            },
            Inst::FCvtToInt {
                width: FpWidth::D,
                to: IntWidth::L,
                signed: false,
                rd: XReg::A0,
                frs1: FReg::of(1),
            },
            Inst::Vsetvli {
                rd: XReg::T0,
                rs1: XReg::A0,
                vtype: VType {
                    sew: Eew::E32,
                    lmul: 2,
                    ta: true,
                    ma: false,
                },
            },
            Inst::VArith {
                op: VArithOp::Vfmacc,
                vd: VReg::of(8),
                vs2: VReg::of(16),
                src: VSrc::V(VReg::of(24)),
            },
            Inst::VArith {
                op: VArithOp::Vmv,
                vd: VReg::of(3),
                vs2: VReg::of(0),
                src: VSrc::I(-5),
            },
            Inst::VMvXS {
                rd: XReg::A0,
                vs2: VReg::of(9),
            },
        ];
        for inst in samples {
            let w = encode(&inst).unwrap();
            let d = decode(w).unwrap();
            assert_eq!(d.inst, inst, "word {w:#010x}");
            assert_eq!(d.len, 4);
        }
    }

    #[test]
    fn compressed_roundtrip_samples() {
        let samples = vec![
            Inst::OpImm {
                kind: OpImmKind::Addi,
                rd: XReg::S0,
                rs1: XReg::S0,
                imm: -16,
            },
            Inst::OpImm {
                kind: OpImmKind::Addi,
                rd: XReg::SP,
                rs1: XReg::SP,
                imm: -64,
            },
            Inst::OpImm {
                kind: OpImmKind::Addi,
                rd: XReg::A4,
                rs1: XReg::SP,
                imm: 32,
            },
            Inst::Load {
                kind: LoadKind::Ld,
                rd: XReg::A0,
                rs1: XReg::SP,
                offset: 24,
            },
            Inst::Load {
                kind: LoadKind::Lw,
                rd: XReg::A2,
                rs1: XReg::A3,
                offset: 64,
            },
            Inst::Store {
                kind: StoreKind::Sd,
                rs1: XReg::SP,
                rs2: XReg::S1,
                offset: 40,
            },
            Inst::Store {
                kind: StoreKind::Sw,
                rs1: XReg::A5,
                rs2: XReg::A4,
                offset: 4,
            },
            Inst::Jal {
                rd: XReg::ZERO,
                offset: -42 * 2,
            },
            Inst::Branch {
                kind: BranchKind::Bne,
                rs1: XReg::A1,
                rs2: XReg::ZERO,
                offset: -36,
            },
            Inst::Op {
                kind: OpKind::Subw,
                rd: XReg::A0,
                rs1: XReg::A0,
                rs2: XReg::A1,
            },
            Inst::OpImm {
                kind: OpImmKind::Srai,
                rd: XReg::A5,
                rs1: XReg::A5,
                imm: 63,
            },
            Inst::Lui {
                rd: XReg::A1,
                imm20: -3,
            },
        ];
        for inst in samples {
            let w = encode_compressed(&inst).unwrap_or_else(|| panic!("{inst} should compress"));
            let d = decode(w as u32).unwrap();
            assert_eq!(d.inst, inst, "halfword {w:#06x} ({inst})");
            assert_eq!(d.len, 2);
        }
    }
}
