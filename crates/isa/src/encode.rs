//! Instruction encoding: canonical 32-bit encodings for every [`Inst`], plus
//! compressed (RVC) 16-bit encodings for the subset that has them.
//!
//! The encoder emits exactly the encodings the decoder accepts, so
//! `decode(encode(i)) == i` for every well-formed instruction (enforced by
//! property tests in this crate). F/D instructions are emitted with the
//! dynamic rounding mode (`rm = 0b111`).

use crate::bits::*;
use crate::inst::*;
use crate::reg::XReg;
use core::fmt;

/// Errors from [`encode`]: an immediate does not fit its field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// A signed/unsigned immediate is out of range for its field.
    ImmOutOfRange {
        /// Which instruction field overflowed (for diagnostics).
        what: &'static str,
        /// The offending value.
        value: i64,
    },
    /// A byte offset that must be even (branch/jump targets) is odd.
    MisalignedOffset {
        /// Which instruction field is misaligned.
        what: &'static str,
        /// The offending value.
        value: i64,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmOutOfRange { what, value } => {
                write!(f, "immediate out of range for {what}: {value}")
            }
            EncodeError::MisalignedOffset { what, value } => {
                write!(f, "misaligned offset for {what}: {value}")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

const OP_LUI: u32 = 0b0110111;
const OP_AUIPC: u32 = 0b0010111;
const OP_JAL: u32 = 0b1101111;
const OP_JALR: u32 = 0b1100111;
const OP_BRANCH: u32 = 0b1100011;
const OP_LOAD: u32 = 0b0000011;
const OP_STORE: u32 = 0b0100011;
const OP_OPIMM: u32 = 0b0010011;
const OP_OPIMM32: u32 = 0b0011011;
const OP_OP: u32 = 0b0110011;
const OP_OP32: u32 = 0b0111011;
const OP_MISCMEM: u32 = 0b0001111;
const OP_SYSTEM: u32 = 0b1110011;
const OP_LOADFP: u32 = 0b0000111;
const OP_STOREFP: u32 = 0b0100111;
const OP_OPFP: u32 = 0b1010011;
const OP_FMADD: u32 = 0b1000011;
const OP_FMSUB: u32 = 0b1000111;
const OP_FNMSUB: u32 = 0b1001011;
const OP_FNMADD: u32 = 0b1001111;
const OP_V: u32 = 0b1010111;

/// Dynamic rounding mode.
const RM_DYN: u32 = 0b111;

fn r(opcode: u32, funct3: u32, funct7: u32, rd: u32, rs1: u32, rs2: u32) -> u32 {
    opcode | (rd << 7) | (funct3 << 12) | (rs1 << 15) | (rs2 << 20) | (funct7 << 25)
}

fn i(opcode: u32, funct3: u32, rd: u32, rs1: u32, imm: i32) -> u32 {
    opcode | (rd << 7) | (funct3 << 12) | (rs1 << 15) | itype_imm(imm)
}

fn check_i12(what: &'static str, v: i32) -> Result<(), EncodeError> {
    if fits_signed(v as i64, 12) {
        Ok(())
    } else {
        Err(EncodeError::ImmOutOfRange {
            what,
            value: v as i64,
        })
    }
}

fn op_funct(kind: OpKind) -> (u32, u32, u32) {
    // (opcode, funct3, funct7)
    match kind {
        OpKind::Add => (OP_OP, 0b000, 0b0000000),
        OpKind::Sub => (OP_OP, 0b000, 0b0100000),
        OpKind::Sll => (OP_OP, 0b001, 0b0000000),
        OpKind::Slt => (OP_OP, 0b010, 0b0000000),
        OpKind::Sltu => (OP_OP, 0b011, 0b0000000),
        OpKind::Xor => (OP_OP, 0b100, 0b0000000),
        OpKind::Srl => (OP_OP, 0b101, 0b0000000),
        OpKind::Sra => (OP_OP, 0b101, 0b0100000),
        OpKind::Or => (OP_OP, 0b110, 0b0000000),
        OpKind::And => (OP_OP, 0b111, 0b0000000),
        OpKind::Addw => (OP_OP32, 0b000, 0b0000000),
        OpKind::Subw => (OP_OP32, 0b000, 0b0100000),
        OpKind::Sllw => (OP_OP32, 0b001, 0b0000000),
        OpKind::Srlw => (OP_OP32, 0b101, 0b0000000),
        OpKind::Sraw => (OP_OP32, 0b101, 0b0100000),
        OpKind::Mul => (OP_OP, 0b000, 0b0000001),
        OpKind::Mulh => (OP_OP, 0b001, 0b0000001),
        OpKind::Mulhsu => (OP_OP, 0b010, 0b0000001),
        OpKind::Mulhu => (OP_OP, 0b011, 0b0000001),
        OpKind::Div => (OP_OP, 0b100, 0b0000001),
        OpKind::Divu => (OP_OP, 0b101, 0b0000001),
        OpKind::Rem => (OP_OP, 0b110, 0b0000001),
        OpKind::Remu => (OP_OP, 0b111, 0b0000001),
        OpKind::Mulw => (OP_OP32, 0b000, 0b0000001),
        OpKind::Divw => (OP_OP32, 0b100, 0b0000001),
        OpKind::Divuw => (OP_OP32, 0b101, 0b0000001),
        OpKind::Remw => (OP_OP32, 0b110, 0b0000001),
        OpKind::Remuw => (OP_OP32, 0b111, 0b0000001),
        OpKind::Sh1add => (OP_OP, 0b010, 0b0010000),
        OpKind::Sh2add => (OP_OP, 0b100, 0b0010000),
        OpKind::Sh3add => (OP_OP, 0b110, 0b0010000),
        OpKind::AddUw => (OP_OP32, 0b000, 0b0000100),
        OpKind::Andn => (OP_OP, 0b111, 0b0100000),
        OpKind::Orn => (OP_OP, 0b110, 0b0100000),
        OpKind::Xnor => (OP_OP, 0b100, 0b0100000),
        OpKind::Min => (OP_OP, 0b100, 0b0000101),
        OpKind::Minu => (OP_OP, 0b101, 0b0000101),
        OpKind::Max => (OP_OP, 0b110, 0b0000101),
        OpKind::Maxu => (OP_OP, 0b111, 0b0000101),
        OpKind::Rol => (OP_OP, 0b001, 0b0110000),
        OpKind::Ror => (OP_OP, 0b101, 0b0110000),
    }
}

fn unary_selector(kind: UnaryKind) -> (u32, u32, u32, u32) {
    // (opcode, funct3, funct7, rs2-selector)
    match kind {
        UnaryKind::Clz => (OP_OPIMM, 0b001, 0b0110000, 0b00000),
        UnaryKind::Ctz => (OP_OPIMM, 0b001, 0b0110000, 0b00001),
        UnaryKind::Cpop => (OP_OPIMM, 0b001, 0b0110000, 0b00010),
        UnaryKind::SextB => (OP_OPIMM, 0b001, 0b0110000, 0b00100),
        UnaryKind::SextH => (OP_OPIMM, 0b001, 0b0110000, 0b00101),
        UnaryKind::ZextH => (OP_OP32, 0b100, 0b0000100, 0b00000),
        UnaryKind::Rev8 => (OP_OPIMM, 0b101, 0b0110101, 0b11000),
    }
}

fn fma_opcode(kind: FMaKind) -> u32 {
    match kind {
        FMaKind::Madd => OP_FMADD,
        FMaKind::Msub => OP_FMSUB,
        FMaKind::Nmsub => OP_FNMSUB,
        FMaKind::Nmadd => OP_FNMADD,
    }
}

fn int_width_sel(w: IntWidth, signed: bool) -> u32 {
    match (w, signed) {
        (IntWidth::W, true) => 0b00000,
        (IntWidth::W, false) => 0b00001,
        (IntWidth::L, true) => 0b00010,
        (IntWidth::L, false) => 0b00011,
    }
}

/// The `funct6` and category (funct3 pair) for a vector arithmetic op.
///
/// Returns `(funct6, vv_funct3, vx_funct3)` where the funct3 values follow
/// the RVV OP-V categories: OPIVV=000, OPFVV=001, OPMVV=010, OPIVI=011,
/// OPIVX=100, OPFVF=101, OPMVX=110.
fn varith_funct(op: VArithOp) -> (u32, u32, u32) {
    match op {
        VArithOp::Vadd => (0b000000, 0b000, 0b100),
        VArithOp::Vsub => (0b000010, 0b000, 0b100),
        VArithOp::Vmin => (0b000101, 0b000, 0b100),
        VArithOp::Vmax => (0b000111, 0b000, 0b100),
        VArithOp::Vand => (0b001001, 0b000, 0b100),
        VArithOp::Vor => (0b001010, 0b000, 0b100),
        VArithOp::Vxor => (0b001011, 0b000, 0b100),
        VArithOp::Vmv => (0b010111, 0b000, 0b100),
        VArithOp::Vmul => (0b100101, 0b010, 0b110),
        VArithOp::Vmacc => (0b101101, 0b010, 0b110),
        VArithOp::Vredsum => (0b000000, 0b010, 0b010),
        VArithOp::Vfadd => (0b000000, 0b001, 0b101),
        VArithOp::Vfsub => (0b000010, 0b001, 0b101),
        VArithOp::Vfmul => (0b100100, 0b001, 0b101),
        VArithOp::Vfdiv => (0b100000, 0b001, 0b101),
        VArithOp::Vfmacc => (0b101100, 0b001, 0b101),
        VArithOp::Vfredusum => (0b000001, 0b001, 0b101),
    }
}

fn vmem_width(eew: Eew) -> u32 {
    match eew {
        Eew::E8 => 0b000,
        Eew::E16 => 0b101,
        Eew::E32 => 0b110,
        Eew::E64 => 0b111,
    }
}

/// Encodes an instruction into its canonical 32-bit machine word.
pub fn encode(inst: &Inst) -> Result<u32, EncodeError> {
    Ok(match *inst {
        Inst::Lui { rd, imm20 } => {
            if !fits_signed(imm20 as i64, 20) {
                return Err(EncodeError::ImmOutOfRange {
                    what: "lui imm20",
                    value: imm20 as i64,
                });
            }
            OP_LUI | ((rd.index() as u32) << 7) | utype_imm(imm20)
        }
        Inst::Auipc { rd, imm20 } => {
            if !fits_signed(imm20 as i64, 20) {
                return Err(EncodeError::ImmOutOfRange {
                    what: "auipc imm20",
                    value: imm20 as i64,
                });
            }
            OP_AUIPC | ((rd.index() as u32) << 7) | utype_imm(imm20)
        }
        Inst::Jal { rd, offset } => {
            if offset % 2 != 0 {
                return Err(EncodeError::MisalignedOffset {
                    what: "jal offset",
                    value: offset as i64,
                });
            }
            if !fits_signed(offset as i64, 21) {
                return Err(EncodeError::ImmOutOfRange {
                    what: "jal offset",
                    value: offset as i64,
                });
            }
            OP_JAL | ((rd.index() as u32) << 7) | jtype_imm(offset)
        }
        Inst::Jalr { rd, rs1, offset } => {
            check_i12("jalr offset", offset)?;
            i(
                OP_JALR,
                0b000,
                rd.index() as u32,
                rs1.index() as u32,
                offset,
            )
        }
        Inst::Branch {
            kind,
            rs1,
            rs2,
            offset,
        } => {
            if offset % 2 != 0 {
                return Err(EncodeError::MisalignedOffset {
                    what: "branch offset",
                    value: offset as i64,
                });
            }
            if !fits_signed(offset as i64, 13) {
                return Err(EncodeError::ImmOutOfRange {
                    what: "branch offset",
                    value: offset as i64,
                });
            }
            let funct3 = match kind {
                BranchKind::Beq => 0b000,
                BranchKind::Bne => 0b001,
                BranchKind::Blt => 0b100,
                BranchKind::Bge => 0b101,
                BranchKind::Bltu => 0b110,
                BranchKind::Bgeu => 0b111,
            };
            OP_BRANCH
                | (funct3 << 12)
                | ((rs1.index() as u32) << 15)
                | ((rs2.index() as u32) << 20)
                | btype_imm(offset)
        }
        Inst::Load {
            kind,
            rd,
            rs1,
            offset,
        } => {
            check_i12("load offset", offset)?;
            let funct3 = match kind {
                LoadKind::Lb => 0b000,
                LoadKind::Lh => 0b001,
                LoadKind::Lw => 0b010,
                LoadKind::Ld => 0b011,
                LoadKind::Lbu => 0b100,
                LoadKind::Lhu => 0b101,
                LoadKind::Lwu => 0b110,
            };
            i(
                OP_LOAD,
                funct3,
                rd.index() as u32,
                rs1.index() as u32,
                offset,
            )
        }
        Inst::Store {
            kind,
            rs1,
            rs2,
            offset,
        } => {
            check_i12("store offset", offset)?;
            let funct3 = match kind {
                StoreKind::Sb => 0b000,
                StoreKind::Sh => 0b001,
                StoreKind::Sw => 0b010,
                StoreKind::Sd => 0b011,
            };
            OP_STORE
                | (funct3 << 12)
                | ((rs1.index() as u32) << 15)
                | ((rs2.index() as u32) << 20)
                | stype_imm(offset)
        }
        Inst::OpImm { kind, rd, rs1, imm } => {
            let rd = rd.index() as u32;
            let rs1 = rs1.index() as u32;
            match kind {
                OpImmKind::Addi => {
                    check_i12("addi imm", imm)?;
                    i(OP_OPIMM, 0b000, rd, rs1, imm)
                }
                OpImmKind::Slti => {
                    check_i12("slti imm", imm)?;
                    i(OP_OPIMM, 0b010, rd, rs1, imm)
                }
                OpImmKind::Sltiu => {
                    check_i12("sltiu imm", imm)?;
                    i(OP_OPIMM, 0b011, rd, rs1, imm)
                }
                OpImmKind::Xori => {
                    check_i12("xori imm", imm)?;
                    i(OP_OPIMM, 0b100, rd, rs1, imm)
                }
                OpImmKind::Ori => {
                    check_i12("ori imm", imm)?;
                    i(OP_OPIMM, 0b110, rd, rs1, imm)
                }
                OpImmKind::Andi => {
                    check_i12("andi imm", imm)?;
                    i(OP_OPIMM, 0b111, rd, rs1, imm)
                }
                OpImmKind::Slli | OpImmKind::Srli | OpImmKind::Srai | OpImmKind::Rori => {
                    if !fits_unsigned(imm as i64, 6) {
                        return Err(EncodeError::ImmOutOfRange {
                            what: "shamt",
                            value: imm as i64,
                        });
                    }
                    let (funct3, funct6) = match kind {
                        OpImmKind::Slli => (0b001, 0b000000),
                        OpImmKind::Srli => (0b101, 0b000000),
                        OpImmKind::Srai => (0b101, 0b010000),
                        OpImmKind::Rori => (0b101, 0b011000),
                        _ => unreachable!(),
                    };
                    OP_OPIMM
                        | (rd << 7)
                        | (funct3 << 12)
                        | (rs1 << 15)
                        | ((imm as u32) << 20)
                        | (funct6 << 26)
                }
                OpImmKind::Addiw => {
                    check_i12("addiw imm", imm)?;
                    i(OP_OPIMM32, 0b000, rd, rs1, imm)
                }
                OpImmKind::Slliw | OpImmKind::Srliw | OpImmKind::Sraiw => {
                    if !fits_unsigned(imm as i64, 5) {
                        return Err(EncodeError::ImmOutOfRange {
                            what: "shamt (32-bit)",
                            value: imm as i64,
                        });
                    }
                    let (funct3, funct7) = match kind {
                        OpImmKind::Slliw => (0b001, 0b0000000),
                        OpImmKind::Srliw => (0b101, 0b0000000),
                        OpImmKind::Sraiw => (0b101, 0b0100000),
                        _ => unreachable!(),
                    };
                    r(OP_OPIMM32, funct3, funct7, rd, rs1, imm as u32)
                }
            }
        }
        Inst::Op { kind, rd, rs1, rs2 } => {
            let (opcode, funct3, funct7) = op_funct(kind);
            r(
                opcode,
                funct3,
                funct7,
                rd.index() as u32,
                rs1.index() as u32,
                rs2.index() as u32,
            )
        }
        Inst::Unary { kind, rd, rs1 } => {
            let (opcode, funct3, funct7, sel) = unary_selector(kind);
            r(
                opcode,
                funct3,
                funct7,
                rd.index() as u32,
                rs1.index() as u32,
                sel,
            )
        }
        Inst::Fence => OP_MISCMEM | (0x0ff << 20),
        Inst::Ecall => OP_SYSTEM,
        Inst::Ebreak => OP_SYSTEM | (1 << 20),
        Inst::FLoad {
            width,
            frd,
            rs1,
            offset,
        } => {
            check_i12("fp load offset", offset)?;
            let funct3 = match width {
                FpWidth::S => 0b010,
                FpWidth::D => 0b011,
            };
            i(
                OP_LOADFP,
                funct3,
                frd.index() as u32,
                rs1.index() as u32,
                offset,
            )
        }
        Inst::FStore {
            width,
            frs2,
            rs1,
            offset,
        } => {
            check_i12("fp store offset", offset)?;
            let funct3 = match width {
                FpWidth::S => 0b010,
                FpWidth::D => 0b011,
            };
            OP_STOREFP
                | (funct3 << 12)
                | ((rs1.index() as u32) << 15)
                | ((frs2.index() as u32) << 20)
                | stype_imm(offset)
        }
        Inst::FOp {
            kind,
            width,
            frd,
            frs1,
            frs2,
        } => {
            let fmt = width.fmt_bits();
            let (funct5, funct3) = match kind {
                FOpKind::Add => (0b00000, RM_DYN),
                FOpKind::Sub => (0b00001, RM_DYN),
                FOpKind::Mul => (0b00010, RM_DYN),
                FOpKind::Div => (0b00011, RM_DYN),
                FOpKind::SgnJ => (0b00100, 0b000),
                FOpKind::SgnJN => (0b00100, 0b001),
                FOpKind::SgnJX => (0b00100, 0b010),
                FOpKind::Min => (0b00101, 0b000),
                FOpKind::Max => (0b00101, 0b001),
            };
            r(
                OP_OPFP,
                funct3,
                (funct5 << 2) | fmt,
                frd.index() as u32,
                frs1.index() as u32,
                frs2.index() as u32,
            )
        }
        Inst::FCmp {
            kind,
            width,
            rd,
            frs1,
            frs2,
        } => {
            let funct3 = match kind {
                FCmpKind::Fle => 0b000,
                FCmpKind::Flt => 0b001,
                FCmpKind::Feq => 0b010,
            };
            r(
                OP_OPFP,
                funct3,
                (0b10100 << 2) | width.fmt_bits(),
                rd.index() as u32,
                frs1.index() as u32,
                frs2.index() as u32,
            )
        }
        Inst::FMvToX { width, rd, frs1 } => r(
            OP_OPFP,
            0b000,
            (0b11100 << 2) | width.fmt_bits(),
            rd.index() as u32,
            frs1.index() as u32,
            0,
        ),
        Inst::FMvToF { width, frd, rs1 } => r(
            OP_OPFP,
            0b000,
            (0b11110 << 2) | width.fmt_bits(),
            frd.index() as u32,
            rs1.index() as u32,
            0,
        ),
        Inst::FCvtToF {
            width,
            from,
            signed,
            frd,
            rs1,
        } => r(
            OP_OPFP,
            RM_DYN,
            (0b11010 << 2) | width.fmt_bits(),
            frd.index() as u32,
            rs1.index() as u32,
            int_width_sel(from, signed),
        ),
        Inst::FCvtToInt {
            width,
            to,
            signed,
            rd,
            frs1,
        } => r(
            OP_OPFP,
            RM_DYN,
            (0b11000 << 2) | width.fmt_bits(),
            rd.index() as u32,
            frs1.index() as u32,
            int_width_sel(to, signed),
        ),
        Inst::FCvtFF { to, frd, frs1 } => {
            // fcvt.s.d: fmt=S, rs2=1 (D); fcvt.d.s: fmt=D, rs2=0 (S).
            let (fmt, rs2) = match to {
                FpWidth::S => (FpWidth::S.fmt_bits(), 0b00001),
                FpWidth::D => (FpWidth::D.fmt_bits(), 0b00000),
            };
            r(
                OP_OPFP,
                RM_DYN,
                (0b01000 << 2) | fmt,
                frd.index() as u32,
                frs1.index() as u32,
                rs2,
            )
        }
        Inst::FMa {
            kind,
            width,
            frd,
            frs1,
            frs2,
            frs3,
        } => {
            fma_opcode(kind)
                | ((frd.index() as u32) << 7)
                | (RM_DYN << 12)
                | ((frs1.index() as u32) << 15)
                | ((frs2.index() as u32) << 20)
                | (width.fmt_bits() << 25)
                | ((frs3.index() as u32) << 27)
        }
        Inst::Vsetvli { rd, rs1, vtype } => {
            OP_V | ((rd.index() as u32) << 7)
                | (0b111 << 12)
                | ((rs1.index() as u32) << 15)
                | (vtype.to_bits() << 20)
        }
        Inst::VLoad { eew, vd, rs1 } => {
            // nf=000, mew=0, mop=00 (unit stride), vm=1, lumop=00000.
            OP_LOADFP
                | ((vd.index() as u32) << 7)
                | (vmem_width(eew) << 12)
                | ((rs1.index() as u32) << 15)
                | (1 << 25)
        }
        Inst::VStore { eew, vs3, rs1 } => {
            OP_STOREFP
                | ((vs3.index() as u32) << 7)
                | (vmem_width(eew) << 12)
                | ((rs1.index() as u32) << 15)
                | (1 << 25)
        }
        Inst::VArith { op, vd, vs2, src } => {
            let (funct6, vv_f3, vx_f3) = varith_funct(op);
            let (funct3, src_field) = match src {
                VSrc::V(vs1) => (vv_f3, vs1.index() as u32),
                VSrc::X(rs1) => (vx_f3, rs1.index() as u32),
                VSrc::F(frs1) => (0b101, frs1.index() as u32),
                VSrc::I(imm) => {
                    if !fits_signed(imm as i64, 5) {
                        return Err(EncodeError::ImmOutOfRange {
                            what: "vector imm5",
                            value: imm as i64,
                        });
                    }
                    (0b011, (imm as u32) & 0x1f)
                }
            };
            OP_V | ((vd.index() as u32) << 7)
                | (funct3 << 12)
                | (src_field << 15)
                | ((vs2.index() as u32) << 20)
                | (1 << 25)
                | (funct6 << 26)
        }
        Inst::VMvXS { rd, vs2 } => {
            // VWXUNARY0: funct6=010000, OPMVV, vs1=00000.
            OP_V | ((rd.index() as u32) << 7)
                | (0b010 << 12)
                | ((vs2.index() as u32) << 20)
                | (1 << 25)
                | (0b010000 << 26)
        }
        Inst::VMvSX { vd, rs1 } => {
            // VRXUNARY0: funct6=010000, OPMVX, vs2=00000.
            OP_V | ((vd.index() as u32) << 7)
                | (0b110 << 12)
                | ((rs1.index() as u32) << 15)
                | (1 << 25)
                | (0b010000 << 26)
        }
    })
}

/// Encodes an instruction into a compressed (RVC) 16-bit word if the
/// instruction has a compressed form in the modelled subset, else `None`.
///
/// The supported forms mirror real RV64C: `c.addi`, `c.addiw`, `c.li`,
/// `c.lui`, `c.addi16sp`, `c.addi4spn`, `c.slli/srli/srai/andi`,
/// `c.mv/add/sub/xor/or/and/subw/addw`, `c.j`, `c.beqz/bnez`,
/// `c.jr/jalr`, `c.lw/ld/sw/sd`, `c.lwsp/ldsp/swsp/sdsp`, `c.nop`,
/// `c.ebreak`.
pub fn encode_compressed(inst: &Inst) -> Option<u16> {
    let w = try_encode_compressed(inst)?;
    debug_assert_ne!(w & 0b11, 0b11, "compressed encoding has 32-bit low bits");
    Some(w)
}

fn c_reg(r: XReg) -> Option<u16> {
    if r.is_compressed_addressable() {
        Some((r.index() - 8) as u16)
    } else {
        None
    }
}

fn try_encode_compressed(inst: &Inst) -> Option<u16> {
    match *inst {
        // C.ADDI / C.NOP / C.LI / C.ADDIW / C.ADDI16SP / C.ADDI4SPN
        Inst::OpImm {
            kind: OpImmKind::Addi,
            rd,
            rs1,
            imm,
        } => {
            if rd == XReg::ZERO && rs1 == XReg::ZERO && imm == 0 {
                // c.nop
                return Some(0x0001);
            }
            if rd == rs1 && rd != XReg::ZERO && fits_signed(imm as i64, 6) && imm != 0 {
                // c.addi rd, imm6
                return Some(c_ci(0b000, 0b01, rd.index(), imm));
            }
            if rs1 == XReg::ZERO && rd != XReg::ZERO && fits_signed(imm as i64, 6) {
                // c.li rd, imm6
                return Some(c_ci(0b010, 0b01, rd.index(), imm));
            }
            if rd == XReg::SP
                && rs1 == XReg::SP
                && imm != 0
                && imm % 16 == 0
                && fits_signed(imm as i64, 10)
            {
                // c.addi16sp
                let u = imm as u32;
                let w = (0b011u16 << 13)
                    | (((u >> 9) & 1) as u16) << 12
                    | (2u16 << 7)
                    | (((u >> 4) & 1) as u16) << 6
                    | (((u >> 6) & 1) as u16) << 5
                    | (((u >> 7) & 3) as u16) << 3
                    | (((u >> 5) & 1) as u16) << 2
                    | 0b01;
                return Some(w);
            }
            if rs1 == XReg::SP && imm > 0 && imm % 4 == 0 && fits_unsigned(imm as i64, 10) {
                if let Some(rdc) = c_reg(rd) {
                    // c.addi4spn
                    let u = imm as u32;
                    let w = ((((u >> 4) & 3) as u16) << 11)
                        | (((u >> 6) & 0xf) as u16) << 7
                        | (((u >> 2) & 1) as u16) << 6
                        | (((u >> 3) & 1) as u16) << 5
                        | (rdc << 2);
                    return Some(w);
                }
            }
            None
        }
        Inst::OpImm {
            kind: OpImmKind::Addiw,
            rd,
            rs1,
            imm,
        } => {
            if rd == rs1 && rd != XReg::ZERO && fits_signed(imm as i64, 6) {
                // c.addiw
                return Some(c_ci(0b001, 0b01, rd.index(), imm));
            }
            None
        }
        Inst::Lui { rd, imm20 } => {
            if rd != XReg::ZERO && rd != XReg::SP && imm20 != 0 && fits_signed(imm20 as i64, 6) {
                // c.lui
                return Some(c_ci(0b011, 0b01, rd.index(), imm20));
            }
            None
        }
        Inst::OpImm {
            kind: OpImmKind::Slli,
            rd,
            rs1,
            imm,
        } => {
            if rd == rs1 && rd != XReg::ZERO && imm > 0 && fits_unsigned(imm as i64, 6) {
                // c.slli
                return Some(c_ci_u(0b000, 0b10, rd.index(), imm as u32));
            }
            None
        }
        Inst::OpImm {
            kind: kind @ (OpImmKind::Srli | OpImmKind::Srai),
            rd,
            rs1,
            imm,
        } => {
            if rd == rs1 && imm > 0 && fits_unsigned(imm as i64, 6) {
                if let Some(rdc) = c_reg(rd) {
                    let f2 = if kind == OpImmKind::Srli { 0b00 } else { 0b01 };
                    let u = imm as u32;
                    let w = (0b100u16 << 13)
                        | (((u >> 5) & 1) as u16) << 12
                        | (f2 << 10)
                        | (rdc << 7)
                        | ((u & 0x1f) as u16) << 2
                        | 0b01;
                    return Some(w);
                }
            }
            None
        }
        Inst::OpImm {
            kind: OpImmKind::Andi,
            rd,
            rs1,
            imm,
        } => {
            if rd == rs1 && fits_signed(imm as i64, 6) {
                if let Some(rdc) = c_reg(rd) {
                    let u = imm as u32;
                    let w = (0b100u16 << 13)
                        | (((u >> 5) & 1) as u16) << 12
                        | (0b10u16 << 10)
                        | (rdc << 7)
                        | ((u & 0x1f) as u16) << 2
                        | 0b01;
                    return Some(w);
                }
            }
            None
        }
        Inst::Op { kind, rd, rs1, rs2 } => {
            // c.mv / c.add (full register set)
            if kind == OpKind::Add && rd != XReg::ZERO {
                if rs1 == XReg::ZERO && rs2 != XReg::ZERO {
                    // c.mv rd, rs2
                    return Some(
                        (0b100u16 << 13)
                            | ((rd.index() as u16) << 7)
                            | ((rs2.index() as u16) << 2)
                            | 0b10,
                    );
                }
                if rs1 == rd && rs2 != XReg::ZERO {
                    // c.add rd, rs2
                    return Some(
                        (0b100u16 << 13)
                            | (1u16 << 12)
                            | ((rd.index() as u16) << 7)
                            | ((rs2.index() as u16) << 2)
                            | 0b10,
                    );
                }
            }
            // c.sub/xor/or/and/subw/addw (compressed register window)
            if rd == rs1 {
                if let (Some(rdc), Some(rs2c)) = (c_reg(rd), c_reg(rs2)) {
                    let (bit12, f2) = match kind {
                        OpKind::Sub => (0u16, 0b00u16),
                        OpKind::Xor => (0, 0b01),
                        OpKind::Or => (0, 0b10),
                        OpKind::And => (0, 0b11),
                        OpKind::Subw => (1, 0b00),
                        OpKind::Addw => (1, 0b01),
                        _ => return None,
                    };
                    let w = (0b100u16 << 13)
                        | (bit12 << 12)
                        | (0b11u16 << 10)
                        | (rdc << 7)
                        | (f2 << 5)
                        | (rs2c << 2)
                        | 0b01;
                    return Some(w);
                }
            }
            None
        }
        Inst::Jal { rd, offset } => {
            if rd == XReg::ZERO && offset % 2 == 0 && fits_signed(offset as i64, 12) {
                // c.j
                let u = offset as u32;
                let w = (0b101u16 << 13)
                    | (((u >> 11) & 1) as u16) << 12
                    | (((u >> 4) & 1) as u16) << 11
                    | (((u >> 8) & 3) as u16) << 9
                    | (((u >> 10) & 1) as u16) << 8
                    | (((u >> 6) & 1) as u16) << 7
                    | (((u >> 7) & 1) as u16) << 6
                    | (((u >> 1) & 7) as u16) << 3
                    | (((u >> 5) & 1) as u16) << 2
                    | 0b01;
                return Some(w);
            }
            None
        }
        Inst::Jalr { rd, rs1, offset } => {
            if offset == 0 && rs1 != XReg::ZERO {
                if rd == XReg::ZERO {
                    // c.jr
                    return Some((0b100u16 << 13) | ((rs1.index() as u16) << 7) | 0b10);
                }
                if rd == XReg::RA {
                    // c.jalr
                    return Some(
                        (0b100u16 << 13) | (1u16 << 12) | ((rs1.index() as u16) << 7) | 0b10,
                    );
                }
            }
            None
        }
        Inst::Branch {
            kind,
            rs1,
            rs2,
            offset,
        } => {
            if rs2 == XReg::ZERO && offset % 2 == 0 && fits_signed(offset as i64, 9) {
                if let Some(rs1c) = c_reg(rs1) {
                    let funct3 = match kind {
                        BranchKind::Beq => 0b110u16,
                        BranchKind::Bne => 0b111,
                        _ => return None,
                    };
                    let u = offset as u32;
                    let w = (funct3 << 13)
                        | (((u >> 8) & 1) as u16) << 12
                        | (((u >> 3) & 3) as u16) << 10
                        | (rs1c << 7)
                        | (((u >> 6) & 3) as u16) << 5
                        | (((u >> 1) & 3) as u16) << 3
                        | (((u >> 5) & 1) as u16) << 2
                        | 0b01;
                    return Some(w);
                }
            }
            None
        }
        Inst::Load {
            kind,
            rd,
            rs1,
            offset,
        } => {
            match kind {
                LoadKind::Lw => {
                    if rs1 == XReg::SP
                        && rd != XReg::ZERO
                        && offset >= 0
                        && offset % 4 == 0
                        && fits_unsigned(offset as i64, 8)
                    {
                        // c.lwsp
                        let u = offset as u32;
                        let w = (0b010u16 << 13)
                            | (((u >> 5) & 1) as u16) << 12
                            | ((rd.index() as u16) << 7)
                            | (((u >> 2) & 7) as u16) << 4
                            | (((u >> 6) & 3) as u16) << 2
                            | 0b10;
                        return Some(w);
                    }
                    if let (Some(rdc), Some(rs1c)) = (c_reg(rd), c_reg(rs1)) {
                        if offset >= 0 && offset % 4 == 0 && fits_unsigned(offset as i64, 7) {
                            // c.lw
                            let u = offset as u32;
                            let w = (0b010u16 << 13)
                                | (((u >> 3) & 7) as u16) << 10
                                | (rs1c << 7)
                                | (((u >> 2) & 1) as u16) << 6
                                | (((u >> 6) & 1) as u16) << 5
                                | (rdc << 2);
                            return Some(w);
                        }
                    }
                    None
                }
                LoadKind::Ld => {
                    if rs1 == XReg::SP
                        && rd != XReg::ZERO
                        && offset >= 0
                        && offset % 8 == 0
                        && fits_unsigned(offset as i64, 9)
                    {
                        // c.ldsp
                        let u = offset as u32;
                        let w = (0b011u16 << 13)
                            | (((u >> 5) & 1) as u16) << 12
                            | ((rd.index() as u16) << 7)
                            | (((u >> 3) & 3) as u16) << 5
                            | (((u >> 6) & 7) as u16) << 2
                            | 0b10;
                        return Some(w);
                    }
                    if let (Some(rdc), Some(rs1c)) = (c_reg(rd), c_reg(rs1)) {
                        if offset >= 0 && offset % 8 == 0 && fits_unsigned(offset as i64, 8) {
                            // c.ld
                            let u = offset as u32;
                            let w = (0b011u16 << 13)
                                | (((u >> 3) & 7) as u16) << 10
                                | (rs1c << 7)
                                | (((u >> 6) & 3) as u16) << 5
                                | (rdc << 2);
                            return Some(w);
                        }
                    }
                    None
                }
                _ => None,
            }
        }
        Inst::Store {
            kind,
            rs1,
            rs2,
            offset,
        } => {
            match kind {
                StoreKind::Sw => {
                    if rs1 == XReg::SP
                        && offset >= 0
                        && offset % 4 == 0
                        && fits_unsigned(offset as i64, 8)
                    {
                        // c.swsp
                        let u = offset as u32;
                        let w = (0b110u16 << 13)
                            | (((u >> 2) & 0xf) as u16) << 9
                            | (((u >> 6) & 3) as u16) << 7
                            | ((rs2.index() as u16) << 2)
                            | 0b10;
                        return Some(w);
                    }
                    if let (Some(rs1c), Some(rs2c)) = (c_reg(rs1), c_reg(rs2)) {
                        if offset >= 0 && offset % 4 == 0 && fits_unsigned(offset as i64, 7) {
                            // c.sw
                            let u = offset as u32;
                            let w = (0b110u16 << 13)
                                | (((u >> 3) & 7) as u16) << 10
                                | (rs1c << 7)
                                | (((u >> 2) & 1) as u16) << 6
                                | (((u >> 6) & 1) as u16) << 5
                                | (rs2c << 2);
                            return Some(w);
                        }
                    }
                    None
                }
                StoreKind::Sd => {
                    if rs1 == XReg::SP
                        && offset >= 0
                        && offset % 8 == 0
                        && fits_unsigned(offset as i64, 9)
                    {
                        // c.sdsp
                        let u = offset as u32;
                        let w = (0b111u16 << 13)
                            | (((u >> 3) & 7) as u16) << 10
                            | (((u >> 6) & 7) as u16) << 7
                            | ((rs2.index() as u16) << 2)
                            | 0b10;
                        return Some(w);
                    }
                    if let (Some(rs1c), Some(rs2c)) = (c_reg(rs1), c_reg(rs2)) {
                        if offset >= 0 && offset % 8 == 0 && fits_unsigned(offset as i64, 8) {
                            // c.sd
                            let u = offset as u32;
                            let w = (0b111u16 << 13)
                                | (((u >> 3) & 7) as u16) << 10
                                | (rs1c << 7)
                                | (((u >> 6) & 3) as u16) << 5
                                | (rs2c << 2);
                            return Some(w);
                        }
                    }
                    None
                }
                _ => None,
            }
        }
        Inst::Ebreak => Some(0x9002),
        _ => None,
    }
}

/// Builds a CI-format word with a signed 6-bit immediate.
fn c_ci(funct3: u16, op: u16, rd: u8, imm: i32) -> u16 {
    let u = imm as u32;
    (funct3 << 13)
        | (((u >> 5) & 1) as u16) << 12
        | ((rd as u16) << 7)
        | ((u & 0x1f) as u16) << 2
        | op
}

/// Builds a CI-format word with an unsigned 6-bit immediate (shifts).
fn c_ci_u(funct3: u16, op: u16, rd: u8, imm: u32) -> u16 {
    (funct3 << 13)
        | (((imm >> 5) & 1) as u16) << 12
        | ((rd as u16) << 7)
        | ((imm & 0x1f) as u16) << 2
        | op
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{FReg, VReg};

    fn enc(i: Inst) -> u32 {
        encode(&i).expect("encodes")
    }

    #[test]
    fn known_base_encodings() {
        // Cross-checked against GNU as output.
        assert_eq!(
            enc(Inst::OpImm {
                kind: OpImmKind::Addi,
                rd: XReg::ZERO,
                rs1: XReg::ZERO,
                imm: 0
            }),
            0x0000_0013 // nop
        );
        assert_eq!(
            enc(Inst::Op {
                kind: OpKind::Add,
                rd: XReg::A0,
                rs1: XReg::A1,
                rs2: XReg::A2
            }),
            0x00c5_8533
        );
        assert_eq!(
            enc(Inst::Jalr {
                rd: XReg::ZERO,
                rs1: XReg::RA,
                offset: 0
            }),
            0x0000_8067 // ret
        );
        assert_eq!(enc(Inst::Ecall), 0x0000_0073);
        assert_eq!(enc(Inst::Ebreak), 0x0010_0073);
        assert_eq!(
            enc(Inst::Lui {
                rd: XReg::A0,
                imm20: 1
            }),
            0x0000_1537
        );
        assert_eq!(
            enc(Inst::Load {
                kind: LoadKind::Ld,
                rd: XReg::A0,
                rs1: XReg::SP,
                offset: 8
            }),
            0x0081_3503
        );
        assert_eq!(
            enc(Inst::Store {
                kind: StoreKind::Sd,
                rs1: XReg::SP,
                rs2: XReg::A0,
                offset: 8
            }),
            0x00a1_3423
        );
    }

    #[test]
    fn known_compressed_encodings() {
        // Cross-checked against GNU as output.
        assert_eq!(
            encode_compressed(&Inst::OpImm {
                kind: OpImmKind::Addi,
                rd: XReg::ZERO,
                rs1: XReg::ZERO,
                imm: 0
            }),
            Some(0x0001) // c.nop
        );
        assert_eq!(
            encode_compressed(&Inst::Op {
                kind: OpKind::Add,
                rd: XReg::A0,
                rs1: XReg::ZERO,
                rs2: XReg::A1
            }),
            Some(0x852e) // c.mv a0, a1
        );
        assert_eq!(
            encode_compressed(&Inst::Op {
                kind: OpKind::Add,
                rd: XReg::A0,
                rs1: XReg::A0,
                rs2: XReg::A1
            }),
            Some(0x952e) // c.add a0, a1
        );
        assert_eq!(
            encode_compressed(&Inst::OpImm {
                kind: OpImmKind::Addi,
                rd: XReg::A0,
                rs1: XReg::ZERO,
                imm: 0
            }),
            Some(0x4501) // c.li a0, 0
        );
        assert_eq!(encode_compressed(&Inst::Ebreak), Some(0x9002));
        assert_eq!(
            encode_compressed(&Inst::Jalr {
                rd: XReg::ZERO,
                rs1: XReg::RA,
                offset: 0
            }),
            Some(0x8082) // c.jr ra (ret)
        );
    }

    #[test]
    fn auipc_with_gp_uses_expected_fields() {
        // The SMILE trampoline head: auipc gp, imm.
        let w = enc(Inst::Auipc {
            rd: XReg::GP,
            imm20: 0x12345,
        });
        assert_eq!(w & 0x7f, 0b0010111);
        assert_eq!((w >> 7) & 0x1f, 3); // rd = gp
        assert_eq!(w >> 12, 0x12345);
    }

    #[test]
    fn jal_range_checks() {
        assert!(encode(&Inst::Jal {
            rd: XReg::ZERO,
            offset: (1 << 20) - 2
        })
        .is_ok());
        assert!(matches!(
            encode(&Inst::Jal {
                rd: XReg::ZERO,
                offset: 1 << 20
            }),
            Err(EncodeError::ImmOutOfRange { .. })
        ));
        assert!(matches!(
            encode(&Inst::Jal {
                rd: XReg::ZERO,
                offset: 3
            }),
            Err(EncodeError::MisalignedOffset { .. })
        ));
    }

    #[test]
    fn fp_and_vector_words_have_correct_opcodes() {
        let w = enc(Inst::FMa {
            kind: FMaKind::Madd,
            width: FpWidth::D,
            frd: FReg::of(0),
            frs1: FReg::of(1),
            frs2: FReg::of(2),
            frs3: FReg::of(3),
        });
        assert_eq!(w & 0x7f, 0b1000011);

        let w = enc(Inst::VArith {
            op: VArithOp::Vadd,
            vd: VReg::of(1),
            vs2: VReg::of(2),
            src: VSrc::V(VReg::of(3)),
        });
        assert_eq!(w & 0x7f, 0b1010111);
        assert_eq!((w >> 12) & 7, 0b000); // OPIVV
        assert_eq!((w >> 25) & 1, 1); // unmasked

        let w = enc(Inst::VLoad {
            eew: Eew::E64,
            vd: VReg::of(1),
            rs1: XReg::A0,
        });
        assert_eq!(w & 0x7f, 0b0000111);
        assert_eq!((w >> 12) & 7, 0b111); // EEW=64
    }
}
