//! A small, dependency-free deterministic PRNG (xoshiro256++ seeded via
//! SplitMix64).
//!
//! The workspace builds with **zero registry dependencies** (the evaluation
//! environment has no network access), so the workload generators and the
//! seeded property-style test suites use this module instead of the `rand`
//! crate family. Determinism is load-bearing: a workload binary generated
//! from `(profile, seed)` must be byte-identical across runs so that
//! differential tests (original vs. rewritten execution) and committed
//! experiment results are reproducible.
//!
//! The generator is xoshiro256++ (Blackman & Vigna), which is tiny, fast,
//! and has no observable bias for the ranges used here. It lives in
//! `chimera-isa` because that is the workspace's root crate: every other
//! crate (workloads, tests, benches) can reach it without a dependency
//! cycle.

/// A deterministic xoshiro256++ generator.
#[derive(Debug, Clone)]
pub struct Prng {
    s: [u64; 4],
}

impl Prng {
    /// Creates a generator from a 64-bit seed (SplitMix64-expanded, so any
    /// seed — including 0 — produces a well-mixed state).
    pub fn new(seed: u64) -> Prng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Prng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next raw 32-bit output (upper half of [`Prng::next_u64`]).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `[0, n)`; `n` must be non-zero. Uses Lemire's
    /// widening-multiply reduction (bias is unmeasurable at these sizes).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "Prng::below(0)");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// A uniform `i64` in the half-open range `[lo, hi)`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi, "empty range");
        lo.wrapping_add(self.below(hi.wrapping_sub(lo) as u64) as i64)
    }

    /// A uniform `usize` in the half-open range `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi, "empty range");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// A uniform `u8`.
    pub fn next_u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// A uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniform `bool`.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range_usize(0, items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Prng::new(7);
        let mut b = Prng::new(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Prng::new(8);
        assert_ne!(Prng::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Prng::new(42);
        for _ in 0..10_000 {
            let v = r.range_i64(-512, 512);
            assert!((-512..512).contains(&v));
            let u = r.range_usize(3, 9);
            assert!((3..9).contains(&u));
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn chance_tracks_probability() {
        let mut r = Prng::new(1);
        let hits = (0..20_000).filter(|_| r.chance(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((0.22..0.28).contains(&frac), "p=0.25 measured {frac}");
    }

    #[test]
    fn zero_seed_is_well_mixed() {
        let mut r = Prng::new(0);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}
