//! A small, dependency-free deterministic PRNG (xoshiro256++ seeded via
//! SplitMix64).
//!
//! The workspace builds with **zero registry dependencies** (the evaluation
//! environment has no network access), so the workload generators and the
//! seeded property-style test suites use this module instead of the `rand`
//! crate family. Determinism is load-bearing: a workload binary generated
//! from `(profile, seed)` must be byte-identical across runs so that
//! differential tests (original vs. rewritten execution) and committed
//! experiment results are reproducible.
//!
//! The generator is xoshiro256++ (Blackman & Vigna), which is tiny, fast,
//! and has no observable bias for the ranges used here. It lives in
//! `chimera-isa` because that is the workspace's root crate: every other
//! crate (workloads, tests, benches) can reach it without a dependency
//! cycle.

/// A deterministic xoshiro256++ generator.
#[derive(Debug, Clone)]
pub struct Prng {
    s: [u64; 4],
    seed: u64,
}

impl Prng {
    /// Creates a generator from a 64-bit seed (SplitMix64-expanded, so any
    /// seed — including 0 — produces a well-mixed state).
    pub fn new(seed: u64) -> Prng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Prng {
            s: [next(), next(), next(), next()],
            seed,
        }
    }

    /// The seed this generator (or the generator it was [`split`] from)
    /// was constructed with. Draws never change it.
    ///
    /// [`split`]: Prng::split
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent named stream.
    ///
    /// The child is a pure function of `(self.seed(), name)` — *not* of
    /// this generator's current position — so the values a stream yields
    /// cannot shift when unrelated draws are added, removed or reordered.
    /// Property-style generators should take one root `Prng` and `split`
    /// a dedicated stream per concern (`"shape"`, `"body"`, `"consts"`,
    /// ...); a single root seed then reproduces every stream exactly.
    pub fn split(&self, name: &str) -> Prng {
        Prng::stream(self.seed, name)
    }

    /// [`split`](Prng::split) without an intermediate root generator: the
    /// named stream derived from `seed` directly.
    pub fn stream(seed: u64, name: &str) -> Prng {
        // FNV-1a over the name, golden-ratio-mixed into the seed. The
        // child seed then goes through `new`'s SplitMix64 expansion, so
        // even single-bit name differences decorrelate the states.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Prng::new(seed ^ h.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next raw 32-bit output (upper half of [`Prng::next_u64`]).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `[0, n)`; `n` must be non-zero. Uses Lemire's
    /// widening-multiply reduction (bias is unmeasurable at these sizes).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "Prng::below(0)");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// A uniform `i64` in the half-open range `[lo, hi)`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi, "empty range");
        lo.wrapping_add(self.below(hi.wrapping_sub(lo) as u64) as i64)
    }

    /// A uniform `usize` in the half-open range `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi, "empty range");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// A uniform `u8`.
    pub fn next_u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// A uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniform `bool`.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range_usize(0, items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Prng::new(7);
        let mut b = Prng::new(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Prng::new(8);
        assert_ne!(Prng::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Prng::new(42);
        for _ in 0..10_000 {
            let v = r.range_i64(-512, 512);
            assert!((-512..512).contains(&v));
            let u = r.range_usize(3, 9);
            assert!((3..9).contains(&u));
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn chance_tracks_probability() {
        let mut r = Prng::new(1);
        let hits = (0..20_000).filter(|_| r.chance(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((0.22..0.28).contains(&frac), "p=0.25 measured {frac}");
    }

    #[test]
    fn split_is_independent_of_call_order_and_position() {
        // Streams depend only on (seed, name): draining the root or
        // splitting other streams first must not move any stream.
        let mut root = Prng::new(42);
        let early = root.split("body").next_u64();
        for _ in 0..100 {
            root.next_u64();
        }
        let _ = root.split("shape");
        let _ = root.split("consts");
        let late = root.split("body").next_u64();
        assert_eq!(early, late, "a stream must not depend on call order");
        assert_eq!(root.seed(), 42, "draws never change the recorded seed");

        // And the static constructor is the same derivation.
        assert_eq!(Prng::stream(42, "body").next_u64(), early);
    }

    #[test]
    fn split_streams_are_decorrelated() {
        let root = Prng::new(7);
        let mut a = root.split("a");
        let mut b = root.split("b");
        let mut plain = Prng::new(7);
        for _ in 0..64 {
            let (x, y) = (a.next_u64(), b.next_u64());
            assert_ne!(x, y, "sibling streams must not collide");
            assert_ne!(x, plain.next_u64(), "a stream must differ from its root");
        }
        // The same name under different seeds differs too.
        assert_ne!(
            Prng::stream(1, "ops").next_u64(),
            Prng::stream(2, "ops").next_u64()
        );
    }

    /// Pins the derived streams bit-for-bit: committed reproducer files
    /// (tests/reproducers/) regenerate fuzz cases from `(seed, stream)`
    /// pairs, so the derivation below is a stable file-format contract —
    /// if this test breaks, bump the reproducer generator version instead
    /// of accepting new values.
    #[test]
    fn split_streams_are_pinned() {
        let root = Prng::new(0xC41A5);
        let mut shape = root.split("shape");
        assert_eq!(
            [shape.next_u64(), shape.next_u64(), shape.next_u64()],
            PIN_SHAPE
        );
        let mut body = root.split("body");
        assert_eq!(
            [body.next_u64(), body.next_u64(), body.next_u64()],
            PIN_BODY
        );
        let mut zero = Prng::stream(0, "");
        assert_eq!(
            [zero.next_u64(), zero.next_u64(), zero.next_u64()],
            PIN_ZERO
        );
    }

    const PIN_SHAPE: [u64; 3] = [
        0x2619_b89b_372c_221f,
        0xc145_bbdb_cd0a_e1f6,
        0x48f8_76c4_2820_b0ac,
    ];
    const PIN_BODY: [u64; 3] = [
        0x7897_5af0_7b67_7182,
        0x2a87_5850_6980_52ee,
        0x4f37_b95e_e22d_a732,
    ];
    const PIN_ZERO: [u64; 3] = [
        0x2500_418f_8e55_323f,
        0xe809_288d_c4de_67cb,
        0x6f73_9711_7f4e_c146,
    ];

    #[test]
    fn zero_seed_is_well_mixed() {
        let mut r = Prng::new(0);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}
