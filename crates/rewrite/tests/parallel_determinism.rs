//! Parallel-rewrite determinism and engine conformance.
//!
//! The pass pipeline's contract is that the worker count is invisible in
//! the output: `transform`/`place` fan out over rewrite units, but the
//! plan stage fixed every unit's address beforehand, so 1, 2, 4 and 8
//! workers must produce **bit-identical** binaries, [`FaultTable`]s,
//! [`RewriteStats`] and regeneration metadata. This suite pins that
//! contract over the workload zoo for every engine behind the
//! [`RewriteEngine`] trait, and then checks *conformance*: each engine —
//! standing in for a `SystemKind` of the §6.1 comparison — still passes
//! the differential behaviour check (rewritten-on-base ≡ native-on-ext)
//! when dispatched through the shared pipeline.
//!
//! Engine ↔ system map: [`IdentityEngine`] is FAM/MELF (no rewriting),
//! [`ChbpEngine`] is Chimera, [`ChbpEngine`] with
//! [`RewriteOptions::force_trap_entries`] is the §6.2 strawman, and
//! [`RegenEngine`] covers the Safer and ARMore regeneration baselines.
//!
//! A final test pins the lazy/static sharing required by the ISSUE: the
//! kernel's fault-time `lazy_rewrite` uses the pipeline's
//! `emit_site_translation` primitive, so lazily built blocks are byte-
//! identical to what the static transform stage would emit at the same
//! address.

use chimera_isa::{Ext, ExtSet, Inst};
use chimera_kernel::RuntimeTables;
use chimera_obj::Binary;
use chimera_rewrite::emitter::BlockEmitter;
use chimera_rewrite::translate::Translator;
use chimera_rewrite::{
    chbp_rewrite_with, emit_site_translation, regenerate_with, run, ChbpEngine, Flavor,
    IdentityEngine, Mode, RegenEngine, RewriteOptions, Rewritten,
};
use chimera_testutil::{native_reference, run_under_kernel, KernelRun};
use chimera_trace::Tracer;
use chimera_workloads::hetero;
use chimera_workloads::speclike::{generate, GenOptions, APP_PROFILES, SPEC_PROFILES};

const WORKERS: [usize; 4] = [1, 2, 4, 8];

/// A zoo slice sized for exhaustive × worker-count × engine sweeps:
/// two SPEC-like programs (one scaled up enough to split into many
/// units/spans), one application profile, and the hand-written hetero
/// tasks whose vector loops exercise SMILE placement.
fn zoo() -> Vec<(String, Binary)> {
    let mut v: Vec<(String, Binary)> = Vec::new();
    for (name, scale) in [("omnetpp_r", 1.0 / 64.0), ("gcc_r", 1.0 / 512.0)] {
        let p = SPEC_PROFILES.iter().find(|p| p.name == name).unwrap();
        v.push((
            format!("spec:{name}"),
            generate(
                p,
                GenOptions {
                    size_scale: scale,
                    work_scale: 0.25,
                    seed: 7,
                },
            ),
        ));
    }
    let app = &APP_PROFILES[0];
    v.push((
        format!("app:{}", app.name),
        generate(
            app,
            GenOptions {
                size_scale: 1.0 / 512.0,
                work_scale: 0.25,
                seed: 8,
            },
        ),
    ));
    v.push(("hetero:matrix".into(), hetero::matrix_task(8, 2, true)));
    v.push(("hetero:fib".into(), hetero::fib_task(12, 2)));
    v
}

fn chbp(bin: &Binary, opts: RewriteOptions, workers: usize) -> Rewritten {
    chbp_rewrite_with(bin, ExtSet::RV64GC, opts, workers, &Tracer::disabled()).unwrap()
}

/// Worker count must be invisible: CHBP (both modes) and the strawman.
#[test]
fn chbp_bit_identical_across_worker_counts() {
    let configs = [
        (
            "downgrade",
            RewriteOptions {
                mode: Mode::Downgrade,
                ..Default::default()
            },
        ),
        (
            "empty-patch",
            RewriteOptions {
                mode: Mode::EmptyPatch(Ext::V),
                ..Default::default()
            },
        ),
        (
            "strawman",
            RewriteOptions {
                mode: Mode::Downgrade,
                force_trap_entries: true,
                ..Default::default()
            },
        ),
    ];
    for (name, bin) in zoo() {
        for (cfg, opts) in &configs {
            let baseline = chbp(&bin, *opts, 1);
            for workers in &WORKERS[1..] {
                let rw = chbp(&bin, *opts, *workers);
                assert_eq!(
                    rw, baseline,
                    "{name} [{cfg}]: {workers}-worker output diverges from sequential"
                );
            }
        }
    }
}

/// Same contract for both regeneration flavors, including the Safer
/// slow-trap metadata ([`chimera_rewrite::RegenInfo`]).
#[test]
fn regen_bit_identical_across_worker_counts() {
    for (name, bin) in zoo() {
        for flavor in [Flavor::Safer, Flavor::Armore] {
            let baseline = regenerate_with(
                &bin,
                ExtSet::RV64GC,
                Mode::Downgrade,
                flavor,
                1,
                &Tracer::disabled(),
            )
            .unwrap();
            for workers in &WORKERS[1..] {
                let rg = regenerate_with(
                    &bin,
                    ExtSet::RV64GC,
                    Mode::Downgrade,
                    flavor,
                    *workers,
                    &Tracer::disabled(),
                )
                .unwrap();
                assert_eq!(
                    rg, baseline,
                    "{name} [{flavor:?}]: {workers}-worker output diverges from sequential"
                );
            }
        }
    }
}

/// Every engine behind the trait — one per `SystemKind` of the §6.1
/// comparison — passes the differential behaviour check through the
/// shared pipeline: rewritten-on-RV64GC ≡ native-on-RV64GCV.
#[test]
fn every_engine_passes_differential_check() {
    for (name, bin) in zoo() {
        let expected = native_reference(&bin);

        // FAM / MELF: the identity engine must hand the input through
        // unchanged (their "rewrite" is running a native binary as-is).
        let id = run(&IdentityEngine, &bin, 4, &Tracer::disabled()).unwrap();
        assert_eq!(
            id.rewritten.binary, bin,
            "{name}: identity must not rewrite"
        );
        assert!(id.regen.is_none(), "{name}: identity carries no tables");

        // Chimera (CHBP) and the strawman: patched binary + fault tables,
        // recovered by the kernel's passive handler on the base core.
        for force_trap in [false, true] {
            let sys = if force_trap { "strawman" } else { "chbp" };
            let rw = chbp(
                &bin,
                RewriteOptions {
                    mode: Mode::Downgrade,
                    force_trap_entries: force_trap,
                    ..Default::default()
                },
                4,
            );
            let tables = RuntimeTables {
                fht: Some(rw.fht),
                regen: None,
            };
            let kr = run_under_kernel(rw.binary, tables, ExtSet::RV64GC, true);
            assert_eq!(
                (kr.exit_code, kr.stdout),
                expected,
                "{name} [{sys}] diverged from native"
            );
        }

        // Safer / ARMore regeneration: relocated binary + redirect map
        // (and Safer's slow-trap table), run through the same kernel.
        for flavor in [Flavor::Safer, Flavor::Armore] {
            let rg = regenerate_with(
                &bin,
                ExtSet::RV64GC,
                Mode::Downgrade,
                flavor,
                4,
                &Tracer::disabled(),
            )
            .unwrap();
            let tables = RuntimeTables {
                fht: Some(rg.rewritten.fht),
                regen: Some(rg.info),
            };
            let kr = run_under_kernel(rg.rewritten.binary, tables, ExtSet::RV64GC, true);
            assert_eq!(
                (kr.exit_code, kr.stdout),
                expected,
                "{name} [{flavor:?}] diverged from native"
            );
        }
    }
}

/// The engine dispatch itself is worker-invisible too: running a boxed
/// engine through [`run`] (as `chimera::prepare_process` does) matches
/// the typed entry points bit for bit.
#[test]
fn boxed_engine_dispatch_matches_typed_entry_points() {
    let bin = hetero::matrix_task(8, 2, true);
    let opts = RewriteOptions::default();
    let direct = chbp(&bin, opts, 4);
    let engine = ChbpEngine {
        target: ExtSet::RV64GC,
        opts,
    };
    let via_trait = run(&engine, &bin, 4, &Tracer::disabled()).unwrap();
    assert_eq!(via_trait.rewritten, direct);

    let engine = RegenEngine {
        target: ExtSet::RV64GC,
        mode: Mode::Downgrade,
        flavor: Flavor::Safer,
    };
    let via_trait = run(&engine, &bin, 4, &Tracer::disabled()).unwrap();
    let direct = regenerate_with(
        &bin,
        ExtSet::RV64GC,
        Mode::Downgrade,
        Flavor::Safer,
        4,
        &Tracer::disabled(),
    )
    .unwrap();
    assert_eq!(via_trait.rewritten, direct.rewritten);
    assert_eq!(via_trait.regen.unwrap_or_default(), direct.info);
}

/// Lazy/static convergence: an `EmptyPatch`-rewritten vector program run
/// on a base core makes the kernel lazily translate each vector site at
/// fault time. Behaviour must match native, and — because `lazy_rewrite`
/// calls the pipeline's own `emit_site_translation` — the lazily built
/// blocks in memory must be byte-identical to a static re-emission of
/// the same sites at the same addresses.
#[test]
fn lazy_blocks_match_static_translation() {
    // Straight-line vector code: each vector instruction executes exactly
    // once, so lazy blocks are appended in program order of the sites.
    let src = "
        .data
        a: .dword 1
           .dword 2
           .dword 3
           .dword 4
        .text
        _start:
            li t0, 4
            vsetvli t1, t0, e64, m1, ta, ma
            la a0, a
            vle64.v v1, (a0)
            vmv.v.i v2, 0
            vredsum.vs v3, v1, v2
            vmv.x.s a0, v3
            li a7, 93
            ecall
    ";
    let bin = chimera_obj::assemble(src, chimera_obj::AsmOptions::default()).unwrap();
    let expected = native_reference(&bin);
    assert_eq!(expected.0, 10, "vector sum exits 10");

    // EmptyPatch(V) keeps the vector instructions verbatim in the target
    // section; on RV64GC each one faults and is rewritten lazily.
    let rw = chbp(
        &bin,
        RewriteOptions {
            mode: Mode::EmptyPatch(Ext::V),
            ..Default::default()
        },
        1,
    );
    let fht = rw.fht.clone();
    let tables = RuntimeTables {
        fht: Some(rw.fht),
        regen: None,
    };
    let KernelRun {
        exit_code,
        stdout,
        kernel: k,
        mut mem,
        ..
    } = run_under_kernel(rw.binary, tables, ExtSet::RV64GC, true);
    assert_eq!(
        (exit_code, stdout),
        expected,
        "lazy-rewritten run diverged from native"
    );
    let sites: Vec<Inst> = chimera_analysis::disassemble(&bin)
        .iter()
        .filter(|di| !di.inst.runnable_on(ExtSet::RV64GC))
        .map(|di| di.inst)
        .collect();
    assert!(sites.len() >= 4, "zoo program must have several sites");
    assert_eq!(
        k.counters.lazy_rewrites,
        sites.len() as u64,
        "each site is rewritten exactly once"
    );

    // Re-emit every site statically at the address the kernel used (lazy
    // blocks grow from the end of the target section, in program order)
    // and compare against what the kernel actually wrote.
    let mut cursor = fht.target_range.1;
    let mut expected_bytes = Vec::new();
    for inst in &sites {
        let mut translator = Translator::new(fht.spill_base, fht.abi_gp);
        let mut em = BlockEmitter::new(cursor);
        emit_site_translation(inst, Mode::Downgrade, &mut translator, &mut em)
            .expect("site is translatable");
        em.inst(Inst::Ebreak);
        let bytes = em.finish();
        cursor += bytes.len() as u64;
        expected_bytes.extend(bytes);
    }
    let lazy_bytes = mem
        .peek(fht.target_range.1, expected_bytes.len())
        .expect("lazy blocks are mapped");
    assert_eq!(
        lazy_bytes, expected_bytes,
        "lazily built blocks must be byte-identical to static translation"
    );
}
