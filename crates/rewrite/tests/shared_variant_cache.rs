//! Isolation regression tests for the cross-process variant cache.
//!
//! The contract under test: the shared entry behind a
//! [`SharedVariantCache`] checkout is immutable. A process that
//! self-modifies its image re-rewrites through its own lazily cloned
//! per-unit cache — its validation stamps are private state — so one
//! holder's SMC pokes can never invalidate another holder's clean units,
//! and the untouched holder's execution stays bit-identical.

use chimera_isa::ExtSet;
use chimera_rewrite::{
    ebreak_patch, run_incremental, ChbpEngine, RewriteOptions, SharedVariantCache,
};
use chimera_testutil::{load_image, run_under_kernel, to_rewrite_spans};
use chimera_trace::{TraceEvent, Tracer};

fn engine() -> ChbpEngine {
    ChbpEngine {
        target: ExtSet::RV64GC,
        opts: RewriteOptions::default(),
    }
}

fn kernel_obs(handle: &chimera_rewrite::VariantHandle) -> (i64, Vec<u8>) {
    let tables = chimera_kernel::RuntimeTables {
        fht: Some(handle.rewritten().fht.clone()),
        regen: handle.regen().cloned(),
    };
    let r = run_under_kernel(
        handle.rewritten().binary.clone(),
        tables,
        ExtSet::RV64GC,
        true,
    );
    (r.exit_code, r.stdout)
}

/// Drains `tracer` and returns every `RewriteIncremental` payload.
fn incremental_events(tracer: &Tracer) -> Vec<(u64, u64)> {
    tracer
        .drain()
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::RewriteIncremental {
                units_total,
                units_redone,
                ..
            } => Some((units_total, units_redone)),
            _ => None,
        })
        .collect()
}

#[test]
fn smc_in_one_process_never_invalidates_another() {
    let bin = chimera_workloads::hetero::matrix_task(8, 2, true);
    let engine = engine();
    let shared = SharedVariantCache::new();
    let tracer = Tracer::enabled();

    // Process A pays the rewrite; process B checks the same content out
    // warm.
    let mut a = shared.checkout(&engine, &bin, 0, 2, &tracer).unwrap();
    let mut b = shared.checkout(&engine, &bin, 0, 2, &tracer).unwrap();
    assert!(!a.shared_hit && b.shared_hit);
    assert_eq!(a.key(), b.key());
    assert_eq!(a.rewritten(), b.rewritten(), "one shared variant");
    let b_before = kernel_obs(&b);

    // A self-modifies: poke a trampoline head in its image and re-rewrite
    // incrementally through its private cache clone.
    let (mut mem, _, _) = load_image(&a.rewritten().binary);
    let site = *a
        .rewritten()
        .fht
        .trampolines
        .iter()
        .next()
        .expect("matrix task has patch sites");
    let watermark = mem.generation_watermark();
    mem.poke_code(site, &ebreak_patch(4)).unwrap();
    let dirty = to_rewrite_spans(&mem.dirty_regions_since(watermark));
    assert!(!dirty.is_empty());

    let a_tracer = Tracer::enabled();
    let refreshed = run_incremental(&engine, &bin, a.cache_mut(), &dirty, 2, &a_tracer).unwrap();
    assert!(a.has_private_cache(), "A privatized its cache");
    let a_events = incremental_events(&a_tracer);
    assert_eq!(a_events.len(), 1);
    assert!(a_events[0].1 >= 1, "the poked unit was redone in A");
    assert_eq!(
        refreshed.rewritten,
        *a.rewritten(),
        "incremental refresh reproduces the shared output bit-for-bit"
    );

    // B never privatized — it still reads purely shared, immutable state —
    // and an incremental pass over B's (lazily cloned) cache redoes zero
    // units: A's invalidation stamps never reached it.
    assert!(!b.has_private_cache(), "B still reads shared state");
    let b_tracer = Tracer::enabled();
    let b_out = run_incremental(&engine, &bin, b.cache_mut(), &[], 2, &b_tracer).unwrap();
    let b_events = incremental_events(&b_tracer);
    assert_eq!(b_events.len(), 1);
    assert_eq!(b_events[0].1, 0, "none of B's units were invalidated by A");
    assert_eq!(b_out.rewritten, *b.rewritten());

    // B's execution is bit-identical before and after A's poke.
    assert_eq!(kernel_obs(&b), b_before, "B's behaviour is untouched");

    // A third process checking out now still sees an all-clean shared
    // template: A stamped its *copy*, never the shared column.
    let c = shared.checkout(&engine, &bin, 0, 2, &tracer).unwrap();
    assert!(c.shared_hit);
    assert!(
        c.shared_stamps().iter().all(|&s| s == 0),
        "shared validation stamps stay zero whatever holders poke"
    );

    // Per-cache stats and the trace reconcile: one miss (A), two hits
    // (B, C), each hit both traced and counted.
    let stats = shared.stats();
    assert_eq!((stats.entries, stats.misses, stats.hits), (1, 1, 2));
    let hit_events: Vec<u64> = tracer
        .drain()
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::VariantShared { key, hits } => {
                assert_eq!(key, a.key());
                Some(hits)
            }
            _ => None,
        })
        .collect();
    assert_eq!(hit_events, vec![1, 2], "per-entry hit count is cumulative");
    let m = tracer.metrics().expect("enabled");
    assert_eq!(m.counter_value("rewrite.cross_process_hits"), Some(2));
}

#[test]
fn content_keys_separate_engines_flags_and_inputs() {
    let bin_a = chimera_workloads::hetero::matrix_task(8, 2, true);
    let bin_b = chimera_workloads::hetero::fib_task(12, 2);
    let engine = engine();
    let shared = SharedVariantCache::new();
    let t = Tracer::disabled();

    let a0 = shared.checkout(&engine, &bin_a, 0, 2, &t).unwrap();
    let a1 = shared.checkout(&engine, &bin_a, 1, 2, &t).unwrap();
    let b0 = shared.checkout(&engine, &bin_b, 0, 2, &t).unwrap();
    assert!(!a0.shared_hit && !a1.shared_hit && !b0.shared_hit);
    assert_ne!(a0.key(), a1.key(), "flags are part of the content key");
    assert_ne!(a0.key(), b0.key(), "section bytes are part of the key");

    let stats = shared.stats();
    assert_eq!((stats.entries, stats.misses, stats.hits), (3, 3, 0));

    // Same content re-checked out: served shared, byte-identical.
    let again = shared.checkout(&engine, &bin_a, 0, 2, &t).unwrap();
    assert!(again.shared_hit);
    assert_eq!(again.rewritten(), a0.rewritten());
}
