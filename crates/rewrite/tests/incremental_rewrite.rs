//! Property tests for incremental re-rewriting.
//!
//! The incremental driver's contract: for any sequence of runtime code
//! mutations — SMC pokes, lazy `ebreak` patches, unmap/remap cycles —
//! reported through the emulator's dirty-region channel, an incremental
//! re-rewrite produces output **bit-identical** to a from-scratch full
//! rewrite of the (immutable) input binary, for every engine and every
//! worker count. The dirty set decides how much work is saved, never
//! what the output is.
//!
//! Also pinned here: the validation-stamp idempotence (re-presenting a
//! consumed dirty report redoes zero units), the stale-cache rebuild
//! fallback (different input ⇒ full re-prime, never a stale result), and
//! the zero-patch-site regression for the fixed
//! `.section(...).unwrap()` panics in the CHBP and upgrade linkers.

use chimera_isa::prng::Prng;
use chimera_isa::ExtSet;
use chimera_obj::Binary;
use chimera_rewrite::{
    ebreak_patch, run, run_cached, run_incremental, upgrade_rewrite, ChbpEngine, RewriteOptions,
};
use chimera_testutil::{engines, load_image, mutate_image, run_under_kernel, to_rewrite_spans};
use chimera_trace::{TraceEvent, Tracer};

const FUEL: u64 = u64::MAX / 2;
const WORKERS: [usize; 4] = [1, 2, 4, 8];

fn zoo() -> Vec<(String, Binary)> {
    let p = chimera_workloads::speclike::SPEC_PROFILES
        .iter()
        .find(|p| p.name == "omnetpp_r")
        .unwrap();
    vec![
        (
            "spec:omnetpp_r".into(),
            chimera_workloads::speclike::generate(
                p,
                chimera_workloads::speclike::GenOptions {
                    size_scale: 1.0 / 64.0,
                    work_scale: 0.25,
                    seed: 7,
                },
            ),
        ),
        (
            "hetero:matrix".into(),
            chimera_workloads::hetero::matrix_task(8, 2, true),
        ),
    ]
}

/// Drains `tracer` and returns the sole `RewriteIncremental` payload.
fn incremental_event(tracer: &Tracer) -> (u64, u64) {
    let events: Vec<(u64, u64)> = tracer
        .drain()
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::RewriteIncremental {
                units_total,
                units_redone,
                ..
            } => Some((units_total, units_redone)),
            _ => None,
        })
        .collect();
    assert_eq!(events.len(), 1, "exactly one RewriteIncremental per run");
    events[0]
}

/// The core property: random invalidation sequences never change the
/// output — incremental == full rewrite, bit for bit, for every engine ×
/// worker count — and the reuse counters always reconcile with the unit
/// total.
#[test]
fn incremental_matches_full_rewrite_under_random_invalidation() {
    for (bin_name, bin) in zoo() {
        for (eng_name, engine) in engines() {
            let full = run(engine.as_ref(), &bin, 4, &Tracer::disabled()).unwrap();
            for workers in WORKERS {
                let (primed, mut cache) =
                    run_cached(engine.as_ref(), &bin, workers, &Tracer::disabled()).unwrap();
                assert_eq!(
                    primed.rewritten, full.rewritten,
                    "{bin_name} [{eng_name}]: cached run diverges from plain run"
                );

                let (mut mem, text_start, text_end) = load_image(&primed.rewritten.binary);
                let mut rng = Prng::new(0x9e37_79b9 ^ (workers as u64) << 32 ^ bin.entry);
                let mut watermark = mem.generation_watermark();
                for round in 0..6 {
                    for _ in 0..=rng.below(2) {
                        mutate_image(&mut mem, &mut rng, text_start, text_end);
                    }
                    let dirty = to_rewrite_spans(&mem.dirty_regions_since(watermark));
                    assert!(!dirty.is_empty(), "mutations must report dirty spans");
                    watermark = mem.generation_watermark();

                    let tracer = Tracer::enabled();
                    let inc = run_incremental(
                        engine.as_ref(),
                        &bin,
                        &mut cache,
                        &dirty,
                        workers,
                        &tracer,
                    )
                    .unwrap();
                    assert_eq!(
                        inc.rewritten, full.rewritten,
                        "{bin_name} [{eng_name}] w={workers} round {round}: \
                         incremental output diverged from full rewrite"
                    );
                    assert_eq!(
                        inc.regen.unwrap_or_default(),
                        full.regen.clone().unwrap_or_default(),
                        "{bin_name} [{eng_name}] w={workers} round {round}: regen info diverged"
                    );

                    let (total, redone) = incremental_event(&tracer);
                    assert_eq!(total, cache.unit_count() as u64);
                    let m = tracer.metrics().expect("enabled tracer has metrics");
                    let reused = m.counter_value("rewrite.units_reused").unwrap_or(0);
                    let counted_redone = m.counter_value("rewrite.units_redone").unwrap_or(0);
                    assert_eq!(
                        reused + counted_redone,
                        total,
                        "{bin_name} [{eng_name}]: reuse counters must reconcile"
                    );
                    assert_eq!(counted_redone, redone);
                }
            }
        }
    }
}

/// Validation stamps make dirty reports idempotent: a consumed report
/// presented again redoes zero units (and still yields the full output).
#[test]
fn consumed_dirty_reports_are_idempotent() {
    let bin = chimera_workloads::hetero::matrix_task(8, 2, true);
    let engine = ChbpEngine {
        target: ExtSet::RV64GC,
        opts: RewriteOptions::default(),
    };
    let (primed, mut cache) = run_cached(&engine, &bin, 2, &Tracer::disabled()).unwrap();
    let (mut mem, _, _) = load_image(&primed.rewritten.binary);
    // Poke a trampoline head: guaranteed to lie inside a unit's source
    // range, so exactly that unit goes dirty.
    let site = *primed
        .rewritten
        .fht
        .trampolines
        .iter()
        .next()
        .expect("matrix task has patch sites");
    let watermark = mem.generation_watermark();
    mem.poke_code(site, &ebreak_patch(4)).unwrap();
    let dirty = to_rewrite_spans(&mem.dirty_regions_since(watermark));

    let tracer = Tracer::enabled();
    let first = run_incremental(&engine, &bin, &mut cache, &dirty, 2, &tracer).unwrap();
    let (_, redone_first) = incremental_event(&tracer);
    assert!(redone_first >= 1, "the poked unit must be redone");
    assert_eq!(first.rewritten, primed.rewritten);

    let tracer = Tracer::enabled();
    let second = run_incremental(&engine, &bin, &mut cache, &dirty, 2, &tracer).unwrap();
    let (_, redone_second) = incremental_event(&tracer);
    assert_eq!(redone_second, 0, "a consumed report is a no-op");
    assert_eq!(second.rewritten, primed.rewritten);
}

/// A cache primed for a different input (or engine) is never silently
/// reused: the driver re-primes it with a full run, so the caller still
/// gets the right output — with every unit counted as redone.
#[test]
fn stale_cache_triggers_full_reprime() {
    let bin_a = chimera_workloads::hetero::matrix_task(8, 2, true);
    let bin_b = chimera_workloads::hetero::fib_task(12, 2);
    let engine = ChbpEngine {
        target: ExtSet::RV64GC,
        opts: RewriteOptions::default(),
    };
    let (_, mut cache) = run_cached(&engine, &bin_a, 2, &Tracer::disabled()).unwrap();

    let tracer = Tracer::enabled();
    let inc = run_incremental(&engine, &bin_b, &mut cache, &[], 2, &tracer).unwrap();
    let full = run(&engine, &bin_b, 2, &Tracer::disabled()).unwrap();
    assert_eq!(inc.rewritten, full.rewritten, "re-primed output is correct");
    let (total, redone) = incremental_event(&tracer);
    assert_eq!(redone, total, "a rebuild redoes every unit");

    // The cache now serves the new input incrementally.
    let tracer = Tracer::enabled();
    let again = run_incremental(&engine, &bin_b, &mut cache, &[], 2, &tracer).unwrap();
    assert_eq!(again.rewritten, full.rewritten);
    let (_, redone) = incremental_event(&tracer);
    assert_eq!(redone, 0);
}

/// Differential behaviour: after an invalidation sequence, the refreshed
/// variant still runs correctly under the kernel — the same `RunResult`
/// as the native binary on the extension profile.
#[test]
fn refreshed_variant_matches_native_behaviour() {
    for (bin_name, bin) in zoo() {
        let r = chimera_emu::run_binary_on(&bin, ExtSet::RV64GCV, FUEL).unwrap();
        let expected = (r.exit_code, r.stdout);
        for (eng_name, engine) in engines() {
            if eng_name == "identity" {
                continue; // Needs the extension profile; nothing to refresh.
            }
            let (primed, mut cache) =
                run_cached(engine.as_ref(), &bin, 4, &Tracer::disabled()).unwrap();
            let (mut mem, text_start, text_end) = load_image(&primed.rewritten.binary);
            let mut rng = Prng::new(0xfeed_beef ^ bin.entry);
            let watermark = mem.generation_watermark();
            for _ in 0..4 {
                mutate_image(&mut mem, &mut rng, text_start, text_end);
            }
            let dirty = to_rewrite_spans(&mem.dirty_regions_since(watermark));
            let refreshed = run_incremental(
                engine.as_ref(),
                &bin,
                &mut cache,
                &dirty,
                4,
                &Tracer::disabled(),
            )
            .unwrap();

            let tables = chimera_kernel::RuntimeTables {
                fht: Some(refreshed.rewritten.fht.clone()),
                regen: refreshed.regen.clone(),
            };
            let kr = run_under_kernel(
                refreshed.rewritten.binary.clone(),
                tables,
                ExtSet::RV64GC,
                true,
            );
            assert_eq!(
                (kr.exit_code, kr.stdout),
                expected,
                "{bin_name} [{eng_name}]: refreshed variant diverged from native"
            );
        }
    }
}

/// Regression for the fixed `.section(".chimera.text").unwrap()` panic:
/// a binary with zero patch sites takes the empty-target-section path in
/// the CHBP linker and must come back `Ok` with a well-formed
/// (placeholder-sized) target range.
#[test]
fn zero_patch_sites_link_without_panicking() {
    // Pure base-ISA program: no source instructions for a RV64GC target.
    let bin = chimera_workloads::hetero::fib_task(6, 1);
    for force_trap in [false, true] {
        let engine = ChbpEngine {
            target: ExtSet::RV64GCV,
            opts: RewriteOptions {
                force_trap_entries: force_trap,
                ..Default::default()
            },
        };
        let r = run(&engine, &bin, 2, &Tracer::disabled()).unwrap();
        assert_eq!(r.rewritten.stats.source_insts, 0, "no sites expected");
        let (lo, hi) = r.rewritten.fht.target_range;
        assert_eq!(hi - lo, 16, "placeholder target section spans 16 bytes");
        assert!(
            r.rewritten.binary.section(".chimera.text").is_some(),
            "placeholder section is attached"
        );
    }
}

/// Same regression for the upgrade path: a program with no vector loops
/// to upgrade must link its placeholder target section without panicking.
#[test]
fn upgrade_with_no_vector_loops_links_cleanly() {
    let bin = chimera_workloads::hetero::fib_task(6, 1);
    let r = upgrade_rewrite(&bin, RewriteOptions::default())
        .expect("upgrade with nothing to do succeeds");
    assert_eq!(r.stats.smile_trampolines, 0);
    let (lo, hi) = r.fht.target_range;
    assert_eq!(hi - lo, 16, "placeholder target section spans 16 bytes");
}
