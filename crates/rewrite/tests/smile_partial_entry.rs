//! Exhaustive partial-entry coverage for SMILE trampolines (Claim 1).
//!
//! For every trampoline CHBP places — across uncompressed and compressed
//! builds, so the plain, P2-constrained and P3-constrained forms all
//! occur — this suite force-enters the trampoline at **every** interior
//! 2-byte boundary that was an instruction start in the original binary
//! (offsets +2, +4, +6) and asserts:
//!
//! 1. the partial execution raises a *deterministic* fault whose key the
//!    passive handler can recover (`pc` for illegal-instruction faults,
//!    `gp - 4` for the P1 fetch fault);
//! 2. the fault is bit-for-bit reproducible (run twice, same trap, same
//!    cycle accounting);
//! 3. the kernel's passive handler recovers the erroneous entry to the
//!    exact behaviour of the *original* binary entered at the same
//!    address (Claim 2: semantic equivalence, not merely "no crash").

use chimera_emu::{Access, Stop, Trap};
use chimera_isa::ExtSet;
use chimera_kernel::{KernelRunner, Process, RunOutcome, RuntimeTables, Variant};
use chimera_obj::{assemble, AsmOptions, Binary};
use chimera_rewrite::smile::{encode_smile, next_reachable_target, SmileConstraints};
use chimera_rewrite::{chbp_rewrite, RewriteOptions, Rewritten};

/// A vector workload with enough source sites to place several
/// trampolines (sum of a+b elementwise, reduced: exits 110).
const VEC_SUM: &str = "
    .data
    a: .dword 1
       .dword 2
       .dword 3
       .dword 4
    b: .dword 10
       .dword 20
       .dword 30
       .dword 40
    .text
    _start:
        li t0, 4
        vsetvli t1, t0, e64, m1, ta, ma
        la a0, a
        la a1, b
        vle64.v v1, (a0)
        vle64.v v2, (a1)
        vadd.vv v3, v1, v2
        vmv.v.i v4, 0
        vredsum.vs v5, v3, v4
        vmv.x.s a0, v5
        li a7, 93
        ecall
";

/// A lone vector load followed by *compressible* 2-byte scalars: in the
/// compressed build the trampoline's 8-byte span holds boundaries at +4
/// and +6, forcing the P3-constrained SMILE form.
const VEC_WITH_RVC_NEIGHBOURS: &str = "
    .data
    a: .dword 5
       .dword 6
       .dword 7
       .dword 8
    .text
    _start:
        li t0, 4
        vsetvli t1, t0, e64, m1, ta, ma
        la a0, a
        vle64.v v1, (a0)
        li a1, 1
        li a2, 2
        vmv.v.i v2, 0
        vredsum.vs v3, v1, v2
        vmv.x.s a0, v3
        add a0, a0, a1
        add a0, a0, a2
        li a7, 93
        ecall
";

fn rewritten(src: &str, compress: bool) -> (Binary, Rewritten) {
    let bin = assemble(
        src,
        AsmOptions {
            compress,
            ..Default::default()
        },
    )
    .unwrap();
    let rw = chbp_rewrite(&bin, ExtSet::RV64GC, RewriteOptions::default()).unwrap();
    assert!(rw.stats.smile_trampolines > 0, "trampolines must be placed");
    (bin, rw)
}

/// The interior entry points of the trampoline at `head` that were
/// instruction starts in the original binary — exactly the addresses the
/// rewriter recorded redirects for.
fn interior_entries(rw: &Rewritten, head: u64) -> Vec<u64> {
    [2u64, 4, 6]
        .iter()
        .map(|off| head + off)
        .filter(|addr| rw.fht.redirects.contains_key(addr))
        .collect()
}

/// Forces one partial entry and returns `(recovered fault key, final
/// cycle count)`. Panics unless the fault is one of the two deterministic
/// recoverable shapes.
fn force_entry(rw: &Rewritten, entry: u64) -> (u64, u64) {
    let (mut cpu, mut mem) = chimera_emu::boot(&rw.binary, ExtSet::RV64GC);
    cpu.hart.pc = entry;
    match cpu.run(&mut mem, 10) {
        // P2/P3 (and relocation-slot) entries: the parcel at `entry` is a
        // reserved encoding — an illegal-instruction fault keyed by pc.
        Stop::Trap(Trap::Illegal { pc, .. }) => {
            assert_eq!(pc, entry, "illegal fault must be at the entry itself");
            (pc, cpu.stats.cycles)
        }
        // P1: the jalr executes with the unmodified ABI gp, landing in the
        // non-executable data segment; the handler keys on gp - 4.
        Stop::Trap(Trap::Mem { fault, .. }) => {
            assert_eq!(fault.access, Access::Fetch, "must be a fetch fault");
            assert!(fault.mapped, "the psABI gp points into mapped data");
            let key = cpu.hart.gp().wrapping_sub(4);
            (key, cpu.stats.cycles)
        }
        other => {
            panic!("entry {entry:#x}: expected a deterministic recoverable fault, got {other:?}")
        }
    }
}

/// Runs the *original* binary with pc forced to `start` — the reference
/// behaviour the passive handler must reproduce.
fn original_outcome(bin: &Binary, start: u64) -> i64 {
    let (mut cpu, mut mem) = chimera_emu::boot(bin, ExtSet::RV64GCV);
    cpu.hart.pc = start;
    chimera_emu::run_cpu(&mut cpu, &mut mem, 1_000_000)
        .expect("original binary runs from an instruction boundary")
        .exit_code
}

/// Runs the rewritten binary under the kernel with pc forced to `entry`.
fn recovered_outcome(rw: &Rewritten, entry: u64) -> (RunOutcome, u64) {
    let process = Process::new(vec![Variant {
        binary: rw.binary.clone(),
        tables: RuntimeTables {
            fht: Some(rw.fht.clone()),
            regen: None,
        },
    }]);
    let (mut cpu, mut mem, view) = process.load(ExtSet::RV64GC).unwrap();
    cpu.hart.pc = entry;
    let mut k = KernelRunner::new(view.tables.clone());
    let outcome = k.run(&mut cpu, &mut mem, 1_000_000);
    (outcome, k.counters.smile_faults)
}

/// Exercises every interior boundary of every trampoline in `rw`. Returns
/// the number of partial entries driven.
fn exercise(bin: &Binary, rw: &Rewritten) -> usize {
    let mut driven = 0;
    for &head in &rw.fht.trampolines {
        let entries = interior_entries(rw, head);
        assert!(
            !entries.is_empty(),
            "trampoline at {head:#x} overwrote at least its 4-byte source, \
             so at least one interior boundary must be entry-able"
        );
        for entry in entries {
            // (1) Deterministic recoverable fault, keyed back to the entry.
            let (key, cycles) = force_entry(rw, entry);
            assert_eq!(
                key, entry,
                "fault key must recover the overwritten-instruction address"
            );
            let redirect = rw.fht.redirects[&entry];
            let target = rw.binary.section(".chimera.text").expect("target section");
            assert!(
                redirect >= target.addr && redirect < target.end(),
                "redirect {redirect:#x} must point into the target section"
            );

            // (2) Bit-for-bit reproducible: same fault, same cycle count.
            let (key2, cycles2) = force_entry(rw, entry);
            assert_eq!(
                (key, cycles),
                (key2, cycles2),
                "fault must be deterministic"
            );

            // (3) The passive handler recovers to the original's behaviour.
            let expected = original_outcome(bin, entry);
            let (outcome, smile_faults) = recovered_outcome(rw, entry);
            assert_eq!(
                outcome,
                RunOutcome::Exited(expected),
                "recovery from {entry:#x} must match the original binary"
            );
            assert!(smile_faults >= 1, "recovery must go through the handler");
            driven += 1;
        }
    }
    driven
}

#[test]
fn every_partial_entry_faults_and_recovers_uncompressed() {
    let (bin, rw) = rewritten(VEC_SUM, false);
    let driven = exercise(&bin, &rw);
    assert!(
        driven >= rw.fht.trampolines.len(),
        "every trampoline driven"
    );
}

#[test]
fn every_partial_entry_faults_and_recovers_compressed() {
    // Compressed 2-byte neighbours inside the 8-byte patch force the
    // P3-constrained trampoline form (a boundary at +6); the suite then
    // drives that extra misaligned entry too.
    let (bin, rw) = rewritten(VEC_WITH_RVC_NEIGHBOURS, true);
    assert!(
        rw.stats.constrained_smiles >= 1,
        "the compressed build must exercise at least one constrained form"
    );
    let driven = exercise(&bin, &rw);
    // The P3 trampoline exposes two interior boundaries (+4 and +6), so
    // strictly more entries than trampolines were driven.
    assert!(driven > rw.fht.trampolines.len());
}

#[test]
fn interior_redirects_match_original_instruction_boundaries() {
    // The fault table must key *exactly* the offsets that were
    // instruction starts in the original binary: a missing key would make
    // a legal erroneous entry unrecoverable, an extra key would "recover"
    // an entry no original execution could take.
    for (src, compress) in [(VEC_SUM, false), (VEC_WITH_RVC_NEIGHBOURS, true)] {
        let bin = assemble(
            src,
            AsmOptions {
                compress,
                ..Default::default()
            },
        )
        .unwrap();
        let rw = chbp_rewrite(&bin, ExtSet::RV64GC, RewriteOptions::default()).unwrap();
        let starts: std::collections::BTreeSet<u64> = chimera_analysis::disassemble(&bin)
            .iter()
            .map(|di| di.addr)
            .collect();
        for &head in &rw.fht.trampolines {
            for off in [2u64, 4, 6] {
                let addr = head + off;
                assert_eq!(
                    rw.fht.redirects.contains_key(&addr),
                    starts.contains(&addr),
                    "trampoline {head:#x}: redirect coverage at +{off} must \
                     match the original boundary"
                );
            }
        }
    }
}

#[test]
fn synthetic_p2_constrained_form_faults_at_every_offset() {
    // CHBP's sources are 4-byte vector instructions, so a boundary at +2
    // (the P2 form) cannot arise from the pipeline; exercise the encoder's
    // P2+P3 form directly by hand-patching it over an 8-byte span and
    // force-entering every interior offset.
    let bin = assemble(
        "
        .data
        pad: .dword 0
        .text
        _start:
            li a0, 1
            li a1, 2
            li a2, 3
            li a3, 4
            li a7, 93
            ecall
        ",
        AsmOptions::default(),
    )
    .unwrap();
    let c = SmileConstraints { p2: true, p3: true };
    let text_end = bin.section(".text").unwrap().end();
    let target = next_reachable_target(bin.entry, text_end, c).expect("reachable target");
    let s = encode_smile(bin.entry, target, c).unwrap();
    let mut patched = bin.clone();
    assert!(patched.write(bin.entry, &s.bytes()));

    for off in [2u64, 6] {
        let entry = bin.entry + off;
        let (mut cpu, mut mem) = chimera_emu::boot(&patched, ExtSet::RV64GC);
        cpu.hart.pc = entry;
        match cpu.run(&mut mem, 10) {
            Stop::Trap(Trap::Illegal { pc, .. }) => {
                assert_eq!(pc, entry, "constrained parcel must fault at +{off}")
            }
            other => panic!("P2/P3 entry at +{off}: expected illegal fault, got {other:?}"),
        }
    }
    // P1 (+4): the jalr runs with the unmodified gp and the fetch faults
    // in the data segment, keyed by gp - 4.
    let entry = bin.entry + 4;
    let (mut cpu, mut mem) = chimera_emu::boot(&patched, ExtSet::RV64GC);
    cpu.hart.pc = entry;
    match cpu.run(&mut mem, 10) {
        Stop::Trap(Trap::Mem { fault, .. }) => {
            assert_eq!(fault.access, Access::Fetch);
            assert_eq!(cpu.hart.gp().wrapping_sub(4), entry);
        }
        other => panic!("P1 entry: expected fetch fault, got {other:?}"),
    }
}
