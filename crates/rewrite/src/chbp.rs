//! CHBP — Correct and High-performance Binary Patching (§3.4, §4.2, §4.3).
//!
//! Given a binary and a target core profile, CHBP:
//!
//! 1. scans the disassembly for *source instructions* (instructions the
//!    target profile cannot execute — or, in empty-patching mode, all
//!    instructions of a chosen extension, re-emitted verbatim, the
//!    methodology §6.2 uses);
//! 2. generates *target instructions* for each patch site into a new
//!    executable `.chimera.text` section (translations from
//!    [`Translator`], plus position-independent copies of overwritten
//!    neighbours and, under batching, of the rest of the basic block);
//! 3. overwrites each site with a SMILE trampoline whose interior entry
//!    points all fault deterministically ([`crate::smile`]);
//! 4. emits the fault-handling table mapping every overwritten original
//!    instruction address to its copy, for the runtime's passive fault
//!    handler.
//!
//! Exit jumps from target blocks back to original code use, in order:
//! a plain `jal` when in range; a dead register found by traditional
//! liveness; CHBP's *exit-position shifting* (copy more instructions until
//! a dead register appears); and finally a trap-based exit. The two failure
//! counters feed Table 3.

use crate::emitter::BlockEmitter;
use crate::engine::{EngineState, RewriteEngine, RewriteUnit, UnitArtifact, UnitKind, UnitPlan};
use crate::smile::{encode_smile, next_reachable_target, Smile, SmileConstraints};
use crate::translate::{SpillLayout, Translator};
use chimera_analysis::{disassemble_with, Cfg, DisasmInst, Disassembly, Liveness};
use chimera_isa::{encode, Ext, ExtSet, Inst, XReg};
use chimera_obj::{pcrel_hi_lo, Binary, Perms};
use chimera_trace::Tracer;
use std::collections::{BTreeMap, BTreeSet};

/// What the rewrite should do with source instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Translate instructions the target profile lacks into base sequences.
    Downgrade,
    /// Re-emit source instructions of the given extension verbatim — the
    /// "empty patching" methodology of §6.2, isolating rewriting overhead.
    EmptyPatch(Ext),
}

/// Rewrite options.
#[derive(Debug, Clone, Copy)]
pub struct RewriteOptions {
    /// Source-instruction handling.
    pub mode: Mode,
    /// Batch all source instructions of a basic block behind one
    /// trampoline execution (§4.2 "Additionally, to enhance performance").
    pub batching: bool,
    /// Enable CHBP's exit-position shifting (disable to measure the
    /// traditional-liveness-only baseline of Table 3).
    pub exit_shifting: bool,
    /// Give up on a SMILE trampoline whose constrained target placement
    /// would waste more than this much padding, using a trap instead.
    pub max_padding: u64,
    /// Force trap-based entries at every patch site (the strawman
    /// binary-patching baseline of §6.2, isolating SMILE's benefit).
    pub force_trap_entries: bool,
}

impl Default for RewriteOptions {
    fn default() -> Self {
        RewriteOptions {
            mode: Mode::Downgrade,
            batching: true,
            exit_shifting: true,
            max_padding: 64 * 1024,
            force_trap_entries: false,
        }
    }
}

/// The fault-handling table and related runtime metadata (§4.3).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultTable {
    /// Overwritten-instruction address → address of its copy in
    /// `.chimera.text`. The passive fault handler redirects here.
    pub redirects: BTreeMap<u64, u64>,
    /// Trap-based *entries*: `ebreak` address in `.text` → target block.
    pub trap_entries: BTreeMap<u64, u64>,
    /// Trap-based *exits*: `ebreak` address in `.chimera.text` → original
    /// resume address.
    pub trap_exits: BTreeMap<u64, u64>,
    /// The psABI `gp` value the handler restores after a P1 fault.
    pub abi_gp: u64,
    /// SMILE trampoline head addresses (each spans 8 bytes).
    pub trampolines: BTreeSet<u64>,
    /// The `.chimera.text` range (used to delay migration while pc is
    /// inside target instructions, §4.3).
    pub target_range: (u64, u64),
    /// The `.chimera.vregs` spill section base (simulated vector state).
    pub spill_base: u64,
    /// Source instructions left unpatched because no downgrade template
    /// exists; executing one raises an illegal-instruction fault and the
    /// kernel migrates the task to a capable core (FAM-style fallback).
    pub untranslated: BTreeSet<u64>,
}

impl FaultTable {
    /// Whether `pc` lies inside any placed SMILE trampoline (used by the
    /// signal-delivery path to restore `gp` for user handlers).
    pub fn inside_trampoline(&self, pc: u64) -> bool {
        self.trampolines
            .range(..=pc)
            .next_back()
            .is_some_and(|&t| pc < t + 8)
    }

    /// Whether `pc` is inside the target-instruction section.
    pub fn in_target_section(&self, pc: u64) -> bool {
        pc >= self.target_range.0 && pc < self.target_range.1
    }
}

/// Rewriting statistics (Table 3 and the §6.2 breakdowns).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// Executable bytes in the original binary.
    pub code_size: u64,
    /// Recognized instructions.
    pub total_insts: usize,
    /// Source instructions (needing rewrite).
    pub source_insts: usize,
    /// Patch sites that got a SMILE trampoline.
    pub smile_trampolines: usize,
    /// Of those, sites needing P2/P3 encoding constraints.
    pub constrained_smiles: usize,
    /// Exit jumps emitted (jal + register trampolines + traps).
    pub exit_jumps: usize,
    /// Exits that needed a long-range register trampoline.
    pub exit_trampolines: usize,
    /// Exits where *traditional* liveness found no dead register.
    pub dead_reg_not_found_traditional: usize,
    /// Exits where CHBP (with shifting) still found no dead register.
    pub dead_reg_not_found_shift: usize,
    /// Sites that fell back to a trap-based entry.
    pub trap_entries: usize,
    /// Exits that fell back to a trap.
    pub trap_exits: usize,
    /// Bytes of target-section padding spent satisfying SMILE constraints.
    pub padding_bytes: u64,
    /// Final `.chimera.text` size.
    pub target_section_size: u64,
}

/// A rewritten binary plus its runtime metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rewritten {
    /// The patched binary (target profile recorded).
    pub binary: Binary,
    /// Fault-handling table for the runtime.
    pub fht: FaultTable,
    /// Rewrite statistics.
    pub stats: RewriteStats,
}

/// Rewriting errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteError {
    /// The binary failed validation.
    BadBinary(String),
    /// Internal layout failure (should not happen; surfaced loudly).
    Layout(String),
    /// A section the rewriter just attached is missing from the output —
    /// the output binary is corrupt, so surfaced as a typed error rather
    /// than a panic.
    MissingSection(&'static str),
}

impl core::fmt::Display for RewriteError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RewriteError::BadBinary(s) => write!(f, "bad input binary: {s}"),
            RewriteError::Layout(s) => write!(f, "layout failure: {s}"),
            RewriteError::MissingSection(s) => {
                write!(f, "output binary lost its '{s}' section")
            }
        }
    }
}

impl std::error::Error for RewriteError {}

/// Is `inst` a source instruction under `mode` for `target`?
fn is_source(inst: &Inst, mode: Mode, target: ExtSet) -> bool {
    match mode {
        Mode::Downgrade => !inst.runnable_on(target),
        Mode::EmptyPatch(ext) => inst.ext() == Some(ext),
    }
}

/// Rewrites `binary` for a core with profile `target` using CHBP.
pub fn chbp_rewrite(
    binary: &Binary,
    target: ExtSet,
    opts: RewriteOptions,
) -> Result<Rewritten, RewriteError> {
    chbp_rewrite_traced(binary, target, opts, &Tracer::disabled())
}

/// [`chbp_rewrite`] with per-stage timing: each pipeline stage emits a
/// `TraceEvent::RewritePassDone` carrying its wall-clock duration and an
/// item count, plus `rewrite.*` counters mirroring [`RewriteStats`].
/// Rewrite-time events are timestamped at cycle 0 (there is no simulated
/// clock at rewrite time); durations live in the event payload, so traces
/// of deterministic runs stay deterministic apart from those payloads.
pub fn chbp_rewrite_traced(
    binary: &Binary,
    target: ExtSet,
    opts: RewriteOptions,
    tracer: &Tracer,
) -> Result<Rewritten, RewriteError> {
    chbp_rewrite_with(
        binary,
        target,
        opts,
        crate::pipeline::default_workers(),
        tracer,
    )
}

/// [`chbp_rewrite`] with an explicit worker count for the parallel
/// pipeline stages. Output is bit-identical for every worker count.
pub fn chbp_rewrite_with(
    binary: &Binary,
    target: ExtSet,
    opts: RewriteOptions,
    workers: usize,
    tracer: &Tracer,
) -> Result<Rewritten, RewriteError> {
    let engine = ChbpEngine { target, opts };
    crate::pipeline::run(&engine, binary, workers, tracer).map(|r| r.rewritten)
}

/// The CHBP patching engine (also the §6.2 strawman, via
/// [`RewriteOptions::force_trap_entries`]).
pub struct ChbpEngine {
    /// The target core profile.
    pub target: ExtSet,
    /// Rewrite options.
    pub opts: RewriteOptions,
}

impl RewriteEngine for ChbpEngine {
    fn name(&self) -> &'static str {
        if self.opts.force_trap_entries {
            "strawman"
        } else {
            "chbp"
        }
    }

    fn scan(&self, st: &mut EngineState) -> Result<(), RewriteError> {
        st.input
            .validate()
            .map_err(|e| RewriteError::BadBinary(e.to_string()))?;
        let d = disassemble_with(st.input, st.workers);
        let cfg = Cfg::build(&d);
        let liveness = Liveness::compute_with(&cfg, st.workers);

        st.stats.code_size = st.input.code_size();
        st.stats.total_insts = d.insts.len();

        // Reserve the spill section, then compute where .chimera.text
        // will go.
        let mut out = st.input.clone();
        let spill_base = out.append_section(
            ".chimera.vregs",
            vec![0u8; SpillLayout::SIZE.next_multiple_of(0x1000)],
            Perms::RW,
        );
        let target_base = {
            let top = out.sections.iter().map(|s| s.end()).max().unwrap_or(0);
            (top + 0xfff) & !0xfff
        };
        st.fht.abi_gp = st.input.gp;
        st.fht.spill_base = spill_base;
        st.target_base = target_base;
        st.out = Some(out);

        // Collect patch sites: source instructions in address order.
        let sources: Vec<DisasmInst> = d
            .iter()
            .filter(|di| is_source(&di.inst, self.opts.mode, self.target))
            .copied()
            .collect();
        st.stats.source_insts = sources.len();

        // Parallel translatability check: a site whose instruction has no
        // downgrade template stays unpatched (raises an illegal fault at
        // runtime; the kernel falls back to migration, FAM-style). A full
        // scratch downgrade is the check — `probe` alone does not cover
        // the scalar templates.
        let abi_gp = st.input.gp;
        let translatable: Vec<bool> = match self.opts.mode {
            Mode::Downgrade => chimera_analysis::par::map_indexed(st.workers, sources.len(), |i| {
                let mut t = Translator::new(spill_base, abi_gp);
                let mut probe = BlockEmitter::new(target_base);
                t.downgrade(&sources[i].inst, &mut probe).is_ok()
            }),
            Mode::EmptyPatch(_) => vec![true; sources.len()],
        };

        // Sequential unit partition: the covered_until walk. Cheap — all
        // expensive work (analyses above, measurement below) is parallel.
        let mut units: Vec<RewriteUnit> = Vec::new();
        let mut covered_until: u64 = 0;
        for (i, site) in sources.iter().enumerate() {
            if site.addr < covered_until {
                // Inside a previous trampoline's space: no own trampoline;
                // the previous site's block already translated it and the
                // FHT redirect covers erroneous jumps onto it.
                continue;
            }
            if !translatable[i] {
                st.fht.untranslated.insert(site.addr);
                covered_until = site.addr + site.len as u64;
                continue;
            }
            match build_region(&d, &cfg, site, self.opts) {
                Some(region) => {
                    // Strawman regions replace only the site's own bytes,
                    // so following sources still get their own units;
                    // SMILE regions own the whole overwritten space.
                    covered_until = if self.opts.force_trap_entries {
                        site.addr + site.len as u64
                    } else {
                        region.space_end
                    };
                    units.push(RewriteUnit {
                        kind: UnitKind::Region {
                            region,
                            forced_trap: self.opts.force_trap_entries,
                        },
                    });
                }
                None => {
                    // Cannot form an 8-byte space: trap entry + lone
                    // translation.
                    covered_until = site.addr + site.len as u64;
                    units.push(RewriteUnit {
                        kind: UnitKind::Site(*site),
                    });
                }
            }
        }

        // Parallel size measurement: scratch-emit every unit at the
        // target base and keep only the length. Emission is size-invariant
        // in its base address (fixed-width exit slots, always-paired
        // auipc+addi), so the measured size equals the final one.
        let (opts, target) = (self.opts, self.target);
        let sizes: Vec<u64> = chimera_analysis::par::map_indexed(st.workers, units.len(), |i| {
            emit_unit(
                &units[i],
                target_base,
                &d,
                &liveness,
                opts,
                target,
                spill_base,
                abi_gp,
            )
            .bytes
            .len() as u64
        });

        st.pass_items = d.insts.len() as u64;
        st.units = std::sync::Arc::new(units);
        st.unit_sizes = std::sync::Arc::new(sizes);
        st.disasm = Some(std::sync::Arc::new(d));
        st.cfg = Some(std::sync::Arc::new(cfg));
        st.liveness = Some(std::sync::Arc::new(liveness));
        Ok(())
    }

    fn plan(&self, st: &mut EngineState) -> Result<(), RewriteError> {
        let d = st.disasm.clone().expect("scan ran");
        let d = &*d;
        let mut cursor = st.target_base;
        let mut plans: Vec<UnitPlan> = Vec::with_capacity(st.units.len());
        for (unit, &size) in st.units.iter().zip(st.unit_sizes.iter()) {
            match &unit.kind {
                UnitKind::Region {
                    region,
                    forced_trap,
                } => {
                    let site = region.insts[0];
                    let constraints = region.constraints(d);
                    // Pick the block address under SMILE reachability
                    // (never for the strawman).
                    let placed = if *forced_trap {
                        None
                    } else {
                        next_reachable_target(site.addr, cursor, constraints)
                            .filter(|a| a - cursor <= self.opts.max_padding)
                    };
                    match placed {
                        Some(block_addr) => {
                            let smile: Smile = encode_smile(site.addr, block_addr, constraints)
                                .map_err(|e| {
                                    RewriteError::Layout(format!("SMILE at {:#x}: {e}", site.addr))
                                })?;
                            let mut patch = smile.bytes().to_vec();
                            // Fill the rest of the space (if wider than 8
                            // bytes) with reserved-illegal halfwords so any
                            // entry there faults.
                            let extra = (region.space_end - site.addr - 8) as usize;
                            for _ in 0..extra / 2 {
                                patch.extend_from_slice(&ILLEGAL_HALFWORD.to_le_bytes());
                            }
                            st.text_patches.push((site.addr, patch));
                            st.fht.trampolines.insert(site.addr);
                            st.stats.smile_trampolines += 1;
                            if constraints != SmileConstraints::NONE {
                                st.stats.constrained_smiles += 1;
                            }
                            let padding = block_addr - cursor;
                            st.stats.padding_bytes += padding;
                            plans.push(UnitPlan {
                                addr: block_addr,
                                padding,
                            });
                            cursor = block_addr + size;
                        }
                        None => {
                            // No reachable SMILE placement within the
                            // padding budget (or strawman): trap entry, but
                            // keep the full region block — only the site's
                            // own bytes are replaced, neighbours stay
                            // intact, and the block's interior redirects
                            // cover erroneous jumps.
                            st.text_patches.push((site.addr, ebreak_patch(site.len)));
                            st.fht.trap_entries.insert(site.addr, cursor);
                            st.stats.trap_entries += 1;
                            plans.push(UnitPlan {
                                addr: cursor,
                                padding: 0,
                            });
                            cursor += size;
                        }
                    }
                }
                UnitKind::Site(site) => {
                    st.text_patches.push((site.addr, ebreak_patch(site.len)));
                    st.fht.trap_entries.insert(site.addr, cursor);
                    st.stats.trap_entries += 1;
                    plans.push(UnitPlan {
                        addr: cursor,
                        padding: 0,
                    });
                    cursor += size;
                }
                UnitKind::Span { .. } => {
                    unreachable!("span units belong to the regeneration engine")
                }
            }
        }
        st.pass_items = st.units.len() as u64;
        st.plans = plans;
        Ok(())
    }

    fn transform(&self, st: &mut EngineState) -> Result<(), RewriteError> {
        let d = st.disasm.as_deref().expect("scan ran");
        let liveness = st.liveness.as_deref().expect("scan ran");
        let units = &st.units;
        let plans = &st.plans;
        let (opts, target) = (self.opts, self.target);
        let (spill_base, abi_gp) = (st.fht.spill_base, st.fht.abi_gp);
        let artifacts: Vec<UnitArtifact> =
            chimera_analysis::par::map_indexed(st.workers, units.len(), |i| {
                emit_unit(
                    &units[i],
                    plans[i].addr,
                    d,
                    liveness,
                    opts,
                    target,
                    spill_base,
                    abi_gp,
                )
            });
        for (art, &size) in artifacts.iter().zip(st.unit_sizes.iter()) {
            debug_assert_eq!(
                art.bytes.len() as u64,
                size,
                "emission must be size-invariant in its base address"
            );
        }
        st.pass_items = artifacts.len() as u64;
        st.artifacts = artifacts;
        Ok(())
    }

    fn place(&self, st: &mut EngineState) -> Result<(), RewriteError> {
        st.pass_items = st.artifacts.len() as u64;
        let artifacts = std::mem::take(&mut st.artifacts);
        for (plan, art) in st.plans.iter().zip(artifacts) {
            pad_illegal(&mut st.target_code, plan.padding as usize);
            debug_assert_eq!(st.target_base + st.target_code.len() as u64, plan.addr);
            st.target_code.extend_from_slice(&art.bytes);
            crate::engine::merge_fragment(&mut st.fht, &mut st.stats, art);
        }
        Ok(())
    }

    fn link(&self, st: &mut EngineState) -> Result<(), RewriteError> {
        let out = st.out.as_mut().expect("scan cloned the input");
        st.pass_items = st.text_patches.len() as u64;
        for (addr, bytes) in st.text_patches.drain(..) {
            if !out.write(addr, &bytes) {
                return Err(RewriteError::Layout(format!(
                    "patch at {addr:#x} does not fit its section"
                )));
            }
        }

        st.stats.target_section_size = st.target_code.len() as u64;
        let mut target_code = std::mem::take(&mut st.target_code);
        if target_code.is_empty() {
            // Keep an empty-but-mapped page so ranges stay meaningful.
            target_code.resize(16, 0);
        }
        let placed = out.append_section(".chimera.text", target_code, Perms::RX);
        if placed != st.target_base {
            return Err(RewriteError::Layout(format!(
                "target section landed at {placed:#x}, expected {:#x}",
                st.target_base
            )));
        }
        let target_end = out
            .section(".chimera.text")
            .ok_or(RewriteError::MissingSection(".chimera.text"))?
            .end();
        st.fht.target_range = (st.target_base, target_end);
        out.profile = self.target;
        Ok(())
    }

    fn transform_unit(&self, st: &EngineState, idx: usize) -> Result<UnitArtifact, RewriteError> {
        let d = st.disasm.as_deref().expect("cache holds the analyses");
        let liveness = st.liveness.as_deref().expect("cache holds the analyses");
        Ok(emit_unit(
            &st.units[idx],
            st.plans[idx].addr,
            d,
            liveness,
            self.opts,
            self.target,
            st.fht.spill_base,
            st.fht.abi_gp,
        ))
    }
}

/// Emits one unit at `addr` into a fresh artifact: the pure per-unit
/// function behind both the scan-stage size measurement and the parallel
/// transform stage. Each call uses its own [`Translator`] (its only
/// mutable state is a label-name counter, which never reaches the bytes).
#[allow(clippy::too_many_arguments)]
pub(crate) fn emit_unit(
    unit: &RewriteUnit,
    addr: u64,
    d: &Disassembly,
    liveness: &Liveness,
    opts: RewriteOptions,
    target: ExtSet,
    spill_base: u64,
    abi_gp: u64,
) -> UnitArtifact {
    let mut translator = Translator::new(spill_base, abi_gp);
    let mut em = BlockEmitter::new(addr);
    let mut art = UnitArtifact::default();
    match &unit.kind {
        UnitKind::Region { region, .. } => {
            emit_block(
                region,
                d,
                liveness,
                opts,
                &mut translator,
                &mut em,
                &mut art.fht,
                &mut art.stats,
                target,
            );
        }
        UnitKind::Site(site) => {
            emit_site_translation(&site.inst, opts.mode, &mut translator, &mut em)
                .expect("scan verified translatability");
            emit_exit(
                site.next_addr(),
                d,
                liveness,
                opts,
                target,
                &mut em,
                &mut art.fht,
                &mut art.stats,
            );
        }
        UnitKind::Span { .. } => unreachable!("span units belong to the regeneration engine"),
    }
    art.bytes = em.finish();
    art
}

/// Emits the translation for one patch site: gp restore followed by the
/// verbatim re-emission (empty patching) or the downgrade sequence. This
/// is the single translate/emit primitive shared by the static pipeline's
/// site units and the kernel's fault-time `lazy_rewrite`, so the two can
/// never diverge.
pub fn emit_site_translation(
    inst: &Inst,
    mode: Mode,
    translator: &mut Translator,
    em: &mut BlockEmitter,
) -> Result<(), crate::translate::Untranslatable> {
    // Restore gp: the entry path (SMILE jalr or kernel trap) left it
    // clobbered or the block may be entered with the spill base loaded.
    translator.restore_gp(em);
    match mode {
        Mode::EmptyPatch(_) => {
            em.inst(*inst);
            Ok(())
        }
        Mode::Downgrade => translator.downgrade(inst, em),
    }
}

/// The in-place patch replacing a source instruction with a trap:
/// `c.ebreak` for 2-byte sites (so neighbours stay intact), `ebreak` for
/// 4-byte ones. Shared by the static plan stage and the kernel's lazy
/// rewriter.
pub fn ebreak_patch(len: u8) -> Vec<u8> {
    if len == 2 {
        chimera_isa::encode_compressed(&Inst::Ebreak)
            .expect("c.ebreak exists")
            .to_le_bytes()
            .to_vec()
    } else {
        encode(&Inst::Ebreak)
            .expect("ebreak encodes")
            .to_le_bytes()
            .to_vec()
    }
}

/// A reserved compressed encoding (quadrant 0, funct3 = 100): guaranteed
/// illegal-instruction fault, used as filler for overwritten space beyond
/// the 8-byte trampoline and for constraint padding.
#[allow(clippy::unusual_byte_groupings)] // grouped by RVC field, not nibble
pub const ILLEGAL_HALFWORD: u16 = 0b100_0_0000_0000_00_00;

fn pad_illegal(buf: &mut Vec<u8>, n: usize) {
    debug_assert_eq!(n % 2, 0, "padding is halfword-granular");
    for _ in 0..n / 2 {
        buf.extend_from_slice(&ILLEGAL_HALFWORD.to_le_bytes());
    }
}

/// A patch region: the instructions translated/copied into one target
/// block.
#[derive(Debug)]
pub(crate) struct Region {
    /// Instructions from the site onward, in order.
    insts: Vec<DisasmInst>,
    /// First byte after the overwritten space (≥ site + 8, an instruction
    /// boundary).
    space_end: u64,
    /// Original address where execution resumes after the block (unless
    /// the region ends in an unconditional jump).
    resume: u64,
    /// Whether the final instruction is a conditional branch (needs a
    /// deferred taken-exit) or a plain jump (no fallthrough resume).
    tail: RegionTail,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RegionTail {
    /// Resume at `region.resume`.
    Fallthrough,
    /// Final instruction is `branch` to `taken`; fallthrough resumes.
    Branch { taken: u64 },
    /// Final instruction is an unconditional direct jump to `target`.
    Jump { target: u64 },
    /// Final instruction is an indirect non-linking jump (copied verbatim;
    /// no resume).
    IndirectJump,
}

impl Region {
    /// The input-address range `[start, end)` whose bytes this region
    /// translates: from the patch site through the later of the
    /// overwritten space and the last batched instruction. The
    /// incremental driver keys the dirty-unit set on this range.
    pub(crate) fn source_range(&self) -> (u64, u64) {
        let start = self.insts[0].addr;
        let last = self.insts.last().expect("regions are non-empty");
        (start, self.space_end.max(last.addr + last.len as u64))
    }

    /// Which interior trampoline offsets were original instruction starts.
    fn constraints(&self, _d: &Disassembly) -> SmileConstraints {
        let site = self.insts[0].addr;
        let mut c = SmileConstraints::NONE;
        for di in &self.insts {
            if di.addr == site + 2 {
                c.p2 = true;
            }
            if di.addr == site + 6 {
                c.p3 = true;
            }
        }
        c
    }
}

/// Builds the region for a patch site, or `None` when no safe 8-byte space
/// exists (the site then uses a trap-based entry).
fn build_region(
    d: &Disassembly,
    cfg: &Cfg,
    site: &DisasmInst,
    opts: RewriteOptions,
) -> Option<Region> {
    let block = cfg.block_containing(site.addr)?;
    let block_last = block.insts.last().expect("blocks are non-empty");
    let mut insts: Vec<DisasmInst> = Vec::new();
    let mut addr = site.addr;
    let space_min = site.addr + 8;
    let mut tail = RegionTail::Fallthrough;

    loop {
        let Some(di) = d.at(addr) else {
            // Ran out of recognized code before filling the space.
            if addr >= space_min {
                break;
            }
            return None;
        };
        let need_more_space = addr < space_min;
        // Batching runs through the block *including* its terminator, so
        // loop backedges stay inside the target block (branching to a
        // local label when they target the site itself) and the
        // fallthrough exit lands past the terminator, where exit-position
        // shifting can walk (§4.2's basic-block merging).
        let inside_batch = opts.batching && addr <= block_last.addr;
        if !need_more_space && !inside_batch {
            break;
        }
        match di.inst {
            Inst::Branch { .. } => {
                insts.push(*di);
                let taken = di.inst.direct_target(di.addr).expect("branch target");
                tail = RegionTail::Branch { taken };
                addr = di.next_addr();
                break;
            }
            Inst::Jal { rd, .. } if rd == XReg::ZERO => {
                insts.push(*di);
                let target = di.inst.direct_target(di.addr).expect("jal target");
                tail = RegionTail::Jump { target };
                addr = di.next_addr();
                break;
            }
            Inst::Jalr { rd, .. } if rd == XReg::ZERO => {
                insts.push(*di);
                tail = RegionTail::IndirectJump;
                addr = di.next_addr();
                break;
            }
            _ => {
                // Calls (jal/jalr with link), ecall and straight-line code
                // continue the region.
                insts.push(*di);
                addr = di.next_addr();
            }
        }
    }
    let end = addr;
    if end < space_min {
        return None;
    }
    // space_end: the first instruction boundary ≥ site+8.
    let mut space_end = site.addr;
    for di in &insts {
        if space_end >= space_min {
            break;
        }
        space_end = di.next_addr();
    }
    if space_end < space_min {
        return None;
    }
    Some(Region {
        insts,
        space_end,
        resume: end,
        tail,
    })
}

/// Emits one region's target block: gp restore, then per-instruction
/// translation/copy, then the exit(s). Updates the FHT with redirect
/// entries for every instruction whose original bytes the trampoline
/// overwrites.
#[allow(clippy::too_many_arguments)]
fn emit_block(
    region: &Region,
    d: &Disassembly,
    liveness: &Liveness,
    opts: RewriteOptions,
    translator: &mut Translator,
    em: &mut BlockEmitter,
    fht: &mut FaultTable,
    stats: &mut RewriteStats,
    target: ExtSet,
) {
    let site = region.insts[0].addr;
    // Restore gp: the SMILE jalr left the return address in it.
    em.label("block_head");
    translator.restore_gp(em);

    let mut deferred_branch: Option<(u64, String)> = None;
    // Consecutive translated vector instructions share one scratch
    // save/restore sequence (the §4.2 batching optimization applied at the
    // translation level). Sequences are broken at FHT entry points so a
    // redirected erroneous jump always lands at sequence-safe code.
    let mut in_seq = false;

    for (idx, di) in region.insts.iter().enumerate() {
        // FHT entry for overwritten instruction starts (not the site head:
        // jumping there executes the full trampoline, which is correct).
        let needs_entry = di.addr > site && di.addr < region.space_end;
        let translated_vector = opts.mode == Mode::Downgrade
            && is_source(&di.inst, opts.mode, target)
            && crate::translate::Translator::sequenceable(&di.inst)
            && translator.probe(&di.inst).is_ok();
        if in_seq && (needs_entry || !translated_vector) {
            translator.seq_end(em);
            in_seq = false;
        }
        if needs_entry {
            fht.redirects.insert(di.addr, em.addr());
        }
        let is_last = idx == region.insts.len() - 1;
        match di.inst {
            Inst::Branch { kind, rs1, rs2, .. }
                if is_last && matches!(region.tail, RegionTail::Branch { .. }) =>
            {
                let RegionTail::Branch { taken } = region.tail else {
                    unreachable!()
                };
                if taken == site {
                    // A loop backedge to the patch site: iterate inside
                    // the target block instead of re-entering through the
                    // trampoline.
                    em.branch_to(kind, rs1, rs2, "block_head");
                } else {
                    let label = format!("taken_{:x}", di.addr);
                    em.branch_to(kind, rs1, rs2, label.clone());
                    deferred_branch = Some((taken, label));
                }
            }
            // The final unconditional jump of a Jump-tail region is not
            // copied: the region exit (emitted below) performs it.
            _ if is_last && matches!(region.tail, RegionTail::Jump { .. }) => {}
            _ => {
                if is_source(&di.inst, opts.mode, target) {
                    match opts.mode {
                        Mode::EmptyPatch(_) => {
                            em.inst(di.inst);
                        }
                        Mode::Downgrade => {
                            if translated_vector {
                                if !in_seq {
                                    translator.seq_begin(em);
                                    in_seq = true;
                                }
                                translator
                                    .downgrade_in_seq(&di.inst, em)
                                    .expect("probed translatable");
                            } else if translator.downgrade(&di.inst, em).is_err() {
                                // No template for this mid-region source
                                // instruction: mark its copy position so the
                                // kernel's FAM fallback migrates when the
                                // trap fires.
                                let at = em.addr();
                                em.inst(Inst::Ebreak);
                                fht.untranslated.insert(at);
                                fht.trap_exits.insert(at, di.next_addr());
                            }
                        }
                    }
                } else {
                    reemit(&di.inst, di.addr, em);
                }
            }
        }
    }
    if in_seq {
        translator.seq_end(em);
    }

    // Exits.
    match region.tail {
        RegionTail::Fallthrough | RegionTail::Branch { .. } => {
            emit_exit(region.resume, d, liveness, opts, target, em, fht, stats);
        }
        RegionTail::Jump { target: t } => {
            emit_exit(t, d, liveness, opts, target, em, fht, stats);
        }
        RegionTail::IndirectJump => {}
    }
    if let Some((taken, label)) = deferred_branch {
        em.label(label);
        emit_exit(taken, d, liveness, opts, target, em, fht, stats);
    }
}

/// Re-emits a non-source instruction at a new location, preserving
/// semantics: pc-relative instructions are rebuilt, everything else is
/// copied in canonical (uncompressed) form.
pub(crate) fn reemit(inst: &Inst, old_addr: u64, em: &mut BlockEmitter) {
    match *inst {
        Inst::Auipc { rd, imm20 } => {
            // Rebuild the absolute value the original would have produced.
            // Always emit the paired addi (even when the low part is zero)
            // so the re-emission is size-invariant in its base address —
            // the pipeline measures unit sizes at a scratch base and must
            // get the same length at the final one.
            let value = old_addr.wrapping_add(((imm20 as i64) << 12) as u64);
            let new_pc = em.addr();
            let (hi, lo) = pcrel_hi_lo(value as i64 - new_pc as i64);
            em.inst(Inst::Auipc { rd, imm20: hi });
            em.inst(chimera_obj::addi(rd, rd, lo));
        }
        Inst::Jal { rd, offset } if rd != XReg::ZERO => {
            // A call: long-range call trampoline; the return address links
            // into the target block, which continues correctly.
            let target = old_addr.wrapping_add(offset as i64 as u64);
            let new_pc = em.addr();
            let (hi, lo) = pcrel_hi_lo(target as i64 - new_pc as i64);
            em.inst(Inst::Auipc { rd, imm20: hi });
            em.inst(Inst::Jalr {
                rd,
                rs1: rd,
                offset: lo,
            });
        }
        Inst::Jal { .. } | Inst::Branch { .. } => {
            unreachable!("plain jumps/branches are region tails, handled by the caller")
        }
        _ => {
            em.inst(*inst);
        }
    }
}

/// Emits a jump from the current block position back to original address
/// `resume`, choosing `jal` / dead-register trampoline / shifted exit /
/// trap (§4.2 Challenge 2). Updates Table-3 counters.
///
/// Size invariance: the emitted length depends only on `(resume, opts,
/// analyses)` — never on `em`'s base address. Which dead register exists
/// (and how far the exit shifts) is a liveness fact; the final jump itself
/// is a fixed 8-byte slot (`jal` + illegal filler, `auipc+jalr`, or
/// `ebreak` + filler), so near and far exits occupy the same space. The
/// Table-3 counters (`exit_trampolines`, `dead_reg_not_found_*`) are
/// evaluated at the *actual* emission address; the pipeline's scan-stage
/// measurement discards its stats fragment, so only the transform stage's
/// final-address counters reach the caller.
#[allow(clippy::too_many_arguments)]
pub(crate) fn emit_exit(
    resume: u64,
    d: &Disassembly,
    liveness: &Liveness,
    opts: RewriteOptions,
    target: ExtSet,
    em: &mut BlockEmitter,
    fht: &mut FaultTable,
    stats: &mut RewriteStats,
) {
    stats.exit_jumps += 1;

    // Traditional liveness at the exit position.
    let traditional = liveness.dead_register_at(resume);
    let mut exit_at = resume;
    let mut dead = traditional;

    if dead.is_none() && opts.exit_shifting {
        // Walk forward until a dead register appears; the instructions in
        // between will be copied before the exit slot.
        let mut cursor = resume;
        for _ in 0..16 {
            let Some(di) = d.at(cursor) else { break };
            if di.inst.is_terminator()
                || matches!(di.inst, Inst::Auipc { .. })
                || is_source(&di.inst, opts.mode, target)
            {
                // Keep the shifted copies simple: stop at control flow and
                // never duplicate another patch site's source instruction.
                break;
            }
            let next = di.next_addr();
            if let Some(r) = liveness.dead_register_at(next) {
                exit_at = next;
                dead = Some(r);
                break;
            }
            cursor = next;
        }
    }

    // Copy [resume, exit_at) — empty unless shifting moved the exit.
    let mut c = resume;
    while c < exit_at {
        let ci = d.at(c).expect("walked over recognized insts");
        reemit(&ci.inst, ci.addr, em);
        c = ci.next_addr();
    }

    // The fixed 8-byte exit slot.
    let here = em.addr();
    let rel = exit_at as i64 - here as i64;
    if (-(1 << 20)..(1 << 20)).contains(&rel) {
        em.inst(Inst::Jal {
            rd: XReg::ZERO,
            offset: rel as i32,
        });
        em.raw(&ILLEGAL_HALFWORD.to_le_bytes());
        em.raw(&ILLEGAL_HALFWORD.to_le_bytes());
        return;
    }
    stats.exit_trampolines += 1;
    if traditional.is_none() {
        stats.dead_reg_not_found_traditional += 1;
    }
    match dead {
        Some(r) => {
            let (hi, lo) = pcrel_hi_lo(exit_at as i64 - here as i64);
            em.inst(Inst::Auipc { rd: r, imm20: hi });
            em.inst(Inst::Jalr {
                rd: XReg::ZERO,
                rs1: r,
                offset: lo,
            });
        }
        None => {
            stats.dead_reg_not_found_shift += 1;
            stats.trap_exits += 1;
            // No copies were emitted (shifting failed), so resuming at
            // `resume` after the trap is correct.
            em.inst(Inst::Ebreak);
            em.raw(&ILLEGAL_HALFWORD.to_le_bytes());
            em.raw(&ILLEGAL_HALFWORD.to_le_bytes());
            fht.trap_exits.insert(here, resume);
        }
    }
}

/// Mechanized Claim 1 check on a rewritten binary: every placed SMILE
/// trampoline's interior entry points decode to an illegal instruction or
/// to the gp-pivot `jalr`; every overwritten instruction start has a
/// redirect or trap entry.
pub fn verify_claim1(rw: &Rewritten, original: &Binary) -> Result<(), String> {
    let d_orig = chimera_analysis::disassemble(original);
    for &t in &rw.fht.trampolines {
        // Gather original instruction starts inside [t, t+8).
        for off in [2u64, 4, 6] {
            let addr = t + off;
            if d_orig.at(addr).is_none() {
                continue; // Not an original instruction boundary.
            }
            let halfword = rw
                .binary
                .read_u16(addr)
                .ok_or_else(|| format!("trampoline at {t:#x} unreadable"))?;
            if off == 4 {
                // P1: must be the SMILE jalr (gp pivot).
                let word = rw
                    .binary
                    .read_u32(addr)
                    .ok_or_else(|| format!("jalr at {addr:#x} unreadable"))?;
                // An undecodable word is fine too (padding).
                if let Ok(dec) = chimera_isa::decode(word) {
                    match dec.inst {
                        Inst::Jalr { rd, rs1, .. } if rd == XReg::GP && rs1 == XReg::GP => {}
                        other => {
                            return Err(format!("P1 at {addr:#x} is {other}, not the SMILE jalr"))
                        }
                    }
                }
            } else {
                // P2/P3: the fetch must be illegal.
                if halfword & 0b11 == 0b11 {
                    let word = rw.binary.read_u32(addr).unwrap_or(halfword as u32);
                    if chimera_isa::decode(word).is_ok() {
                        return Err(format!("interior entry at {addr:#x} decodes legally"));
                    }
                } else if chimera_isa::decode_compressed(halfword).is_ok() {
                    return Err(format!("interior entry at {addr:#x} decodes as legal RVC"));
                }
                // And it must have a redirect so the fault is recoverable.
                if !rw.fht.redirects.contains_key(&addr) {
                    return Err(format!("no FHT redirect for overwritten inst {addr:#x}"));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_emu::{run_binary, run_binary_on, Trap};
    use chimera_obj::{assemble, AsmOptions};

    const VEC_SUM: &str = "
        .data
        a: .dword 1
           .dword 2
           .dword 3
           .dword 4
        b: .dword 10
           .dword 20
           .dword 30
           .dword 40
        .text
        _start:
            li t0, 4
            vsetvli t1, t0, e64, m1, ta, ma
            la a0, a
            la a1, b
            vle64.v v1, (a0)
            vle64.v v2, (a1)
            vadd.vv v3, v1, v2
            vmv.v.i v4, 0
            vredsum.vs v5, v3, v4
            vmv.x.s a0, v5
            li a7, 93
            ecall
    ";

    fn asm(src: &str) -> Binary {
        assemble(src, AsmOptions::default()).unwrap()
    }

    #[test]
    fn downgrade_runs_on_base_core() {
        let bin = asm(VEC_SUM);
        let native = run_binary(&bin, 100_000).unwrap();
        assert_eq!(native.exit_code, 110);

        let rw = chbp_rewrite(&bin, ExtSet::RV64GC, RewriteOptions::default()).unwrap();
        assert!(rw.stats.smile_trampolines > 0);
        assert!(rw.fht.untranslated.is_empty());
        verify_claim1(&rw, &bin).unwrap();
        // The rewritten binary runs on a core WITHOUT the vector extension.
        let r = run_binary_on(&rw.binary, ExtSet::RV64GC, 1_000_000).unwrap();
        assert_eq!(r.exit_code, 110);
        assert_eq!(r.stats.vector_insts, 0);
    }

    #[test]
    fn empty_patch_preserves_semantics_on_vector_core() {
        let bin = asm(VEC_SUM);
        let rw = chbp_rewrite(
            &bin,
            ExtSet::RV64GCV,
            RewriteOptions {
                mode: Mode::EmptyPatch(Ext::V),
                ..Default::default()
            },
        )
        .unwrap();
        let r = run_binary_on(&rw.binary, ExtSet::RV64GCV, 1_000_000).unwrap();
        assert_eq!(r.exit_code, 110);
        assert!(rw.stats.smile_trampolines > 0);
    }

    #[test]
    fn claim1_verifies_on_compressed_binary() {
        let bin = assemble(
            VEC_SUM,
            AsmOptions {
                compress: true,
                ..Default::default()
            },
        )
        .unwrap();
        let rw = chbp_rewrite(&bin, ExtSet::RV64GC, RewriteOptions::default()).unwrap();
        verify_claim1(&rw, &bin).unwrap();
        let r = run_binary_on(&rw.binary, ExtSet::RV64GC, 1_000_000).unwrap();
        assert_eq!(r.exit_code, 110);
    }

    #[test]
    fn erroneous_jump_into_trampoline_faults_deterministically() {
        // A program with a function pointer that targets the instruction
        // *after* a source instruction — which CHBP overwrites with the
        // SMILE jalr. Jumping there must raise the deterministic fault.
        let bin = asm("
            .data
            vals: .dword 5
                  .dword 6
                  .dword 7
                  .dword 8
            .text
            _start:
                la t2, after_vec
                li t0, 4
                vsetvli t1, t0, e64, m1, ta, ma
                la a0, vals
                vle64.v v1, (a0)
            after_vec:
                li a0, 0
                li a7, 93
                ecall
        ");
        let rw = chbp_rewrite(
            &bin,
            ExtSet::RV64GC,
            RewriteOptions {
                batching: false,
                ..Default::default()
            },
        )
        .unwrap();
        // Find the vle64 site: its trampoline covers the following li.
        let site = *rw
            .fht
            .trampolines
            .iter()
            .next_back()
            .expect("trampolines placed");
        let p1 = site + 4;
        assert!(
            rw.fht.redirects.contains_key(&p1),
            "overwritten neighbour must have a redirect"
        );

        // Execute an erroneous jump: boot and force pc to P1 with the
        // ABI gp value (as any normal execution would have).
        let (mut cpu, mut mem) = chimera_emu::boot(&rw.binary, ExtSet::RV64GC);
        cpu.hart.pc = p1;
        let stop = cpu.run(&mut mem, 10);
        match stop {
            chimera_emu::Stop::Trap(Trap::Mem { fault, .. }) => {
                assert_eq!(fault.access, chimera_emu::Access::Fetch);
                // Fault address: gp + lo12, inside the data segment.
                let data = rw.binary.section(".data").unwrap();
                assert!(
                    fault.addr >= data.addr.saturating_sub(0x800)
                        && fault.addr < data.end() + 0x800,
                    "fault at {:#x} should be near the data segment",
                    fault.addr
                );
                // And gp now holds P1 + 4 — the handler recovers the fault
                // address as gp - 4.
                assert_eq!(cpu.hart.gp(), p1 + 4);
            }
            other => panic!("expected deterministic fetch fault, got {other:?}"),
        }
    }

    #[test]
    fn zb_downgrade_runs_without_b() {
        let bin = asm("
            _start:
                li t0, 12
                li t1, 5
                sh1add a0, t0, t1     # 29
                min a1, t0, t1        # 5
                add a0, a0, a1        # 34
                clz a2, t1            # 61
                add a0, a0, a2        # 95
                andn a3, t0, t1       # 12 & !5 = 8
                add a0, a0, a3        # 103
                li a7, 93
                ecall
        ");
        let native = run_binary(&bin, 10_000).unwrap();
        let base_no_b = ExtSet::RV64GC.without(Ext::B);
        let rw = chbp_rewrite(&bin, base_no_b, RewriteOptions::default()).unwrap();
        let r = run_binary_on(&rw.binary, base_no_b, 1_000_000).unwrap();
        assert_eq!(r.exit_code, native.exit_code);
        assert_eq!(native.exit_code, 103);
    }

    #[test]
    fn rewrite_without_sources_is_identity_like() {
        let bin = asm("
            _start:
                li a0, 7
                li a7, 93
                ecall
        ");
        let rw = chbp_rewrite(&bin, ExtSet::RV64GC, RewriteOptions::default()).unwrap();
        assert_eq!(rw.stats.smile_trampolines, 0);
        let r = run_binary_on(&rw.binary, ExtSet::RV64GC, 1000).unwrap();
        assert_eq!(r.exit_code, 7);
    }

    #[test]
    fn downgraded_loop_with_branches() {
        // A vector op inside a loop: the trampoline executes every
        // iteration; batching folds the loop tail into the block.
        let bin = asm("
            .data
            acc: .dword 0
            vals: .dword 2
                  .dword 3
                  .dword 4
                  .dword 5
            .text
            _start:
                li s0, 10          # iterations
                li s1, 0           # total
                li t0, 4
                vsetvli t1, t0, e64, m1, ta, ma
                la a0, vals
            loop:
                vle64.v v1, (a0)
                vmv.v.i v2, 0
                vredsum.vs v3, v1, v2
                vmv.x.s t2, v3
                add s1, s1, t2
                addi s0, s0, -1
                bnez s0, loop
                mv a0, s1          # 10 * 14 = 140
                li a7, 93
                ecall
        ");
        let native = run_binary(&bin, 100_000).unwrap();
        assert_eq!(native.exit_code, 140);
        let rw = chbp_rewrite(&bin, ExtSet::RV64GC, RewriteOptions::default()).unwrap();
        let r = run_binary_on(&rw.binary, ExtSet::RV64GC, 10_000_000).unwrap();
        assert_eq!(r.exit_code, 140);
    }
}
