//! # chimera-rewrite
//!
//! CHBP — Correct and High-performance Binary Patching — plus the baseline
//! rewriters the paper compares against. Every rewriting system dispatches
//! through the staged [`RewriteEngine`] pass pipeline
//! (scan → plan → transform → place → link → verify), whose transform
//! stage runs on a worker pool with bit-identical output for every worker
//! count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chbp;
pub mod emitter;
pub mod engine;
pub mod pipeline;
pub mod shared;
pub mod smile;
pub mod translate;

pub use chbp::{
    chbp_rewrite, chbp_rewrite_traced, chbp_rewrite_with, ebreak_patch, emit_site_translation,
    verify_claim1, ChbpEngine, FaultTable, Mode, RewriteError, RewriteOptions, RewriteStats,
    Rewritten,
};
pub use engine::{IdentityEngine, RewriteEngine, UnitArtifact};
pub use pipeline::{
    default_workers, run, run_cached, run_incremental, DirtySpan, EngineResult, RewriteCache,
};
pub use shared::{content_key, SharedCacheStats, SharedVariantCache, VariantHandle};
pub mod regen;

pub use regen::{
    regenerate, regenerate_with, Flavor, RegenEngine, RegenInfo, Regenerated, SlowTrap,
};
pub mod upgrade;

pub use upgrade::upgrade_rewrite;
