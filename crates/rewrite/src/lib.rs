//! # chimera-rewrite
//!
//! CHBP — Correct and High-performance Binary Patching — plus the baseline
//! rewriters the paper compares against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chbp;
pub mod emitter;
pub mod smile;
pub mod translate;

pub use chbp::{
    chbp_rewrite, chbp_rewrite_traced, verify_claim1, FaultTable, Mode, RewriteError,
    RewriteOptions, RewriteStats, Rewritten,
};
pub mod regen;

pub use regen::{regenerate, Flavor, RegenInfo, Regenerated, SlowTrap};
pub mod upgrade;

pub use upgrade::upgrade_rewrite;
