//! # chimera-rewrite
//!
//! CHBP — Correct and High-performance Binary Patching — plus the baseline
//! rewriters the paper compares against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod smile;
pub mod emitter;
pub mod translate;
pub mod chbp;

pub use chbp::{
    chbp_rewrite, verify_claim1, FaultTable, Mode, Rewritten, RewriteError, RewriteOptions,
    RewriteStats,
};
pub mod regen;

pub use regen::{regenerate, Flavor, Regenerated, RegenInfo, SlowTrap};
pub mod upgrade;

pub use upgrade::upgrade_rewrite;
