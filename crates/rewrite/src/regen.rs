//! Binary *regeneration*: the relocate-and-fix-up machinery behind the
//! Safer-style and ARMore-style baselines (§2.2, §6.2).
//!
//! Every recognized instruction is re-emitted into a new code section with
//! direct control flow retargeted; source instructions are translated
//! inline (regeneration may shift code freely, unlike patching). What
//! distinguishes the two baselines is how *indirect* control flow — whose
//! targets are original-space addresses — is handled:
//!
//! * **Safer-style** ([`Flavor::Safer`]): discovered code pointers in data
//!   are statically rewritten to relocated addresses ("encoded"), and every
//!   indirect jump is instrumented with an inline range check: targets
//!   already in the relocated section jump directly (the common fast path:
//!   returns, encoded pointers), anything else traps to the kernel for
//!   correction. This proactive per-jump check is exactly the overhead the
//!   paper measures against.
//! * **ARMore-style** ([`Flavor::Armore`]): data is left untouched;
//!   indirect jumps land in the *original* section, where each instruction
//!   slot holds a redirect to its relocated copy — a direct `jal` when the
//!   copy is within ±1 MiB (cheap, the ARM case), otherwise a trap-based
//!   trampoline (the RISC-V reality the paper demonstrates).

use crate::chbp::{FaultTable, Mode, RewriteError, RewriteStats, Rewritten, ILLEGAL_HALFWORD};
use crate::emitter::BlockEmitter;
use crate::engine::{EngineState, RewriteEngine, RewriteUnit, UnitArtifact, UnitKind, UnitPlan};
use crate::translate::{SpillLayout, Translator};
use chimera_analysis::{disassemble_with, inst_spans, DisasmInst};
use chimera_isa::{encode, ExtSet, Inst, XReg};
use chimera_obj::{pcrel_hi_lo, Binary, Perms};
use chimera_trace::Tracer;
use std::collections::BTreeMap;

/// Instructions per regeneration span (the parallel transform unit).
const SPAN_INSTS: usize = 1024;

/// Which regeneration baseline to produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flavor {
    /// Safer-style: encode data pointers + instrument indirect jumps.
    Safer,
    /// ARMore-style: original-section redirects, trap when out of `jal`
    /// range.
    Armore,
}

/// Extra metadata the kernel needs to run a regenerated binary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegenInfo {
    /// Safer slow-path trap sites: ebreak address → (jump-holding register,
    /// link register or `None`, link value to install).
    pub slow_traps: BTreeMap<u64, SlowTrap>,
}

/// One Safer slow-path trap site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlowTrap {
    /// Register holding the (original-space) jump target at the trap.
    pub target_reg: XReg,
    /// Link register to set (the call's `rd`), if any.
    pub link: Option<XReg>,
    /// The relocated return address to install in `link`.
    pub link_value: u64,
}

/// A regenerated binary: the rewritten output plus regeneration metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Regenerated {
    /// The rewritten binary and shared runtime tables (`redirects` maps
    /// every original instruction address to its relocated copy).
    pub rewritten: Rewritten,
    /// Safer slow-path metadata.
    pub info: RegenInfo,
}

/// Regenerates `binary` for profile `target`.
pub fn regenerate(
    binary: &Binary,
    target: ExtSet,
    mode: Mode,
    flavor: Flavor,
) -> Result<Regenerated, RewriteError> {
    regenerate_with(
        binary,
        target,
        mode,
        flavor,
        crate::pipeline::default_workers(),
        &Tracer::disabled(),
    )
}

/// [`regenerate`] with an explicit worker count and tracer. Output is
/// bit-identical for every worker count.
pub fn regenerate_with(
    binary: &Binary,
    target: ExtSet,
    mode: Mode,
    flavor: Flavor,
    workers: usize,
    tracer: &Tracer,
) -> Result<Regenerated, RewriteError> {
    let engine = RegenEngine {
        target,
        mode,
        flavor,
    };
    let r = crate::pipeline::run(&engine, binary, workers, tracer)?;
    Ok(Regenerated {
        rewritten: r.rewritten,
        info: r.regen.unwrap_or_default(),
    })
}

/// Regeneration working state carried between pipeline stages.
pub(crate) struct RegenAux {
    /// All recognized instructions, in address order.
    insts: Vec<DisasmInst>,
    /// Statically resolved `auipc; jalr` call pairs: jalr address →
    /// original call target.
    direct_pair: BTreeMap<u64, u64>,
    /// Address map: original → relocated (filled by plan).
    map: BTreeMap<u64, u64>,
    /// Relocated slot size per instruction.
    sizes: Vec<u64>,
}

impl RegenAux {
    /// The input-address range `[start, end)` covered by the span of
    /// instruction indices `[start, end)` — the source range the
    /// incremental driver keys the dirty-unit set on.
    pub(crate) fn span_range(&self, start: usize, end: usize) -> (u64, u64) {
        let first = &self.insts[start];
        let last = &self.insts[end - 1];
        (first.addr, last.addr + last.len as u64)
    }
}

/// The Safer/ARMore regeneration engine.
pub struct RegenEngine {
    /// The target core profile.
    pub target: ExtSet,
    /// Source-instruction handling.
    pub mode: Mode,
    /// Which baseline to produce.
    pub flavor: Flavor,
}

impl RegenEngine {
    fn is_source(&self, inst: &Inst) -> bool {
        match self.mode {
            Mode::Downgrade => !inst.runnable_on(self.target),
            Mode::EmptyPatch(ext) => inst.ext() == Some(ext),
        }
    }

    /// The relocated slot size of one instruction: a pure function of the
    /// instruction (+ the direct-pair set and translator parameters),
    /// never of its final address — variable-length sequences are
    /// nop-padded to their fixed slot.
    fn slot_size(
        &self,
        di: &DisasmInst,
        direct_pair: &BTreeMap<u64, u64>,
        spill_base: u64,
        abi_gp: u64,
    ) -> u64 {
        if self.is_source(&di.inst) {
            match self.mode {
                Mode::EmptyPatch(_) => 4,
                Mode::Downgrade => {
                    let mut t = Translator::new(spill_base, abi_gp);
                    let mut probe = BlockEmitter::new(0);
                    match t.downgrade(&di.inst, &mut probe) {
                        Ok(()) => probe.finish().len() as u64,
                        Err(_) => 4, // Left as-is; faults lazily at runtime.
                    }
                }
            }
        } else {
            match di.inst {
                Inst::Branch { .. } => 8, // Inverted branch + jal.
                Inst::Jal { .. } => 8,    // jal+pad or auipc+jalr.
                Inst::Jalr { rd, rs1, offset } => {
                    if direct_pair.contains_key(&di.addr) {
                        8 // Redirected direct call: auipc + jalr.
                    } else if self.flavor == Flavor::Safer && safer_instrumentable(rd, rs1, offset)
                    {
                        4 * 9 // The instrumentation sequence (fixed shape).
                    } else {
                        4
                    }
                }
                Inst::Auipc { .. } => 8, // Re-materialization.
                _ => 4,
            }
        }
    }

    /// Emits the instructions of one span at their final addresses.
    fn emit_span(
        &self,
        start: usize,
        end: usize,
        aux: &RegenAux,
        new_base: u64,
        spill_base: u64,
        abi_gp: u64,
    ) -> Result<UnitArtifact, RewriteError> {
        let mut translator = Translator::new(spill_base, abi_gp);
        let mut em = BlockEmitter::new(aux.map[&aux.insts[start].addr]);
        let mut art = UnitArtifact::default();
        for (di, &size) in aux.insts[start..end].iter().zip(&aux.sizes[start..end]) {
            let new_addr = aux.map[&di.addr];
            debug_assert_eq!(em.addr(), new_addr, "size plan must match emission");
            if self.is_source(&di.inst) {
                match self.mode {
                    Mode::EmptyPatch(_) => {
                        em.inst(di.inst);
                    }
                    Mode::Downgrade => {
                        if translator.downgrade(&di.inst, &mut em).is_err() {
                            em.inst(di.inst); // Untranslated: traps at runtime.
                            art.fht.untranslated.insert(new_addr);
                        }
                    }
                }
            } else if let Some(&old_target) = aux.direct_pair.get(&di.addr) {
                // Statically resolved call: jump straight to the relocated
                // target, linking the relocated return address.
                let Inst::Jalr { rd, .. } = di.inst else {
                    unreachable!("direct pairs are jalr instructions")
                };
                let new_target = *aux
                    .map
                    .get(&old_target)
                    .ok_or_else(|| RewriteError::Layout(format!("pair target {old_target:#x}")))?;
                debug_assert_ne!(rd, XReg::ZERO, "pair matcher only accepts calls");
                let (hi, lo) = pcrel_hi_lo(new_target as i64 - new_addr as i64);
                em.inst(Inst::Auipc { rd, imm20: hi });
                em.inst(Inst::Jalr {
                    rd,
                    rs1: rd,
                    offset: lo,
                });
            } else {
                emit_relocated(
                    di,
                    new_addr,
                    size,
                    &aux.map,
                    self.flavor,
                    new_base,
                    abi_gp,
                    &mut em,
                    &mut art.regen,
                    &mut art.stats,
                )?;
            }
            // Pad to the planned size with nops: straight-line slots fall
            // through their padding into the next slot (original program
            // order), so the filler must execute as a no-op.
            let emitted = em.addr() - new_addr;
            assert!(emitted <= size, "{} overflowed its slot", di.inst);
            debug_assert_eq!((size - emitted) % 4, 0, "slot sizes are word-granular");
            for _ in 0..(size - emitted) / 4 {
                em.inst(chimera_isa::nop());
            }
        }
        art.bytes = em.finish();
        Ok(art)
    }
}

impl RewriteEngine for RegenEngine {
    fn name(&self) -> &'static str {
        match self.flavor {
            Flavor::Safer => "safer",
            Flavor::Armore => "armore",
        }
    }

    fn scan(&self, st: &mut EngineState) -> Result<(), RewriteError> {
        st.input
            .validate()
            .map_err(|e| RewriteError::BadBinary(e.to_string()))?;
        let d = disassemble_with(st.input, st.workers);
        let insts: Vec<DisasmInst> = d.iter().copied().collect();

        // Statically resolvable `auipc rd, hi; jalr rd2, lo(rd)` pairs:
        // direct calls in disguise (the standard `call` expansion).
        // Regeneration redirects them to the relocated target without
        // runtime machinery — exactly what Safer's "statically
        // corrected/encoded" targets and ARMore's direct-control-flow
        // fixup do. The fixup is skipped when the jalr is itself a jump
        // target (the pairing assumption would not hold).
        let mut direct_pair: BTreeMap<u64, u64> = BTreeMap::new();
        for w in insts.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            if let (
                Inst::Auipc { rd, imm20 },
                Inst::Jalr {
                    rd: rd2,
                    rs1,
                    offset,
                },
            ) = (a.inst, b.inst)
            {
                // Only linking pairs (calls): a non-linking pair would
                // need a scratch register to span ±2 GiB, which plain
                // relocation does not have.
                if rd == rs1
                    && rd2 != XReg::ZERO
                    && !d.targets.contains(&b.addr)
                    && !d.data_refs.contains(&b.addr)
                {
                    let target = a
                        .addr
                        .wrapping_add(((imm20 as i64) << 12) as u64)
                        .wrapping_add(offset as i64 as u64);
                    if d.insts.contains_key(&target) {
                        direct_pair.insert(b.addr, target);
                    }
                }
            }
        }

        let mut out = st.input.clone();
        let spill_base = out.append_section(
            ".chimera.vregs",
            vec![0u8; SpillLayout::SIZE.next_multiple_of(0x1000)],
            Perms::RW,
        );
        let new_base = {
            let top = out.sections.iter().map(|s| s.end()).max().unwrap_or(0);
            (top + 0xfff) & !0xfff
        };
        st.fht.abi_gp = st.input.gp;
        st.fht.spill_base = spill_base;
        st.target_base = new_base;
        st.out = Some(out);

        st.stats.code_size = st.input.code_size();
        st.stats.total_insts = insts.len();
        st.stats.source_insts = insts.iter().filter(|di| self.is_source(&di.inst)).count();

        // Span partition + parallel slot sizing (pure per instruction).
        let abi_gp = st.input.gp;
        let spans = inst_spans(&d, SPAN_INSTS);
        let span_sizes: Vec<Vec<u64>> =
            chimera_analysis::par::map_indexed(st.workers, spans.len(), |i| {
                let (s, e) = spans[i];
                insts[s..e]
                    .iter()
                    .map(|di| self.slot_size(di, &direct_pair, spill_base, abi_gp))
                    .collect()
            });
        let sizes: Vec<u64> = span_sizes.into_iter().flatten().collect();

        st.units = std::sync::Arc::new(
            spans
                .iter()
                .map(|&(start, end)| RewriteUnit {
                    kind: UnitKind::Span { start, end },
                })
                .collect(),
        );
        st.unit_sizes = std::sync::Arc::new(
            spans
                .iter()
                .map(|&(s, e)| sizes[s..e].iter().sum())
                .collect(),
        );
        st.pass_items = insts.len() as u64;
        st.regen_aux = Some(std::sync::Arc::new(RegenAux {
            insts,
            direct_pair,
            map: BTreeMap::new(),
            sizes,
        }));
        st.disasm = Some(std::sync::Arc::new(d));
        Ok(())
    }

    fn plan(&self, st: &mut EngineState) -> Result<(), RewriteError> {
        // Address map: original → relocated (prefix sum over slot sizes).
        // Plan runs before the cache snapshot shares the aux, so the Arc
        // is still uniquely owned here.
        let aux = std::sync::Arc::get_mut(st.regen_aux.as_mut().expect("scan ran"))
            .expect("plan mutates the aux before it is shared");
        let mut cursor = st.target_base;
        for (di, size) in aux.insts.iter().zip(&aux.sizes) {
            aux.map.insert(di.addr, cursor);
            cursor += size;
        }
        st.plans = st
            .units
            .iter()
            .map(|u| {
                let UnitKind::Span { start, .. } = u.kind else {
                    unreachable!("regeneration units are spans")
                };
                UnitPlan {
                    addr: aux.map[&aux.insts[start].addr],
                    padding: 0,
                }
            })
            .collect();
        st.pass_items = st.units.len() as u64;
        Ok(())
    }

    fn transform(&self, st: &mut EngineState) -> Result<(), RewriteError> {
        let aux = st.regen_aux.as_deref().expect("scan ran");
        let units = &st.units;
        let new_base = st.target_base;
        let (spill_base, abi_gp) = (st.fht.spill_base, st.fht.abi_gp);
        let results: Vec<Result<UnitArtifact, RewriteError>> =
            chimera_analysis::par::map_indexed(st.workers, units.len(), |i| {
                let UnitKind::Span { start, end } = units[i].kind else {
                    unreachable!("regeneration units are spans")
                };
                self.emit_span(start, end, aux, new_base, spill_base, abi_gp)
            });
        let mut artifacts = Vec::with_capacity(results.len());
        for r in results {
            artifacts.push(r?);
        }
        for (art, &size) in artifacts.iter().zip(st.unit_sizes.iter()) {
            debug_assert_eq!(art.bytes.len() as u64, size, "span must fill its slots");
        }
        st.pass_items = artifacts.len() as u64;
        st.artifacts = artifacts;
        Ok(())
    }

    fn transform_unit(&self, st: &EngineState, idx: usize) -> Result<UnitArtifact, RewriteError> {
        let aux = st.regen_aux.as_deref().expect("cache holds the aux");
        let UnitKind::Span { start, end } = st.units[idx].kind else {
            unreachable!("regeneration units are spans")
        };
        self.emit_span(
            start,
            end,
            aux,
            st.target_base,
            st.fht.spill_base,
            st.fht.abi_gp,
        )
    }

    fn place(&self, st: &mut EngineState) -> Result<(), RewriteError> {
        st.pass_items = st.artifacts.len() as u64;
        let artifacts = std::mem::take(&mut st.artifacts);
        for (plan, mut art) in st.plans.iter().zip(artifacts) {
            debug_assert_eq!(st.target_base + st.target_code.len() as u64, plan.addr);
            st.target_code.extend_from_slice(&art.bytes);
            let regen = st.regen.get_or_insert_with(RegenInfo::default);
            regen
                .slow_traps
                .extend(std::mem::take(&mut art.regen).slow_traps);
            crate::engine::merge_fragment(&mut st.fht, &mut st.stats, art);
        }
        Ok(())
    }

    fn link(&self, st: &mut EngineState) -> Result<(), RewriteError> {
        let aux = st.regen_aux.clone().expect("scan ran");
        let out = st.out.as_mut().expect("scan cloned the input");
        let new_base = st.target_base;

        // Original section: redirects.
        rewrite_original_section(
            out,
            &aux.insts,
            &aux.map,
            self.flavor,
            &mut st.fht,
            &mut st.stats,
        )?;

        // Safer: "encode" discovered code pointers in data sections.
        if self.flavor == Flavor::Safer {
            let text = st.input.section(".text").expect("validated").clone();
            let patches: Vec<(u64, u64)> = out
                .sections
                .iter()
                .filter(|s| !s.perms.x)
                .flat_map(|s| {
                    let mut v = Vec::new();
                    for off in (0..s.data.len().saturating_sub(7)).step_by(8) {
                        let val = u64::from_le_bytes(s.data[off..off + 8].try_into().unwrap());
                        if val >= text.addr && val < text.end() {
                            if let Some(&new) = aux.map.get(&val) {
                                v.push((s.addr + off as u64, new));
                            }
                        }
                    }
                    v
                })
                .collect();
            for (addr, new) in patches {
                out.write(addr, &new.to_le_bytes());
            }
        }

        st.stats.target_section_size = st.target_code.len() as u64;
        let new_code = std::mem::take(&mut st.target_code);
        let placed = out.append_section(".regen.text", new_code, Perms::RX);
        if placed != new_base {
            return Err(RewriteError::Layout(format!(
                "relocated section at {placed:#x}, expected {new_base:#x}"
            )));
        }
        let target_end = out
            .section(".regen.text")
            .ok_or(RewriteError::MissingSection(".regen.text"))?
            .end();
        st.fht.target_range = (new_base, target_end);
        for (&old, &new) in &aux.map {
            st.fht.redirects.insert(old, new);
        }
        out.entry = *aux.map.get(&st.input.entry).unwrap_or(&st.input.entry);
        out.profile = self.target;
        st.pass_items = aux.insts.len() as u64;
        Ok(())
    }

    fn verify(&self, st: &mut EngineState) -> Result<(), RewriteError> {
        let out = st.out.as_ref().expect("link produced the output binary");
        out.validate()
            .map_err(|e| RewriteError::BadBinary(format!("regenerated binary invalid: {e}")))?;
        st.pass_items = 1;
        Ok(())
    }
}

fn safer_instrumentable(rd: XReg, rs1: XReg, offset: i32) -> bool {
    // The check sequence borrows gp and the jump register; see module docs.
    if rs1 == XReg::GP || rd == XReg::GP {
        return false;
    }
    rd != XReg::ZERO || offset == 0
}

#[allow(clippy::too_many_arguments)]
fn emit_relocated(
    di: &DisasmInst,
    new_addr: u64,
    size: u64,
    map: &BTreeMap<u64, u64>,
    flavor: Flavor,
    new_base: u64,
    abi_gp: u64,
    em: &mut BlockEmitter,
    info: &mut RegenInfo,
    stats: &mut RewriteStats,
) -> Result<(), RewriteError> {
    match di.inst {
        Inst::Branch {
            kind,
            rs1,
            rs2,
            offset,
        } => {
            let old_target = di.addr.wrapping_add(offset as i64 as u64);
            let new_target = *map.get(&old_target).ok_or_else(|| {
                RewriteError::Layout(format!("branch target {old_target:#x} unmapped"))
            })?;
            // Inverted branch skipping a jal: 8 bytes, full jal reach.
            let inverted = match kind {
                chimera_isa::BranchKind::Beq => chimera_isa::BranchKind::Bne,
                chimera_isa::BranchKind::Bne => chimera_isa::BranchKind::Beq,
                chimera_isa::BranchKind::Blt => chimera_isa::BranchKind::Bge,
                chimera_isa::BranchKind::Bge => chimera_isa::BranchKind::Blt,
                chimera_isa::BranchKind::Bltu => chimera_isa::BranchKind::Bgeu,
                chimera_isa::BranchKind::Bgeu => chimera_isa::BranchKind::Bltu,
            };
            let rel = new_target as i64 - (new_addr as i64 + 4);
            let off = i32::try_from(rel)
                .ok()
                .filter(|o| (-(1 << 20)..(1 << 20)).contains(o))
                .ok_or_else(|| {
                    RewriteError::Layout(format!(
                        "relocated branch from {new_addr:#x} to {new_target:#x} exceeds ±1MiB"
                    ))
                })?;
            em.inst(Inst::Branch {
                kind: inverted,
                rs1,
                rs2,
                offset: 8,
            })
            .inst(Inst::Jal {
                rd: XReg::ZERO,
                offset: off,
            });
            Ok(())
        }
        Inst::Jal { rd, offset } => {
            let old_target = di.addr.wrapping_add(offset as i64 as u64);
            let new_target = *map.get(&old_target).ok_or_else(|| {
                RewriteError::Layout(format!("jal target {old_target:#x} unmapped"))
            })?;
            let rel = new_target as i64 - new_addr as i64;
            if rd == XReg::ZERO {
                let off = i32::try_from(rel)
                    .ok()
                    .filter(|o| (-(1 << 20)..(1 << 20)).contains(o));
                match off {
                    Some(o) => {
                        em.inst(Inst::Jal {
                            rd: XReg::ZERO,
                            offset: o,
                        });
                    }
                    None => {
                        return Err(RewriteError::Layout(format!(
                            "relocated jump from {new_addr:#x} to {new_target:#x} exceeds ±1MiB"
                        )));
                    }
                }
            } else {
                let (hi, lo) = pcrel_hi_lo(rel);
                em.inst(Inst::Auipc { rd, imm20: hi }).inst(Inst::Jalr {
                    rd,
                    rs1: rd,
                    offset: lo,
                });
            }
            Ok(())
        }
        Inst::Jalr { rd, rs1, offset } => {
            if flavor == Flavor::Safer && safer_instrumentable(rd, rs1, offset) {
                emit_safer_check(
                    di, new_addr, size, rd, rs1, offset, new_base, abi_gp, em, info,
                );
                stats.exit_trampolines += 1;
            } else {
                em.inst(di.inst);
            }
            Ok(())
        }
        Inst::Auipc { rd, imm20 } => {
            let value = di.addr.wrapping_add(((imm20 as i64) << 12) as u64);
            let (hi, lo) = pcrel_hi_lo(value as i64 - new_addr as i64);
            em.inst(Inst::Auipc { rd, imm20: hi });
            if lo != 0 {
                em.inst(chimera_obj::addi(rd, rd, lo));
            }
            Ok(())
        }
        _ => {
            em.inst(di.inst);
            Ok(())
        }
    }
}

/// The Safer per-indirect-jump check (9 instruction slots):
///
/// ```text
///   addi  J, rs1, off        # J = jump target (J = rd, or rs1 for jr)
///   lui   gp, %hi(new_base)  # li32: 2 insts
///   addiw gp, gp, %lo
///   bltu  J, gp, slow        # original-space target?
///   lui   gp, %hi(abi_gp)    # restore gp: 2 insts
///   addiw gp, gp, %lo
///   jalr  rd', 0(J)          # fast path (links over the slow path)
/// slow:
///   ebreak                   # kernel: pc = redirects[J]; rd' = link
///   <illegal pad>
/// ```
#[allow(clippy::too_many_arguments)]
fn emit_safer_check(
    di: &DisasmInst,
    new_addr: u64,
    size: u64,
    rd: XReg,
    rs1: XReg,
    offset: i32,
    new_base: u64,
    abi_gp: u64,
    em: &mut BlockEmitter,
    info: &mut RegenInfo,
) {
    let j = if rd != XReg::ZERO { rd } else { rs1 };
    let fast = format!("safer_fast_{:x}", di.addr);
    em.inst(chimera_obj::addi(j, rs1, offset));
    em.li32(XReg::GP, new_base as i64);
    em.branch_to(chimera_isa::BranchKind::Bgeu, j, XReg::GP, fast.clone());
    // Slow path: the kernel corrects the target and installs the link.
    let trap_at = em.addr();
    em.inst(Inst::Ebreak);
    info.slow_traps.insert(
        trap_at,
        SlowTrap {
            target_reg: j,
            link: (rd != XReg::ZERO).then_some(rd),
            link_value: new_addr + size,
        },
    );
    // Fast path last, so a linking jalr's return address (pc + 4) falls
    // into the slot's nop padding and on to the next slot.
    em.label(fast);
    em.li32(XReg::GP, abi_gp as i64);
    em.inst(Inst::Jalr {
        rd,
        rs1: j,
        offset: 0,
    });
}

/// Rewrites the original `.text` into redirect slots: a `jal` to the
/// relocated copy when in range and the slot is 4 bytes (ARMore's cheap
/// case), otherwise illegal filler that traps to the kernel, which follows
/// `redirects`.
fn rewrite_original_section(
    out: &mut Binary,
    insts: &[DisasmInst],
    map: &BTreeMap<u64, u64>,
    flavor: Flavor,
    _fht: &mut FaultTable,
    stats: &mut RewriteStats,
) -> Result<(), RewriteError> {
    for di in insts {
        let new = map[&di.addr];
        let rel = new as i64 - di.addr as i64;
        let use_jal =
            flavor == Flavor::Armore && di.len == 4 && (-(1 << 20)..(1 << 20)).contains(&rel);
        let bytes: Vec<u8> = if use_jal {
            encode(&Inst::Jal {
                rd: XReg::ZERO,
                offset: rel as i32,
            })
            .expect("checked range")
            .to_le_bytes()
            .to_vec()
        } else {
            stats.trap_entries += 1;
            let mut v = Vec::new();
            for _ in 0..di.len / 2 {
                v.extend_from_slice(&ILLEGAL_HALFWORD.to_le_bytes());
            }
            v
        };
        if !out.write(di.addr, &bytes) {
            return Err(RewriteError::Layout(format!(
                "cannot rewrite original slot at {:#x}",
                di.addr
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_emu::{run_binary, run_binary_on};
    use chimera_obj::{assemble, AsmOptions};

    const PROG: &str = "
        .data
        a: .dword 1
           .dword 2
           .dword 3
           .dword 4
        .text
        _start:
            li t0, 4
            vsetvli t1, t0, e64, m1, ta, ma
            la a0, a
            vle64.v v1, (a0)
            vmv.v.i v2, 0
            vredsum.vs v3, v1, v2
            vmv.x.s s1, v3
            la t2, helper
            jalr t2              # indirect call (register target)
            add a0, a0, s1       # 10 (sum) + 32 (helper)
            li a7, 93
            ecall
        helper:
            li a0, 32
            ret
    ";

    /// A minimal kernel stand-in: services Safer slow-path traps and
    /// original-section redirects, then resumes; `exit` ends the run.
    fn run_regenerated(rg: &Regenerated, profile: chimera_isa::ExtSet, fuel: u64) -> i64 {
        let (mut cpu, mut mem) = chimera_emu::boot(&rg.rewritten.binary, profile);
        for _ in 0..fuel {
            match cpu.run(&mut mem, fuel) {
                chimera_emu::Stop::Trap(chimera_emu::Trap::Ecall { .. }) => {
                    let n = cpu.hart.get_x(XReg::A7);
                    assert_eq!(n, 93, "test programs only exit");
                    return cpu.hart.get_x(XReg::A0) as i64;
                }
                chimera_emu::Stop::Trap(chimera_emu::Trap::Breakpoint { pc }) => {
                    let st = rg.info.slow_traps.get(&pc).expect("known slow trap");
                    let old_target = cpu.hart.get_x(st.target_reg);
                    let new_target = *rg
                        .rewritten
                        .fht
                        .redirects
                        .get(&old_target)
                        .expect("correctable target");
                    if let Some(link) = st.link {
                        cpu.hart.set_x(link, st.link_value);
                    }
                    cpu.hart.pc = new_target;
                }
                chimera_emu::Stop::Trap(chimera_emu::Trap::Illegal { pc, .. }) => {
                    // Original-section trap slot: follow the redirect.
                    let new = *rg
                        .rewritten
                        .fht
                        .redirects
                        .get(&pc)
                        .expect("redirectable original address");
                    cpu.hart.pc = new;
                }
                other => panic!("unexpected stop: {other:?}"),
            }
        }
        panic!("out of fuel");
    }

    #[test]
    fn safer_regeneration_downgrades_and_runs() {
        let bin = assemble(PROG, AsmOptions::default()).unwrap();
        let native = run_binary(&bin, 100_000).unwrap();
        assert_eq!(native.exit_code, 42);

        let rg = regenerate(
            &bin,
            chimera_isa::ExtSet::RV64GC,
            Mode::Downgrade,
            Flavor::Safer,
        )
        .unwrap();
        // Indirect jumps were instrumented.
        assert!(rg.rewritten.stats.exit_trampolines > 0);
        let code = run_regenerated(&rg, chimera_isa::ExtSet::RV64GC, 1_000_000);
        assert_eq!(code, 42);
    }

    #[test]
    fn safer_encodes_data_pointers() {
        let bin = assemble(
            "
            .text
            _start:
                la t0, table
                ld t1, 0(t0)
                jalr t1
                li a7, 93
                ecall
            fn1:
                li a0, 55
                ret
            .rodata
            table: .dword fn1
            ",
            AsmOptions::default(),
        )
        .unwrap();
        let rg = regenerate(
            &bin,
            chimera_isa::ExtSet::RV64GC,
            Mode::EmptyPatch(chimera_isa::Ext::V),
            Flavor::Safer,
        )
        .unwrap();
        // The pointer in .rodata now targets the relocated section: the
        // call takes the fast path, so the bare runner suffices.
        let r = run_binary_on(&rg.rewritten.binary, chimera_isa::ExtSet::RV64GCV, 100_000).unwrap();
        assert_eq!(r.exit_code, 55);
        let ro = rg.rewritten.binary.section(".rodata").unwrap();
        let ptr = u64::from_le_bytes(ro.data[0..8].try_into().unwrap());
        assert!(rg.rewritten.fht.in_target_section(ptr));
    }

    #[test]
    fn armore_relocation_redirect_map_complete() {
        let bin = assemble(PROG, AsmOptions::default()).unwrap();
        let rg = regenerate(
            &bin,
            chimera_isa::ExtSet::RV64GC,
            Mode::Downgrade,
            Flavor::Armore,
        )
        .unwrap();
        // Every original instruction has a redirect.
        let d = chimera_analysis::disassemble(&bin);
        for di in d.iter() {
            assert!(
                rg.rewritten.fht.redirects.contains_key(&di.addr),
                "missing redirect for {:#x}",
                di.addr
            );
        }
        // Entry moved into the relocated section.
        assert!(rg
            .rewritten
            .fht
            .in_target_section(rg.rewritten.binary.entry));
    }

    #[test]
    fn armore_in_range_slots_hold_jal() {
        let bin = assemble(
            "
            _start:
                li a0, 9
                li a7, 93
                ecall
            ",
            AsmOptions::default(),
        )
        .unwrap();
        let rg = regenerate(
            &bin,
            chimera_isa::ExtSet::RV64GC,
            Mode::EmptyPatch(chimera_isa::Ext::V),
            Flavor::Armore,
        )
        .unwrap();
        // Small binary: relocated section is close, slots are jals, so a
        // jump to an *original* address still works without the kernel.
        let (mut cpu, mut mem) = chimera_emu::boot(&rg.rewritten.binary, bin.profile);
        cpu.hart.pc = bin.entry; // Old-space entry: should bounce via jal.
        let r = chimera_emu::run_cpu(&mut cpu, &mut mem, 10_000).unwrap();
        assert_eq!(r.exit_code, 9);
    }

    #[test]
    fn regenerated_loop_semantics() {
        let bin = assemble(
            "
            _start:
                li t0, 10
                li a0, 0
            loop:
                add a0, a0, t0
                addi t0, t0, -1
                bnez t0, loop
                li a7, 93
                ecall
            ",
            AsmOptions::default(),
        )
        .unwrap();
        for flavor in [Flavor::Safer, Flavor::Armore] {
            let rg = regenerate(
                &bin,
                chimera_isa::ExtSet::RV64GC,
                Mode::EmptyPatch(chimera_isa::Ext::V),
                flavor,
            )
            .unwrap();
            let r =
                run_binary_on(&rg.rewritten.binary, chimera_isa::ExtSet::RV64GC, 100_000).unwrap();
            assert_eq!(r.exit_code, 55, "{flavor:?}");
        }
    }
}
