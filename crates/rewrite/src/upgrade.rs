//! Instruction *upgrade*: optimizing base-ISA binaries with extension
//! instructions (§3.4's upgrade direction; evaluated as the "Base Version"
//! of Fig. 11).
//!
//! General binary auto-vectorization is an open problem; like the paper's
//! prototype, this module batches the operations of base instructions into
//! vector instructions where it can *prove* the transformation: canonical
//! counted loops — a single-block self-loop of unit-stride loads, one
//! arithmetic kernel, pointer bumps, a down-counting trip register and a
//! `bnez` backedge (the shape compilers and BLAS kernels emit, and what our
//! workload generators produce).
//!
//! The vectorized target block is *state-parametric*: it strip-mines from
//! the live register state (pointers, remaining count, accumulator), so
//! entering it at the loop head is correct on the first iteration **and**
//! on every backedge — which is what makes a SMILE trampoline at the loop
//! head sound. Erroneous jumps into the overwritten head bytes are repaired
//! through the fault-handling table into a scalar *repair block* that
//! replays the overwritten instructions and rejoins the intact scalar loop
//! body, whose backedge then re-enters the vectorized code.

use crate::chbp::{
    emit_exit, reemit, FaultTable, RewriteError, RewriteOptions, RewriteStats, Rewritten,
};
use crate::emitter::BlockEmitter;
use crate::smile::{encode_smile, next_reachable_target, SmileConstraints};
use crate::translate::SpillLayout;
use chimera_analysis::{disassemble, BasicBlock, Cfg, Liveness, Terminator};
use chimera_isa::{
    BranchKind, Eew, FMaKind, FOpKind, FReg, FpWidth, Inst, LoadKind, OpImmKind, OpKind, StoreKind,
    VArithOp, VReg, VSrc, VType, XReg,
};
use chimera_obj::{Binary, Perms};
use std::collections::BTreeMap;

/// The arithmetic kernel of a recognized loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kernel {
    /// `facc += a[i] * b[i]` (f64 dot product via `fmadd.d`).
    DotF64 { acc: FReg, a: FReg, b: FReg },
    /// `c[i] = a[i] op b[i]` (f64 map via `fadd.d`/`fsub.d`/`fmul.d`).
    MapF64 {
        op: FOpKind,
        a: FReg,
        b: FReg,
        dst: FReg,
    },
    /// `acc += a[i] * b[i]` (i64 dot via `mul` + `add`).
    DotI64 {
        acc: XReg,
        a: XReg,
        b: XReg,
        prod: XReg,
    },
    /// `c[i] = a[i] op b[i]` (i64 map via `add`/`sub`/`and`/...).
    MapI64 {
        op: OpKind,
        a: XReg,
        b: XReg,
        dst: XReg,
    },
}

/// A recognized vectorizable loop.
#[derive(Debug, Clone)]
struct VecLoop {
    /// Loop-head address (trampoline site).
    head: u64,
    /// Address control reaches when the loop exits (branch fallthrough).
    exit: u64,
    /// The two/three pointers with their bump registers (stride 8).
    ptr_a: XReg,
    ptr_b: XReg,
    /// Store pointer for map kernels.
    ptr_c: Option<XReg>,
    /// Down-counting trip register.
    counter: XReg,
    /// The kernel.
    kernel: Kernel,
    /// All instructions of the loop block, in order (for the repair block).
    insts: Vec<chimera_analysis::DisasmInst>,
}

/// Attempts to recognize the canonical loop shape in a self-loop block.
fn recognize(block: &BasicBlock) -> Option<VecLoop> {
    // Must be a conditional self-loop: `bnez counter, head`.
    if block.terminator != Terminator::Branch {
        return None;
    }
    let last = block.insts.last()?;
    let Inst::Branch {
        kind: BranchKind::Bne,
        rs1: counter,
        rs2: XReg::ZERO,
        ..
    } = last.inst
    else {
        return None;
    };
    if last.inst.direct_target(last.addr)? != block.start {
        return None;
    }
    let exit = last.next_addr();

    // Classify the body.
    let mut floads: Vec<(FReg, XReg)> = Vec::new();
    let mut fstores: Vec<(FReg, XReg)> = Vec::new();
    let mut iloads: Vec<(XReg, XReg)> = Vec::new();
    let mut istores: Vec<(XReg, XReg)> = Vec::new();
    let mut bumps: BTreeMap<XReg, i32> = BTreeMap::new();
    let mut dec: Option<XReg> = None;
    let mut fma: Option<(FReg, FReg, FReg)> = None;
    let mut fop: Option<(FOpKind, FReg, FReg, FReg)> = None;
    let mut imul: Option<(XReg, XReg, XReg)> = None;
    let mut iacc: Option<(XReg, XReg)> = None;
    let mut iop: Option<(OpKind, XReg, XReg, XReg)> = None;

    for di in &block.insts[..block.insts.len() - 1] {
        match di.inst {
            Inst::FLoad {
                width: FpWidth::D,
                frd,
                rs1,
                offset: 0,
            } => floads.push((frd, rs1)),
            Inst::FStore {
                width: FpWidth::D,
                frs2,
                rs1,
                offset: 0,
            } => fstores.push((frs2, rs1)),
            Inst::Load {
                kind: LoadKind::Ld,
                rd,
                rs1,
                offset: 0,
            } => iloads.push((rd, rs1)),
            Inst::Store {
                kind: StoreKind::Sd,
                rs1,
                rs2,
                offset: 0,
            } => istores.push((rs2, rs1)),
            Inst::OpImm {
                kind: OpImmKind::Addi,
                rd,
                rs1,
                imm,
            } if rd == rs1 => {
                if imm == 8 {
                    bumps.insert(rd, imm);
                } else if imm == -1 && dec.is_none() {
                    dec = Some(rd);
                } else {
                    return None;
                }
            }
            Inst::FMa {
                kind: FMaKind::Madd,
                width: FpWidth::D,
                frd,
                frs1,
                frs2,
                frs3,
            } if frd == frs3 && fma.is_none() => fma = Some((frd, frs1, frs2)),
            Inst::FOp {
                kind: k @ (FOpKind::Add | FOpKind::Sub | FOpKind::Mul),
                width: FpWidth::D,
                frd,
                frs1,
                frs2,
            } if fop.is_none() => fop = Some((k, frd, frs1, frs2)),
            Inst::Op {
                kind: OpKind::Mul,
                rd,
                rs1,
                rs2,
            } if imul.is_none() => imul = Some((rd, rs1, rs2)),
            Inst::Op {
                kind: OpKind::Add,
                rd,
                rs1,
                rs2,
            } if rd == rs1 && iacc.is_none() => iacc = Some((rd, rs2)),
            Inst::Op {
                kind: k @ (OpKind::Add | OpKind::Sub | OpKind::And | OpKind::Or | OpKind::Xor),
                rd,
                rs1,
                rs2,
            } if iop.is_none() => iop = Some((k, rd, rs1, rs2)),
            _ => return None,
        }
    }
    let counter_ok = dec == Some(counter);
    if !counter_ok {
        return None;
    }

    // Kernel shapes.
    // f64 dot: fld a, fld b, fmadd acc.
    if let (2, 0, Some((acc, m1, m2))) = (floads.len(), fstores.len(), fma) {
        let (fa, pa) = floads[0];
        let (fb, pb) = floads[1];
        let ok = (m1 == fa && m2 == fb) || (m1 == fb && m2 == fa);
        if ok && bumps.contains_key(&pa) && bumps.contains_key(&pb) && bumps.len() == 2 {
            return Some(VecLoop {
                head: block.start,
                exit,
                ptr_a: pa,
                ptr_b: pb,
                ptr_c: None,
                counter,
                kernel: Kernel::DotF64 { acc, a: fa, b: fb },
                insts: block.insts.clone(),
            });
        }
        return None;
    }
    // f64 map: fld a, fld b, fop dst, fsd dst.
    if let (2, 1, Some((op, dst, s1, s2))) = (floads.len(), fstores.len(), fop) {
        let (mut fa, mut pa) = floads[0];
        let (mut fb, mut pb) = floads[1];
        if s1 == fb && s2 == fa {
            // Normalize operand order (matters for non-commutative ops).
            std::mem::swap(&mut fa, &mut fb);
            std::mem::swap(&mut pa, &mut pb);
        }
        let (sv, pc) = fstores[0];
        let ok = sv == dst && s1 == fa && s2 == fb;
        if ok
            && bumps.contains_key(&pa)
            && bumps.contains_key(&pb)
            && bumps.contains_key(&pc)
            && bumps.len() == 3
        {
            return Some(VecLoop {
                head: block.start,
                exit,
                ptr_a: pa,
                ptr_b: pb,
                ptr_c: Some(pc),
                counter,
                kernel: Kernel::MapF64 {
                    op,
                    a: fa,
                    b: fb,
                    dst,
                },
                insts: block.insts.clone(),
            });
        }
        return None;
    }
    // i64 dot: ld a, ld b, mul prod, add acc.
    if let (2, 0, Some((prod, m1, m2)), Some((acc, addend))) =
        (iloads.len(), istores.len(), imul, iacc)
    {
        let (xa, pa) = iloads[0];
        let (xb, pb) = iloads[1];
        let ok = addend == prod && ((m1 == xa && m2 == xb) || (m1 == xb && m2 == xa));
        if ok && bumps.contains_key(&pa) && bumps.contains_key(&pb) && bumps.len() == 2 {
            return Some(VecLoop {
                head: block.start,
                exit,
                ptr_a: pa,
                ptr_b: pb,
                ptr_c: None,
                counter,
                kernel: Kernel::DotI64 {
                    acc,
                    a: xa,
                    b: xb,
                    prod,
                },
                insts: block.insts.clone(),
            });
        }
        return None;
    }
    // i64 map: ld a, ld b, op dst, sd dst.
    if let (2, 1, Some((op, dst, s1, s2))) = (iloads.len(), istores.len(), iop) {
        let (mut xa, mut pa) = iloads[0];
        let (mut xb, mut pb) = iloads[1];
        if s1 == xb && s2 == xa {
            std::mem::swap(&mut xa, &mut xb);
            std::mem::swap(&mut pa, &mut pb);
        }
        let (sv, pc) = istores[0];
        let ok = sv == dst && s1 == xa && s2 == xb;
        if ok
            && bumps.contains_key(&pa)
            && bumps.contains_key(&pb)
            && bumps.contains_key(&pc)
            && bumps.len() == 3
        {
            return Some(VecLoop {
                head: block.start,
                exit,
                ptr_a: pa,
                ptr_b: pb,
                ptr_c: Some(pc),
                counter,
                kernel: Kernel::MapI64 {
                    op,
                    a: xa,
                    b: xb,
                    dst,
                },
                insts: block.insts.clone(),
            });
        }
    }
    None
}

/// Upgrades a base-ISA binary: recognized loops are vectorized behind SMILE
/// trampolines; everything else is untouched. The result requires a core
/// with the V extension.
pub fn upgrade_rewrite(binary: &Binary, opts: RewriteOptions) -> Result<Rewritten, RewriteError> {
    binary
        .validate()
        .map_err(|e| RewriteError::BadBinary(e.to_string()))?;
    let d = disassemble(binary);
    let cfg = Cfg::build(&d);
    let liveness = Liveness::compute(&cfg);

    let mut out = binary.clone();
    let mut stats = RewriteStats {
        code_size: binary.code_size(),
        total_insts: d.insts.len(),
        ..Default::default()
    };
    let spill_base = out.append_section(
        ".chimera.vregs",
        vec![0u8; SpillLayout::SIZE.next_multiple_of(0x1000)],
        Perms::RW,
    );
    let target_base = {
        let top = out.sections.iter().map(|s| s.end()).max().unwrap_or(0);
        (top + 0xfff) & !0xfff
    };
    let mut fht = FaultTable {
        abi_gp: binary.gp,
        spill_base,
        ..Default::default()
    };

    let loops: Vec<VecLoop> = cfg.blocks.values().filter_map(recognize).collect();
    stats.source_insts = loops.iter().map(|l| l.insts.len()).sum();

    let mut target_code: Vec<u8> = Vec::new();
    let mut text_patches: Vec<(u64, Vec<u8>)> = Vec::new();

    for vl in &loops {
        // The head space: 8 bytes of loop-head instructions.
        let mut space_end = vl.head;
        let mut overwritten: Vec<chimera_analysis::DisasmInst> = Vec::new();
        for di in &vl.insts {
            if space_end >= vl.head + 8 {
                break;
            }
            overwritten.push(*di);
            space_end = di.next_addr();
        }
        if space_end < vl.head + 8 {
            continue; // Loop too small to patch; leave scalar.
        }
        let mut constraints = SmileConstraints::NONE;
        for di in &overwritten {
            if di.addr == vl.head + 2 {
                constraints.p2 = true;
            }
            if di.addr == vl.head + 6 {
                constraints.p3 = true;
            }
        }

        let min_addr = target_base + target_code.len() as u64;
        let Some(block_addr) = next_reachable_target(vl.head, min_addr, constraints) else {
            continue;
        };
        if block_addr - min_addr > opts.max_padding {
            continue;
        }
        stats.padding_bytes += block_addr - min_addr;
        for _ in 0..(block_addr - min_addr) / 2 {
            target_code.extend_from_slice(&crate::chbp::ILLEGAL_HALFWORD.to_le_bytes());
        }

        let mut em = BlockEmitter::new(block_addr);
        // gp restore (clobbered by the SMILE jalr).
        em.li32(XReg::GP, binary.gp as i64);
        emit_vector_loop(vl, &mut em);
        // The loop consumed gp as its scratch: restore the ABI value
        // before control returns to original code.
        em.li32(XReg::GP, binary.gp as i64);
        emit_exit(
            vl.exit,
            &d,
            &liveness,
            opts,
            chimera_isa::ExtSet::RV64GCV,
            &mut em,
            &mut fht,
            &mut stats,
        );
        // Repair block: replay overwritten head instructions, rejoin the
        // intact scalar body at space_end.
        for di in &overwritten {
            if di.addr > vl.head {
                fht.redirects.insert(di.addr, em.addr());
            }
            if di.addr == vl.head {
                // The head instruction's replay entry: jumps to the head
                // run the trampoline (correct); no entry needed.
                let repair_head = em.addr();
                reemit(&di.inst, di.addr, &mut em);
                let _ = repair_head;
            } else {
                reemit(&di.inst, di.addr, &mut em);
            }
        }
        emit_exit(
            space_end,
            &d,
            &liveness,
            opts,
            chimera_isa::ExtSet::RV64GCV,
            &mut em,
            &mut fht,
            &mut stats,
        );

        let bytes = em.finish();
        debug_assert_eq!(target_base + target_code.len() as u64, block_addr);
        target_code.extend_from_slice(&bytes);

        let smile = encode_smile(vl.head, block_addr, constraints)
            .map_err(|e| RewriteError::Layout(format!("SMILE at {:#x}: {e}", vl.head)))?;
        let mut patch = smile.bytes().to_vec();
        for _ in 0..(space_end - vl.head - 8) / 2 {
            patch.extend_from_slice(&crate::chbp::ILLEGAL_HALFWORD.to_le_bytes());
        }
        text_patches.push((vl.head, patch));
        fht.trampolines.insert(vl.head);
        stats.smile_trampolines += 1;
        if constraints != SmileConstraints::NONE {
            stats.constrained_smiles += 1;
        }
    }

    for (addr, bytes) in text_patches {
        if !out.write(addr, &bytes) {
            return Err(RewriteError::Layout(format!(
                "upgrade patch at {addr:#x} does not fit"
            )));
        }
    }
    stats.target_section_size = target_code.len() as u64;
    if target_code.is_empty() {
        target_code.resize(16, 0);
    }
    let placed = out.append_section(".chimera.text", target_code, Perms::RX);
    if placed != target_base {
        return Err(RewriteError::Layout("target section moved".into()));
    }
    let target_end = out
        .section(".chimera.text")
        .ok_or(RewriteError::MissingSection(".chimera.text"))?
        .end();
    fht.target_range = (target_base, target_end);
    out.profile = chimera_isa::ExtSet::RV64GCV;
    out.validate()
        .map_err(|e| RewriteError::BadBinary(e.to_string()))?;
    Ok(Rewritten {
        binary: out,
        fht,
        stats,
    })
}

/// Emits the strip-mined vector loop. Register contract: on entry the
/// original scalar state is live (pointers, counter, accumulator); on exit
/// the state matches what the scalar loop would leave (counter = 0,
/// pointers advanced, accumulator complete), with the loop's internal load
/// registers treated as dead. `gp` is used as the only scratch and left
/// restored.
fn emit_vector_loop(vl: &VecLoop, em: &mut BlockEmitter) {
    let vt = VType {
        sew: Eew::E64,
        lmul: 1,
        ta: true,
        ma: true,
    };
    let (v1, v2, v3, v4) = (VReg::of(1), VReg::of(2), VReg::of(3), VReg::of(4));
    let vacc = VReg::of(8);
    let head = format!("vloop_{:x}", vl.head);
    // Dot kernels accumulate lane-wise in a vector register across strips
    // and reduce ONCE at loop exit: internal loop iterations are not entry
    // points (only the block head is), so mid-loop state need not match
    // the scalar invariant.
    let is_dot = matches!(vl.kernel, Kernel::DotF64 { .. } | Kernel::DotI64 { .. });
    if is_dot {
        // vacc = 0 across all VLMAX lanes.
        em.inst(Inst::Vsetvli {
            rd: XReg::GP,
            rs1: XReg::ZERO,
            vtype: vt,
        });
        em.inst(Inst::VArith {
            op: VArithOp::Vmv,
            vd: vacc,
            vs2: VReg::V0,
            src: VSrc::I(0),
        });
    }
    em.label(head.clone());
    // gp = vl = min(counter, VLMAX).
    em.inst(Inst::Vsetvli {
        rd: XReg::GP,
        rs1: vl.counter,
        vtype: vt,
    });
    em.inst(Inst::VLoad {
        eew: Eew::E64,
        vd: v1,
        rs1: vl.ptr_a,
    });
    em.inst(Inst::VLoad {
        eew: Eew::E64,
        vd: v2,
        rs1: vl.ptr_b,
    });
    match vl.kernel {
        Kernel::DotF64 { .. } => {
            // vacc[i] += a[i] * b[i]; reduced once after the loop.
            em.inst(Inst::VArith {
                op: VArithOp::Vfmacc,
                vd: vacc,
                vs2: v1,
                src: VSrc::V(v2),
            });
            bump_pointers(vl, em);
        }
        Kernel::MapF64 { op, .. } => {
            let vop = match op {
                FOpKind::Add => VArithOp::Vfadd,
                FOpKind::Sub => VArithOp::Vfsub,
                _ => VArithOp::Vfmul,
            };
            em.inst(Inst::VArith {
                op: vop,
                vd: v3,
                vs2: v1,
                src: VSrc::V(v2),
            });
            em.inst(Inst::VStore {
                eew: Eew::E64,
                vs3: v3,
                rs1: vl.ptr_c.expect("map kernels have a store pointer"),
            });
            bump_pointers(vl, em);
        }
        Kernel::DotI64 { .. } => {
            em.inst(Inst::VArith {
                op: VArithOp::Vmacc,
                vd: vacc,
                vs2: v1,
                src: VSrc::V(v2),
            });
            bump_pointers(vl, em);
        }
        Kernel::MapI64 { op, .. } => {
            let vop = match op {
                OpKind::Add => VArithOp::Vadd,
                OpKind::Sub => VArithOp::Vsub,
                OpKind::And => VArithOp::Vand,
                OpKind::Or => VArithOp::Vor,
                _ => VArithOp::Vxor,
            };
            em.inst(Inst::VArith {
                op: vop,
                vd: v3,
                vs2: v1,
                src: VSrc::V(v2),
            });
            em.inst(Inst::VStore {
                eew: Eew::E64,
                vs3: v3,
                rs1: vl.ptr_c.expect("map kernels have a store pointer"),
            });
            bump_pointers(vl, em);
        }
    }
    em.branch_to(BranchKind::Bne, vl.counter, XReg::ZERO, head);
    // Post-loop: fold the vector accumulator into the scalar one.
    if is_dot {
        em.inst(Inst::Vsetvli {
            rd: XReg::GP,
            rs1: XReg::ZERO,
            vtype: vt,
        });
        em.inst(Inst::VArith {
            op: VArithOp::Vmv,
            vd: v4,
            vs2: VReg::V0,
            src: VSrc::I(0),
        });
        match vl.kernel {
            Kernel::DotF64 { acc, a, .. } => {
                em.inst(Inst::VArith {
                    op: VArithOp::Vfredusum,
                    vd: v3,
                    vs2: vacc,
                    src: VSrc::V(v4),
                });
                em.inst(Inst::VMvXS {
                    rd: XReg::GP,
                    vs2: v3,
                });
                em.inst(Inst::FMvToF {
                    width: FpWidth::D,
                    frd: a,
                    rs1: XReg::GP,
                });
                em.inst(Inst::FOp {
                    kind: FOpKind::Add,
                    width: FpWidth::D,
                    frd: acc,
                    frs1: acc,
                    frs2: a,
                });
            }
            Kernel::DotI64 { acc, prod, .. } => {
                em.inst(Inst::VArith {
                    op: VArithOp::Vredsum,
                    vd: v3,
                    vs2: vacc,
                    src: VSrc::V(v4),
                });
                em.inst(Inst::VMvXS { rd: prod, vs2: v3 });
                em.inst(chimera_obj::add(acc, acc, prod));
            }
            _ => unreachable!("is_dot guards the kernel"),
        }
    }
    // Restore gp for the exit path (the caller re-materializes it too).
}

/// `counter -= vl; ptrs += vl * 8` using `gp` (holding `vl`) as scratch;
/// leaves `gp` = vl * 8 (clobbered — the caller restores before exit).
fn bump_pointers(vl: &VecLoop, em: &mut BlockEmitter) {
    em.inst(Inst::Op {
        kind: OpKind::Sub,
        rd: vl.counter,
        rs1: vl.counter,
        rs2: XReg::GP,
    });
    em.inst(Inst::OpImm {
        kind: OpImmKind::Slli,
        rd: XReg::GP,
        rs1: XReg::GP,
        imm: 3,
    });
    em.inst(chimera_obj::add(vl.ptr_a, vl.ptr_a, XReg::GP));
    em.inst(chimera_obj::add(vl.ptr_b, vl.ptr_b, XReg::GP));
    if let Some(pc) = vl.ptr_c {
        em.inst(chimera_obj::add(pc, pc, XReg::GP));
    }
    // Restore gp to vl? Not needed: after the bump, gp's only consumer is
    // the next vsetvli (which overwrites it) or the exit path below.
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_emu::{run_binary_on, RunError};
    use chimera_obj::{assemble, AsmOptions};

    const SCALAR_DOT: &str = "
        .data
        a: .dword 1
           .dword 2
           .dword 3
           .dword 4
           .dword 5
           .dword 6
        b: .dword 7
           .dword 8
           .dword 9
           .dword 10
           .dword 11
           .dword 12
        .text
        _start:
            la t0, a
            la t1, b
            li t2, 6          # count
            li a0, 0          # acc
        loop:
            ld a1, 0(t0)
            ld a2, 0(t1)
            mul a3, a1, a2
            add a0, a0, a3
            addi t0, t0, 8
            addi t1, t1, 8
            addi t2, t2, -1
            bnez t2, loop
            li a7, 93
            ecall
    ";

    #[test]
    fn integer_dot_loop_vectorizes() {
        let bin = assemble(SCALAR_DOT, AsmOptions::default()).unwrap();
        let native = chimera_emu::run_binary(&bin, 100_000).unwrap();
        // 7+16+27+40+55+72 = 217.
        assert_eq!(native.exit_code, 217);

        let rw = upgrade_rewrite(&bin, RewriteOptions::default()).unwrap();
        assert_eq!(rw.stats.smile_trampolines, 1, "one loop vectorized");
        let r = run_binary_on(&rw.binary, chimera_isa::ExtSet::RV64GCV, 100_000).unwrap();
        assert_eq!(r.exit_code, 217);
        // And it actually used vector instructions.
        assert!(r.stats.vector_insts > 0);
        // Far fewer dynamic instructions than the scalar loop.
        assert!(r.stats.instret < native.stats.instret + 40);
    }

    #[test]
    fn upgraded_binary_fails_on_base_core_inside_loop() {
        // The vectorized block needs V: running the upgraded binary on a
        // base core faults at the first vector instruction (which is what
        // FAM-style migration recovers from).
        let bin = assemble(SCALAR_DOT, AsmOptions::default()).unwrap();
        let rw = upgrade_rewrite(&bin, RewriteOptions::default()).unwrap();
        let err = run_binary_on(&rw.binary, chimera_isa::ExtSet::RV64GC, 100_000).unwrap_err();
        assert!(matches!(
            err,
            RunError::Trap(chimera_emu::Trap::Illegal { .. })
        ));
    }

    #[test]
    fn map_loop_vectorizes() {
        let bin = assemble(
            "
            .data
            a: .dword 10
               .dword 20
               .dword 30
               .dword 40
               .dword 50
            b: .dword 1
               .dword 2
               .dword 3
               .dword 4
               .dword 5
            c: .zero 40
            .text
            _start:
                la t0, a
                la t1, b
                la t3, c
                li t2, 5
            loop:
                ld a1, 0(t0)
                ld a2, 0(t1)
                sub a3, a1, a2
                sd a3, 0(t3)
                addi t0, t0, 8
                addi t1, t1, 8
                addi t3, t3, 8
                addi t2, t2, -1
                bnez t2, loop
                ld a0, -8(t3)     # c[4] = 50 - 5 = 45
                li a7, 93
                ecall
            ",
            AsmOptions::default(),
        )
        .unwrap();
        let native = chimera_emu::run_binary(&bin, 100_000).unwrap();
        assert_eq!(native.exit_code, 45);
        let rw = upgrade_rewrite(&bin, RewriteOptions::default()).unwrap();
        assert_eq!(rw.stats.smile_trampolines, 1);
        let r = run_binary_on(&rw.binary, chimera_isa::ExtSet::RV64GCV, 100_000).unwrap();
        assert_eq!(r.exit_code, 45);
    }

    #[test]
    fn fp_dot_loop_vectorizes() {
        let bin = assemble(
            "
            .data
            a: .double 1.0
               .double 2.0
               .double 3.0
               .double 4.0
               .double 5.0
            b: .double 2.0
               .double 2.0
               .double 2.0
               .double 2.0
               .double 2.0
            .text
            _start:
                la t0, a
                la t1, b
                li t2, 5
                fmv.d.x fa0, zero
            loop:
                fld ft0, 0(t0)
                fld ft1, 0(t1)
                fmadd.d fa0, ft0, ft1, fa0
                addi t0, t0, 8
                addi t1, t1, 8
                addi t2, t2, -1
                bnez t2, loop
                fcvt.l.d a0, fa0   # (1+2+3+4+5)*2 = 30
                li a7, 93
                ecall
            ",
            AsmOptions::default(),
        )
        .unwrap();
        let native = chimera_emu::run_binary(&bin, 100_000).unwrap();
        assert_eq!(native.exit_code, 30);
        let rw = upgrade_rewrite(&bin, RewriteOptions::default()).unwrap();
        assert_eq!(rw.stats.smile_trampolines, 1);
        let r = run_binary_on(&rw.binary, chimera_isa::ExtSet::RV64GCV, 100_000).unwrap();
        assert_eq!(r.exit_code, 30);
    }

    #[test]
    fn non_canonical_loops_left_alone() {
        let bin = assemble(
            "
            _start:
                li t0, 5
                li a0, 0
            loop:
                add a0, a0, t0
                addi t0, t0, -1
                bnez t0, loop
                li a7, 93
                ecall
            ",
            AsmOptions::default(),
        )
        .unwrap();
        let rw = upgrade_rewrite(&bin, RewriteOptions::default()).unwrap();
        assert_eq!(rw.stats.smile_trampolines, 0);
        let r = run_binary_on(&rw.binary, chimera_isa::ExtSet::RV64GCV, 100_000).unwrap();
        assert_eq!(r.exit_code, 15);
    }
}
