//! The unified rewrite-engine abstraction: every rewriting system (CHBP,
//! the strawman, the Safer/ARMore regeneration flavors, and the FAM/MELF
//! identity passthrough) implements [`RewriteEngine`] — six explicit
//! stages over a shared [`RewriteUnit`] IR, driven by
//! [`crate::pipeline::run`]:
//!
//! 1. **scan** — validate the input, build the analyses (disassembly,
//!    CFG, liveness), partition the binary into independent rewrite
//!    units, and *measure* each unit's emitted size (block emission is
//!    size-invariant in its base address, so a scratch emission at any
//!    base measures the real size).
//! 2. **plan** — sequentially assign every unit its final target-section
//!    address, decide entry kinds (SMILE vs. trap) and collect text
//!    patches. This is the only stage whose decisions depend on layout,
//!    and it is deterministic by construction.
//! 3. **transform** — re-emit every unit at its planned final address.
//!    Each unit is a pure function of `(unit, address, analyses)`, so
//!    this stage runs on a worker pool with bit-identical output for
//!    every worker count.
//! 4. **place** — concatenate unit bytes (plus planned padding) into the
//!    target section and merge per-unit fault-table/statistics fragments
//!    in unit order.
//! 5. **link** — apply text patches, attach the target section, fix up
//!    the entry point and profile.
//! 6. **verify** — validate the output binary.

use crate::chbp::{FaultTable, Region, RewriteError, RewriteStats};
use crate::regen::{RegenAux, RegenInfo};
use chimera_analysis::{Cfg, DisasmInst, Disassembly, Liveness};
use chimera_obj::Binary;
use std::sync::Arc;

/// One independent rewrite unit: the granularity of parallel transform.
/// Its position in [`EngineState::units`] is its identity — plans,
/// artifacts and fragment merges all follow that order, which is what
/// makes parallel transform deterministic.
#[derive(Debug)]
pub struct RewriteUnit {
    /// What the unit covers.
    pub(crate) kind: UnitKind,
}

/// The unit payload, per engine family.
#[derive(Debug)]
pub(crate) enum UnitKind {
    /// A CHBP patch region (site + batched neighbourhood). `forced_trap`
    /// marks strawman units, which always take a trap entry.
    Region {
        /// The region to emit.
        region: Region,
        /// Strawman mode: never attempt a SMILE entry.
        forced_trap: bool,
    },
    /// A CHBP site with no usable region: trap entry + lone translation.
    Site(DisasmInst),
    /// A regeneration span: instruction index range `[start, end)` in the
    /// address-ordered disassembly.
    Span {
        /// First instruction index.
        start: usize,
        /// One past the last instruction index.
        end: usize,
    },
}

/// What one unit's transform produced: emitted bytes plus fragments of
/// the fault table, statistics and regeneration metadata, merged (in unit
/// order) during the place stage. Artifacts are also what the
/// incremental path caches per unit: emission is a pure function of
/// `(unit, planned address, analyses)`, so a cached artifact is reusable
/// verbatim until its unit's source range is invalidated.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct UnitArtifact {
    /// The unit's emitted bytes.
    pub bytes: Vec<u8>,
    /// Fault-table fragment (`redirects`/`trap_exits`/`untranslated`).
    pub fht: FaultTable,
    /// Statistics fragment (exit-side counters only).
    pub stats: RewriteStats,
    /// Regeneration-metadata fragment (Safer slow traps).
    pub regen: RegenInfo,
}

/// One unit's planned placement.
#[derive(Debug, Clone, Copy)]
pub(crate) struct UnitPlan {
    /// Final address of the unit's first emitted byte.
    pub addr: u64,
    /// Illegal-filler padding preceding the unit (SMILE reachability).
    pub padding: u64,
}

/// Shared mutable state threaded through the six pipeline stages.
pub struct EngineState<'a> {
    /// The input binary (never mutated).
    pub(crate) input: &'a Binary,
    /// Worker count for the parallel stages (1 = fully sequential).
    pub(crate) workers: usize,
    /// The output binary under construction (cloned from the input by
    /// scan for patching engines, by link for the identity engine).
    pub(crate) out: Option<Binary>,
    /// Scan: disassembly (shared with the per-unit cache so incremental
    /// re-rewrites reuse it without recomputation or deep clones).
    pub(crate) disasm: Option<Arc<Disassembly>>,
    /// Scan: control-flow graph.
    pub(crate) cfg: Option<Arc<Cfg>>,
    /// Scan: liveness facts.
    pub(crate) liveness: Option<Arc<Liveness>>,
    /// Scan: the unit partition.
    pub(crate) units: Arc<Vec<RewriteUnit>>,
    /// Scan: measured emitted size per unit.
    pub(crate) unit_sizes: Arc<Vec<u64>>,
    /// Plan: per-unit placement.
    pub(crate) plans: Vec<UnitPlan>,
    /// Transform: per-unit artifacts (consumed by place).
    pub(crate) artifacts: Vec<UnitArtifact>,
    /// Plan: original-section patches (applied by link).
    pub(crate) text_patches: Vec<(u64, Vec<u8>)>,
    /// Place: the assembled target section.
    pub(crate) target_code: Vec<u8>,
    /// Scan: where the target section will land.
    pub(crate) target_base: u64,
    /// The fault-handling table under construction.
    pub(crate) fht: FaultTable,
    /// Statistics under construction.
    pub(crate) stats: RewriteStats,
    /// Regeneration metadata (regeneration engines only).
    pub(crate) regen: Option<RegenInfo>,
    /// Regeneration working state (address map, slot sizes).
    pub(crate) regen_aux: Option<Arc<RegenAux>>,
    /// Work-item count of the stage that just ran (for trace events).
    pub(crate) pass_items: u64,
}

impl<'a> EngineState<'a> {
    pub(crate) fn new(input: &'a Binary, workers: usize) -> Self {
        EngineState {
            input,
            workers: workers.max(1),
            out: None,
            disasm: None,
            cfg: None,
            liveness: None,
            units: Arc::new(Vec::new()),
            unit_sizes: Arc::new(Vec::new()),
            plans: Vec::new(),
            artifacts: Vec::new(),
            text_patches: Vec::new(),
            target_code: Vec::new(),
            target_base: 0,
            fht: FaultTable::default(),
            stats: RewriteStats::default(),
            regen: None,
            regen_aux: None,
            pass_items: 0,
        }
    }
}

impl RewriteUnit {
    /// The input-address range `[start, end)` whose bytes this unit
    /// translates. The dirty-unit set is keyed on these ranges: a unit is
    /// invalidated when a reported dirty region intersects its source
    /// range with a generation newer than the unit's validation stamp.
    pub(crate) fn source_range(&self, st: &EngineState) -> (u64, u64) {
        match &self.kind {
            UnitKind::Region { region, .. } => region.source_range(),
            UnitKind::Site(site) => (site.addr, site.addr + site.len as u64),
            UnitKind::Span { start, end } => st
                .regen_aux
                .as_deref()
                .expect("span units carry regeneration state")
                .span_range(*start, *end),
        }
    }
}

/// Merges one unit's fragments into the global fault table / statistics.
/// Called in unit-index order, so merge results are deterministic.
pub(crate) fn merge_fragment(fht: &mut FaultTable, stats: &mut RewriteStats, art: UnitArtifact) {
    fht.redirects.extend(art.fht.redirects);
    fht.trap_exits.extend(art.fht.trap_exits);
    fht.untranslated.extend(art.fht.untranslated);
    stats.exit_jumps += art.stats.exit_jumps;
    stats.exit_trampolines += art.stats.exit_trampolines;
    stats.dead_reg_not_found_traditional += art.stats.dead_reg_not_found_traditional;
    stats.dead_reg_not_found_shift += art.stats.dead_reg_not_found_shift;
    stats.trap_exits += art.stats.trap_exits;
}

/// A staged rewriting system. Implementations must be [`Sync`]: the
/// pipeline shares the engine across transform workers.
///
/// Stage contract: `scan` fills the analyses + unit partition + sizes,
/// `plan` assigns layout sequentially, `transform` emits units (the
/// parallel stage), `place` assembles + merges, `link` produces the
/// output binary, `verify` validates it. Engines with nothing to do in a
/// stage inherit the no-op default. Every stage sets
/// `EngineState::pass_items` for the `RewritePassDone` trace event.
pub trait RewriteEngine: Sync {
    /// Engine name (for diagnostics and JSON dumps).
    fn name(&self) -> &'static str;

    /// Validate input, build analyses, partition into units, measure.
    fn scan(&self, st: &mut EngineState) -> Result<(), RewriteError>;

    /// Sequential deterministic layout assignment.
    fn plan(&self, st: &mut EngineState) -> Result<(), RewriteError> {
        st.pass_items = 0;
        Ok(())
    }

    /// Per-unit emission at final addresses (parallel).
    fn transform(&self, st: &mut EngineState) -> Result<(), RewriteError> {
        st.pass_items = 0;
        Ok(())
    }

    /// Re-emits a single unit at its planned address: the per-unit pure
    /// function behind `transform`, exposed so the incremental driver can
    /// redo only dirty units. Engines whose `transform` is a no-op (no
    /// units) never receive this call; unit-producing engines must
    /// override it.
    fn transform_unit(&self, _st: &EngineState, _idx: usize) -> Result<UnitArtifact, RewriteError> {
        Err(RewriteError::Layout(format!(
            "engine '{}' does not support incremental re-transform",
            self.name()
        )))
    }

    /// Incrementally re-rewrites `binary` against a cache primed by
    /// [`crate::pipeline::run_cached`]: only the units whose source
    /// ranges intersect `dirty` (at a generation newer than their
    /// validation stamp) are re-emitted; every clean unit's bytes are
    /// reused verbatim. Output is bit-identical to a from-scratch
    /// rewrite. See [`crate::pipeline::run_incremental`] (which `dyn`
    /// callers use directly) for the full contract.
    fn rewrite_incremental(
        &self,
        binary: &Binary,
        cache: &mut crate::pipeline::RewriteCache,
        dirty: &[crate::pipeline::DirtySpan],
        workers: usize,
        tracer: &chimera_trace::Tracer,
    ) -> Result<crate::pipeline::EngineResult, RewriteError>
    where
        Self: Sized,
    {
        crate::pipeline::run_incremental(self, binary, cache, dirty, workers, tracer)
    }

    /// Target-section assembly + fragment merge.
    fn place(&self, st: &mut EngineState) -> Result<(), RewriteError> {
        st.pass_items = 0;
        Ok(())
    }

    /// Patching, section attachment, entry/profile fixup.
    fn link(&self, st: &mut EngineState) -> Result<(), RewriteError>;

    /// Output validation.
    fn verify(&self, st: &mut EngineState) -> Result<(), RewriteError> {
        let out = st.out.as_ref().expect("link produced the output binary");
        out.validate()
            .map_err(|e| RewriteError::BadBinary(format!("rewritten binary invalid: {e}")))?;
        st.pass_items = 1;
        Ok(())
    }
}

/// The FAM/MELF identity engine: no rewriting at all — the variant runs
/// the input binary as-is. Exists so every system in the §6.1 comparison
/// dispatches through the same pipeline (and produces the same trace
/// shape).
pub struct IdentityEngine;

impl RewriteEngine for IdentityEngine {
    fn name(&self) -> &'static str {
        "identity"
    }

    fn scan(&self, st: &mut EngineState) -> Result<(), RewriteError> {
        st.input
            .validate()
            .map_err(|e| RewriteError::BadBinary(e.to_string()))?;
        st.stats.code_size = st.input.code_size();
        st.pass_items = 1;
        Ok(())
    }

    fn link(&self, st: &mut EngineState) -> Result<(), RewriteError> {
        st.out = Some(st.input.clone());
        st.pass_items = 1;
        Ok(())
    }
}
