//! Target-instruction generation (§4.1): semantics-preserving translation
//! of extension instructions into base-ISA sequences.
//!
//! Two register problems the paper calls out are handled here:
//!
//! * **Extra base registers.** Translations borrow scratch registers
//!   (`t2`..`t6`, `ft8`..`ft10`) and save/restore them in a dedicated
//!   scratch area, first-in last-out, so the surrounding program never sees
//!   them change. The pointer used to reach the scratch area is `gp` itself
//!   — legal precisely because the psABI makes `gp` a link-time constant the
//!   translation can re-materialize at any point (the same property SMILE
//!   exploits).
//! * **Simulated extension registers.** Vector state (`v0..v31`, `vl`, the
//!   selected element width) lives in a read-write `.chimera.vregs` section
//!   appended to the rewritten binary ([`SpillLayout`]), so the computation
//!   context survives migration between cores exactly as §4.1 requires.
//!
//! Supported downgrades: the whole modelled RVV subset at `e32`/`e64` with
//! `m1` grouping (the element width is dispatched at runtime from the
//! spilled `vtype`), and the Zba/Zbb subset. Anything else reports
//! [`Untranslatable`] and the rewriter falls back to a trap-based
//! trampoline for it.

use crate::emitter::BlockEmitter;
use chimera_isa::{
    BranchKind, Eew, FMaKind, FOpKind, FReg, FpWidth, Inst, LoadKind, OpImmKind, OpKind, StoreKind,
    UnaryKind, VArithOp, VReg, VSrc, XReg, VLEN,
};

/// Layout of the `.chimera.vregs` spill section.
#[derive(Debug, Clone, Copy)]
pub struct SpillLayout {
    /// Base address of the section.
    pub base: u64,
}

impl SpillLayout {
    /// Total section size in bytes.
    pub const SIZE: usize = 128 + 32 * (VLEN as usize / 8);
    /// Offset of the current vector length (u64).
    pub const VL: i32 = 0;
    /// Offset of the current element width in bytes (u64: 4 or 8).
    pub const SEW: i32 = 8;
    /// Offset of the scalar-operand staging slot.
    pub const RESULT: i32 = 104;
    /// Offset of the simulated vector register file.
    pub const VREGS: i32 = 128;

    /// Save-slot offset for an integer scratch register.
    pub(crate) fn x_slot(r: XReg) -> i32 {
        match r {
            XReg::T2 => 16,
            XReg::T3 => 24,
            XReg::T4 => 32,
            XReg::T5 => 40,
            XReg::T6 => 48,
            _ => panic!("{r} is not a translation scratch register"),
        }
    }

    /// Save-slot offset for an FP scratch register.
    pub(crate) fn f_slot(r: FReg) -> i32 {
        match r.index() {
            28 => 56,
            29 => 64,
            30 => 72,
            _ => panic!("{r} is not a translation FP scratch register"),
        }
    }

    /// Offset of element 0 of simulated vector register `v`.
    pub fn vreg_off(v: VReg) -> i32 {
        Self::VREGS + (VLEN as i32 / 8) * v.index() as i32
    }
}

/// The instruction has no downgrade template; the rewriter must fall back
/// to a trap-based trampoline (kernel emulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Untranslatable(pub Inst);

impl core::fmt::Display for Untranslatable {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "no downgrade template for {}", self.0)
    }
}

impl std::error::Error for Untranslatable {}

/// The integer scratch pool, in preference order.
const X_POOL: [XReg; 5] = [XReg::T2, XReg::T3, XReg::T4, XReg::T5, XReg::T6];
/// The FP scratch pool.
const F_SCRATCH: [FReg; 3] = [FReg::of(28), FReg::of(29), FReg::of(30)];

/// Translates extension instructions to base sequences.
#[derive(Debug)]
pub struct Translator {
    /// Spill-section layout.
    pub spill: SpillLayout,
    /// The ABI `gp` value to re-materialize after clobbering.
    pub abi_gp: u64,
    site: u64,
}

impl Translator {
    /// Creates a translator for a binary whose spill section is at
    /// `spill_base` and whose psABI `gp` is `abi_gp`.
    pub fn new(spill_base: u64, abi_gp: u64) -> Self {
        Translator {
            spill: SpillLayout { base: spill_base },
            abi_gp,
            site: 0,
        }
    }

    fn fresh(&mut self, stem: &str) -> String {
        self.site += 1;
        format!("{stem}_{}", self.site)
    }

    /// Emits `gp = abi_gp`.
    pub fn restore_gp(&self, em: &mut BlockEmitter) {
        em.li32(XReg::GP, self.abi_gp as i64);
    }

    fn spill_gp(&self, em: &mut BlockEmitter) {
        em.li32(XReg::GP, self.spill.base as i64);
    }

    /// Whether `inst` is a vector instruction that can participate in a
    /// translation *sequence* (shared scratch save/restore; the §4.2
    /// batching optimization applied at the translation level).
    pub fn sequenceable(inst: &Inst) -> bool {
        matches!(
            inst,
            Inst::Vsetvli { .. }
                | Inst::VLoad { .. }
                | Inst::VStore { .. }
                | Inst::VArith { .. }
                | Inst::VMvXS { .. }
                | Inst::VMvSX { .. }
        )
    }

    /// Opens a translation sequence: `gp` → spill pointer, all scratch
    /// registers saved. Between `seq_begin` and `seq_end` only
    /// [`Translator::downgrade_in_seq`] emissions may run.
    pub fn seq_begin(&self, em: &mut BlockEmitter) {
        self.spill_gp(em);
        for r in X_POOL {
            em.inst(Inst::Store {
                kind: StoreKind::Sd,
                rs1: XReg::GP,
                rs2: r,
                offset: SpillLayout::x_slot(r),
            });
        }
        for f in F_SCRATCH {
            em.inst(Inst::FStore {
                width: FpWidth::D,
                frs2: f,
                rs1: XReg::GP,
                offset: SpillLayout::f_slot(f),
            });
        }
    }

    /// Closes a translation sequence: scratches restored (first-in,
    /// last-out), `gp` re-materialized to the ABI value.
    pub fn seq_end(&self, em: &mut BlockEmitter) {
        for f in F_SCRATCH.iter().rev() {
            em.inst(Inst::FLoad {
                width: FpWidth::D,
                frd: *f,
                rs1: XReg::GP,
                offset: SpillLayout::f_slot(*f),
            });
        }
        for r in X_POOL.iter().rev() {
            em.inst(Inst::Load {
                kind: LoadKind::Ld,
                rd: *r,
                rs1: XReg::GP,
                offset: SpillLayout::x_slot(*r),
            });
        }
        self.restore_gp(em);
    }

    /// Reads source register `src` into scratch `dst`, honouring the
    /// sequence discipline: a scratch register's *program* value lives in
    /// its save slot while a sequence is open.
    fn capture_x(&self, em: &mut BlockEmitter, dst: XReg, src: XReg) {
        if X_POOL.contains(&src) {
            em.inst(Inst::Load {
                kind: LoadKind::Ld,
                rd: dst,
                rs1: XReg::GP,
                offset: SpillLayout::x_slot(src),
            });
        } else {
            em.inst(chimera_isa::mv(dst, src));
        }
    }

    /// Delivers the value staged in the RESULT slot to destination `rd`:
    /// a scratch destination's save slot is updated instead (the program
    /// value materializes at `seq_end`).
    fn deliver_rd(&self, em: &mut BlockEmitter, rd: XReg) {
        if rd == XReg::ZERO {
            return;
        }
        if X_POOL.contains(&rd) {
            em.inst(Inst::Load {
                kind: LoadKind::Ld,
                rd: XReg::T2,
                rs1: XReg::GP,
                offset: SpillLayout::RESULT,
            });
            em.inst(Inst::Store {
                kind: StoreKind::Sd,
                rs1: XReg::GP,
                rs2: XReg::T2,
                offset: SpillLayout::x_slot(rd),
            });
        } else {
            em.inst(Inst::Load {
                kind: LoadKind::Ld,
                rd,
                rs1: XReg::GP,
                offset: SpillLayout::RESULT,
            });
        }
    }

    /// Emits the downgrade of `inst` standalone: for vector instructions
    /// this wraps the body in its own one-instruction sequence; Zba/Zbb
    /// templates carry their own lightweight save discipline.
    pub fn downgrade(&mut self, inst: &Inst, em: &mut BlockEmitter) -> Result<(), Untranslatable> {
        if Self::sequenceable(inst) {
            self.probe(inst)?;
            self.seq_begin(em);
            let r = self.downgrade_in_seq(inst, em);
            self.seq_end(em);
            return r;
        }
        self.downgrade_scalar(inst, em)
    }

    /// Checks translatability without emitting.
    pub fn probe(&mut self, inst: &Inst) -> Result<(), Untranslatable> {
        if inst.uses_x().contains(&XReg::GP) {
            return Err(Untranslatable(*inst));
        }
        match *inst {
            Inst::Vsetvli { vtype, .. }
                if (vtype.lmul != 1 || !matches!(vtype.sew, Eew::E32 | Eew::E64)) =>
            {
                return Err(Untranslatable(*inst));
            }
            Inst::VLoad { eew, .. } | Inst::VStore { eew, .. }
                if !matches!(eew, Eew::E32 | Eew::E64) =>
            {
                return Err(Untranslatable(*inst));
            }
            Inst::VArith { op, src, .. } if op.is_fp() && matches!(src, VSrc::I(_)) => {
                return Err(Untranslatable(*inst));
            }
            Inst::VMvXS { .. } | Inst::VMvSX { .. } => {}
            _ => {}
        }
        Ok(())
    }

    /// Emits the downgrade of a vector `inst` inside an open sequence
    /// (`gp` = spill pointer, scratches saved).
    pub fn downgrade_in_seq(
        &mut self,
        inst: &Inst,
        em: &mut BlockEmitter,
    ) -> Result<(), Untranslatable> {
        self.probe(inst)?;
        match *inst {
            Inst::Vsetvli { rd, rs1, vtype } => {
                self.vsetvli(rd, rs1, vtype.sew, em);
                Ok(())
            }
            Inst::VLoad { eew, vd, rs1 } => {
                self.vmem(true, eew, vd, rs1, em);
                Ok(())
            }
            Inst::VStore { eew, vs3, rs1 } => {
                self.vmem(false, eew, vs3, rs1, em);
                Ok(())
            }
            Inst::VArith { op, vd, vs2, src } => self.varith(op, vd, vs2, src, em, inst),
            Inst::VMvXS { rd, vs2 } => {
                self.vmv_x_s(rd, vs2, em);
                Ok(())
            }
            Inst::VMvSX { vd, rs1 } => {
                self.vmv_s_x(vd, rs1, em);
                Ok(())
            }
            _ => Err(Untranslatable(*inst)),
        }
    }

    /// Downgrades the Zba/Zbb scalar instructions (standalone templates
    /// with their own gp discipline).
    fn downgrade_scalar(
        &mut self,
        inst: &Inst,
        em: &mut BlockEmitter,
    ) -> Result<(), Untranslatable> {
        if inst.uses_x().contains(&XReg::GP) {
            return Err(Untranslatable(*inst));
        }
        match *inst {
            Inst::Op { kind, rd, rs1, rs2 } if kind.ext() == Some(chimera_isa::Ext::B) => {
                self.zb_op(kind, rd, rs1, rs2, em, inst)
            }
            Inst::OpImm {
                kind: OpImmKind::Rori,
                rd,
                rs1,
                imm,
            } => {
                self.rori(rd, rs1, imm, em);
                Ok(())
            }
            Inst::Unary { kind, rd, rs1 } => self.zb_unary(kind, rd, rs1, em),
            _ => Err(Untranslatable(*inst)),
        }
    }

    // ----- Vector templates ------------------------------------------------
    //
    // All bodies assume an *open sequence*: gp = spill pointer, scratches
    // saved. Program values of scratch registers are read from their save
    // slots (capture_x) and scratch destinations are written through their
    // slots (deliver_rd).

    fn vsetvli(&mut self, rd: XReg, rs1: XReg, sew: Eew, em: &mut BlockEmitter) {
        let vlmax = (VLEN as i64) / sew.bits() as i64;
        let done = self.fresh("vset_done");
        // t2 = requested AVL (or VLMAX for the rs1=zero, rd!=zero form).
        if rs1 == XReg::ZERO {
            if rd == XReg::ZERO {
                em.inst(Inst::Load {
                    kind: LoadKind::Ld,
                    rd: XReg::T2,
                    rs1: XReg::GP,
                    offset: SpillLayout::VL,
                });
            } else {
                em.inst(chimera_obj::addi(XReg::T2, XReg::ZERO, vlmax as i32));
            }
        } else {
            self.capture_x(em, XReg::T2, rs1);
        }
        // t3 = VLMAX; t2 = min(t2, t3).
        em.inst(chimera_obj::addi(XReg::T3, XReg::ZERO, vlmax as i32));
        em.branch_to(BranchKind::Bltu, XReg::T2, XReg::T3, done.clone());
        em.inst(chimera_isa::mv(XReg::T2, XReg::T3));
        em.label(done);
        em.inst(Inst::Store {
            kind: StoreKind::Sd,
            rs1: XReg::GP,
            rs2: XReg::T2,
            offset: SpillLayout::VL,
        });
        em.inst(chimera_obj::addi(XReg::T3, XReg::ZERO, sew.bytes() as i32));
        em.inst(Inst::Store {
            kind: StoreKind::Sd,
            rs1: XReg::GP,
            rs2: XReg::T3,
            offset: SpillLayout::SEW,
        });
        em.inst(Inst::Store {
            kind: StoreKind::Sd,
            rs1: XReg::GP,
            rs2: XReg::T2,
            offset: SpillLayout::RESULT,
        });
        self.deliver_rd(em, rd);
    }

    /// Unit-stride vector load/store between memory at `rs1` and the
    /// simulated register file.
    fn vmem(&mut self, is_load: bool, eew: Eew, v: VReg, rs1: XReg, em: &mut BlockEmitter) {
        let (loop_l, done) = (self.fresh("vmem_loop"), self.fresh("vmem_done"));
        let esz = eew.bytes() as i32;
        // t2 = memory cursor.
        self.capture_x(em, XReg::T2, rs1);
        // t3 = remaining element count.
        em.inst(Inst::Load {
            kind: LoadKind::Ld,
            rd: XReg::T3,
            rs1: XReg::GP,
            offset: SpillLayout::VL,
        });
        // t4 = vreg cursor.
        em.inst(chimera_obj::addi(
            XReg::T4,
            XReg::GP,
            SpillLayout::vreg_off(v),
        ));
        em.label(loop_l.clone());
        em.branch_to(BranchKind::Beq, XReg::T3, XReg::ZERO, done.clone());
        let (lk, sk) = if esz == 8 {
            (LoadKind::Ld, StoreKind::Sd)
        } else {
            (LoadKind::Lw, StoreKind::Sw)
        };
        if is_load {
            em.inst(Inst::Load {
                kind: lk,
                rd: XReg::T5,
                rs1: XReg::T2,
                offset: 0,
            });
            em.inst(Inst::Store {
                kind: sk,
                rs1: XReg::T4,
                rs2: XReg::T5,
                offset: 0,
            });
        } else {
            em.inst(Inst::Load {
                kind: lk,
                rd: XReg::T5,
                rs1: XReg::T4,
                offset: 0,
            });
            em.inst(Inst::Store {
                kind: sk,
                rs1: XReg::T2,
                rs2: XReg::T5,
                offset: 0,
            });
        }
        em.inst(chimera_obj::addi(XReg::T2, XReg::T2, esz));
        em.inst(chimera_obj::addi(XReg::T4, XReg::T4, esz));
        em.inst(chimera_obj::addi(XReg::T3, XReg::T3, -1));
        em.jal_to(XReg::ZERO, loop_l);
        em.label(done);
    }

    fn varith(
        &mut self,
        op: VArithOp,
        vd: VReg,
        vs2: VReg,
        src: VSrc,
        em: &mut BlockEmitter,
        orig: &Inst,
    ) -> Result<(), Untranslatable> {
        let is_fp = op.is_fp();
        if is_fp && matches!(src, VSrc::I(_)) {
            return Err(Untranslatable(*orig));
        }
        let (l32, l_done) = (self.fresh("va32"), self.fresh("va_done"));
        let (loop64, d64) = (self.fresh("va_loop64"), self.fresh("va_d64"));
        let (loop32, d32) = (self.fresh("va_loop32"), self.fresh("va_d32"));

        // Stage the scalar operand (x/f/i) into RESULT.
        match src {
            VSrc::X(rs1) => {
                self.capture_x(em, XReg::T2, rs1);
                em.inst(Inst::Store {
                    kind: StoreKind::Sd,
                    rs1: XReg::GP,
                    rs2: XReg::T2,
                    offset: SpillLayout::RESULT,
                });
            }
            VSrc::F(frs1) => {
                // FP scratch sources read their program value from the
                // save slot.
                if F_SCRATCH.contains(&frs1) {
                    em.inst(Inst::FLoad {
                        width: FpWidth::D,
                        frd: F_SCRATCH[0],
                        rs1: XReg::GP,
                        offset: SpillLayout::f_slot(frs1),
                    });
                    em.inst(Inst::FStore {
                        width: FpWidth::D,
                        frs2: F_SCRATCH[0],
                        rs1: XReg::GP,
                        offset: SpillLayout::RESULT,
                    });
                } else {
                    em.inst(Inst::FStore {
                        width: FpWidth::D,
                        frs2: frs1,
                        rs1: XReg::GP,
                        offset: SpillLayout::RESULT,
                    });
                }
            }
            VSrc::I(imm) => {
                em.inst(chimera_obj::addi(XReg::T2, XReg::ZERO, imm as i32));
                em.inst(Inst::Store {
                    kind: StoreKind::Sd,
                    rs1: XReg::GP,
                    rs2: XReg::T2,
                    offset: SpillLayout::RESULT,
                });
            }
            VSrc::V(_) => {}
        }
        // Dispatch on the spilled SEW.
        em.inst(Inst::Load {
            kind: LoadKind::Ld,
            rd: XReg::T2,
            rs1: XReg::GP,
            offset: SpillLayout::SEW,
        });
        em.inst(chimera_obj::addi(XReg::T2, XReg::T2, -8));
        em.branch_to(BranchKind::Bne, XReg::T2, XReg::ZERO, l32.clone());
        self.varith_loop(op, vd, vs2, src, Eew::E64, em, (&loop64, &d64));
        em.jal_to(XReg::ZERO, l_done.clone());
        em.label(l32);
        self.varith_loop(op, vd, vs2, src, Eew::E32, em, (&loop32, &d32));
        em.label(l_done);
        Ok(())
    }

    /// One element-wise (or reduction) loop specialized to `eew`.
    ///
    /// Register roles inside the loop: `t2` = byte cursor, `t3` = end
    /// offset, `t4` = element address, `t5`/`t6` = int operands
    /// (`ft8`/`ft9`/`ft10` for FP); reductions accumulate in `t6`/`ft10`.
    #[allow(clippy::too_many_arguments)]
    fn varith_loop(
        &mut self,
        op: VArithOp,
        vd: VReg,
        vs2: VReg,
        src: VSrc,
        eew: Eew,
        em: &mut BlockEmitter,
        (loop_l, done): (&str, &str),
    ) {
        let esz = eew.bytes() as i32;
        let shift = if esz == 8 { 3 } else { 2 };
        let (lk, sk) = if esz == 8 {
            (LoadKind::Ld, StoreKind::Sd)
        } else {
            (LoadKind::Lw, StoreKind::Sw)
        };
        let fw = if esz == 8 { FpWidth::D } else { FpWidth::S };
        let is_red = op.is_reduction();
        let (ft_a, ft_b, ft_d) = (F_SCRATCH[0], F_SCRATCH[1], F_SCRATCH[2]);

        // t2 = 0; t3 = vl << shift.
        em.inst(chimera_obj::addi(XReg::T2, XReg::ZERO, 0));
        em.inst(Inst::Load {
            kind: LoadKind::Ld,
            rd: XReg::T3,
            rs1: XReg::GP,
            offset: SpillLayout::VL,
        });
        em.inst(Inst::OpImm {
            kind: OpImmKind::Slli,
            rd: XReg::T3,
            rs1: XReg::T3,
            imm: shift,
        });
        if is_red {
            // Accumulator starts at vs1[0] (the `.vs` scalar input).
            match src {
                VSrc::V(vs1) => {
                    if op.is_fp() {
                        em.inst(Inst::FLoad {
                            width: fw,
                            frd: ft_d,
                            rs1: XReg::GP,
                            offset: SpillLayout::vreg_off(vs1),
                        });
                    } else {
                        em.inst(Inst::Load {
                            kind: lk,
                            rd: XReg::T6,
                            rs1: XReg::GP,
                            offset: SpillLayout::vreg_off(vs1),
                        });
                    }
                }
                _ => {
                    if op.is_fp() {
                        // 0.0 accumulator.
                        em.inst(Inst::Store {
                            kind: StoreKind::Sd,
                            rs1: XReg::GP,
                            rs2: XReg::ZERO,
                            offset: SpillLayout::RESULT,
                        });
                        em.inst(Inst::FLoad {
                            width: fw,
                            frd: ft_d,
                            rs1: XReg::GP,
                            offset: SpillLayout::RESULT,
                        });
                    } else {
                        em.inst(chimera_obj::addi(XReg::T6, XReg::ZERO, 0));
                    }
                }
            }
        }
        em.label(loop_l.to_string());
        em.branch_to(BranchKind::Bge, XReg::T2, XReg::T3, done.to_string());
        // t4 = gp + cursor; element fields at static offsets from t4.
        em.inst(chimera_obj::add(XReg::T4, XReg::GP, XReg::T2));
        let a_off = SpillLayout::vreg_off(vs2);
        let d_off = SpillLayout::vreg_off(vd);

        if op.is_fp() {
            // ft_a = vs2 element.
            em.inst(Inst::FLoad {
                width: fw,
                frd: ft_a,
                rs1: XReg::T4,
                offset: a_off,
            });
            // ft_b = second operand.
            match src {
                VSrc::V(vs1) if !is_red => {
                    em.inst(Inst::FLoad {
                        width: fw,
                        frd: ft_b,
                        rs1: XReg::T4,
                        offset: SpillLayout::vreg_off(vs1),
                    });
                }
                VSrc::F(_) => {
                    em.inst(Inst::FLoad {
                        width: fw,
                        frd: ft_b,
                        rs1: XReg::GP,
                        offset: SpillLayout::RESULT,
                    });
                }
                _ => {}
            }
            match op {
                VArithOp::Vfadd | VArithOp::Vfsub | VArithOp::Vfmul | VArithOp::Vfdiv => {
                    let kind = match op {
                        VArithOp::Vfadd => FOpKind::Add,
                        VArithOp::Vfsub => FOpKind::Sub,
                        VArithOp::Vfmul => FOpKind::Mul,
                        _ => FOpKind::Div,
                    };
                    em.inst(Inst::FOp {
                        kind,
                        width: fw,
                        frd: ft_a,
                        frs1: ft_a,
                        frs2: ft_b,
                    });
                    em.inst(Inst::FStore {
                        width: fw,
                        frs2: ft_a,
                        rs1: XReg::T4,
                        offset: d_off,
                    });
                }
                VArithOp::Vfmacc => {
                    // vd += src * vs2.
                    em.inst(Inst::FLoad {
                        width: fw,
                        frd: ft_d,
                        rs1: XReg::T4,
                        offset: d_off,
                    });
                    em.inst(Inst::FMa {
                        kind: FMaKind::Madd,
                        width: fw,
                        frd: ft_d,
                        frs1: ft_b,
                        frs2: ft_a,
                        frs3: ft_d,
                    });
                    em.inst(Inst::FStore {
                        width: fw,
                        frs2: ft_d,
                        rs1: XReg::T4,
                        offset: d_off,
                    });
                }
                VArithOp::Vfredusum => {
                    em.inst(Inst::FOp {
                        kind: FOpKind::Add,
                        width: fw,
                        frd: ft_d,
                        frs1: ft_d,
                        frs2: ft_a,
                    });
                }
                _ => unreachable!("fp op list is closed"),
            }
        } else {
            // t5 = vs2 element (a); t6 = second operand (b) unless reduction.
            em.inst(Inst::Load {
                kind: lk,
                rd: XReg::T5,
                rs1: XReg::T4,
                offset: a_off,
            });
            if !is_red && op != VArithOp::Vmv {
                match src {
                    VSrc::V(vs1) => {
                        em.inst(Inst::Load {
                            kind: lk,
                            rd: XReg::T6,
                            rs1: XReg::T4,
                            offset: SpillLayout::vreg_off(vs1),
                        });
                    }
                    _ => {
                        em.inst(Inst::Load {
                            kind: LoadKind::Ld,
                            rd: XReg::T6,
                            rs1: XReg::GP,
                            offset: SpillLayout::RESULT,
                        });
                    }
                }
            }
            match op {
                VArithOp::Vredsum => {
                    em.inst(chimera_obj::add(XReg::T6, XReg::T6, XReg::T5));
                }
                VArithOp::Vmv => {
                    // Broadcast: element = staged operand (or vs1 element).
                    match src {
                        VSrc::V(vs1) => {
                            em.inst(Inst::Load {
                                kind: lk,
                                rd: XReg::T5,
                                rs1: XReg::T4,
                                offset: SpillLayout::vreg_off(vs1),
                            });
                        }
                        _ => {
                            em.inst(Inst::Load {
                                kind: LoadKind::Ld,
                                rd: XReg::T5,
                                rs1: XReg::GP,
                                offset: SpillLayout::RESULT,
                            });
                        }
                    }
                    em.inst(Inst::Store {
                        kind: sk,
                        rs1: XReg::T4,
                        rs2: XReg::T5,
                        offset: d_off,
                    });
                }
                VArithOp::Vmacc => {
                    em.inst(Inst::Op {
                        kind: OpKind::Mul,
                        rd: XReg::T5,
                        rs1: XReg::T5,
                        rs2: XReg::T6,
                    });
                    em.inst(Inst::Load {
                        kind: lk,
                        rd: XReg::T6,
                        rs1: XReg::T4,
                        offset: d_off,
                    });
                    em.inst(chimera_obj::add(XReg::T5, XReg::T5, XReg::T6));
                    em.inst(Inst::Store {
                        kind: sk,
                        rs1: XReg::T4,
                        rs2: XReg::T5,
                        offset: d_off,
                    });
                }
                VArithOp::Vmin | VArithOp::Vmax => {
                    // Branch-free via slt + masking is longer; use a branch.
                    let keep = self.fresh("vminmax");
                    let bk = if op == VArithOp::Vmin {
                        BranchKind::Blt
                    } else {
                        BranchKind::Bge
                    };
                    em.branch_to(bk, XReg::T5, XReg::T6, keep.clone());
                    em.inst(chimera_isa::mv(XReg::T5, XReg::T6));
                    em.label(keep);
                    em.inst(Inst::Store {
                        kind: sk,
                        rs1: XReg::T4,
                        rs2: XReg::T5,
                        offset: d_off,
                    });
                }
                _ => {
                    let kind = match op {
                        VArithOp::Vadd => OpKind::Add,
                        VArithOp::Vsub => OpKind::Sub,
                        VArithOp::Vand => OpKind::And,
                        VArithOp::Vor => OpKind::Or,
                        VArithOp::Vxor => OpKind::Xor,
                        VArithOp::Vmul => OpKind::Mul,
                        _ => unreachable!("int op list is closed"),
                    };
                    em.inst(Inst::Op {
                        kind,
                        rd: XReg::T5,
                        rs1: XReg::T5,
                        rs2: XReg::T6,
                    });
                    em.inst(Inst::Store {
                        kind: sk,
                        rs1: XReg::T4,
                        rs2: XReg::T5,
                        offset: d_off,
                    });
                }
            }
        }
        em.inst(chimera_obj::addi(XReg::T2, XReg::T2, esz));
        em.jal_to(XReg::ZERO, loop_l.to_string());
        em.label(done.to_string());
        if is_red {
            // Write the accumulator to vd[0].
            if op.is_fp() {
                em.inst(Inst::FStore {
                    width: fw,
                    frs2: ft_d,
                    rs1: XReg::GP,
                    offset: SpillLayout::vreg_off(vd),
                });
            } else {
                em.inst(Inst::Store {
                    kind: sk,
                    rs1: XReg::GP,
                    rs2: XReg::T6,
                    offset: SpillLayout::vreg_off(vd),
                });
            }
        }
    }

    fn vmv_x_s(&mut self, rd: XReg, vs2: VReg, em: &mut BlockEmitter) {
        let (l32, done) = (self.fresh("vmvxs32"), self.fresh("vmvxs_done"));
        em.inst(Inst::Load {
            kind: LoadKind::Ld,
            rd: XReg::T2,
            rs1: XReg::GP,
            offset: SpillLayout::SEW,
        });
        em.inst(chimera_obj::addi(XReg::T2, XReg::T2, -8));
        em.branch_to(BranchKind::Bne, XReg::T2, XReg::ZERO, l32.clone());
        em.inst(Inst::Load {
            kind: LoadKind::Ld,
            rd: XReg::T2,
            rs1: XReg::GP,
            offset: SpillLayout::vreg_off(vs2),
        });
        em.jal_to(XReg::ZERO, done.clone());
        em.label(l32);
        em.inst(Inst::Load {
            kind: LoadKind::Lw,
            rd: XReg::T2,
            rs1: XReg::GP,
            offset: SpillLayout::vreg_off(vs2),
        });
        em.label(done);
        em.inst(Inst::Store {
            kind: StoreKind::Sd,
            rs1: XReg::GP,
            rs2: XReg::T2,
            offset: SpillLayout::RESULT,
        });
        self.deliver_rd(em, rd);
    }

    fn vmv_s_x(&mut self, vd: VReg, rs1: XReg, em: &mut BlockEmitter) {
        let (l32, done) = (self.fresh("vmvsx32"), self.fresh("vmvsx_done"));
        self.capture_x(em, XReg::T2, rs1);
        em.inst(Inst::Load {
            kind: LoadKind::Ld,
            rd: XReg::T3,
            rs1: XReg::GP,
            offset: SpillLayout::SEW,
        });
        em.inst(chimera_obj::addi(XReg::T3, XReg::T3, -8));
        em.branch_to(BranchKind::Bne, XReg::T3, XReg::ZERO, l32.clone());
        em.inst(Inst::Store {
            kind: StoreKind::Sd,
            rs1: XReg::GP,
            rs2: XReg::T2,
            offset: SpillLayout::vreg_off(vd),
        });
        em.jal_to(XReg::ZERO, done.clone());
        em.label(l32);
        em.inst(Inst::Store {
            kind: StoreKind::Sw,
            rs1: XReg::GP,
            rs2: XReg::T2,
            offset: SpillLayout::vreg_off(vd),
        });
        em.label(done);
    }

    // ----- Zba/Zbb templates ------------------------------------------------

    fn zb_op(
        &mut self,
        kind: OpKind,
        rd: XReg,
        rs1: XReg,
        rs2: XReg,
        em: &mut BlockEmitter,
        orig: &Inst,
    ) -> Result<(), Untranslatable> {
        match kind {
            OpKind::Sh1add | OpKind::Sh2add | OpKind::Sh3add => {
                let n = match kind {
                    OpKind::Sh1add => 1,
                    OpKind::Sh2add => 2,
                    _ => 3,
                };
                // gp is the free temporary; re-materialized after.
                em.inst(Inst::OpImm {
                    kind: OpImmKind::Slli,
                    rd: XReg::GP,
                    rs1,
                    imm: n,
                });
                em.inst(chimera_obj::add(rd, XReg::GP, rs2));
                self.restore_gp(em);
                Ok(())
            }
            OpKind::AddUw => {
                em.inst(Inst::OpImm {
                    kind: OpImmKind::Slli,
                    rd: XReg::GP,
                    rs1,
                    imm: 32,
                });
                em.inst(Inst::OpImm {
                    kind: OpImmKind::Srli,
                    rd: XReg::GP,
                    rs1: XReg::GP,
                    imm: 32,
                });
                em.inst(chimera_obj::add(rd, XReg::GP, rs2));
                self.restore_gp(em);
                Ok(())
            }
            OpKind::Andn | OpKind::Orn | OpKind::Xnor => {
                em.inst(Inst::OpImm {
                    kind: OpImmKind::Xori,
                    rd: XReg::GP,
                    rs1: rs2,
                    imm: -1,
                });
                let k = match kind {
                    OpKind::Andn => OpKind::And,
                    OpKind::Orn => OpKind::Or,
                    _ => OpKind::Xor,
                };
                em.inst(Inst::Op {
                    kind: k,
                    rd,
                    rs1,
                    rs2: XReg::GP,
                });
                if kind == OpKind::Xnor {
                    // xnor = ~(a ^ b) = a ^ ~b ... already computed a ^ ~b.
                }
                self.restore_gp(em);
                Ok(())
            }
            OpKind::Min | OpKind::Minu | OpKind::Max | OpKind::Maxu => {
                let l1 = self.fresh("mm_take1");
                let l2 = self.fresh("mm_done");
                let bk = match kind {
                    OpKind::Min => BranchKind::Blt,
                    OpKind::Minu => BranchKind::Bltu,
                    OpKind::Max => BranchKind::Bge,
                    _ => BranchKind::Bgeu,
                };
                em.branch_to(bk, rs1, rs2, l1.clone());
                em.inst(chimera_isa::mv(XReg::GP, rs2));
                em.jal_to(XReg::ZERO, l2.clone());
                em.label(l1);
                em.inst(chimera_isa::mv(XReg::GP, rs1));
                em.label(l2);
                em.inst(chimera_isa::mv(rd, XReg::GP));
                self.restore_gp(em);
                Ok(())
            }
            OpKind::Rol | OpKind::Ror => {
                // Pick a scratch distinct from all operands.
                let s = pick_scratch(&[rs1, rs2, rd]);
                self.spill_gp(em);
                em.inst(Inst::Store {
                    kind: StoreKind::Sd,
                    rs1: XReg::GP,
                    rs2: s,
                    offset: SpillLayout::x_slot(s),
                });
                em.inst(Inst::OpImm {
                    kind: OpImmKind::Andi,
                    rd: s,
                    rs1: rs2,
                    imm: 63,
                });
                let (first, second) = if kind == OpKind::Rol {
                    (OpKind::Sll, OpKind::Srl)
                } else {
                    (OpKind::Srl, OpKind::Sll)
                };
                em.inst(Inst::Op {
                    kind: first,
                    rd: XReg::GP,
                    rs1,
                    rs2: s,
                });
                em.inst(Inst::Op {
                    kind: OpKind::Sub,
                    rd: s,
                    rs1: XReg::ZERO,
                    rs2: s,
                });
                em.inst(Inst::OpImm {
                    kind: OpImmKind::Andi,
                    rd: s,
                    rs1: s,
                    imm: 63,
                });
                em.inst(Inst::Op {
                    kind: second,
                    rd: s,
                    rs1,
                    rs2: s,
                });
                em.inst(Inst::Op {
                    kind: OpKind::Or,
                    rd: XReg::GP,
                    rs1: XReg::GP,
                    rs2: s,
                });
                // Restore the scratch, deliver rd, restore gp.
                let keep = XReg::GP; // gp holds the result
                self.spill_gp_keeping(em, keep, s, rd)?;
                Ok(())
            }
            _ => Err(Untranslatable(*orig)),
        }
    }

    /// Epilogue for templates whose result lives in `gp`: spill the result,
    /// restore the scratch, deliver to `rd`, restore `gp`.
    fn spill_gp_keeping(
        &mut self,
        em: &mut BlockEmitter,
        _result_in: XReg,
        scratch: XReg,
        rd: XReg,
    ) -> Result<(), Untranslatable> {
        // rd receives gp's value first (rd != scratch by construction).
        em.inst(chimera_isa::mv(rd, XReg::GP));
        self.spill_gp(em);
        em.inst(Inst::Load {
            kind: LoadKind::Ld,
            rd: scratch,
            rs1: XReg::GP,
            offset: SpillLayout::x_slot(scratch),
        });
        self.restore_gp(em);
        Ok(())
    }

    fn rori(&mut self, rd: XReg, rs1: XReg, imm: i32, em: &mut BlockEmitter) {
        let sh = imm & 63;
        if sh == 0 {
            em.inst(chimera_isa::mv(rd, rs1));
            return;
        }
        em.inst(Inst::OpImm {
            kind: OpImmKind::Srli,
            rd: XReg::GP,
            rs1,
            imm: sh,
        });
        em.inst(Inst::OpImm {
            kind: OpImmKind::Slli,
            rd,
            rs1,
            imm: 64 - sh,
        });
        em.inst(Inst::Op {
            kind: OpKind::Or,
            rd,
            rs1: rd,
            rs2: XReg::GP,
        });
        self.restore_gp(em);
    }

    fn zb_unary(
        &mut self,
        kind: UnaryKind,
        rd: XReg,
        rs1: XReg,
        em: &mut BlockEmitter,
    ) -> Result<(), Untranslatable> {
        match kind {
            UnaryKind::SextB | UnaryKind::SextH | UnaryKind::ZextH => {
                let (sh, arith) = match kind {
                    UnaryKind::SextB => (56, true),
                    UnaryKind::SextH => (48, true),
                    _ => (48, false),
                };
                em.inst(Inst::OpImm {
                    kind: OpImmKind::Slli,
                    rd,
                    rs1,
                    imm: sh,
                });
                em.inst(Inst::OpImm {
                    kind: if arith {
                        OpImmKind::Srai
                    } else {
                        OpImmKind::Srli
                    },
                    rd,
                    rs1: rd,
                    imm: sh,
                });
                Ok(())
            }
            UnaryKind::Clz => {
                let (loop_l, done) = (self.fresh("clz_loop"), self.fresh("clz_done"));
                // gp = working copy; rd = counter.
                em.inst(chimera_isa::mv(XReg::GP, rs1));
                em.inst(chimera_obj::addi(rd, XReg::ZERO, 64));
                em.branch_to(BranchKind::Beq, XReg::GP, XReg::ZERO, done.clone());
                em.inst(chimera_obj::addi(rd, XReg::ZERO, 0));
                em.label(loop_l.clone());
                em.branch_to(BranchKind::Blt, XReg::GP, XReg::ZERO, done.clone());
                em.inst(Inst::OpImm {
                    kind: OpImmKind::Slli,
                    rd: XReg::GP,
                    rs1: XReg::GP,
                    imm: 1,
                });
                em.inst(chimera_obj::addi(rd, rd, 1));
                em.jal_to(XReg::ZERO, loop_l);
                em.label(done);
                self.restore_gp(em);
                Ok(())
            }
            UnaryKind::Ctz | UnaryKind::Cpop => {
                let s = pick_scratch(&[rs1, rd]);
                let (loop_l, done) = (self.fresh("zb_loop"), self.fresh("zb_done"));
                self.spill_gp(em);
                em.inst(Inst::Store {
                    kind: StoreKind::Sd,
                    rs1: XReg::GP,
                    rs2: s,
                    offset: SpillLayout::x_slot(s),
                });
                em.inst(chimera_isa::mv(XReg::GP, rs1));
                if kind == UnaryKind::Ctz {
                    em.inst(chimera_obj::addi(rd, XReg::ZERO, 64));
                    em.branch_to(BranchKind::Beq, XReg::GP, XReg::ZERO, done.clone());
                    em.inst(chimera_obj::addi(rd, XReg::ZERO, 0));
                    em.label(loop_l.clone());
                    em.inst(Inst::OpImm {
                        kind: OpImmKind::Andi,
                        rd: s,
                        rs1: XReg::GP,
                        imm: 1,
                    });
                    em.branch_to(BranchKind::Bne, s, XReg::ZERO, done.clone());
                    em.inst(Inst::OpImm {
                        kind: OpImmKind::Srli,
                        rd: XReg::GP,
                        rs1: XReg::GP,
                        imm: 1,
                    });
                    em.inst(chimera_obj::addi(rd, rd, 1));
                    em.jal_to(XReg::ZERO, loop_l);
                } else {
                    em.inst(chimera_obj::addi(rd, XReg::ZERO, 0));
                    em.label(loop_l.clone());
                    em.branch_to(BranchKind::Beq, XReg::GP, XReg::ZERO, done.clone());
                    em.inst(Inst::OpImm {
                        kind: OpImmKind::Andi,
                        rd: s,
                        rs1: XReg::GP,
                        imm: 1,
                    });
                    em.inst(chimera_obj::add(rd, rd, s));
                    em.inst(Inst::OpImm {
                        kind: OpImmKind::Srli,
                        rd: XReg::GP,
                        rs1: XReg::GP,
                        imm: 1,
                    });
                    em.jal_to(XReg::ZERO, loop_l);
                }
                em.label(done);
                self.spill_gp(em);
                em.inst(Inst::Load {
                    kind: LoadKind::Ld,
                    rd: s,
                    rs1: XReg::GP,
                    offset: SpillLayout::x_slot(s),
                });
                self.restore_gp(em);
                Ok(())
            }
            UnaryKind::Rev8 => {
                let s = pick_scratch(&[rs1, rd]);
                let loop_l = self.fresh("rev_loop");
                let done = self.fresh("rev_done");
                self.spill_gp(em);
                em.inst(Inst::Store {
                    kind: StoreKind::Sd,
                    rs1: XReg::GP,
                    rs2: s,
                    offset: SpillLayout::x_slot(s),
                });
                // gp = working copy, rd = result, s = byte/counter temp.
                em.inst(chimera_isa::mv(XReg::GP, rs1));
                em.inst(chimera_obj::addi(rd, XReg::ZERO, 0));
                // Loop 8 times using s as counter packed with byte ops:
                // simpler shape: repeat 8 unrolled byte moves.
                let _ = (&loop_l, &done);
                for _ in 0..8 {
                    em.inst(Inst::OpImm {
                        kind: OpImmKind::Slli,
                        rd,
                        rs1: rd,
                        imm: 8,
                    });
                    em.inst(Inst::OpImm {
                        kind: OpImmKind::Andi,
                        rd: s,
                        rs1: XReg::GP,
                        imm: 0xff,
                    });
                    em.inst(Inst::Op {
                        kind: OpKind::Or,
                        rd,
                        rs1: rd,
                        rs2: s,
                    });
                    em.inst(Inst::OpImm {
                        kind: OpImmKind::Srli,
                        rd: XReg::GP,
                        rs1: XReg::GP,
                        imm: 8,
                    });
                }
                self.spill_gp(em);
                em.inst(Inst::Load {
                    kind: LoadKind::Ld,
                    rd: s,
                    rs1: XReg::GP,
                    offset: SpillLayout::x_slot(s),
                });
                self.restore_gp(em);
                Ok(())
            }
        }
    }
}

/// Picks a scratch register not aliasing any of `avoid`.
fn pick_scratch(avoid: &[XReg]) -> XReg {
    X_POOL
        .into_iter()
        .find(|r| !avoid.contains(r))
        .expect("pool larger than operand count")
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_isa::decode;

    #[test]
    fn sh1add_template_shape() {
        let mut t = Translator::new(0x9_0000, 0x8_0800);
        let mut em = BlockEmitter::new(0x100_0000);
        t.downgrade(
            &Inst::Op {
                kind: OpKind::Sh1add,
                rd: XReg::A0,
                rs1: XReg::A1,
                rs2: XReg::A2,
            },
            &mut em,
        )
        .unwrap();
        let bytes = em.finish();
        // slli gp, a1, 1; add a0, gp, a2; lui/addi gp restore.
        let w0 = decode(u32::from_le_bytes(bytes[0..4].try_into().unwrap()))
            .unwrap()
            .inst;
        assert_eq!(
            w0,
            Inst::OpImm {
                kind: OpImmKind::Slli,
                rd: XReg::GP,
                rs1: XReg::A1,
                imm: 1
            }
        );
    }

    #[test]
    fn untranslatable_for_lmul8() {
        let mut t = Translator::new(0x9_0000, 0x8_0800);
        let mut em = BlockEmitter::new(0x100_0000);
        let r = t.downgrade(
            &Inst::Vsetvli {
                rd: XReg::T0,
                rs1: XReg::A0,
                vtype: chimera_isa::VType {
                    sew: Eew::E64,
                    lmul: 8,
                    ta: true,
                    ma: true,
                },
            },
            &mut em,
        );
        assert!(r.is_err());
    }

    #[test]
    fn all_vector_templates_emit() {
        let mut t = Translator::new(0x9_0000, 0x8_0800);
        let v = VReg::of;
        let cases = vec![
            Inst::Vsetvli {
                rd: XReg::T0,
                rs1: XReg::A0,
                vtype: chimera_isa::VType {
                    sew: Eew::E64,
                    lmul: 1,
                    ta: true,
                    ma: true,
                },
            },
            Inst::VLoad {
                eew: Eew::E64,
                vd: v(1),
                rs1: XReg::A0,
            },
            Inst::VStore {
                eew: Eew::E32,
                vs3: v(2),
                rs1: XReg::A1,
            },
            Inst::VArith {
                op: VArithOp::Vadd,
                vd: v(3),
                vs2: v(1),
                src: VSrc::V(v(2)),
            },
            Inst::VArith {
                op: VArithOp::Vmacc,
                vd: v(3),
                vs2: v(1),
                src: VSrc::X(XReg::A3),
            },
            Inst::VArith {
                op: VArithOp::Vfmacc,
                vd: v(3),
                vs2: v(1),
                src: VSrc::V(v(2)),
            },
            Inst::VArith {
                op: VArithOp::Vredsum,
                vd: v(4),
                vs2: v(3),
                src: VSrc::V(v(0)),
            },
            Inst::VArith {
                op: VArithOp::Vmv,
                vd: v(5),
                vs2: v(0),
                src: VSrc::I(0),
            },
            Inst::VMvXS {
                rd: XReg::A0,
                vs2: v(4),
            },
            Inst::VMvSX {
                vd: v(6),
                rs1: XReg::A5,
            },
        ];
        for inst in cases {
            let mut em = BlockEmitter::new(0x100_0000);
            t.downgrade(&inst, &mut em)
                .unwrap_or_else(|e| panic!("{inst}: {e}"));
            let bytes = em.finish();
            assert!(bytes.len() >= 8, "{inst} produced too little code");
            // Every emitted word decodes to a base-profile instruction.
            for chunk in bytes.chunks(4) {
                let w = u32::from_le_bytes(chunk.try_into().unwrap());
                let d = decode(w).unwrap_or_else(|e| panic!("{inst}: emitted {w:#x}: {e}"));
                assert!(
                    d.inst
                        .runnable_on(chimera_isa::ExtSet::RV64GC.without(chimera_isa::Ext::B)),
                    "{inst} emitted non-base inst {}",
                    d.inst
                );
            }
        }
    }

    #[test]
    fn zb_templates_emit_base_only() {
        let mut t = Translator::new(0x9_0000, 0x8_0800);
        let cases = vec![
            Inst::Op {
                kind: OpKind::Sh3add,
                rd: XReg::A0,
                rs1: XReg::A0,
                rs2: XReg::A0,
            },
            Inst::Op {
                kind: OpKind::Andn,
                rd: XReg::T2,
                rs1: XReg::T2,
                rs2: XReg::T2,
            },
            Inst::Op {
                kind: OpKind::Min,
                rd: XReg::A1,
                rs1: XReg::A2,
                rs2: XReg::A3,
            },
            Inst::Op {
                kind: OpKind::Rol,
                rd: XReg::T3,
                rs1: XReg::T4,
                rs2: XReg::T5,
            },
            Inst::Op {
                kind: OpKind::AddUw,
                rd: XReg::S2,
                rs1: XReg::S3,
                rs2: XReg::S4,
            },
            Inst::OpImm {
                kind: OpImmKind::Rori,
                rd: XReg::A4,
                rs1: XReg::A5,
                imm: 17,
            },
            Inst::Unary {
                kind: UnaryKind::Clz,
                rd: XReg::A0,
                rs1: XReg::A0,
            },
            Inst::Unary {
                kind: UnaryKind::Ctz,
                rd: XReg::T2,
                rs1: XReg::T3,
            },
            Inst::Unary {
                kind: UnaryKind::Cpop,
                rd: XReg::A1,
                rs1: XReg::A1,
            },
            Inst::Unary {
                kind: UnaryKind::Rev8,
                rd: XReg::A2,
                rs1: XReg::A3,
            },
            Inst::Unary {
                kind: UnaryKind::SextB,
                rd: XReg::A2,
                rs1: XReg::A3,
            },
        ];
        let base = chimera_isa::ExtSet::RV64GC.without(chimera_isa::Ext::B);
        for inst in cases {
            let mut em = BlockEmitter::new(0x100_0000);
            t.downgrade(&inst, &mut em)
                .unwrap_or_else(|e| panic!("{inst}: {e}"));
            for chunk in em.finish().chunks(4) {
                let w = u32::from_le_bytes(chunk.try_into().unwrap());
                let d = decode(w).unwrap();
                assert!(d.inst.runnable_on(base), "{inst} emitted {}", d.inst);
            }
        }
    }
}
