//! A small position-aware code emitter for target-instruction blocks:
//! 4-byte instructions with local labels, emitted at a known base address.
//!
//! Target blocks are always emitted uncompressed — only *original* code
//! contains 2-byte encodings; keeping blocks 4-byte-aligned sidesteps any
//! interior-entry concern inside the target section itself (nothing ever
//! jumps into a target block except through its head).

use chimera_isa::{encode, BranchKind, Inst, XReg};
use std::collections::HashMap;

/// Emits a contiguous run of instructions at a base address.
#[derive(Debug)]
pub struct BlockEmitter {
    base: u64,
    bytes: Vec<u8>,
    labels: HashMap<String, u64>,
    fixups: Vec<Fixup>,
}

#[derive(Debug)]
struct Fixup {
    offset: usize,
    label: String,
    kind: FixKind,
}

#[derive(Debug)]
enum FixKind {
    Branch {
        kind: BranchKind,
        rs1: XReg,
        rs2: XReg,
    },
    Jal {
        rd: XReg,
    },
}

impl BlockEmitter {
    /// Creates an emitter whose first instruction lands at `base`.
    pub fn new(base: u64) -> Self {
        BlockEmitter {
            base,
            bytes: Vec::new(),
            labels: HashMap::new(),
            fixups: Vec::new(),
        }
    }

    /// The address of the next emitted instruction.
    pub fn addr(&self) -> u64 {
        self.base + self.bytes.len() as u64
    }

    /// Emits one instruction (must encode; immediates are internal and
    /// bounded by construction).
    pub fn inst(&mut self, i: Inst) -> &mut Self {
        let w = encode(&i).unwrap_or_else(|e| panic!("internal emit of {i}: {e}"));
        self.bytes.extend_from_slice(&w.to_le_bytes());
        self
    }

    /// Emits several instructions.
    pub fn insts(&mut self, is: impl IntoIterator<Item = Inst>) -> &mut Self {
        for i in is {
            self.inst(i);
        }
        self
    }

    /// Emits raw pre-encoded bytes (copied original instructions).
    pub fn raw(&mut self, bytes: &[u8]) -> &mut Self {
        self.bytes.extend_from_slice(bytes);
        self
    }

    /// Defines a local label here.
    pub fn label(&mut self, name: impl Into<String>) -> &mut Self {
        let name = name.into();
        let addr = self.addr();
        let prev = self.labels.insert(name.clone(), addr);
        assert!(prev.is_none(), "duplicate local label {name}");
        self
    }

    /// Emits a branch to a local label (forward or backward).
    pub fn branch_to(
        &mut self,
        kind: BranchKind,
        rs1: XReg,
        rs2: XReg,
        label: impl Into<String>,
    ) -> &mut Self {
        self.fixups.push(Fixup {
            offset: self.bytes.len(),
            label: label.into(),
            kind: FixKind::Branch { kind, rs1, rs2 },
        });
        self.bytes.extend_from_slice(&[0; 4]);
        self
    }

    /// Emits `jal rd, label` to a local label.
    pub fn jal_to(&mut self, rd: XReg, label: impl Into<String>) -> &mut Self {
        self.fixups.push(Fixup {
            offset: self.bytes.len(),
            label: label.into(),
            kind: FixKind::Jal { rd },
        });
        self.bytes.extend_from_slice(&[0; 4]);
        self
    }

    /// Materializes the 32-bit-range constant `value` into `rd`
    /// (`lui` + `addi`; covers all section addresses in our layouts).
    pub fn li32(&mut self, rd: XReg, value: i64) -> &mut Self {
        assert!(
            i32::try_from(value).is_ok(),
            "li32 constant out of range: {value:#x}"
        );
        let v = value as i32;
        let hi = v.wrapping_add(0x800) >> 12;
        let lo = v.wrapping_sub(hi << 12);
        if hi != 0 {
            self.inst(Inst::Lui { rd, imm20: hi });
            if lo != 0 {
                self.inst(Inst::OpImm {
                    kind: chimera_isa::OpImmKind::Addiw,
                    rd,
                    rs1: rd,
                    imm: lo,
                });
            }
        } else {
            self.inst(Inst::OpImm {
                kind: chimera_isa::OpImmKind::Addi,
                rd,
                rs1: XReg::ZERO,
                imm: lo,
            });
        }
        self
    }

    /// Resolves fixups and returns the encoded bytes.
    pub fn finish(mut self) -> Vec<u8> {
        for f in &self.fixups {
            let at = self.base + f.offset as u64;
            let target = *self
                .labels
                .get(&f.label)
                .unwrap_or_else(|| panic!("undefined local label {}", f.label));
            let rel = target as i64 - at as i64;
            let word = match f.kind {
                FixKind::Branch { kind, rs1, rs2 } => encode(&Inst::Branch {
                    kind,
                    rs1,
                    rs2,
                    offset: i32::try_from(rel).expect("local branch in range"),
                })
                .expect("local branch encodes"),
                FixKind::Jal { rd } => encode(&Inst::Jal {
                    rd,
                    offset: i32::try_from(rel).expect("local jal in range"),
                })
                .expect("local jal encodes"),
            };
            self.bytes[f.offset..f.offset + 4].copy_from_slice(&word.to_le_bytes());
        }
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_isa::{decode, OpImmKind};

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut e = BlockEmitter::new(0x1000);
        e.label("top")
            .inst(Inst::OpImm {
                kind: OpImmKind::Addi,
                rd: XReg::T0,
                rs1: XReg::T0,
                imm: -1,
            })
            .branch_to(BranchKind::Bne, XReg::T0, XReg::ZERO, "top")
            .jal_to(XReg::ZERO, "end")
            .inst(chimera_isa::nop())
            .label("end");
        let bytes = e.finish();
        // The bne at offset 4 targets offset 0: rel = -4.
        let w = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        let Inst::Branch { offset, .. } = decode(w).unwrap().inst else {
            panic!()
        };
        assert_eq!(offset, -4);
        // The jal at offset 8 targets offset 16: rel = +8.
        let w = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        let Inst::Jal { offset, .. } = decode(w).unwrap().inst else {
            panic!()
        };
        assert_eq!(offset, 8);
    }

    #[test]
    fn li32_shapes() {
        let mut e = BlockEmitter::new(0);
        e.li32(XReg::T0, 42);
        assert_eq!(e.finish().len(), 4);
        let mut e = BlockEmitter::new(0);
        e.li32(XReg::T0, 0x12345678);
        assert_eq!(e.finish().len(), 8);
    }

    #[test]
    #[should_panic(expected = "duplicate local label")]
    fn duplicate_label_panics() {
        let mut e = BlockEmitter::new(0);
        e.label("x").label("x");
    }
}
