//! The SMILE trampoline (Secure Multiple-Instruction Long-distancE
//! trampoline) — §4.2 of the paper.
//!
//! A SMILE trampoline is RISC-V's vanilla two-instruction long-distance
//! trampoline
//!
//! ```text
//!     auipc gp, hi20        # gp = tramp + (hi20 << 12)
//!     jalr  gp, lo12(gp)    # jump to gp + lo12; gp = return address
//! ```
//!
//! hardened so that **any** partial execution raises a deterministic fault:
//!
//! * **P1** (entry at the `jalr`): the unmodified `gp` points into the
//!   non-executable data segment (psABI guarantee), so the jump lands there
//!   and the fetch raises a segmentation fault.
//! * **P2** (entry 2 bytes into the `auipc`, possible when the overwritten
//!   original code contained 2-byte instructions): the trampoline constrains
//!   `hi20` bits 4..9 — i.e. *instruction* bits 16..21 — to `11111`, so the
//!   parcel fetched at P2 carries the `xxx11111` prefix RISC-V reserves for
//!   ≥48-bit encodings: an illegal-instruction fault no matter what bytes
//!   follow.
//! * **P3** (entry 2 bytes into the `jalr`): the halfword there is
//!   `rs1[4:1] | lo12 << 4` with low bits `0b…01` (because `rs1 = gp = x3`),
//!   i.e. a C1-quadrant compressed instruction whose identity is chosen by
//!   `lo12`. The trampoline only uses `lo12` values whose halfword falls in
//!   an RVC-**reserved** row (e.g. `c.addiw` with `rd = x0`, `c.lui` with
//!   `nzimm = 0`) — an illegal-instruction fault.
//!
//! Rather than hard-coding the magic `lo12` values, this module *derives*
//! them from the ISA decoder ([`valid_p3_lo12`]) and re-verifies every
//! placed trampoline ([`verify_deterministic`]) — turning the paper's
//! Claim 1 into an executable check.

use chimera_isa::{decode, decode_compressed, encode, Inst, XReg};
use std::sync::OnceLock;

/// Which interior entry points exist for a given patch site (determined by
/// which byte offsets were instruction starts in the original binary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SmileConstraints {
    /// An original instruction started at trampoline offset +2 (inside the
    /// `auipc`).
    pub p2: bool,
    /// An original instruction started at trampoline offset +6 (inside the
    /// `jalr`).
    pub p3: bool,
}

impl SmileConstraints {
    /// No interior entry points: the plain SMILE form.
    pub const NONE: SmileConstraints = SmileConstraints {
        p2: false,
        p3: false,
    };
}

/// An encoded SMILE trampoline: 8 bytes of machine code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Smile {
    /// The `auipc gp, hi20` word.
    pub auipc: u32,
    /// The `jalr gp, lo12(gp)` word.
    pub jalr: u32,
}

impl Smile {
    /// The 8 trampoline bytes, little-endian.
    pub fn bytes(&self) -> [u8; 8] {
        let mut out = [0u8; 8];
        out[..4].copy_from_slice(&self.auipc.to_le_bytes());
        out[4..].copy_from_slice(&self.jalr.to_le_bytes());
        out
    }
}

/// Errors from SMILE encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmileError {
    /// The target is outside the trampoline's reach under the active
    /// constraints (caller should relocate the target block — see
    /// [`next_reachable_target`]).
    Unreachable {
        /// The requested target.
        target: u64,
    },
    /// Self-check failed: a constructed trampoline had a legal interior
    /// decode (would violate Claim 1). Indicates a bug, surfaced loudly.
    VerificationFailed {
        /// Offset of the interior entry whose decode succeeded.
        offset: u64,
    },
}

impl core::fmt::Display for SmileError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SmileError::Unreachable { target } => {
                write!(f, "target {target:#x} unreachable under SMILE constraints")
            }
            SmileError::VerificationFailed { offset } => {
                write!(f, "SMILE verification failed at interior offset {offset}")
            }
        }
    }
}

impl std::error::Error for SmileError {}

/// The `lo12` values (as unsigned 12-bit field patterns) whose P3 halfword
/// decodes as an illegal compressed instruction, derived from the decoder.
///
/// The halfword at P3 is `(lo12 << 4) | gp_rs1_low_bits` where the low four
/// bits come from `rs1 = gp`: instruction bits 16..20 of
/// `jalr gp, lo12(gp)` are `rs1[1]`, `rs1[2]`, `rs1[3]`, `rs1[4]` =
/// `1, 0, 0, 0`.
pub fn valid_p3_lo12() -> &'static [u16] {
    static CACHE: OnceLock<Vec<u16>> = OnceLock::new();
    CACHE.get_or_init(|| {
        let mut ok = Vec::new();
        for lo12 in 0u16..4096 {
            // Jump targets must stay 2-byte aligned (jalr silently clears
            // bit 0, which would skew the landing address), so only even
            // offsets are usable.
            if lo12 % 2 != 0 {
                continue;
            }
            let halfword = p3_halfword(lo12);
            // Must be a 16-bit encoding (low bits != 11) that fails to
            // decode: a guaranteed illegal instruction fault.
            if halfword & 0b11 != 0b11 && decode_compressed(halfword).is_err() {
                ok.push(lo12);
            }
        }
        assert!(
            !ok.is_empty(),
            "RVC reserved space must provide P3-safe lo12 values"
        );
        ok
    })
}

/// The halfword fetched at P3 for a given `lo12` field value.
fn p3_halfword(lo12: u16) -> u16 {
    // jalr gp, lo12(gp): bits 16..32 are rs1[1..5] then imm[0..12].
    // rs1 = x3 = 0b00011: rs1[1..5] = 1,0,0,0.
    0b0001 | (lo12 << 4)
}

/// Splits a pc-relative offset into (hi20, lo12) for auipc+jalr.
fn split_hi_lo(offset: i64) -> Option<(i32, i32)> {
    let hi = (offset + 0x800) >> 12;
    let lo = offset - (hi << 12);
    if (-(1 << 19)..(1 << 19)).contains(&hi) {
        Some((hi as i32, lo as i32))
    } else {
        None
    }
}

/// Builds a SMILE trampoline at `tramp_addr` jumping to `target`, honouring
/// the interior-entry constraints, and verifies Claim 1 on the result.
pub fn encode_smile(
    tramp_addr: u64,
    target: u64,
    constraints: SmileConstraints,
) -> Result<Smile, SmileError> {
    let offset = target.wrapping_sub(tramp_addr) as i64;
    let unreachable = SmileError::Unreachable { target };

    let (hi20, lo12) = if constraints.p3 {
        // lo12 is restricted to the decoder-derived safe set: solve for a
        // pair (hi20, lo12) with tramp + (hi20 << 12) + lo12 == target.
        let mut found = None;
        for &lo_field in valid_p3_lo12() {
            let lo = sign_extend_12(lo_field);
            let rem = offset - lo as i64;
            if rem % 4096 != 0 {
                continue;
            }
            let hi = rem >> 12;
            if !(-(1 << 19)..(1 << 19)).contains(&hi) {
                continue;
            }
            if constraints.p2 && !p2_ok(hi as i32) {
                continue;
            }
            found = Some((hi as i32, lo));
            break;
        }
        found.ok_or(unreachable)?
    } else {
        let (hi, lo) = split_hi_lo(offset).ok_or(unreachable)?;
        if constraints.p2 && !p2_ok(hi) {
            return Err(unreachable);
        }
        (hi, lo)
    };

    let auipc = encode(&Inst::Auipc {
        rd: XReg::GP,
        imm20: hi20,
    })
    .map_err(|_| unreachable)?;
    let jalr = encode(&Inst::Jalr {
        rd: XReg::GP,
        rs1: XReg::GP,
        offset: lo12,
    })
    .expect("12-bit lo12 always encodes");

    let s = Smile { auipc, jalr };
    verify_deterministic(&s, constraints)?;
    Ok(s)
}

/// Whether `hi20` satisfies the P2 constraint: instruction bits 16..21 of
/// the auipc — i.e. `hi20` bits 4..9 — are `11111`, making the P2 parcel a
/// reserved ≥48-bit-encoding prefix.
fn p2_ok(hi20: i32) -> bool {
    (hi20 >> 4) & 0x1f == 0x1f
}

fn sign_extend_12(v: u16) -> i32 {
    ((v as i32) << 20) >> 20
}

/// The smallest target address `>= min_target` reachable from a trampoline
/// at `tramp_addr` under `constraints`. The target-section allocator uses
/// this to place blocks at constraint-satisfying addresses.
///
/// Reachable targets have the form `tramp + (hi20 << 12) + lo12` where
/// `hi20` ranges over signed 20-bit values (restricted to `hi20[4:9] =
/// 11111` under P2) and `lo12` over [-2048, 2047] (restricted to the
/// decoder-derived safe set under P3). Because each `lo12` window spans
/// less than 4 KiB, windows for increasing `hi20` are disjoint and ordered,
/// so enumerating `hi20` ascending yields the minimal target directly.
pub fn next_reachable_target(
    tramp_addr: u64,
    min_target: u64,
    constraints: SmileConstraints,
) -> Option<u64> {
    // The sorted lo12 candidates (sign-extended byte offsets).
    let lo_values: Vec<i32> = if constraints.p3 {
        let mut v: Vec<i32> = valid_p3_lo12().iter().map(|&f| sign_extend_12(f)).collect();
        v.sort_unstable();
        v
    } else {
        Vec::new() // Dense: handled via the full ±2048 range below.
    };
    let lo_max: i64 = if constraints.p3 {
        *lo_values.last().expect("non-empty safe set") as i64
    } else {
        2047
    };

    let m = min_target as i64 - tramp_addr as i64;
    let mut hi: i64 = (m - lo_max).div_euclid(4096).max(-(1 << 19));
    for _ in 0..(1 << 12) {
        if hi >= 1 << 19 {
            return None;
        }
        if constraints.p2 && !p2_ok(hi as i32) {
            // Jump to the next hi with bits 4..9 == 11111: those are the
            // values ≡ 496..511 (mod 512).
            let base = hi.div_euclid(512) * 512;
            hi = if hi - base <= 511 && hi - base >= 496 {
                hi // Unreachable arm (p2_ok would have been true); kept for clarity.
            } else if hi - base < 496 {
                base + 496
            } else {
                base + 512 + 496
            };
            continue;
        }
        let window_base = (hi << 12) + tramp_addr as i64;
        if constraints.p3 {
            for &lo in &lo_values {
                let t = window_base + lo as i64;
                if t >= min_target as i64 {
                    return Some(t as u64);
                }
            }
        } else {
            let t = (window_base - 2048).max(min_target as i64);
            if t <= window_base + 2047 {
                return Some(t as u64);
            }
        }
        hi += 1;
    }
    None
}

/// Checks Claim 1 mechanically on an encoded trampoline: every interior
/// entry point decodes to an illegal instruction or jumps through the
/// unmodified `gp` (the P1 case, safe by the psABI/N-X argument).
pub fn verify_deterministic(s: &Smile, constraints: SmileConstraints) -> Result<(), SmileError> {
    // P1: the jalr must jump through gp with gp also as the link register,
    // so the fault address is recoverable (gp - 4) and the jump target is
    // the data segment. Verify the register fields.
    let d = decode(s.jalr).map_err(|_| SmileError::VerificationFailed { offset: 4 })?;
    match d.inst {
        Inst::Jalr { rd, rs1, .. } if rd == XReg::GP && rs1 == XReg::GP => {}
        _ => return Err(SmileError::VerificationFailed { offset: 4 }),
    }
    if constraints.p2 {
        // The 32-bit window at +2 is auipc[16..32] ++ jalr[0..16]; it must
        // be illegal for *any* continuation, which the reserved-long
        // prefix guarantees. Check the actual window too.
        let window = (s.auipc >> 16) | (s.jalr << 16);
        if window & 0b11 == 0b11 {
            if decode(window).is_ok() {
                return Err(SmileError::VerificationFailed { offset: 2 });
            }
        } else if decode_compressed(window as u16).is_ok() {
            return Err(SmileError::VerificationFailed { offset: 2 });
        }
    }
    if constraints.p3 {
        let halfword = (s.jalr >> 16) as u16;
        if halfword & 0b11 == 0b11 || decode_compressed(halfword).is_ok() {
            return Err(SmileError::VerificationFailed { offset: 6 });
        }
    }
    Ok(())
}

/// A vanilla (unhardened) long-distance trampoline through a scratch
/// register: `auipc rd, hi; jalr zero, lo(rd)`. Used for the *exit* jump of
/// target-instruction blocks, where a dead register is available (§4.2,
/// Challenge 2).
pub fn encode_exit_trampoline(tramp_addr: u64, target: u64, scratch: XReg) -> Option<[u8; 8]> {
    let offset = target.wrapping_sub(tramp_addr) as i64;
    let (hi, lo) = split_hi_lo(offset)?;
    let auipc = encode(&Inst::Auipc {
        rd: scratch,
        imm20: hi,
    })
    .ok()?;
    let jalr = encode(&Inst::Jalr {
        rd: XReg::ZERO,
        rs1: scratch,
        offset: lo,
    })
    .ok()?;
    let mut out = [0u8; 8];
    out[..4].copy_from_slice(&auipc.to_le_bytes());
    out[4..].copy_from_slice(&jalr.to_le_bytes());
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p3_safe_set_is_nonempty_and_verified() {
        let set = valid_p3_lo12();
        assert!(set.len() > 10, "expect a few dozen reserved encodings");
        for &lo in set {
            let hw = p3_halfword(lo);
            assert_ne!(hw & 0b11, 0b11);
            assert!(decode_compressed(hw).is_err());
        }
    }

    #[test]
    fn plain_smile_reaches_far_targets() {
        let tramp = 0x1_0000u64;
        let target = 0x180_0000u64; // ~24 MiB away
        let s = encode_smile(tramp, target, SmileConstraints::NONE).unwrap();
        // Simulate: auipc then jalr.
        let d = decode(s.auipc).unwrap();
        let Inst::Auipc { rd, imm20 } = d.inst else {
            panic!()
        };
        assert_eq!(rd, XReg::GP);
        let gp = tramp.wrapping_add(((imm20 as i64) << 12) as u64);
        let Inst::Jalr { offset, .. } = decode(s.jalr).unwrap().inst else {
            panic!()
        };
        assert_eq!(gp.wrapping_add(offset as i64 as u64), target);
    }

    #[test]
    fn p2_constraint_sets_prefix_bits() {
        let tramp = 0x1_0000u64;
        let c = SmileConstraints {
            p2: true,
            p3: false,
        };
        let target = next_reachable_target(tramp, 0x100_0000, c).unwrap();
        let s = encode_smile(tramp, target, c).unwrap();
        // Instruction bits 16..21 must be 11111.
        assert_eq!((s.auipc >> 16) & 0x1f, 0x1f);
        // And the P2 parcel must look like a reserved long encoding.
        let p2_parcel = (s.auipc >> 16) as u16;
        assert_eq!(p2_parcel & 0b11111, 0b11111);
    }

    #[test]
    fn p3_constraint_yields_reserved_halfword() {
        let tramp = 0x1_0002u64;
        let c = SmileConstraints {
            p2: false,
            p3: true,
        };
        let target = next_reachable_target(tramp, 0x200_0000, c).unwrap();
        let s = encode_smile(tramp, target, c).unwrap();
        let hw = (s.jalr >> 16) as u16;
        assert!(decode_compressed(hw).is_err());
        // Round trip: the jump still lands on target.
        let Inst::Auipc { imm20, .. } = decode(s.auipc).unwrap().inst else {
            panic!()
        };
        let Inst::Jalr { offset, .. } = decode(s.jalr).unwrap().inst else {
            panic!()
        };
        let gp = tramp.wrapping_add(((imm20 as i64) << 12) as u64);
        assert_eq!(gp.wrapping_add(offset as i64 as u64), target);
    }

    #[test]
    fn both_constraints_together() {
        let tramp = 0x4_5676u64; // Odd-ish placement.
        let c = SmileConstraints { p2: true, p3: true };
        let target = next_reachable_target(tramp, 0x300_0000, c).unwrap();
        let s = encode_smile(tramp, target, c).unwrap();
        verify_deterministic(&s, c).unwrap();
        let Inst::Auipc { imm20, .. } = decode(s.auipc).unwrap().inst else {
            panic!()
        };
        let Inst::Jalr { offset, .. } = decode(s.jalr).unwrap().inst else {
            panic!()
        };
        let gp = tramp.wrapping_add(((imm20 as i64) << 12) as u64);
        assert_eq!(gp.wrapping_add(offset as i64 as u64), target);
    }

    #[test]
    fn unreachable_when_too_far() {
        let tramp = 0x1_0000u64;
        let too_far = tramp + (3u64 << 31);
        assert!(matches!(
            encode_smile(tramp, too_far, SmileConstraints::NONE),
            Err(SmileError::Unreachable { .. })
        ));
    }

    #[test]
    fn next_reachable_is_reachable_and_minimal_scan() {
        for &tramp in &[0x1_0000u64, 0x1_0002, 0x2_3456, 0x7_fffe] {
            for c in [
                SmileConstraints::NONE,
                SmileConstraints {
                    p2: true,
                    p3: false,
                },
                SmileConstraints {
                    p2: false,
                    p3: true,
                },
                SmileConstraints { p2: true, p3: true },
            ] {
                let min = 0x500_0000u64;
                let t = next_reachable_target(tramp, min, c).unwrap();
                assert!(t >= min);
                assert!(t - min < 4 << 20, "padding should be bounded");
                encode_smile(tramp, t, c)
                    .unwrap_or_else(|e| panic!("tramp {tramp:#x} constraints {c:?}: {e}"));
            }
        }
    }

    #[test]
    fn exit_trampoline_roundtrip() {
        let bytes = encode_exit_trampoline(0x800_0000, 0x1_0100, XReg::T0).unwrap();
        let auipc = u32::from_le_bytes(bytes[..4].try_into().unwrap());
        let jalr = u32::from_le_bytes(bytes[4..].try_into().unwrap());
        let Inst::Auipc { rd, imm20 } = decode(auipc).unwrap().inst else {
            panic!()
        };
        assert_eq!(rd, XReg::T0);
        let Inst::Jalr { rd, rs1, offset } = decode(jalr).unwrap().inst else {
            panic!()
        };
        assert_eq!(rd, XReg::ZERO);
        assert_eq!(rs1, XReg::T0);
        let base = 0x800_0000u64.wrapping_add(((imm20 as i64) << 12) as u64);
        assert_eq!(base.wrapping_add(offset as i64 as u64), 0x1_0100);
    }
}

/// The Figure-5 SMILE variant for ISAs/ABIs without a `gp`-like register:
/// a general register already holding a *data pointer* pivots the jump.
///
/// The construction replaces a static memory-access pair
///
/// ```text
///     lui  rX, %hi(target)      # rX = data address (upper bits)
///     lw   rY, %lo(target)(rX)  # load through rX
/// ```
///
/// with `auipc rX, hi; jalr rX, lo(rX)`. In a normal execution the pair is
/// re-materialized inside the target block, so `rX`/`rY` end up with their
/// original values. An erroneous jump onto the `jalr` executes it with the
/// *unmodified* `rX` — which, on every path that could legally reach the
/// original `lw`, holds a data-segment address (the original instruction
/// dereferenced it) — so the jump lands in non-executable memory: the same
/// deterministic segmentation fault as the `gp` form.
pub mod general_reg {
    use super::{sign_extend_12, SmileError};
    use chimera_isa::{decode, encode, Inst, XReg};

    /// An encoded general-register SMILE trampoline.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct GeneralSmile {
        /// `auipc rX, hi20`.
        pub auipc: u32,
        /// `jalr rX, lo12(rX)`.
        pub jalr: u32,
        /// The pivot register.
        pub reg: XReg,
    }

    impl GeneralSmile {
        /// The 8 trampoline bytes.
        pub fn bytes(&self) -> [u8; 8] {
            let mut out = [0u8; 8];
            out[..4].copy_from_slice(&self.auipc.to_le_bytes());
            out[4..].copy_from_slice(&self.jalr.to_le_bytes());
            out
        }
    }

    /// Recognizes the replaceable pair at `addr`: `lui rX, hi` followed by
    /// a load through `rX`. Returns the pivot register.
    pub fn recognize_pair(first: &Inst, second: &Inst) -> Option<XReg> {
        let Inst::Lui { rd, .. } = *first else {
            return None;
        };
        match *second {
            Inst::Load { rs1, .. } if rs1 == rd => Some(rd),
            Inst::FLoad { rs1, .. } if rs1 == rd => Some(rd),
            _ => None,
        }
    }

    /// Builds the trampoline at `tramp_addr` jumping to `target` through
    /// `reg`.
    pub fn encode_general_smile(
        tramp_addr: u64,
        target: u64,
        reg: XReg,
    ) -> Result<GeneralSmile, SmileError> {
        let offset = target.wrapping_sub(tramp_addr) as i64;
        let hi = (offset + 0x800) >> 12;
        let lo = (offset - (hi << 12)) as i32;
        if !(-(1i64 << 19)..(1 << 19)).contains(&hi) {
            return Err(SmileError::Unreachable { target });
        }
        let auipc = encode(&Inst::Auipc {
            rd: reg,
            imm20: hi as i32,
        })
        .map_err(|_| SmileError::Unreachable { target })?;
        let jalr = encode(&Inst::Jalr {
            rd: reg,
            rs1: reg,
            offset: lo,
        })
        .expect("lo12 in range");
        let s = GeneralSmile { auipc, jalr, reg };
        verify_general(&s)?;
        Ok(s)
    }

    /// Verifies the P1 property: the second instruction is a `jalr`
    /// pivoting on the same register it links (so the fault handler can
    /// recover the fault address as `reg - 4`, like the gp form).
    pub fn verify_general(s: &GeneralSmile) -> Result<(), SmileError> {
        let d = decode(s.jalr).map_err(|_| SmileError::VerificationFailed { offset: 4 })?;
        match d.inst {
            Inst::Jalr { rd, rs1, offset } if rd == s.reg && rs1 == s.reg => {
                let _ = sign_extend_12(offset as u16 & 0xfff);
                Ok(())
            }
            _ => Err(SmileError::VerificationFailed { offset: 4 }),
        }
    }
}

#[cfg(test)]
mod general_reg_tests {
    use super::general_reg::*;
    use chimera_isa::{ExtSet, Inst, XReg};
    use chimera_obj::{assemble, AsmOptions};

    #[test]
    fn pair_recognition() {
        let lui = Inst::Lui {
            rd: XReg::A0,
            imm20: 0x20,
        };
        let lw = Inst::Load {
            kind: chimera_isa::LoadKind::Lw,
            rd: XReg::A1,
            rs1: XReg::A0,
            offset: 0x10,
        };
        assert_eq!(recognize_pair(&lui, &lw), Some(XReg::A0));
        // Load through a different register: not a pair.
        let other = Inst::Load {
            kind: chimera_isa::LoadKind::Lw,
            rd: XReg::A1,
            rs1: XReg::A2,
            offset: 0,
        };
        assert_eq!(recognize_pair(&lui, &other), None);
    }

    #[test]
    fn partial_execution_faults_through_data_pointer() {
        // Build a program where a lui/lw pair is replaced by a
        // general-register SMILE; an erroneous jump onto the jalr with the
        // register holding a data address must raise a fetch fault.
        let bin = assemble(
            "
            .data
            value: .dword 77
            .text
            _start:
                lui a0, 0x20         # will be patched: data-high materialize
                lw a1, 0(a0)         # will be patched
                li a7, 93
                ecall
            ",
            AsmOptions::default(),
        )
        .unwrap();
        let mut patched = bin.clone();
        let data = bin.section(".data").unwrap().addr;
        // Pretend the target block lives right after text (content
        // irrelevant for this fault test).
        let target = bin.section(".text").unwrap().end();
        let s = encode_general_smile(bin.entry, target, XReg::A0).unwrap();
        assert!(patched.write(bin.entry, &s.bytes()));

        // Erroneous jump to the jalr with a0 = data pointer (as any path
        // reaching the original lw would have).
        let (mut cpu, mut mem) = chimera_emu::boot(&patched, ExtSet::RV64GCV);
        cpu.hart.pc = bin.entry + 4;
        cpu.hart.set_x(XReg::A0, data);
        // The jalr itself retires; the *fetch* at the data-segment target
        // is what faults (exactly like the gp form).
        cpu.step(&mut mem).expect("the jalr executes");
        let err = cpu.step(&mut mem).unwrap_err();
        match err {
            chimera_emu::Trap::Mem { fault, .. } => {
                assert_eq!(fault.access, chimera_emu::Access::Fetch);
                assert!(fault.mapped, "lands in the mapped data segment");
                // Fault address recoverable: a0 - 4 = the jalr's address + 4 - 4.
                assert_eq!(cpu.hart.get_x(XReg::A0), bin.entry + 8);
            }
            other => panic!("expected fetch fault, got {other:?}"),
        }
    }
}
