//! The pass-pipeline driver: runs a [`RewriteEngine`]'s six stages over
//! one binary, emitting a [`TraceEvent::RewritePassDone`] per stage and
//! the `rewrite.*` counters at the end.
//!
//! Determinism contract: for a fixed engine + input, the output —
//! binary bytes, [`FaultTable`](crate::FaultTable), and
//! [`RewriteStats`](crate::RewriteStats) — is bit-identical for every
//! `workers` value. Layout is assigned in the sequential plan stage;
//! the parallel stages (scan measurement, transform) compute pure
//! per-unit functions reassembled in unit order.

use crate::chbp::{RewriteError, Rewritten};
use crate::engine::{EngineState, RewriteEngine};
use crate::regen::RegenInfo;
use chimera_obj::Binary;
use chimera_trace::{RewritePass, TraceEvent, Tracer};

/// What a pipeline run produced.
pub struct EngineResult {
    /// The rewritten binary, fault table and statistics.
    pub rewritten: Rewritten,
    /// Regeneration metadata (regeneration engines only).
    pub regen: Option<RegenInfo>,
}

/// The default transform worker count: the machine's parallelism, capped
/// at 8 (the gate's measured scaling point; rewriting saturates quickly
/// beyond that).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Runs `engine`'s six stages over `binary` with `workers` transform
/// threads (`<= 1` runs fully sequentially — same output).
pub fn run(
    engine: &dyn RewriteEngine,
    binary: &Binary,
    workers: usize,
    tracer: &Tracer,
) -> Result<EngineResult, RewriteError> {
    let mut st = EngineState::new(binary, workers);
    let mut timer = PassTimer::new(tracer);

    engine.scan(&mut st)?;
    timer.done(RewritePass::Scan, st.pass_items);
    engine.plan(&mut st)?;
    timer.done(RewritePass::Plan, st.pass_items);
    engine.transform(&mut st)?;
    timer.done(RewritePass::Transform, st.pass_items);
    engine.place(&mut st)?;
    timer.done(RewritePass::Place, st.pass_items);
    engine.link(&mut st)?;
    timer.done(RewritePass::Link, st.pass_items);
    engine.verify(&mut st)?;
    timer.done(RewritePass::Verify, st.pass_items);

    if tracer.is_enabled() {
        tracer.count(
            "rewrite.smile_trampolines",
            st.stats.smile_trampolines as u64,
        );
        tracer.count(
            "rewrite.constrained_smiles",
            st.stats.constrained_smiles as u64,
        );
        tracer.count("rewrite.trap_entries", st.stats.trap_entries as u64);
        tracer.count("rewrite.trap_exits", st.stats.trap_exits as u64);
        tracer.count("rewrite.untranslated", st.fht.untranslated.len() as u64);
        tracer.count("rewrite.target_bytes", st.stats.target_section_size);
    }

    let binary = st.out.take().expect("link produced the output binary");
    Ok(EngineResult {
        rewritten: Rewritten {
            binary,
            fht: st.fht,
            stats: st.stats,
        },
        regen: st.regen.take(),
    })
}

/// Times pipeline stages and reports them to a tracer. Inert (no clock
/// reads) when the tracer is disabled.
struct PassTimer<'a> {
    tracer: &'a Tracer,
    last: Option<std::time::Instant>,
}

impl<'a> PassTimer<'a> {
    fn new(tracer: &'a Tracer) -> Self {
        PassTimer {
            tracer,
            last: tracer.is_enabled().then(std::time::Instant::now),
        }
    }

    fn done(&mut self, pass: RewritePass, items: u64) {
        let Some(last) = self.last else {
            return;
        };
        let nanos = last.elapsed().as_nanos() as u64;
        self.tracer
            .record(0, TraceEvent::RewritePassDone { pass, nanos, items });
        self.tracer.observe("rewrite.pass_nanos", nanos);
        self.last = Some(std::time::Instant::now());
    }
}
