//! The pass-pipeline driver: runs a [`RewriteEngine`]'s six stages over
//! one binary, emitting a [`TraceEvent::RewritePassDone`] per stage and
//! the `rewrite.*` counters at the end — plus the **incremental** driver
//! ([`run_incremental`]), which replays a cached run redoing only the
//! units a dirty-region report invalidated.
//!
//! Determinism contract: for a fixed engine + input, the output —
//! binary bytes, [`FaultTable`](crate::FaultTable), and
//! [`RewriteStats`](crate::RewriteStats) — is bit-identical for every
//! `workers` value. Layout is assigned in the sequential plan stage;
//! the parallel stages (scan measurement, transform) compute pure
//! per-unit functions reassembled in unit order.
//!
//! Incremental contract: the input binary is immutable, so a rewrite is
//! a pure function of it — invalidations (lazy patches, SMC pokes,
//! remaps) live in the *runtime memory image*, not the input. An
//! incremental run therefore reproduces the full-rewrite output exactly:
//! it reuses the cached analyses and layout, re-emits only the dirty
//! units (hard-asserting each re-emission matches its cached artifact),
//! clones every clean artifact verbatim, and replays place/link/verify.
//! The dirty set decides how much work is *saved*, never what the output
//! *is* — which is what makes the byte-equality invariant unconditional.

use crate::chbp::{RewriteError, Rewritten};
use crate::engine::{EngineState, RewriteEngine, RewriteUnit, UnitArtifact, UnitPlan};
use crate::regen::{RegenAux, RegenInfo};
use chimera_analysis::{Cfg, Disassembly, Liveness};
use chimera_obj::Binary;
use chimera_trace::{RewritePass, TraceEvent, Tracer};
use std::sync::Arc;

/// What a pipeline run produced.
pub struct EngineResult {
    /// The rewritten binary, fault table and statistics.
    pub rewritten: Rewritten,
    /// Regeneration metadata (regeneration engines only).
    pub regen: Option<RegenInfo>,
}

/// A mutated input-address span, as reported by the emulator's
/// `Memory::dirty_regions_since`: the byte range plus the region
/// generation stamp the mutation produced. A unit whose source range
/// intersects a span with `generation` newer than the unit's validation
/// stamp is dirty and gets re-emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirtySpan {
    /// First mutated address.
    pub start: u64,
    /// One past the last mutated address.
    pub end: u64,
    /// The `(start, generation)` stamp's generation half.
    pub generation: u64,
}

/// One cached unit: its transform artifact plus the validation stamp —
/// the newest dirty-region generation this unit has been re-validated
/// against. Re-presenting an already-consumed dirty report is a no-op.
#[derive(Clone)]
struct CachedUnit {
    artifact: UnitArtifact,
    stamp: u64,
    source: (u64, u64),
}

/// The per-unit rewrite cache primed by [`run_cached`]: the scan stage's
/// analyses (shared, not cloned), the plan stage's layout and snapshots,
/// and every unit's artifact with a validation stamp. One cache serves
/// one `(engine, input binary)` pair; [`run_incremental`] re-primes it
/// automatically when either changed.
///
/// Cloning is cheap-ish (analyses stay `Arc`-shared; artifacts and plans
/// copy) and gives the clone an *independent* validation-stamp column —
/// the mechanism `SharedVariantCache` uses to keep one process's SMC
/// invalidations out of every other process's view of the same variant.
#[derive(Clone)]
pub struct RewriteCache {
    engine_name: &'static str,
    /// The exact input the cache was built from (incremental runs verify
    /// equality — a stale cache silently reused would break the
    /// byte-identity invariant).
    input: Binary,
    /// `st.out` as scan left it (cloned into each incremental run; link
    /// mutates it).
    out_template: Option<Binary>,
    disasm: Option<Arc<Disassembly>>,
    cfg: Option<Arc<Cfg>>,
    liveness: Option<Arc<Liveness>>,
    /// Post-plan (address map filled, for regeneration engines).
    regen_aux: Option<Arc<RegenAux>>,
    units: Arc<Vec<RewriteUnit>>,
    unit_sizes: Arc<Vec<u64>>,
    target_base: u64,
    /// Post-plan layout + original-section patches.
    plans: Vec<UnitPlan>,
    text_patches: Vec<(u64, Vec<u8>)>,
    /// Fault table / statistics as the plan stage left them (place and
    /// link replay their merges on top).
    fht_after_plan: crate::chbp::FaultTable,
    stats_after_plan: crate::chbp::RewriteStats,
    cached: Vec<CachedUnit>,
}

impl RewriteCache {
    /// Number of units in the cached partition.
    pub fn unit_count(&self) -> usize {
        self.cached.len()
    }

    /// Per-unit validation stamps, in unit order. A zero stamp means the
    /// unit has never been invalidated since priming; isolation tests use
    /// this to assert one process's SMC pokes never touch another
    /// process's clean units.
    pub fn stamp_snapshot(&self) -> Vec<u64> {
        self.cached.iter().map(|cu| cu.stamp).collect()
    }
}

/// The default transform worker count: the machine's parallelism, capped
/// at 8 (the gate's measured scaling point; rewriting saturates quickly
/// beyond that).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Runs `engine`'s six stages over `binary` with `workers` transform
/// threads (`<= 1` runs fully sequentially — same output).
pub fn run(
    engine: &dyn RewriteEngine,
    binary: &Binary,
    workers: usize,
    tracer: &Tracer,
) -> Result<EngineResult, RewriteError> {
    run_stages(engine, binary, workers, tracer, None)
}

/// [`run`], additionally priming a [`RewriteCache`] for later
/// [`run_incremental`] calls: the analyses and unit partition are shared
/// (`Arc`), the post-plan layout is snapshotted, and every unit's
/// artifact is kept with a fresh validation stamp.
pub fn run_cached(
    engine: &dyn RewriteEngine,
    binary: &Binary,
    workers: usize,
    tracer: &Tracer,
) -> Result<(EngineResult, RewriteCache), RewriteError> {
    let mut cache = RewriteCache {
        engine_name: engine.name(),
        input: binary.clone(),
        out_template: None,
        disasm: None,
        cfg: None,
        liveness: None,
        regen_aux: None,
        units: Arc::new(Vec::new()),
        unit_sizes: Arc::new(Vec::new()),
        target_base: 0,
        plans: Vec::new(),
        text_patches: Vec::new(),
        fht_after_plan: Default::default(),
        stats_after_plan: Default::default(),
        cached: Vec::new(),
    };
    let result = run_stages(engine, binary, workers, tracer, Some(&mut cache))?;
    Ok((result, cache))
}

fn run_stages(
    engine: &dyn RewriteEngine,
    binary: &Binary,
    workers: usize,
    tracer: &Tracer,
    mut capture: Option<&mut RewriteCache>,
) -> Result<EngineResult, RewriteError> {
    let mut st = EngineState::new(binary, workers);
    let mut timer = PassTimer::new(tracer);

    engine.scan(&mut st)?;
    timer.done(RewritePass::Scan, st.pass_items);
    engine.plan(&mut st)?;
    timer.done(RewritePass::Plan, st.pass_items);
    if let Some(cache) = capture.as_deref_mut() {
        cache.out_template = st.out.clone();
        cache.disasm = st.disasm.clone();
        cache.cfg = st.cfg.clone();
        cache.liveness = st.liveness.clone();
        cache.regen_aux = st.regen_aux.clone();
        cache.units = st.units.clone();
        cache.unit_sizes = st.unit_sizes.clone();
        cache.target_base = st.target_base;
        cache.plans = st.plans.clone();
        cache.text_patches = st.text_patches.clone();
        cache.fht_after_plan = st.fht.clone();
        cache.stats_after_plan = st.stats;
    }
    engine.transform(&mut st)?;
    timer.done(RewritePass::Transform, st.pass_items);
    if let Some(cache) = capture {
        let stamp = 0;
        cache.cached = st
            .artifacts
            .iter()
            .enumerate()
            .map(|(i, a)| CachedUnit {
                artifact: a.clone(),
                stamp,
                source: st.units[i].source_range(&st),
            })
            .collect();
    }
    engine.place(&mut st)?;
    timer.done(RewritePass::Place, st.pass_items);
    engine.link(&mut st)?;
    timer.done(RewritePass::Link, st.pass_items);
    engine.verify(&mut st)?;
    timer.done(RewritePass::Verify, st.pass_items);

    emit_counters(&st, tracer);
    finish(st)
}

/// Incrementally re-rewrites `binary`: computes the dirty-unit set from
/// `dirty` (source-range intersection, generation newer than the unit's
/// validation stamp), re-emits exactly those units in parallel —
/// hard-asserting each re-emission is byte-identical to its cached
/// artifact — reuses every clean unit verbatim, and replays the cheap
/// place/link/verify stages to reconstruct the output. Bit-identical to
/// a from-scratch [`run`] of the same engine over the same input.
///
/// Emits one [`TraceEvent::RewriteIncremental`] plus the
/// `rewrite.units_reused` / `rewrite.units_redone` counters (they always
/// sum to the unit total).
///
/// If the cache was primed by a different engine or input, the cache is
/// re-primed with a full run (every unit counts as redone) — callers
/// never observe a stale result.
pub fn run_incremental(
    engine: &dyn RewriteEngine,
    binary: &Binary,
    cache: &mut RewriteCache,
    dirty: &[DirtySpan],
    workers: usize,
    tracer: &Tracer,
) -> Result<EngineResult, RewriteError> {
    let started = tracer.is_enabled().then(std::time::Instant::now);
    if cache.engine_name != engine.name() || cache.input != *binary {
        let (result, fresh) = run_cached(engine, binary, workers, tracer)?;
        *cache = fresh;
        let total = cache.cached.len() as u64;
        record_incremental(tracer, started, total, total);
        return Ok(result);
    }

    // Dirty-unit set: source-range intersection against spans newer than
    // each unit's validation stamp.
    let mut redo: Vec<usize> = Vec::new();
    for (i, cu) in cache.cached.iter_mut().enumerate() {
        let (s, e) = cu.source;
        let newest = dirty
            .iter()
            .filter(|d| d.start < e && s < d.end && d.generation > cu.stamp)
            .map(|d| d.generation)
            .max();
        if let Some(gen) = newest {
            cu.stamp = gen;
            redo.push(i);
        }
    }

    // Restore the post-plan state the cached run snapshotted.
    let mut st = EngineState::new(binary, workers);
    st.out = cache.out_template.clone();
    st.disasm = cache.disasm.clone();
    st.cfg = cache.cfg.clone();
    st.liveness = cache.liveness.clone();
    st.regen_aux = cache.regen_aux.clone();
    st.units = cache.units.clone();
    st.unit_sizes = cache.unit_sizes.clone();
    st.target_base = cache.target_base;
    st.plans = cache.plans.clone();
    st.text_patches = cache.text_patches.clone();
    st.fht = cache.fht_after_plan.clone();
    st.stats = cache.stats_after_plan;

    // Re-emit the dirty units (parallel), then hard-assert the reuse
    // invariant: emission is pure, so a re-emitted unit must match its
    // cached artifact bit for bit. A divergence means the cache no longer
    // describes this engine configuration — corrupt output, so fail loud.
    let fresh: Vec<Result<UnitArtifact, RewriteError>> =
        chimera_analysis::par::map_indexed(st.workers, redo.len(), |j| {
            engine.transform_unit(&st, redo[j])
        });
    for (&i, art) in redo.iter().zip(fresh) {
        let art = art?;
        assert!(
            art == cache.cached[i].artifact,
            "incremental re-emission of unit {i} diverged from its cached \
             artifact (engine '{}'): emission is not pure or the cache is \
             stale",
            engine.name()
        );
    }
    st.artifacts = cache.cached.iter().map(|cu| cu.artifact.clone()).collect();

    // Replay the cheap tail stages for real: the output binary is
    // reconstructed, not copied.
    engine.place(&mut st)?;
    engine.link(&mut st)?;
    engine.verify(&mut st)?;

    emit_counters(&st, tracer);
    let total = cache.cached.len() as u64;
    record_incremental(tracer, started, total, redo.len() as u64);
    finish(st)
}

fn record_incremental(
    tracer: &Tracer,
    started: Option<std::time::Instant>,
    units_total: u64,
    units_redone: u64,
) {
    if !tracer.is_enabled() {
        return;
    }
    let nanos = started.map_or(0, |t| t.elapsed().as_nanos() as u64);
    tracer.record(
        0,
        TraceEvent::RewriteIncremental {
            units_total,
            units_redone,
            nanos,
        },
    );
    tracer.count("rewrite.units_reused", units_total - units_redone);
    tracer.count("rewrite.units_redone", units_redone);
}

fn emit_counters(st: &EngineState, tracer: &Tracer) {
    if !tracer.is_enabled() {
        return;
    }
    tracer.count(
        "rewrite.smile_trampolines",
        st.stats.smile_trampolines as u64,
    );
    tracer.count(
        "rewrite.constrained_smiles",
        st.stats.constrained_smiles as u64,
    );
    tracer.count("rewrite.trap_entries", st.stats.trap_entries as u64);
    tracer.count("rewrite.trap_exits", st.stats.trap_exits as u64);
    tracer.count("rewrite.untranslated", st.fht.untranslated.len() as u64);
    tracer.count("rewrite.target_bytes", st.stats.target_section_size);
}

fn finish(mut st: EngineState) -> Result<EngineResult, RewriteError> {
    let binary = st.out.take().expect("link produced the output binary");
    Ok(EngineResult {
        rewritten: Rewritten {
            binary,
            fht: st.fht,
            stats: st.stats,
        },
        regen: st.regen.take(),
    })
}

/// Times pipeline stages and reports them to a tracer. Inert (no clock
/// reads) when the tracer is disabled.
struct PassTimer<'a> {
    tracer: &'a Tracer,
    last: Option<std::time::Instant>,
}

impl<'a> PassTimer<'a> {
    fn new(tracer: &'a Tracer) -> Self {
        PassTimer {
            tracer,
            last: tracer.is_enabled().then(std::time::Instant::now),
        }
    }

    fn done(&mut self, pass: RewritePass, items: u64) {
        let Some(last) = self.last else {
            return;
        };
        let nanos = last.elapsed().as_nanos() as u64;
        self.tracer
            .record(0, TraceEvent::RewritePassDone { pass, nanos, items });
        self.tracer.observe("rewrite.pass_nanos", nanos);
        self.last = Some(std::time::Instant::now());
    }
}
