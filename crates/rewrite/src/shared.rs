//! Content-addressed cross-process variant sharing.
//!
//! A [`SharedVariantCache`] maps the content hash of
//! `(binary bytes, extension profile, engine, flags)` to a fully rewritten
//! variant plus the [`RewriteCache`] that produced it. The first process to
//! need a variant pays the rewrite; every later spawn of the same content
//! [`checkout`](SharedVariantCache::checkout)s the shared entry in O(µs) —
//! the same input never rewrites twice, which is the rewrite-once-reuse-many
//! economics static rewriting is premised on (Zipr; see PAPERS.md).
//!
//! Isolation contract: the shared entry is immutable. A process that later
//! self-modifies its image re-rewrites through a **private** lazily cloned
//! copy of the per-unit cache ([`VariantHandle::cache_mut`]); its validation
//! stamps are per-process state, so one holder's SMC pokes can never
//! invalidate another holder's clean units (the isolation regression test
//! asserts both the stamp columns and bit-identical execution in the
//! untouched process).

use crate::chbp::{RewriteError, Rewritten};
use crate::engine::RewriteEngine;
use crate::pipeline::{run_cached, RewriteCache};
use crate::regen::RegenInfo;
use chimera_obj::Binary;
use chimera_trace::{TraceEvent, Tracer};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// FNV-1a, the workspace's standard checksum fold.
fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    let mut h = hash;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The content key of a rewrite request: a hash over the binary's section
/// bytes, names, addresses and permissions, its entry/`gp`/extension
/// profile, the engine name, and caller-defined `flags`. Two requests with
/// equal keys produce bit-identical variants (rewriting is a pure function
/// of exactly these inputs — worker count is deliberately excluded, since
/// output is worker-invariant), so the key is safe to share variants under.
pub fn content_key(binary: &Binary, engine: &str, flags: u64) -> u64 {
    let mut h = fnv1a(0xcbf2_9ce4_8422_2325, engine.as_bytes());
    h = fnv1a(h, &flags.to_le_bytes());
    h = fnv1a(h, &binary.entry.to_le_bytes());
    h = fnv1a(h, &binary.gp.to_le_bytes());
    h = fnv1a(h, binary.profile.to_string().as_bytes());
    for s in &binary.sections {
        h = fnv1a(h, s.name.as_bytes());
        h = fnv1a(h, &s.addr.to_le_bytes());
        let perms = (s.perms.r as u8) | (s.perms.w as u8) << 1 | (s.perms.x as u8) << 2;
        h = fnv1a(h, &[perms]);
        h = fnv1a(h, &(s.data.len() as u64).to_le_bytes());
        h = fnv1a(h, &s.data);
    }
    h
}

/// One immutable shared entry: the rewritten variant and the primed
/// per-unit cache template. Never mutated after insertion — processes that
/// need to invalidate clone the template first.
struct VariantEntry {
    key: u64,
    rewritten: Rewritten,
    regen: Option<RegenInfo>,
    cache: RewriteCache,
    hits: AtomicU64,
}

/// Aggregate counters of a [`SharedVariantCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedCacheStats {
    /// Distinct variants resident.
    pub entries: u64,
    /// Checkouts served from a resident entry.
    pub hits: u64,
    /// Checkouts that had to rewrite.
    pub misses: u64,
}

/// A process-global, content-addressed cache of rewritten variants.
///
/// Thread-safe; the per-content rewrite runs *outside* the map lock, so
/// concurrent misses on different content never serialize (two racing
/// misses on the *same* content both rewrite — bit-identically — and the
/// first insertion wins).
#[derive(Default)]
pub struct SharedVariantCache {
    map: Mutex<HashMap<u64, Arc<VariantEntry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SharedVariantCache {
    /// An empty cache.
    pub fn new() -> SharedVariantCache {
        SharedVariantCache::default()
    }

    /// The workspace-global instance (what "cross-process" means in this
    /// in-process model: every simulated process of the workspace shares
    /// it, the way an OS-level variant store outlives single processes).
    pub fn global() -> &'static SharedVariantCache {
        static GLOBAL: OnceLock<SharedVariantCache> = OnceLock::new();
        GLOBAL.get_or_init(SharedVariantCache::new)
    }

    /// Checks out the variant for `(binary, engine, flags)`: serves the
    /// resident entry when the content key hits (recording a
    /// [`TraceEvent::VariantShared`] and `rewrite.cross_process_hits`),
    /// otherwise rewrites via [`run_cached`] with `workers` threads and
    /// inserts. The returned handle shares the entry; it only clones the
    /// per-unit cache if the caller actually needs to invalidate
    /// ([`VariantHandle::cache_mut`]), keeping warm checkouts O(µs).
    pub fn checkout(
        &self,
        engine: &dyn RewriteEngine,
        binary: &Binary,
        flags: u64,
        workers: usize,
        tracer: &Tracer,
    ) -> Result<VariantHandle, RewriteError> {
        let key = content_key(binary, engine.name(), flags);
        let resident = self.map.lock().expect("variant map").get(&key).cloned();
        if let Some(entry) = resident {
            let hits = entry.hits.fetch_add(1, Ordering::Relaxed) + 1;
            self.hits.fetch_add(1, Ordering::Relaxed);
            if tracer.is_enabled() {
                tracer.record(0, TraceEvent::VariantShared { key, hits });
                tracer.count("rewrite.cross_process_hits", 1);
            }
            return Ok(VariantHandle {
                entry,
                private: None,
                shared_hit: true,
            });
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let (result, cache) = run_cached(engine, binary, workers, tracer)?;
        let entry = Arc::new(VariantEntry {
            key,
            rewritten: result.rewritten,
            regen: result.regen,
            cache,
            hits: AtomicU64::new(0),
        });
        let entry = self
            .map
            .lock()
            .expect("variant map")
            .entry(key)
            .or_insert(entry)
            .clone();
        Ok(VariantHandle {
            entry,
            private: None,
            shared_hit: false,
        })
    }

    /// Aggregate counters.
    pub fn stats(&self) -> SharedCacheStats {
        SharedCacheStats {
            entries: self.map.lock().expect("variant map").len() as u64,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// One process's handle on a shared variant: read access to the rewritten
/// output, plus a lazily cloned private per-unit cache for incremental
/// re-rewriting after self-modification.
pub struct VariantHandle {
    entry: Arc<VariantEntry>,
    private: Option<RewriteCache>,
    /// Whether this checkout was served from a resident entry (false for
    /// the process that paid the rewrite).
    pub shared_hit: bool,
}

impl VariantHandle {
    /// The variant's content key.
    pub fn key(&self) -> u64 {
        self.entry.key
    }

    /// The rewritten binary, fault table and statistics.
    pub fn rewritten(&self) -> &Rewritten {
        &self.entry.rewritten
    }

    /// Regeneration metadata, for regeneration engines.
    pub fn regen(&self) -> Option<&RegenInfo> {
        self.entry.regen.as_ref()
    }

    /// Whether this handle has already privatized its per-unit cache
    /// (i.e. the process invalidated something). `false` means the process
    /// still reads purely shared state.
    pub fn has_private_cache(&self) -> bool {
        self.private.is_some()
    }

    /// Validation stamps of the **shared** template — all zero by the
    /// isolation contract, whatever any holder poked into its own copy.
    pub fn shared_stamps(&self) -> Vec<u64> {
        self.entry.cache.stamp_snapshot()
    }

    /// This process's private per-unit cache, cloned from the shared
    /// template on first use. Incremental re-rewrites
    /// (`run_incremental`) stamp invalidations into this copy only;
    /// the shared entry and every other holder stay untouched.
    pub fn cache_mut(&mut self) -> &mut RewriteCache {
        self.private.get_or_insert_with(|| self.entry.cache.clone())
    }
}
