//! The oracle runner: executes one [`FuzzCase`] through every
//! configuration pair and returns either coverage counters or the
//! *first* divergence.
//!
//! Three oracle families, in increasing cost:
//!
//! 1. **Mode matrix** — reference interpreter vs decode-cache
//!    interpreter vs micro-op engine vs host-code JIT (promotion
//!    threshold 1, so every re-entered block actually runs compiled),
//!    cache on/off, tracer on/off, all compared as full [`Obs`] (result,
//!    trap, registers, stats, output memory) against the reference run,
//!    plus the cache counter-reconciliation laws (`hits_interp ==
//!    hits_engine + chained`, `hits_interp == hits_jit + chained_jit +
//!    jitted`, identical misses/builds/invalidations, reference run
//!    untouched cache). On hosts without executable pages the JIT column
//!    degrades to engine semantics; the equality checks still run and
//!    the JIT coverage counters report zero.
//! 2. **Rewrite matrix** — every [`RewriteEngine`] at 1/2/4/8 workers
//!    (bit-identical artifacts), cached and incremental drivers (empty
//!    and post-mutation dirty sets) reproducing the full rewrite bit for
//!    bit, and kernel-mediated execution of each artifact (cache on/off)
//!    matching the native run's exit code, stdout and output memory.
//!    Skipped for SMC, straddled and trapping cases, whose native
//!    behaviour a static rewrite legitimately cannot reproduce (SMC
//!    mutates text the rewriter froze; a straddled image has no single
//!    `.text`; a trap tail never exits).
//! 3. **SMILE sweep** — for every trampoline CHBP placed, every interior
//!    entry offset must raise the deterministic recoverable fault keyed
//!    to the entry, bit-reproducibly (same key, same cycle count, twice,
//!    and on the max-worker artifact), and the kernel's passive handler
//!    must recover to the original binary's behaviour from that entry.

use crate::gen::{FuzzCase, OpClass, SCRATCH_LEN};
use chimera_emu::{Access, ExecMode, Stop, Trap};
use chimera_isa::prng::Prng;
use chimera_isa::ExtSet;
use chimera_kernel::{RunOutcome, RuntimeTables};
use chimera_rewrite::{
    run, run_cached, run_incremental, EngineResult, Rewritten, SharedVariantCache,
};
use chimera_testutil::{
    engines, load_image, mutate_image, observe_jit, observe_mode, observe_mode_traced,
    run_under_kernel_at, to_rewrite_spans, writable_bytes, Obs,
};
use chimera_trace::Tracer;

/// Fuel for the bare mode-matrix runs (generated programs finish in a
/// few thousand instructions; this bounds runaways).
pub const CASE_FUEL: u64 = 200_000;
/// Fuel for kernel-mediated rewritten runs (regenerated scalar code
/// retires more instructions than the native vector original).
pub const KERNEL_FUEL: u64 = 4_000_000;
/// Fuel for SMILE misaligned-entry probes: enough to leave the
/// trampoline and reach the loop's deterministic fault, small enough
/// that the (expected) fuel-exhausted recoveries stay cheap.
pub const SMILE_FUEL: u64 = 20_000;

/// One observed disagreement between configurations.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The diverging case's root seed.
    pub seed: u64,
    /// Which oracle stage disagreed (e.g. `mode:engine-cache`,
    /// `rewrite:safer:kernel-cache`, `smile:recovery`). Minimization
    /// preserves this stage exactly.
    pub stage: String,
    /// Human-readable description of the disagreement.
    pub detail: String,
}

/// Non-vacuity counters: what the corpus actually exercised. The smoke
/// runner asserts every counter is non-zero, so a generator regression
/// (or an oracle silently skipping a family) fails loudly.
#[derive(Debug, Clone, Copy, Default)]
pub struct Coverage {
    /// Cases checked.
    pub cases: u64,
    /// Cases assembled with compressed encodings.
    pub compressed: u64,
    /// Cases whose straddle split applied.
    pub straddled: u64,
    /// Cases with self-modifying stores.
    pub smc: u64,
    /// Cases with computed jumps.
    pub cjump: u64,
    /// Cases with vector blocks.
    pub vector: u64,
    /// Cases with scalar FP blocks.
    pub fp: u64,
    /// Cases ending in a trap.
    pub trap_tail: u64,
    /// JIT-mode executions compared against the reference.
    pub jit_runs: u64,
    /// Compiled-trace executions across those runs (0 on hosts without
    /// executable pages).
    pub jit_execs: u64,
    /// Jitted chain-entry passes (trace-to-trace direct jumps taken).
    pub jit_chained: u64,
    /// Cases that went through the rewrite matrix.
    pub rewrite_cases: u64,
    /// Engine pipeline runs compared for bit-identity.
    pub engine_runs: u64,
    /// Kernel-mediated rewritten executions compared against native.
    pub kernel_runs: u64,
    /// SMILE interior entries driven.
    pub smile_entries: u64,
    /// Shared variant-cache checkouts run and replayed under the kernel
    /// (one cold + one warm per eligible CHBP case).
    pub shared_cache_runs: u64,
    /// Checkouts of those that were served warm from the shared cache.
    pub shared_cache_hits: u64,
}

impl Coverage {
    /// Accumulates another case's counters.
    pub fn add(&mut self, o: &Coverage) {
        self.cases += o.cases;
        self.compressed += o.compressed;
        self.straddled += o.straddled;
        self.smc += o.smc;
        self.cjump += o.cjump;
        self.vector += o.vector;
        self.fp += o.fp;
        self.trap_tail += o.trap_tail;
        self.jit_runs += o.jit_runs;
        self.jit_execs += o.jit_execs;
        self.jit_chained += o.jit_chained;
        self.rewrite_cases += o.rewrite_cases;
        self.engine_runs += o.engine_runs;
        self.kernel_runs += o.kernel_runs;
        self.smile_entries += o.smile_entries;
        self.shared_cache_runs += o.shared_cache_runs;
        self.shared_cache_hits += o.shared_cache_hits;
    }

    /// `(name, value)` pairs for reporting.
    pub fn entries(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("cases", self.cases),
            ("compressed", self.compressed),
            ("straddled", self.straddled),
            ("smc", self.smc),
            ("cjump", self.cjump),
            ("vector", self.vector),
            ("fp", self.fp),
            ("trap_tail", self.trap_tail),
            ("jit_runs", self.jit_runs),
            ("jit_execs", self.jit_execs),
            ("jit_chained", self.jit_chained),
            ("rewrite_cases", self.rewrite_cases),
            ("engine_runs", self.engine_runs),
            ("kernel_runs", self.kernel_runs),
            ("smile_entries", self.smile_entries),
            ("shared_cache_runs", self.shared_cache_runs),
            ("shared_cache_hits", self.shared_cache_hits),
        ]
    }
}

/// Deliberate fault injection — the mutation-testing hook that proves
/// the oracle detects divergences and the minimizer shrinks them. When
/// the case contains an op of the given class, the engine-mode
/// observation is perturbed before comparison, emulating a buggy uop
/// handler for exactly that op class.
#[derive(Debug, Clone, Copy, Default)]
pub struct Inject {
    /// Perturb the engine observation when this op class is present.
    pub perturb_engine: Option<OpClass>,
    /// Perturb the JIT observation when this op class is present (the
    /// `FUZZ_INJECT=jit` drill — proves the JIT column actually gates).
    pub perturb_jit: Option<OpClass>,
}

impl Inject {
    /// No injection — the production configuration.
    pub fn none() -> Inject {
        Inject::default()
    }
}

fn describe(obs: &Obs) -> String {
    match &obs.result {
        Ok(r) => format!(
            "exit={} stdout={}B instret={} cycles={}",
            r.exit_code,
            r.stdout.len(),
            obs.stats.instret,
            obs.stats.cycles
        ),
        Err(e) => format!("err={e} pc={:#x} instret={}", obs.pc, obs.stats.instret),
    }
}

/// The first field two observations disagree on, described tersely.
fn first_diff(a: &Obs, b: &Obs) -> String {
    if a.result != b.result {
        return format!("result: [{}] vs [{}]", describe(a), describe(b));
    }
    if a.xregs != b.xregs {
        let i = (0..32).find(|&i| a.xregs[i] != b.xregs[i]).unwrap();
        return format!("x{i}: {:#x} vs {:#x}", a.xregs[i], b.xregs[i]);
    }
    if a.stats != b.stats {
        return format!("stats: {:?} vs {:?}", a.stats, b.stats);
    }
    if a.pc != b.pc {
        return format!("pc: {:#x} vs {:#x}", a.pc, b.pc);
    }
    for ((an, ab), (_, bb)) in a.mem.iter().zip(&b.mem) {
        if ab != bb {
            let i = ab.iter().zip(bb).position(|(x, y)| x != y).unwrap_or(0);
            return format!(
                "mem {an}[{i}]: {} vs {}",
                ab.get(i).unwrap_or(&0),
                bb.get(i).unwrap_or(&0)
            );
        }
    }
    "unknown field".into()
}

fn perturb(obs: &mut Obs) {
    match &mut obs.result {
        Ok(r) => r.exit_code ^= 1,
        Err(_) => obs.pc ^= 2,
    }
}

/// Checks one case through the full oracle matrix. Returns coverage on
/// agreement, or the first divergence.
pub fn check_case(case: &FuzzCase, inject: Inject) -> Result<Coverage, Divergence> {
    let seed = case.seed;
    let fail = |stage: &str, detail: String| Divergence {
        seed,
        stage: stage.into(),
        detail,
    };

    let built = case
        .build()
        .map_err(|e| fail("build", format!("generated program must assemble: {e}")))?;
    let bin = &built.bin;

    let mut cov = Coverage {
        cases: 1,
        compressed: case.compress as u64,
        straddled: built.straddled as u64,
        smc: case.has_class(OpClass::Smc) as u64,
        cjump: case.has_class(OpClass::ComputedJump) as u64,
        vector: case.has_class(OpClass::Vector) as u64,
        fp: case.has_class(OpClass::Fp) as u64,
        trap_tail: case.trap_tail as u64,
        ..Default::default()
    };

    // ---- Family 1: the execution-mode matrix ------------------------
    // The cache-off configuration *is* the reference interpreter
    // (`Cpu::mode` is defined by `(cache.enabled, engine)`), so the
    // matrix has three distinct execution front ends; "cache on vs off"
    // is the reference-vs-cached comparison.
    let (reference, ref_stats) =
        observe_mode(bin, ExtSet::RV64GCV, ExecMode::Reference, false, CASE_FUEL);
    if (
        ref_stats.hits,
        ref_stats.misses,
        ref_stats.blocks_built,
        ref_stats.chained,
    ) != (0, 0, 0, 0)
    {
        return Err(fail(
            "mode:refcache",
            format!("reference mode touched the decode cache: {ref_stats:?}"),
        ));
    }

    let configs = [
        (ExecMode::Interpreter, "mode:interp-cache"),
        (ExecMode::Engine, "mode:engine-cache"),
        (ExecMode::Jit, "mode:jit-cache"),
    ];
    let mut interp_cache_stats = None;
    let mut engine_cache = None;
    let mut jit_stats = None;
    for (mode, stage) in configs {
        let (mut obs, stats) = if mode == ExecMode::Jit {
            observe_jit(bin, ExtSet::RV64GCV, CASE_FUEL, 1)
        } else {
            observe_mode(bin, ExtSet::RV64GCV, mode, true, CASE_FUEL)
        };
        let injected = match mode {
            ExecMode::Engine => inject.perturb_engine,
            ExecMode::Jit => inject.perturb_jit,
            _ => None,
        };
        if let Some(class) = injected {
            if case.has_class(class) {
                perturb(&mut obs);
            }
        }
        if obs != reference {
            return Err(fail(stage, first_diff(&reference, &obs)));
        }
        match mode {
            ExecMode::Interpreter => interp_cache_stats = Some(stats),
            ExecMode::Engine => engine_cache = Some((obs, stats)),
            ExecMode::Jit => jit_stats = Some(stats),
            ExecMode::Reference => unreachable!(),
        }
    }
    let is = interp_cache_stats.expect("config matrix ran");
    let (engine_obs, es) = engine_cache.expect("config matrix ran");
    let js = jit_stats.expect("config matrix ran");
    if is.hits != es.hits + es.chained {
        return Err(fail(
            "mode:reconcile",
            format!("hits_interp != hits_engine + chained: {is:?} vs {es:?}"),
        ));
    }
    if (is.misses, is.blocks_built, is.invalidations)
        != (es.misses, es.blocks_built, es.invalidations)
    {
        return Err(fail(
            "mode:reconcile",
            format!("miss/build/invalidation counters diverged: {is:?} vs {es:?}"),
        ));
    }
    if is.hits != js.hits + js.chained + js.jitted {
        return Err(fail(
            "mode:reconcile-jit",
            format!("hits_interp != hits_jit + chained + jitted: {is:?} vs {js:?}"),
        ));
    }
    if (is.misses, is.blocks_built, is.invalidations)
        != (js.misses, js.blocks_built, js.invalidations)
    {
        return Err(fail(
            "mode:reconcile-jit",
            format!("jit miss/build/invalidation counters diverged: {is:?} vs {js:?}"),
        ));
    }
    cov.jit_runs = 1;
    cov.jit_execs = js.jit_execs;
    cov.jit_chained = js.jitted;

    let tracer = Tracer::enabled();
    let (traced, _) = observe_mode_traced(
        bin,
        ExtSet::RV64GCV,
        ExecMode::Engine,
        true,
        CASE_FUEL,
        &tracer,
    );
    if traced != engine_obs && traced != reference {
        // (When injection perturbed `engine_obs`, compare to reference.)
        return Err(fail("mode:engine-traced", first_diff(&reference, &traced)));
    }
    if tracer.drain().is_empty() {
        return Err(fail(
            "mode:trace-vacuous",
            "the enabled tracer recorded no events".into(),
        ));
    }

    // ---- Family 2: the rewrite matrix -------------------------------
    // A static rewrite is only required to reproduce native behaviour
    // for cases whose text stays immutable (no SMC), singly mapped (no
    // straddle) and which run to a clean exit.
    let eligible = !case.has_class(OpClass::Smc)
        && !built.straddled
        && !case.trap_tail
        && reference.result.is_ok();
    if !eligible {
        return Ok(cov);
    }
    cov.rewrite_cases = 1;
    let native = reference.result.as_ref().expect("eligible means Ok");
    let disabled = Tracer::disabled();

    for (name, engine) in engines() {
        let base = run(engine.as_ref(), bin, 1, &disabled)
            .map_err(|e| fail(&format!("rewrite:{name}:error"), format!("{e:?}")))?;
        cov.engine_runs += 1;
        let mut max_workers = base.rewritten.clone();
        for w in [2usize, 4, 8] {
            let r = run(engine.as_ref(), bin, w, &disabled)
                .map_err(|e| fail(&format!("rewrite:{name}:error"), format!("w={w}: {e:?}")))?;
            cov.engine_runs += 1;
            if r.rewritten != base.rewritten {
                return Err(fail(
                    &format!("rewrite:{name}:workers"),
                    format!("workers={w} artifact differs from workers=1"),
                ));
            }
            if w == 8 {
                max_workers = r.rewritten;
            }
        }

        let (primed, mut cache) = run_cached(engine.as_ref(), bin, 2, &disabled)
            .map_err(|e| fail(&format!("rewrite:{name}:error"), format!("cached: {e:?}")))?;
        if primed.rewritten != base.rewritten {
            return Err(fail(
                &format!("rewrite:{name}:cached"),
                "cached run differs from plain run".into(),
            ));
        }
        let inc0 = run_incremental(engine.as_ref(), bin, &mut cache, &[], 2, &disabled)
            .map_err(|e| fail(&format!("rewrite:{name}:error"), format!("inc0: {e:?}")))?;
        if inc0.rewritten != base.rewritten {
            return Err(fail(
                &format!("rewrite:{name}:incremental"),
                "empty-dirty incremental differs from full rewrite".into(),
            ));
        }

        // Runtime mutations (SMC pokes, ebreak patches, remaps) on the
        // *image* never change what a re-rewrite of the immutable input
        // produces.
        let (mut img, ts, te) = load_image(&base.rewritten.binary);
        let mut mrng = Prng::stream(seed, &format!("mutate:{name}"));
        let wm = img.generation_watermark();
        for _ in 0..3 {
            mutate_image(&mut img, &mut mrng, ts, te);
        }
        let dirty = to_rewrite_spans(&img.dirty_regions_since(wm));
        let inc = run_incremental(engine.as_ref(), bin, &mut cache, &dirty, 4, &disabled)
            .map_err(|e| fail(&format!("rewrite:{name}:error"), format!("inc: {e:?}")))?;
        if inc.rewritten != base.rewritten {
            return Err(fail(
                &format!("rewrite:{name}:incremental-mutated"),
                format!("incremental after {} dirty spans diverged", dirty.len()),
            ));
        }

        // Kernel-mediated execution equality against the native run.
        // The identity engine keeps the extension ISA, so it runs on the
        // extension profile; every real rewriter targets the base core.
        let profile = if name == "identity" {
            ExtSet::RV64GCV
        } else {
            ExtSet::RV64GC
        };
        for cache_on in [true, false] {
            let stage = format!(
                "rewrite:{name}:kernel-{}",
                if cache_on { "cache" } else { "nocache" }
            );
            let tables = RuntimeTables {
                fht: Some(base.rewritten.fht.clone()),
                regen: base.regen.clone(),
            };
            let mut ko = run_under_kernel_at(
                base.rewritten.binary.clone(),
                tables,
                profile,
                cache_on,
                None,
                KERNEL_FUEL,
            );
            cov.kernel_runs += 1;
            match ko.outcome {
                RunOutcome::Exited(code) if code == native.exit_code => {}
                other => {
                    return Err(fail(
                        &stage,
                        format!("native exit={}, rewritten {:?}", native.exit_code, other),
                    ))
                }
            }
            if ko.stdout != native.stdout {
                return Err(fail(&stage, "stdout diverged".into()));
            }
            // Compare the scratch region only: the `.dword` jump tables
            // after it hold code addresses, which engines that move code
            // (e.g. safer's inserted checks) legitimately relocate.
            let got = writable_bytes(&mut ko.mem, bin);
            for ((sn, sa), (_, sb)) in reference.mem.iter().zip(&got) {
                let (a, b) = if sn == ".data" {
                    (
                        &sa[..SCRATCH_LEN.min(sa.len())],
                        &sb[..SCRATCH_LEN.min(sb.len())],
                    )
                } else {
                    (&sa[..], &sb[..])
                };
                if a != b {
                    let i = a.iter().zip(b).position(|(x, y)| x != y).unwrap_or(0);
                    return Err(fail(&stage, format!("output memory diverged at {sn}[{i}]")));
                }
            }
        }

        // ---- Cross-process variant-cache column ---------------------
        // One cold checkout (pays the rewrite) and one warm checkout
        // (served shared) of the same content: both must hand back the
        // direct rewrite's artifact bit for bit, and a kernel replay of
        // the warm checkout must be full-Obs-identical to the cold one.
        // CHBP only — the other engines' artifacts were already pinned
        // identical above, so one engine exercises the cache paths.
        if name == "chbp" {
            let shared = SharedVariantCache::new();
            let mut replays = Vec::new();
            for (pass, expect_hit) in [("cold", false), ("warm", true)] {
                let stage = format!("rewrite:chbp:shared-{pass}");
                let handle = shared
                    .checkout(engine.as_ref(), bin, 0, 2, &disabled)
                    .map_err(|e| fail(&stage, format!("{e:?}")))?;
                if handle.shared_hit != expect_hit {
                    return Err(fail(
                        &stage,
                        format!("shared_hit={}, expected {expect_hit}", handle.shared_hit),
                    ));
                }
                if *handle.rewritten() != base.rewritten {
                    return Err(fail(
                        &stage,
                        "checkout artifact differs from the direct rewrite".into(),
                    ));
                }
                cov.shared_cache_runs += 1;
                cov.shared_cache_hits += handle.shared_hit as u64;
                let tables = RuntimeTables {
                    fht: Some(handle.rewritten().fht.clone()),
                    regen: handle.regen().cloned(),
                };
                let mut ko = run_under_kernel_at(
                    handle.rewritten().binary.clone(),
                    tables,
                    ExtSet::RV64GC,
                    true,
                    None,
                    KERNEL_FUEL,
                );
                let mem = writable_bytes(&mut ko.mem, bin);
                replays.push((ko.outcome, ko.stdout, ko.cpu.stats, mem));
            }
            if replays[0] != replays[1] {
                return Err(fail(
                    "rewrite:chbp:shared-replay",
                    "warm-checkout kernel run diverged from the cold one".into(),
                ));
            }
        }

        // ---- Family 3: the SMILE misaligned-entry sweep -------------
        if name == "chbp" && base.rewritten.stats.smile_trampolines > 0 {
            cov.smile_entries += smile_sweep(bin, &base, &max_workers, &fail)?;
        }
    }

    Ok(cov)
}

/// Forces one partial entry into a trampoline span. Returns the
/// recovered fault key and the cycle count, or a description of a
/// non-deterministic/non-recoverable stop.
fn probe_entry(rw: &Rewritten, entry: u64) -> Result<(u64, u64), String> {
    let (mut cpu, mut mem) = chimera_emu::boot(&rw.binary, ExtSet::RV64GC);
    cpu.hart.pc = entry;
    match cpu.run(&mut mem, 16) {
        // P2/P3 forms: the parcel at the entry is a reserved encoding.
        Stop::Trap(Trap::Illegal { pc, .. }) => {
            if pc != entry {
                return Err(format!(
                    "illegal fault at {pc:#x}, not the entry {entry:#x}"
                ));
            }
            Ok((pc, cpu.stats.cycles))
        }
        // P1: the jalr runs with the psABI gp and fetch-faults in data.
        Stop::Trap(Trap::Mem { fault, .. }) => {
            if fault.access != Access::Fetch {
                return Err(format!("non-fetch memory fault: {fault:?}"));
            }
            Ok((cpu.hart.gp().wrapping_sub(4), cpu.stats.cycles))
        }
        other => Err(format!("no deterministic recoverable fault: {other:?}")),
    }
}

/// Drives every interior entry of every trampoline: deterministic fault
/// key, bit-reproducible (twice, and on the max-worker artifact), and
/// kernel recovery matching the original binary entered at the same
/// address. Returns the number of entries driven.
fn smile_sweep(
    bin: &chimera_obj::Binary,
    base: &EngineResult,
    max_workers: &Rewritten,
    fail: &dyn Fn(&str, String) -> Divergence,
) -> Result<u64, Divergence> {
    let rw = &base.rewritten;
    let mut driven = 0;
    for &head in &rw.fht.trampolines {
        for off in [2u64, 4, 6] {
            let entry = head + off;
            if !rw.fht.redirects.contains_key(&entry) {
                continue;
            }
            driven += 1;

            let (key, cycles) = probe_entry(rw, entry)
                .map_err(|e| fail("smile:fault", format!("{entry:#x}: {e}")))?;
            if key != entry {
                return Err(fail(
                    "smile:key",
                    format!("fault key {key:#x} does not recover entry {entry:#x}"),
                ));
            }
            let again = probe_entry(rw, entry)
                .map_err(|e| fail("smile:fault", format!("{entry:#x} rerun: {e}")))?;
            if again != (key, cycles) {
                return Err(fail(
                    "smile:determinism",
                    format!("{entry:#x}: {:?} vs {:?}", (key, cycles), again),
                ));
            }
            // Same probe on the 8-worker artifact (bytes already
            // asserted identical; this pins the *behaviour* too).
            let w8 = probe_entry(max_workers, entry)
                .map_err(|e| fail("smile:fault", format!("{entry:#x} w=8: {e}")))?;
            if w8 != (key, cycles) {
                return Err(fail(
                    "smile:workers",
                    format!("{entry:#x}: w=1 {:?} vs w=8 {:?}", (key, cycles), w8),
                ));
            }

            // Recovery: the passive handler must reproduce the original
            // binary's behaviour from this entry. (Interior entries skip
            // the init code, so the common original outcomes are a
            // memory trap or fuel exhaustion — the contract still holds
            // shape for shape.)
            let (mut ocpu, mut omem) = chimera_emu::boot(bin, ExtSet::RV64GCV);
            ocpu.hart.pc = entry;
            let original = chimera_emu::run_cpu(&mut ocpu, &mut omem, SMILE_FUEL);

            let tables = RuntimeTables {
                fht: Some(rw.fht.clone()),
                regen: None,
            };
            let recover = |cache: bool| {
                run_under_kernel_at(
                    rw.binary.clone(),
                    tables.clone(),
                    ExtSet::RV64GC,
                    cache,
                    Some(entry),
                    SMILE_FUEL,
                )
            };
            let rec = recover(true);
            if rec.kernel.counters.smile_faults == 0 {
                return Err(fail(
                    "smile:recovery",
                    format!("{entry:#x}: recovery did not go through the passive handler"),
                ));
            }
            let ok = match (&original, &rec.outcome) {
                (Ok(r), RunOutcome::Exited(code)) => *code == r.exit_code && rec.stdout == r.stdout,
                (Err(chimera_emu::RunError::OutOfFuel), RunOutcome::OutOfFuel) => true,
                // A trapping original must not be "recovered" into a
                // clean exit (or silently spin): the kernel reports it.
                (Err(_), RunOutcome::Fatal(_)) => true,
                (Err(chimera_emu::RunError::Trap(_)), RunOutcome::NeedsMigration { .. }) => false,
                _ => false,
            };
            if !ok {
                return Err(fail(
                    "smile:recovery",
                    format!(
                        "{entry:#x}: original {:?} vs recovered {:?}",
                        original.as_ref().map(|r| r.exit_code),
                        rec.outcome
                    ),
                ));
            }
            // Recovery itself is deterministic, bit for bit.
            let rec2 = recover(true);
            if rec2.outcome != rec.outcome
                || rec2.stdout != rec.stdout
                || rec2.cpu.stats != rec.cpu.stats
            {
                return Err(fail(
                    "smile:recovery-determinism",
                    format!("{entry:#x}: two recoveries diverged"),
                ));
            }
        }
    }
    if driven == 0 {
        return Err(fail(
            "smile:vacuous",
            format!(
                "{} trampolines but no interior entries driven",
                rw.fht.trampolines.len()
            ),
        ));
    }
    Ok(driven)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    #[test]
    fn clean_cases_pass_the_oracle() {
        for seed in 0..12u64 {
            let case = generate(seed);
            check_case(&case, Inject::none())
                .unwrap_or_else(|d| panic!("seed {seed} diverged at {}: {}", d.stage, d.detail));
        }
    }

    #[test]
    fn injection_is_detected() {
        // Find a case containing an ALU op (ubiquitous) and perturb the
        // engine for it: the oracle must flag the engine stage.
        let case = (0..64)
            .map(generate)
            .find(|c| c.has_class(OpClass::Alu))
            .expect("ALU ops are common");
        let d = check_case(
            &case,
            Inject {
                perturb_engine: Some(OpClass::Alu),
                ..Inject::none()
            },
        )
        .expect_err("perturbed engine must diverge");
        assert!(d.stage.starts_with("mode:engine"), "stage: {}", d.stage);
    }
}
