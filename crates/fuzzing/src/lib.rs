//! # chimera-fuzzing
//!
//! The differential fuzzing harness: a seeded generator of
//! random-but-valid RV64GCV programs ([`gen`]), an oracle runner that
//! executes every configuration pair — reference interpreter vs
//! decode-cache vs micro-op engine, cache on/off, trace on/off, every
//! [`RewriteEngine`](chimera_rewrite::RewriteEngine) at 1/2/4/8 workers,
//! full vs cached vs incremental rewrites, kernel-mediated execution,
//! and misaligned entry into every SMILE trampoline — hard-asserting
//! bit-identical observations ([`oracle`]); a delta-debugging minimizer
//! ([`minimize`]); and a reproducer file format replayed as regression
//! tests ([`repro`]).
//!
//! The harness follows the wasmtime `diff_wasmi` oracle shape: one
//! generator, one `check_case` entry point that either returns coverage
//! counters or the *first* divergence, and a shrinking loop that turns
//! any divergence into a tiny committed reproducer. Everything is
//! deterministic from a single root seed (via `Prng` named streams), so
//! a failure in CI replays locally from the printed seed alone.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod minimize;
pub mod oracle;
pub mod repro;

pub use gen::{generate, FuzzCase, GenOp, Op, OpClass, GEN_VERSION};
pub use minimize::minimize;
pub use oracle::{check_case, Coverage, Divergence, Inject};
pub use repro::{parse_reproducer, render_reproducer, Reproducer};
