//! Delta-debugging minimization: shrinks a diverging [`FuzzCase`] to a
//! (locally) minimal one that still diverges **at the same oracle
//! stage**, then simplifies the build flags.
//!
//! The shrinker is classic ddmin over the case's op list, keyed by the
//! ops' generation-time indices — so the minimized case is described
//! exactly by `(seed, kept indices, flags)`, which is what a reproducer
//! file stores. The predicate is "still diverges with the same
//! [`Divergence::stage`]": shrinking must not wander onto a *different*
//! bug (or onto a generator artifact) halfway through.

use crate::gen::FuzzCase;
use crate::oracle::{check_case, Divergence, Inject};

/// A minimization result.
pub struct Minimized {
    /// The minimized case (flags simplified, ops shrunk).
    pub case: FuzzCase,
    /// The kept generation-time op indices (what a reproducer records).
    pub keep: Vec<usize>,
    /// The divergence the minimized case still produces.
    pub divergence: Divergence,
    /// Oracle evaluations spent.
    pub evals: usize,
}

/// Shrinks `case` — which must diverge under `inject` — spending at most
/// `budget` oracle evaluations. Returns `None` if the case does not
/// actually diverge.
pub fn minimize(case: &FuzzCase, inject: Inject, budget: usize) -> Option<Minimized> {
    let original = check_case(case, inject).err()?;
    let stage = original.stage.clone();
    let mut evals = 0usize;

    let mk = |keep: &[usize], compress: bool, straddle: bool, trap_tail: bool, iters: u64| {
        let mut c = case.restrict(keep);
        c.compress = compress;
        c.straddle = straddle;
        c.trap_tail = trap_tail;
        c.iters = iters;
        c
    };
    let fails = |c: &FuzzCase, evals: &mut usize| -> Option<Divergence> {
        if *evals >= budget {
            return None;
        }
        *evals += 1;
        match check_case(c, inject) {
            Err(d) if d.stage == stage => Some(d),
            _ => None,
        }
    };

    let mut keep = case.kept_uids();
    let (mut compress, mut straddle, mut trap_tail, mut iters) =
        (case.compress, case.straddle, case.trap_tail, case.iters);
    let mut div = original;

    // ddmin over the op list.
    let mut n = 2usize;
    while keep.len() >= 2 && evals < budget {
        let chunk = keep.len().div_ceil(n);
        let mut reduced = false;
        let mut i = 0usize;
        while i * chunk < keep.len() {
            let hi = ((i + 1) * chunk).min(keep.len());
            let mut cand: Vec<usize> = keep[..i * chunk].to_vec();
            cand.extend_from_slice(&keep[hi..]);
            if cand.len() < keep.len() {
                if let Some(d) = fails(&mk(&cand, compress, straddle, trap_tail, iters), &mut evals)
                {
                    keep = cand;
                    div = d;
                    n = n.saturating_sub(1).max(2);
                    reduced = true;
                    break;
                }
            }
            i += 1;
        }
        if !reduced {
            if n >= keep.len() {
                break;
            }
            n = (n * 2).min(keep.len());
        }
    }

    // Flag simplification: prefer the plainest build that still shows
    // the same divergence.
    if straddle {
        if let Some(d) = fails(&mk(&keep, compress, false, trap_tail, iters), &mut evals) {
            straddle = false;
            div = d;
        }
    }
    if compress {
        if let Some(d) = fails(&mk(&keep, false, straddle, trap_tail, iters), &mut evals) {
            compress = false;
            div = d;
        }
    }
    if trap_tail {
        if let Some(d) = fails(&mk(&keep, compress, straddle, false, iters), &mut evals) {
            trap_tail = false;
            div = d;
        }
    }
    if iters > 3 {
        if let Some(d) = fails(&mk(&keep, compress, straddle, trap_tail, 3), &mut evals) {
            iters = 3;
            div = d;
        }
    }

    Some(Minimized {
        case: mk(&keep, compress, straddle, trap_tail, iters),
        keep,
        divergence: div,
        evals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, OpClass};

    #[test]
    fn minimizes_an_injected_fault_to_the_faulty_class() {
        // Perturb the engine whenever a LoadStore op is present: the
        // minimizer must shrink to a case that still *has* one (the
        // "bug" trigger) and drop unrelated ops.
        let case = (0..128)
            .map(generate)
            .find(|c| c.has_class(OpClass::LoadStore) && c.ops.len() >= 10)
            .expect("load/store ops are common");
        let inject = Inject {
            perturb_engine: Some(OpClass::LoadStore),
            ..Inject::none()
        };
        let m = minimize(&case, inject, 300).expect("case diverges under injection");
        assert!(m.case.has_class(OpClass::LoadStore), "trigger kept");
        assert!(
            m.case.ops.len() < case.ops.len(),
            "shrunk: {} -> {}",
            case.ops.len(),
            m.case.ops.len()
        );
        assert!(m.divergence.stage.starts_with("mode:engine"));
        // The minimized case still fails the same way, and the pristine
        // oracle (no injection) passes it — the "bug" is the injection.
        assert!(check_case(&m.case, inject).is_err());
        assert!(check_case(&m.case, Inject::none()).is_ok());
    }

    #[test]
    fn non_diverging_case_returns_none() {
        let case = generate(3);
        assert!(minimize(&case, Inject::none(), 50).is_none());
    }
}
