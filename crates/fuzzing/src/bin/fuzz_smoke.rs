//! The offline fuzzing smoke gate: a fixed-seed corpus through the full
//! differential oracle matrix, with zero divergences required.
//!
//!     cargo run --release -p chimera-fuzzing --bin fuzz_smoke
//!
//! Environment knobs (all optional, defaults are the CI gate):
//!
//! * `FUZZ_CASES`  — corpus size (default 500).
//! * `FUZZ_SEED`   — root seed (default 0xC41A5); per-case seeds are
//!   drawn from the root's `"corpus"` stream.
//! * `FUZZ_INJECT` — op-class name (`alu`, `vector`, `loadstore`, ...):
//!   deliberately perturb the engine observation for cases containing
//!   that class. The special value `jit` perturbs the *JIT-mode*
//!   observation instead (for ALU-bearing cases). This is the
//!   mutation-testing mode — the gate must then *fail*, minimize, and
//!   emit a reproducer; it proves the oracle and shrinker actually work.
//! * `FUZZ_WRITE_REPRO` — set to `0` to skip writing the reproducer
//!   file on divergence (it is always printed).
//!
//! On divergence: the case is delta-minimized (same-stage predicate),
//! a reproducer file is written to `tests/reproducers/` (override with
//! `CHIMERA_REPRO_DIR`), its text is printed, and the process exits
//! non-zero. On success: per-feature coverage counters are asserted
//! non-vacuous and dumped to `results/fuzz-smoke.json`.

use chimera_fuzzing::repro::reproducer_dir;
use chimera_fuzzing::{
    check_case, generate, minimize, render_reproducer, Coverage, Inject, OpClass, Reproducer,
};
use chimera_isa::prng::Prng;
use std::io::Write;
use std::time::Instant;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| {
            let v = v.trim();
            v.strip_prefix("0x")
                .map(|h| u64::from_str_radix(h, 16).ok())
                .unwrap_or_else(|| v.parse().ok())
        })
        .unwrap_or(default)
}

fn main() {
    let cases = env_u64("FUZZ_CASES", 500);
    let root_seed = env_u64("FUZZ_SEED", 0xC41A5);
    let write_repro = std::env::var("FUZZ_WRITE_REPRO").map_or(true, |v| v != "0");
    let inject = match std::env::var("FUZZ_INJECT") {
        Ok(name) if name == "jit" => {
            eprintln!("NOTE: fault injection active (perturbing the JIT column on ALU cases)");
            Inject {
                perturb_jit: Some(OpClass::Alu),
                ..Inject::none()
            }
        }
        Ok(name) if !name.is_empty() => {
            let class = OpClass::parse(&name)
                .unwrap_or_else(|| panic!("FUZZ_INJECT: unknown op class '{name}'"));
            eprintln!("NOTE: fault injection active (perturbing engine on '{name}' cases)");
            Inject {
                perturb_engine: Some(class),
                ..Inject::none()
            }
        }
        _ => Inject::none(),
    };

    println!("fuzz_smoke: {cases} cases from root seed {root_seed:#x}");
    let mut corpus = Prng::stream(root_seed, "corpus");
    let mut cov = Coverage::default();
    let started = Instant::now();

    for i in 0..cases {
        let case_seed = corpus.next_u64();
        let case = generate(case_seed);
        match check_case(&case, inject) {
            Ok(c) => cov.add(&c),
            Err(d) => {
                eprintln!(
                    "\nDIVERGENCE at case {i}/{cases} (seed {case_seed:#x})\n  stage:  {}\n  detail: {}",
                    d.stage, d.detail
                );
                eprintln!("minimizing ({} ops)...", case.ops.len());
                let m = minimize(&case, inject, 300)
                    .expect("a diverging case must still diverge under the minimizer");
                eprintln!(
                    "minimized to {} op(s) in {} oracle evaluations",
                    m.case.ops.len(),
                    m.evals
                );
                let r = Reproducer::from_minimized(&m);
                let text = render_reproducer(&r);
                if write_repro {
                    let dir = reproducer_dir();
                    std::fs::create_dir_all(&dir).expect("create reproducer dir");
                    let path = dir.join(r.filename());
                    std::fs::write(&path, &text).expect("write reproducer");
                    eprintln!("reproducer written to {}", path.display());
                }
                eprintln!("---\n{text}---");
                std::process::exit(1);
            }
        }
        if (i + 1) % 100 == 0 {
            println!(
                "  {}/{cases} cases, {} rewrites, {} smile entries, {:.1}s",
                i + 1,
                cov.engine_runs,
                cov.smile_entries,
                started.elapsed().as_secs_f64()
            );
        }
    }

    // Non-vacuity: the corpus must actually exercise every feature the
    // generator claims to cover. A zero here means the generator (or an
    // oracle family's eligibility gate) silently regressed.
    let jit = chimera_emu::jit_available();
    for (name, v) in cov.entries() {
        if !jit && (name == "jit_execs" || name == "jit_chained") {
            // Without executable pages the JIT column degrades to engine
            // semantics: the transparency checks ran, but no compiled
            // trace could execute.
            continue;
        }
        assert!(v > 0, "coverage '{name}' is zero — the corpus is vacuous");
    }

    let secs = started.elapsed().as_secs_f64();
    println!(
        "\nzero divergences across {} cases in {secs:.1}s",
        cov.cases
    );
    for (name, v) in cov.entries() {
        println!("  {name:>14}: {v}");
    }

    std::fs::create_dir_all("results").expect("create results dir");
    let mut f = std::fs::File::create("results/fuzz-smoke.json").expect("create json");
    let fields: Vec<String> = cov
        .entries()
        .iter()
        .map(|(name, v)| format!("    \"{name}\": {v}"))
        .collect();
    writeln!(
        f,
        "{{\n  \"root_seed\": {root_seed},\n  \"divergences\": 0,\n  \"seconds\": {secs:.3},\n  \"coverage\": {{\n{}\n  }}\n}}",
        fields.join(",\n")
    )
    .expect("write json");
    println!("results -> results/fuzz-smoke.json");
}
