//! The reproducer file format: a divergence, minimized, serialized as a
//! small text file under `tests/reproducers/` and replayed as a
//! regression test.
//!
//! A reproducer does **not** store the program — it stores the recipe:
//! `(seed, generator version, kept op indices, build flags)`. The
//! generator is a pure function of the seed (see [`crate::gen`]), so the
//! recipe regenerates the exact case; the rendered assembly is appended
//! after a `--- source ---` marker purely for human readers and is
//! ignored on parse. [`GEN_VERSION`] is checked on replay: a reproducer
//! written by an incompatible generator refuses to replay (loudly)
//! instead of silently replaying a different program.

use crate::gen::{generate, FuzzCase, GEN_VERSION};
use crate::minimize::Minimized;
use std::path::PathBuf;

/// The header marker every reproducer file starts with.
pub const MAGIC: &str = "chimera-fuzz-repro v1";
/// The marker separating the machine-read header from the informative
/// source listing.
pub const SOURCE_MARKER: &str = "--- source ---";

/// A parsed (or to-be-written) reproducer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reproducer {
    /// Root seed of the diverging case.
    pub seed: u64,
    /// Generator version the recipe assumes.
    pub gen_version: u32,
    /// Kept op indices (`None` = the full generated op list).
    pub keep: Option<Vec<usize>>,
    /// Build flag: compressed encodings.
    pub compress: bool,
    /// Build flag: cross-region straddle split.
    pub straddle: bool,
    /// Build flag: trapping tail.
    pub trap_tail: bool,
    /// Outer loop iterations.
    pub iters: u64,
    /// The oracle stage that diverged.
    pub stage: String,
    /// Human-readable divergence description (informative).
    pub detail: String,
}

impl Reproducer {
    /// Builds the recipe for a minimization result.
    pub fn from_minimized(m: &Minimized) -> Reproducer {
        Reproducer {
            seed: m.case.seed,
            gen_version: GEN_VERSION,
            keep: Some(m.keep.clone()),
            compress: m.case.compress,
            straddle: m.case.straddle,
            trap_tail: m.case.trap_tail,
            iters: m.case.iters,
            stage: m.divergence.stage.clone(),
            detail: m.divergence.detail.clone(),
        }
    }

    /// Regenerates the case this recipe describes.
    pub fn to_case(&self) -> Result<FuzzCase, String> {
        if self.gen_version != GEN_VERSION {
            return Err(format!(
                "reproducer was written by generator v{}, this build is v{GEN_VERSION}: \
                 regenerate the reproducer instead of replaying a different program",
                self.gen_version
            ));
        }
        let mut case = generate(self.seed);
        if let Some(keep) = &self.keep {
            case = case.restrict(keep);
        }
        case.compress = self.compress;
        case.straddle = self.straddle;
        case.trap_tail = self.trap_tail;
        case.iters = self.iters;
        Ok(case)
    }

    /// The conventional file name for this reproducer.
    pub fn filename(&self) -> String {
        let stage: String = self
            .stage
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        format!("seed-{:#x}-{stage}.txt", self.seed)
    }
}

/// Renders the reproducer file text (header + informative source).
pub fn render_reproducer(r: &Reproducer) -> String {
    let keep = match &r.keep {
        None => "all".to_string(),
        Some(k) => {
            if k.is_empty() {
                "none".to_string()
            } else {
                k.iter()
                    .map(|u| u.to_string())
                    .collect::<Vec<_>>()
                    .join(" ")
            }
        }
    };
    let source = r
        .to_case()
        .map(|c| c.source())
        .unwrap_or_else(|e| format!("<unrenderable: {e}>\n"));
    format!(
        "{MAGIC}\n\
         seed: {:#x}\n\
         gen: {}\n\
         keep: {keep}\n\
         compress: {}\n\
         straddle: {}\n\
         trap_tail: {}\n\
         iters: {}\n\
         stage: {}\n\
         detail: {}\n\
         {SOURCE_MARKER}\n{source}",
        r.seed,
        r.gen_version,
        r.compress,
        r.straddle,
        r.trap_tail,
        r.iters,
        r.stage,
        r.detail.replace('\n', " / "),
    )
}

/// Parses a reproducer file. The source listing (if any) is ignored.
pub fn parse_reproducer(text: &str) -> Result<Reproducer, String> {
    let mut lines = text.lines();
    if lines.next().map(str::trim) != Some(MAGIC) {
        return Err(format!("missing '{MAGIC}' header"));
    }
    let mut r = Reproducer {
        seed: 0,
        gen_version: 0,
        keep: None,
        compress: false,
        straddle: false,
        trap_tail: false,
        iters: 3,
        stage: String::new(),
        detail: String::new(),
    };
    let mut seen_seed = false;
    for line in lines {
        let line = line.trim();
        if line == SOURCE_MARKER {
            break;
        }
        if line.is_empty() {
            continue;
        }
        let (key, value) = line
            .split_once(':')
            .ok_or_else(|| format!("malformed header line: {line}"))?;
        let value = value.trim();
        match key.trim() {
            "seed" => {
                let v = value.strip_prefix("0x").unwrap_or(value);
                r.seed = u64::from_str_radix(v, 16)
                    .or_else(|_| value.parse())
                    .map_err(|_| format!("bad seed: {value}"))?;
                seen_seed = true;
            }
            "gen" => r.gen_version = value.parse().map_err(|_| format!("bad gen: {value}"))?,
            "keep" => {
                r.keep = match value {
                    "all" => None,
                    "none" => Some(Vec::new()),
                    _ => Some(
                        value
                            .split_whitespace()
                            .map(|t| t.parse().map_err(|_| format!("bad keep index: {t}")))
                            .collect::<Result<Vec<usize>, String>>()?,
                    ),
                }
            }
            "compress" => r.compress = value == "true",
            "straddle" => r.straddle = value == "true",
            "trap_tail" => r.trap_tail = value == "true",
            "iters" => r.iters = value.parse().map_err(|_| format!("bad iters: {value}"))?,
            "stage" => r.stage = value.to_string(),
            "detail" => r.detail = value.to_string(),
            other => return Err(format!("unknown header key: {other}")),
        }
    }
    if !seen_seed {
        return Err("reproducer is missing its seed".into());
    }
    Ok(r)
}

/// The committed reproducer directory: `$CHIMERA_REPRO_DIR` if set,
/// otherwise `tests/reproducers/` at the workspace root.
pub fn reproducer_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("CHIMERA_REPRO_DIR") {
        return PathBuf::from(dir);
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("tests/reproducers")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Reproducer {
        Reproducer {
            seed: 0xC41A5,
            gen_version: GEN_VERSION,
            keep: Some(vec![0, 2, 5]),
            compress: true,
            straddle: false,
            trap_tail: false,
            iters: 3,
            stage: "mode:engine-cache".into(),
            detail: "x5: 0x1 vs 0x2".into(),
        }
    }

    #[test]
    fn roundtrips() {
        let r = sample();
        let text = render_reproducer(&r);
        let parsed = parse_reproducer(&text).unwrap();
        assert_eq!(parsed, r);
        // And the regenerated case matches the recipe.
        let case = parsed.to_case().unwrap();
        assert_eq!(case.kept_uids(), vec![0, 2, 5]);
        assert!(case.compress);
        assert_eq!(case.iters, 3);
    }

    #[test]
    fn full_keep_roundtrips_as_all() {
        let mut r = sample();
        r.keep = None;
        let parsed = parse_reproducer(&render_reproducer(&r)).unwrap();
        assert_eq!(parsed.keep, None);
        assert_eq!(
            parsed.to_case().unwrap().ops.len(),
            generate(r.seed).ops.len()
        );
    }

    #[test]
    fn version_mismatch_refuses_to_replay() {
        let mut r = sample();
        r.gen_version = GEN_VERSION + 1;
        assert!(r.to_case().is_err());
    }

    #[test]
    fn source_listing_is_ignored_on_parse() {
        let r = sample();
        let mut text = render_reproducer(&r);
        text.push_str("\ngarbage: that is not a header\n");
        assert_eq!(parse_reproducer(&text).unwrap(), r);
    }
}
