//! The seeded program generator: random-but-valid RV64GCV programs,
//! weighted over the corners the rewriter and the tiered execution
//! engine historically get wrong — compressed/uncompressed mixes,
//! computed jumps through data-section tables, self-modifying stores
//! into W+X text, cross-region instruction straddles, and trapping
//! tails.
//!
//! Reproducibility contract: a [`FuzzCase`] is a **pure function of its
//! seed**. Generation draws from named [`Prng`] streams (`"shape"`,
//! `"body"`, `"consts"`), so adding a new op kind or reordering draws in
//! one stream cannot shift the others, and a committed reproducer file
//! (seed + kept op indices + flags) regenerates the exact program years
//! later. Bump [`GEN_VERSION`] whenever a change *would* shift generated
//! programs for an existing seed — replay refuses mismatched versions
//! instead of silently replaying a different program.
//!
//! Every generated program terminates on its own: the only backward
//! branch is the outer loop on a pre-set counter, every load/store is
//! masked into a scratch region, every computed jump indexes a table of
//! valid code labels, and every SMC store patches a dedicated slot with
//! a valid `addi` encoding.

use chimera_isa::prng::Prng;
use chimera_obj::{assemble, AsmOptions, Binary, Section};

/// The generator version a reproducer file records. Bump on any change
/// that alters the program a given `(seed, keep)` pair produces.
pub const GEN_VERSION: u32 = 1;

/// Size of the writable scratch region at the head of `.data`. Every
/// masked load/store and vector block lands inside it; the bytes after
/// it are computed-jump `.dword` tables, which rewrite engines that move
/// code legitimately relocate (so cross-binary memory comparisons stop
/// at this prefix).
pub const SCRATCH_LEN: usize = 256;

/// The register pool ops draw operands from. Deliberately excludes the
/// generator's reserved registers: `t3`/`t4` (rendering scratch), `t6`
/// (loop counter), `s4`/`s5` (jump/SMC accumulators), `s11` (scratch
/// base), `ra` (computed-jump linkage) and the ABI registers the runner
/// owns (`sp`, `gp`, `a7`).
pub const REGS: &[&str] = &["t0", "t1", "t2", "a0", "a1", "a2", "a3", "s2", "s3", "s6"];

/// Coarse op classification — the unit the fault-injection hook and the
/// minimizer's reporting speak in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Register-register ALU.
    Alu,
    /// Register-immediate ALU.
    AluImm,
    /// Constant shifts.
    Shift,
    /// Zbb bit manipulation.
    Bitmanip,
    /// Masked aligned load/store into the scratch region.
    LoadStore,
    /// Forward conditional branch over a small embedded body.
    Branch,
    /// Indirect jump through a data-section table (`jalr`).
    ComputedJump,
    /// RVV block over the scratch region.
    Vector,
    /// Scalar FP block folded into the accumulator.
    Fp,
    /// Self-modifying store patching a dedicated text slot.
    Smc,
}

impl OpClass {
    /// Parses the lowercase class name (the reproducer-file spelling).
    pub fn parse(s: &str) -> Option<OpClass> {
        Some(match s {
            "alu" => OpClass::Alu,
            "aluimm" => OpClass::AluImm,
            "shift" => OpClass::Shift,
            "bitmanip" => OpClass::Bitmanip,
            "loadstore" => OpClass::LoadStore,
            "branch" => OpClass::Branch,
            "computedjump" => OpClass::ComputedJump,
            "vector" => OpClass::Vector,
            "fp" => OpClass::Fp,
            "smc" => OpClass::Smc,
            _ => return None,
        })
    }

    /// The lowercase class name.
    pub fn name(&self) -> &'static str {
        match self {
            OpClass::Alu => "alu",
            OpClass::AluImm => "aluimm",
            OpClass::Shift => "shift",
            OpClass::Bitmanip => "bitmanip",
            OpClass::LoadStore => "loadstore",
            OpClass::Branch => "branch",
            OpClass::ComputedJump => "computedjump",
            OpClass::Vector => "vector",
            OpClass::Fp => "fp",
            OpClass::Smc => "smc",
        }
    }
}

/// One generated loop-body operation. Operand fields are indices into
/// [`REGS`]; labels are derived from the op's generation-time index, so
/// a delta-minimized subset renders with stable names.
#[derive(Debug, Clone)]
pub enum Op {
    /// `op a, b, c`.
    Alu {
        /// Mnemonic.
        op: &'static str,
        /// Destination pool index.
        a: usize,
        /// Source pool indices.
        b: usize,
        /// Second source pool index.
        c: usize,
    },
    /// `op a, b, imm`.
    AluImm {
        /// Mnemonic.
        op: &'static str,
        /// Destination pool index.
        a: usize,
        /// Source pool index.
        b: usize,
        /// 12-bit immediate.
        imm: i64,
    },
    /// `op a, b, sh` (constant shift).
    Shift {
        /// Mnemonic.
        op: &'static str,
        /// Destination pool index.
        a: usize,
        /// Source pool index.
        b: usize,
        /// Shift amount in `[1, 63]`.
        sh: u64,
    },
    /// Zbb unary (`clz`/`ctz`/`cpop`) or `andn`.
    Bitmanip {
        /// Mnemonic.
        op: &'static str,
        /// Destination pool index.
        a: usize,
        /// Source pool index.
        b: usize,
        /// Second source pool index (ignored by the unary forms).
        c: usize,
    },
    /// Masked aligned access into the scratch region.
    LoadStore {
        /// Index into the `(store, load)` mnemonic pairs.
        width: usize,
        /// Store (`true`) or load (`false`).
        store: bool,
        /// Pool index masked into the scratch offset.
        addr: usize,
        /// Pool index stored/loaded.
        val: usize,
    },
    /// Forward conditional branch over its own embedded body.
    Branch {
        /// Branch mnemonic.
        op: &'static str,
        /// Compared pool indices.
        a: usize,
        /// Second compared pool index.
        b: usize,
        /// Skipped body: `(pool index, addi immediate)` per instruction.
        body: Vec<(usize, i64)>,
    },
    /// `jalr` through a `.data` jump table of `targets` labels, indexed
    /// by a masked pool register.
    ComputedJump {
        /// Pool index supplying the (masked) table index.
        idx: usize,
        /// Table size: 4, 8 or 16.
        targets: usize,
        /// Per-target accumulator deltas are derived from this.
        salt: u64,
    },
    /// One of the fixed RVV blocks over the scratch region.
    Vector {
        /// Block variant in `[0, 3)`.
        variant: usize,
    },
    /// Scalar FP block: converts, multiplies, fused-multiply-adds and
    /// folds the (saturating) integer conversion into `s4`.
    Fp {
        /// Pool index seeding the FP pipeline.
        a: usize,
    },
    /// Self-modifying store: patches this op's own `addi s5, s5, _` slot
    /// with a freshly encoded immediate, so the next loop iteration
    /// executes the new instruction.
    Smc {
        /// The immediate the patch encodes.
        imm: i64,
    },
}

impl Op {
    /// This op's coarse class.
    pub fn class(&self) -> OpClass {
        match self {
            Op::Alu { .. } => OpClass::Alu,
            Op::AluImm { .. } => OpClass::AluImm,
            Op::Shift { .. } => OpClass::Shift,
            Op::Bitmanip { .. } => OpClass::Bitmanip,
            Op::LoadStore { .. } => OpClass::LoadStore,
            Op::Branch { .. } => OpClass::Branch,
            Op::ComputedJump { .. } => OpClass::ComputedJump,
            Op::Vector { .. } => OpClass::Vector,
            Op::Fp { .. } => OpClass::Fp,
            Op::Smc { .. } => OpClass::Smc,
        }
    }
}

/// One loop-body op together with the index it was generated at — the
/// stable identity minimized subsets and rendered labels key on.
#[derive(Debug, Clone)]
pub struct GenOp {
    /// Generation-time index (stable across [`FuzzCase::restrict`]).
    pub uid: usize,
    /// The operation.
    pub op: Op,
}

/// A generated fuzz case: the pure-function-of-seed program plus the
/// build flags the oracle varies.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// The root seed this case regenerates from.
    pub seed: u64,
    /// Assemble with compressed encodings (never set for SMC cases:
    /// patch slots must stay 4-byte `addi`s).
    pub compress: bool,
    /// Split `.text` mid-instruction into two mappings (cross-region
    /// straddle) at build time.
    pub straddle: bool,
    /// Outer loop iterations.
    pub iters: u64,
    /// End the program with an `ebreak` instead of a clean exit.
    pub trap_tail: bool,
    /// The loop body.
    pub ops: Vec<GenOp>,
}

/// What [`FuzzCase::build`] produced.
pub struct BuiltCase {
    /// The assembled (and possibly straddle-split) binary.
    pub bin: Binary,
    /// Whether the straddle split actually happened (it needs a 4-byte
    /// instruction strictly inside `.text`).
    pub straddled: bool,
}

/// Generates the case for `seed`. Pure: same seed, same case, forever
/// (under one [`GEN_VERSION`]).
// The `*body.pick(&[...])` derefs copy a `&'static str` out from behind
// a temporary slice; clippy's auto-deref suggestion would borrow the
// temporary instead and not compile.
#[allow(clippy::explicit_auto_deref)]
pub fn generate(seed: u64) -> FuzzCase {
    let root = Prng::new(seed);
    let mut shape = root.split("shape");
    let mut body = root.split("body");

    let allow_vector = shape.chance(0.55);
    let allow_fp = shape.chance(0.45);
    let allow_cjump = shape.chance(0.50);
    let allow_smc = shape.chance(0.30);
    let trap_tail = shape.chance(0.10);
    let n_ops = shape.range_usize(6, 36);
    let iters = shape.below(7) + 3;

    let mut ops = Vec::with_capacity(n_ops);
    for uid in 0..n_ops {
        let op = loop {
            match body.below(16) {
                0..=2 => {
                    break Op::Alu {
                        op: *body.pick(&["add", "sub", "xor", "or", "and", "sll", "srl", "mul"]),
                        a: body.range_usize(0, REGS.len()),
                        b: body.range_usize(0, REGS.len()),
                        c: body.range_usize(0, REGS.len()),
                    }
                }
                3..=4 => {
                    break Op::AluImm {
                        op: *body.pick(&["addi", "xori", "ori", "andi"]),
                        a: body.range_usize(0, REGS.len()),
                        b: body.range_usize(0, REGS.len()),
                        imm: body.range_i64(-2048, 2048),
                    }
                }
                5 => {
                    break Op::Shift {
                        op: *body.pick(&["slli", "srli", "srai"]),
                        a: body.range_usize(0, REGS.len()),
                        b: body.range_usize(0, REGS.len()),
                        sh: body.below(63) + 1,
                    }
                }
                6 => {
                    break Op::Bitmanip {
                        op: *body.pick(&["clz", "ctz", "cpop", "andn"]),
                        a: body.range_usize(0, REGS.len()),
                        b: body.range_usize(0, REGS.len()),
                        c: body.range_usize(0, REGS.len()),
                    }
                }
                7..=9 => {
                    break Op::LoadStore {
                        width: body.range_usize(0, 3),
                        store: body.next_bool(),
                        addr: body.range_usize(0, REGS.len()),
                        val: body.range_usize(0, REGS.len()),
                    }
                }
                10..=11 => {
                    let len = body.range_usize(1, 4);
                    break Op::Branch {
                        op: *body.pick(&["beq", "bne", "blt", "bgeu"]),
                        a: body.range_usize(0, REGS.len()),
                        b: body.range_usize(0, REGS.len()),
                        body: (0..len)
                            .map(|_| (body.range_usize(0, REGS.len()), body.range_i64(-64, 64)))
                            .collect(),
                    };
                }
                12 if allow_cjump => {
                    break Op::ComputedJump {
                        idx: body.range_usize(0, REGS.len()),
                        targets: *body.pick(&[4usize, 8, 16]),
                        salt: body.next_u64(),
                    }
                }
                13 if allow_vector => {
                    break Op::Vector {
                        variant: body.range_usize(0, 3),
                    }
                }
                14 if allow_fp => {
                    break Op::Fp {
                        a: body.range_usize(0, REGS.len()),
                    }
                }
                15 if allow_smc => {
                    break Op::Smc {
                        // Positive and >= 64 so the slot instruction is
                        // visibly distinct from what the patch writes.
                        imm: body.range_i64(64, 128),
                    };
                }
                _ => continue, // disabled feature: redraw
            }
        };
        ops.push(GenOp { uid, op });
    }

    let uses_smc = ops.iter().any(|g| g.op.class() == OpClass::Smc);
    // SMC patch slots must stay 4-byte instructions the encoded patch
    // word can overwrite in place.
    let compress = !uses_smc && shape.chance(0.40);
    let straddle = shape.chance(0.18);

    FuzzCase {
        seed,
        compress,
        straddle,
        iters,
        trap_tail,
        ops,
    }
}

/// RV64I `addi rd, rs1, imm` encoding (the SMC patch payload).
pub fn encode_addi(rd: u32, rs1: u32, imm: i32) -> u32 {
    ((imm as u32 & 0xfff) << 20) | (rs1 << 15) | (rd << 7) | 0x13
}

impl FuzzCase {
    /// Whether any kept op has the given class.
    pub fn has_class(&self, class: OpClass) -> bool {
        self.ops.iter().any(|g| g.op.class() == class)
    }

    /// The kept ops' generation-time indices.
    pub fn kept_uids(&self) -> Vec<usize> {
        self.ops.iter().map(|g| g.uid).collect()
    }

    /// The case with only the ops whose `uid` appears in `keep`
    /// (indices into the *originally generated* op list — composing
    /// restrictions keeps uids stable).
    pub fn restrict(&self, keep: &[usize]) -> FuzzCase {
        let mut c = self.clone();
        c.ops.retain(|g| keep.contains(&g.uid));
        c
    }

    /// Renders the program source. Stable per `(ops, flags)`.
    pub fn source(&self) -> String {
        let mut data = format!("scratch: .zero {SCRATCH_LEN}\n");
        let mut text = String::new();
        let mut tail = String::new();

        text.push_str("_start:\n    la s11, scratch\n");
        let root = Prng::new(self.seed);
        let mut consts = root.split("consts");
        for (n, r) in REGS.iter().enumerate() {
            text.push_str(&format!(
                "    li {r}, {}\n",
                consts.below(1 << 20) + n as u64
            ));
        }
        text.push_str("    li s4, 1\n    li s5, 1\n");
        text.push_str(&format!("    li t6, {}\n", self.iters));
        text.push_str("loop:\n");

        for g in &self.ops {
            let uid = g.uid;
            match &g.op {
                Op::Alu { op, a, b, c } => {
                    text.push_str(&format!(
                        "    {op} {}, {}, {}\n",
                        REGS[*a], REGS[*b], REGS[*c]
                    ));
                }
                Op::AluImm { op, a, b, imm } => {
                    text.push_str(&format!("    {op} {}, {}, {imm}\n", REGS[*a], REGS[*b]));
                }
                Op::Shift { op, a, b, sh } => {
                    text.push_str(&format!("    {op} {}, {}, {sh}\n", REGS[*a], REGS[*b]));
                }
                Op::Bitmanip { op, a, b, c } => {
                    if *op == "andn" {
                        text.push_str(&format!(
                            "    andn {}, {}, {}\n",
                            REGS[*a], REGS[*b], REGS[*c]
                        ));
                    } else {
                        text.push_str(&format!("    {op} {}, {}\n", REGS[*a], REGS[*b]));
                    }
                }
                Op::LoadStore {
                    width,
                    store,
                    addr,
                    val,
                } => {
                    let (st, ld) = [("sd", "ld"), ("sw", "lw"), ("sb", "lbu")][*width];
                    text.push_str(&format!("    andi t3, {}, 248\n", REGS[*addr]));
                    text.push_str("    add t3, t3, s11\n");
                    if *store {
                        text.push_str(&format!("    {st} {}, 0(t3)\n", REGS[*val]));
                    } else {
                        text.push_str(&format!("    {ld} {}, 0(t3)\n", REGS[*val]));
                    }
                }
                Op::Branch { op, a, b, body } => {
                    text.push_str(&format!("    {op} {}, {}, skip{uid}\n", REGS[*a], REGS[*b]));
                    for (r, imm) in body {
                        text.push_str(&format!("    addi {}, {}, {imm}\n", REGS[*r], REGS[*r]));
                    }
                    text.push_str(&format!("skip{uid}:\n"));
                }
                Op::ComputedJump { idx, targets, salt } => {
                    data.push_str(&format!("jt{uid}:"));
                    for t in 0..*targets {
                        data.push_str(&format!(" .dword cj{uid}_t{t}\n"));
                    }
                    let mask = targets * 8 - 8;
                    text.push_str(&format!("    la t3, jt{uid}\n"));
                    text.push_str(&format!("    andi t4, {}, {mask}\n", REGS[*idx]));
                    text.push_str("    add t3, t3, t4\n    ld t3, 0(t3)\n    jalr t3\n");
                    for t in 0..*targets {
                        let delta = (salt.wrapping_add(t as u64)) % 13 + 1;
                        tail.push_str(&format!(
                            "cj{uid}_t{t}:\n    addi s4, s4, {delta}\n    ret\n"
                        ));
                    }
                }
                Op::Vector { variant } => match variant {
                    0 => text.push_str(
                        "    li t3, 4\n    vsetvli t4, t3, e64, m1, ta, ma\n    \
                         vle64.v v1, (s11)\n    vadd.vv v2, v1, v1\n    vse64.v v2, (s11)\n",
                    ),
                    1 => text.push_str(
                        "    li t3, 4\n    vsetvli t4, t3, e64, m1, ta, ma\n    \
                         vle64.v v1, (s11)\n    vmv.v.i v2, 0\n    vredsum.vs v3, v1, v2\n    \
                         vmv.x.s t3, v3\n    xor s4, s4, t3\n",
                    ),
                    _ => text.push_str(
                        "    li t3, 2\n    vsetvli t4, t3, e64, m1, ta, ma\n    \
                         vle64.v v1, (s11)\n    vand.vv v2, v1, v1\n    vse64.v v2, (s11)\n",
                    ),
                },
                Op::Fp { a } => {
                    text.push_str(&format!("    fcvt.d.l fa0, {}\n", REGS[*a]));
                    text.push_str(
                        "    fcvt.d.l fa1, s4\n    fmul.d fa2, fa0, fa1\n    \
                         fmadd.d fa3, fa0, fa1, fa2\n    fcvt.l.d t3, fa3\n    xor s4, s4, t3\n",
                    );
                }
                Op::Smc { imm } => {
                    // The slot executes, then this iteration patches it;
                    // the *next* iteration runs the patched encoding —
                    // the decode cache must observe the invalidation.
                    let word = encode_addi(21, 21, *imm as i32); // s5 = x21
                    text.push_str(&format!("patch{uid}:\n    addi s5, s5, 64\n"));
                    text.push_str(&format!("    la t3, patch{uid}\n"));
                    text.push_str(&format!("    li t4, {word}\n"));
                    text.push_str("    sw t4, 0(t3)\n");
                }
            }
        }

        text.push_str("    addi t6, t6, -1\n    bnez t6, loop\n");
        if self.trap_tail {
            text.push_str("    ebreak\n");
        }
        text.push_str(
            "    xor a0, a0, a1\n    xor a0, a0, s2\n    xor a0, a0, s4\n    \
             xor a0, a0, s5\n    andi a0, a0, 255\n    li a7, 93\n    ecall\n",
        );

        format!(".data\n{data}.text\n{text}{tail}")
    }

    /// Assembles the case, applying the SMC permission flip and the
    /// straddle section split. `Err` carries the assembler message — a
    /// generator bug the oracle reports as a divergence.
    pub fn build(&self) -> Result<BuiltCase, String> {
        let src = self.source();
        let mut bin = assemble(
            &src,
            AsmOptions {
                compress: self.compress,
                ..Default::default()
            },
        )
        .map_err(|e| format!("{e:?}"))?;

        if self.has_class(OpClass::Smc) {
            // Guest stores into W+X text: the emulator's SMC path.
            bin.section_mut(".text").expect(".text exists").perms.w = true;
        }

        let mut straddled = false;
        if self.straddle {
            straddled = split_text_mid_instruction(&mut bin);
        }
        Ok(BuiltCase { bin, straddled })
    }
}

/// Splits `.text` into two adjacent mappings with the boundary in the
/// *middle* of a 4-byte instruction near the section's midpoint, so
/// fetches and decode-cache blocks straddle a region edge. Returns
/// whether a split point existed.
fn split_text_mid_instruction(bin: &mut Binary) -> bool {
    let disasm = chimera_analysis::disassemble(bin);
    let text = bin.section(".text").expect(".text exists").clone();
    let cands: Vec<u64> = disasm
        .insts
        .values()
        .filter(|di| di.len == 4 && di.addr > text.addr && di.addr + 4 < text.end())
        .map(|di| di.addr)
        .collect();
    let Some(&addr) = cands.get(cands.len() / 2) else {
        return false;
    };
    let cut = addr + 2;
    let off = (cut - text.addr) as usize;
    let idx = bin
        .sections
        .iter()
        .position(|s| s.name == ".text")
        .expect(".text exists");
    let hi = Section {
        name: ".text.hi".into(),
        addr: cut,
        data: text.data[off..].to_vec(),
        perms: text.perms,
    };
    bin.sections[idx].data.truncate(off);
    bin.sections.insert(idx + 1, hi);
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_pure() {
        for seed in 0..50 {
            let a = generate(seed);
            let b = generate(seed);
            assert_eq!(a.source(), b.source(), "seed {seed}");
            assert_eq!(a.compress, b.compress);
            assert_eq!(a.straddle, b.straddle);
        }
    }

    #[test]
    fn every_case_assembles() {
        for seed in 0..200 {
            let case = generate(seed);
            case.build().unwrap_or_else(|e| {
                panic!("seed {seed} fails to assemble: {e}\n{}", case.source())
            });
        }
    }

    #[test]
    fn smc_cases_never_compress() {
        let mut seen = 0;
        for seed in 0..400 {
            let case = generate(seed);
            if case.has_class(OpClass::Smc) {
                seen += 1;
                assert!(!case.compress, "seed {seed}: SMC case compressed");
            }
        }
        assert!(seen > 0, "corpus must contain SMC cases");
    }

    #[test]
    fn restrict_keeps_uids_and_labels_stable() {
        let case = generate(11);
        let uids = case.kept_uids();
        let half: Vec<usize> = uids.iter().copied().step_by(2).collect();
        let r = case.restrict(&half);
        assert_eq!(r.kept_uids(), half);
        // Restricting a restriction with the same set is a no-op.
        assert_eq!(r.restrict(&half).source(), r.source());
        r.build().expect("restricted case still assembles");
    }

    #[test]
    fn straddle_split_preserves_bytes() {
        // Find a seed whose straddle actually applies, then check the
        // two text mappings concatenate to the unsplit image.
        for seed in 0..200u64 {
            let mut case = generate(seed);
            case.straddle = true;
            let built = case.build().unwrap();
            if !built.straddled {
                continue;
            }
            case.straddle = false;
            let plain = case.build().unwrap();
            let lo = built.bin.section(".text").unwrap();
            let hi = built.bin.section(".text.hi").unwrap();
            assert_eq!(hi.addr, lo.end());
            assert_eq!(hi.addr % 4, 2, "cut must be mid-instruction");
            let mut joined = lo.data.clone();
            joined.extend_from_slice(&hi.data);
            assert_eq!(joined, plain.bin.section(".text").unwrap().data);
            return;
        }
        panic!("no straddleable case in 200 seeds");
    }
}
