//! Regression tests for the fuzzing harness itself:
//!
//! * every committed reproducer under `tests/reproducers/` replays
//!   cleanly through the pristine oracle (the divergence it recorded is
//!   fixed — or, for mutation-testing drills, only ever existed under
//!   injection);
//! * a small fixed-seed corpus stays divergence-free;
//! * an injected fault round-trips end to end: oracle detects it, the
//!   minimizer shrinks it to the triggering op class, the reproducer
//!   file serializes, parses, regenerates the same case, and the case
//!   still fails under injection while passing the pristine oracle.

use chimera_fuzzing::repro::reproducer_dir;
use chimera_fuzzing::{
    check_case, generate, minimize, parse_reproducer, render_reproducer, Inject, OpClass,
    Reproducer,
};
use chimera_isa::prng::Prng;

#[test]
fn committed_reproducers_replay_clean() {
    let dir = reproducer_dir();
    let mut replayed = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("reproducer dir {}: {e}", dir.display()))
        .map(|e| e.expect("read_dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "txt"))
        .collect();
    entries.sort();
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("read reproducer");
        let r = parse_reproducer(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let case = r
            .to_case()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        if let Err(d) = check_case(&case, Inject::none()) {
            panic!(
                "{} regressed: diverges again at {}: {}",
                path.display(),
                d.stage,
                d.detail
            );
        }
        replayed += 1;
    }
    assert!(
        replayed > 0,
        "no committed reproducers found in {}",
        dir.display()
    );
}

#[test]
fn mini_corpus_is_divergence_free() {
    // A 40-case slice of the smoke corpus — cheap enough for `cargo
    // test`, wide enough to catch gross regressions between CI runs of
    // the full gate.
    let mut corpus = Prng::stream(0xC41A5, "corpus");
    for i in 0..40u64 {
        let seed = corpus.next_u64();
        let case = generate(seed);
        check_case(&case, Inject::none()).unwrap_or_else(|d| {
            panic!(
                "case {i} (seed {seed:#x}) diverged at {}: {}",
                d.stage, d.detail
            )
        });
    }
}

#[test]
fn injected_fault_roundtrips_through_the_pipeline() {
    let inject = Inject {
        perturb_engine: Some(OpClass::Bitmanip),
        ..Inject::none()
    };
    let case = (0..256)
        .map(generate)
        .find(|c| c.has_class(OpClass::Bitmanip) && c.ops.len() >= 8)
        .expect("bitmanip ops are common");

    let m = minimize(&case, inject, 300).expect("injected fault must diverge");
    assert!(
        m.case.has_class(OpClass::Bitmanip),
        "trigger class survives shrinking"
    );

    // Serialize, reparse, regenerate: the recipe reproduces the case.
    let r = Reproducer::from_minimized(&m);
    let parsed = parse_reproducer(&render_reproducer(&r)).expect("reproducer parses");
    assert_eq!(parsed, r);
    let replayed = parsed.to_case().expect("same generator version");
    assert_eq!(
        replayed.source(),
        m.case.source(),
        "recipe regenerates the program"
    );

    // The replayed case still shows the bug under injection, and the
    // pristine oracle passes it — the divergence was the injection.
    let d = check_case(&replayed, inject).expect_err("still diverges under injection");
    assert_eq!(d.stage, m.divergence.stage);
    check_case(&replayed, Inject::none()).expect("clean without injection");
}
