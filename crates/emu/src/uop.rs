//! The micro-op IR the execution engine runs.
//!
//! A cached basic block's `Vec<CachedInst>` still pays three full `Inst`
//! matches per retired instruction in the interpreter: one in `Cpu::exec`,
//! one in `CostModel::cost`, and one for the lazy `vl_words` computation.
//! Lowering replaces all of that with a single dispatch over [`MicroOp`]:
//! operands are pre-extracted into flat fields (immediates pre-shifted,
//! kept as `i32` — the sign-extending widen is free at execution time —
//! so a [`Uop`] packs into 20 bytes — 2.4x smaller than the decoded
//! [`CachedInst`] + cost pair it replaces — and hot uop buffers stay
//! cache-resident), and the deterministic cycle cost is pre-computed per
//! micro-op at build time (see [`crate::CostModel::static_costs`]).
//!
//! Lowering is *specialization, not reimplementation*: the hot scalar
//! operations get dedicated variants whose execution mirrors `Cpu::exec`
//! line for line (sharing the same `exec_op`/`exec_opimm`/`exec_unary`/
//! `branch_cond` helpers), and everything else — vector, FP arithmetic,
//! converts, `ecall`/`ebreak` — falls back to [`MicroOp::Generic`], which
//! delegates to `Cpu::exec` itself. The differential suite asserts the
//! engine is bit-identical to the interpreter, including `ExecStats` cycle
//! accounting, trap pcs and `TraceEvent` counts.
//!
//! Cost pre-computation is only sound while the [`crate::CostModel`] is not
//! mutated after blocks have been built (nothing in the workspace does);
//! vector costs depend on the live `vl`, which is why vector instructions
//! always take the generic path.

use crate::bbcache::CachedInst;
use crate::cost::CostModel;
use chimera_isa::{
    BranchKind, FReg, FpWidth, Inst, LoadKind, OpImmKind, OpKind, StoreKind, UnaryKind, XReg,
};

/// One pre-lowered operation. Hot scalar instructions are specialized with
/// pre-extracted operands; everything else delegates to `Cpu::exec` via
/// [`MicroOp::Generic`].
#[derive(Debug, Clone, Copy)]
pub enum MicroOp {
    /// `lui rd, imm20` with the shifted immediate pre-computed.
    Lui {
        /// Destination register.
        rd: XReg,
        /// `imm20 << 12` (sign-extended to 64 bits at execution time; kept
        /// as i32 so the whole micro-op stays pointer-size small).
        imm: i32,
    },
    /// `auipc rd, imm20` with the shifted immediate pre-computed.
    Auipc {
        /// Destination register.
        rd: XReg,
        /// `imm20 << 12`; sign-extended and added to pc at run time.
        imm: i32,
    },
    /// `jal rd, offset` (always-taken direct jump; a chainable block end).
    Jal {
        /// Link register.
        rd: XReg,
        /// pc-relative offset (sign-extended at execution time).
        offset: i32,
    },
    /// `jalr rd, offset(rs1)` (indirect jump; chained through the
    /// one-entry-BTB edge, see `crate::bbcache::ChainEdge::Indirect`).
    Jalr {
        /// Link register.
        rd: XReg,
        /// Target base register.
        rs1: XReg,
        /// Base-relative offset (sign-extended at execution time).
        offset: i32,
    },
    /// Conditional branch; both block-end edges are chainable.
    Branch {
        /// Comparison kind.
        kind: BranchKind,
        /// Left operand register.
        rs1: XReg,
        /// Right operand register.
        rs2: XReg,
        /// pc-relative offset (sign-extended at execution time).
        offset: i32,
        /// Pre-computed cycle cost when the branch redirects (the not-taken
        /// cost lives in [`Uop::cost`]).
        taken_cost: u32,
    },
    /// Scalar load.
    Load {
        /// Width/sign kind.
        kind: LoadKind,
        /// Destination register.
        rd: XReg,
        /// Base register.
        rs1: XReg,
        /// Base-relative offset (sign-extended at execution time).
        offset: i32,
    },
    /// Scalar store.
    Store {
        /// Width kind.
        kind: StoreKind,
        /// Base register.
        rs1: XReg,
        /// Value register.
        rs2: XReg,
        /// Base-relative offset (sign-extended at execution time).
        offset: i32,
    },
    /// `addi rd, rs1, imm` — the single most common instruction in
    /// compiled RISC-V code, flattened so it dispatches in one match
    /// instead of two (the [`MicroOp`] match plus the kind match inside
    /// `exec_opimm`).
    Addi {
        /// Destination register.
        rd: XReg,
        /// Source register.
        rs1: XReg,
        /// Immediate (sign-extended at execution time).
        imm: i32,
    },
    /// `andi rd, rs1, imm`, flattened (see [`MicroOp::Addi`]).
    Andi {
        /// Destination register.
        rd: XReg,
        /// Source register.
        rs1: XReg,
        /// Immediate (sign-extended at execution time).
        imm: i32,
    },
    /// `slli rd, rs1, shamt`, flattened with the shift amount pre-masked.
    Slli {
        /// Destination register.
        rd: XReg,
        /// Source register.
        rs1: XReg,
        /// Shift amount, already masked to 0..64.
        shamt: u8,
    },
    /// `srli rd, rs1, shamt`, flattened with the shift amount pre-masked.
    Srli {
        /// Destination register.
        rd: XReg,
        /// Source register.
        rs1: XReg,
        /// Shift amount, already masked to 0..64.
        shamt: u8,
    },
    /// `add rd, rs1, rs2`, flattened (see [`MicroOp::Addi`]).
    Add {
        /// Destination register.
        rd: XReg,
        /// Left source register.
        rs1: XReg,
        /// Right source register.
        rs2: XReg,
    },
    /// `sub rd, rs1, rs2`, flattened.
    Sub {
        /// Destination register.
        rd: XReg,
        /// Left source register.
        rs1: XReg,
        /// Right source register.
        rs2: XReg,
    },
    /// `xor rd, rs1, rs2`, flattened.
    Xor {
        /// Destination register.
        rd: XReg,
        /// Left source register.
        rs1: XReg,
        /// Right source register.
        rs2: XReg,
    },
    /// Register-immediate ALU op (executes via the shared `exec_opimm`).
    /// The hottest kinds are flattened into dedicated variants above; this
    /// is the catch-all for the rest.
    OpImm {
        /// Operation kind.
        kind: OpImmKind,
        /// Destination register.
        rd: XReg,
        /// Source register.
        rs1: XReg,
        /// Raw immediate (sign/shift handling is kind-specific, so it stays
        /// in the shared helper).
        imm: i32,
    },
    /// Register-register ALU op (executes via the shared `exec_op`).
    Op {
        /// Operation kind.
        kind: OpKind,
        /// Destination register.
        rd: XReg,
        /// Left source register.
        rs1: XReg,
        /// Right source register.
        rs2: XReg,
    },
    /// Single-source bit-manipulation op (shared `exec_unary`).
    Unary {
        /// Operation kind.
        kind: UnaryKind,
        /// Destination register.
        rd: XReg,
        /// Source register.
        rs1: XReg,
    },
    /// `fence` (a no-op in this memory model).
    Fence,
    /// FP load (NaN-boxing handled exactly as in `Cpu::exec`).
    FLoad {
        /// Access width.
        width: FpWidth,
        /// Destination FP register.
        frd: FReg,
        /// Base register.
        rs1: XReg,
        /// Base-relative offset (sign-extended at execution time).
        offset: i32,
    },
    /// FP store.
    FStore {
        /// Access width.
        width: FpWidth,
        /// Value FP register.
        frs2: FReg,
        /// Base register.
        rs1: XReg,
        /// Base-relative offset (sign-extended at execution time).
        offset: i32,
    },
    /// Everything else (vector, FP arithmetic/converts, `ecall`/`ebreak`):
    /// delegates to `Cpu::exec`, which does its own pc/cost/stats
    /// accounting — transparency for cold operations by construction.
    Generic(Inst),
}

/// One lowered instruction: the micro-op plus the per-instruction metadata
/// the engine's inner loop needs without touching the original `Inst`.
#[derive(Debug, Clone, Copy)]
pub struct Uop {
    /// The operation.
    pub op: MicroOp,
    /// Encoded length in bytes (2 or 4), for the pc advance.
    pub len: u8,
    /// Pre-computed cycle cost (for branches: the not-taken cost). Unused
    /// for [`MicroOp::Generic`], whose cost `Cpu::exec` accounts itself.
    pub cost: u32,
    /// Whether this instruction can store to memory (drives the mid-block
    /// self-modification re-check, same as the interpreter).
    pub is_store: bool,
}

/// Lowers one cached instruction.
pub fn lower(ci: &CachedInst, cost: &CostModel) -> Uop {
    let (not_taken, taken) = cost.static_costs(&ci.inst);
    let op = match ci.inst {
        Inst::Lui { rd, imm20 } => MicroOp::Lui {
            rd,
            imm: imm20 << 12,
        },
        Inst::Auipc { rd, imm20 } => MicroOp::Auipc {
            rd,
            imm: imm20 << 12,
        },
        Inst::Jal { rd, offset } => MicroOp::Jal { rd, offset },
        Inst::Jalr { rd, rs1, offset } => MicroOp::Jalr { rd, rs1, offset },
        Inst::Branch {
            kind,
            rs1,
            rs2,
            offset,
        } => MicroOp::Branch {
            kind,
            rs1,
            rs2,
            offset,
            taken_cost: taken as u32,
        },
        Inst::Load {
            kind,
            rd,
            rs1,
            offset,
        } => MicroOp::Load {
            kind,
            rd,
            rs1,
            offset,
        },
        Inst::Store {
            kind,
            rs1,
            rs2,
            offset,
        } => MicroOp::Store {
            kind,
            rs1,
            rs2,
            offset,
        },
        // The hottest ALU kinds collapse to single-dispatch variants whose
        // semantics mirror `exec_opimm`/`exec_op` exactly (shift amounts
        // pre-masked the same way the shared helpers mask them).
        Inst::OpImm {
            kind: OpImmKind::Addi,
            rd,
            rs1,
            imm,
        } => MicroOp::Addi { rd, rs1, imm },
        Inst::OpImm {
            kind: OpImmKind::Andi,
            rd,
            rs1,
            imm,
        } => MicroOp::Andi { rd, rs1, imm },
        Inst::OpImm {
            kind: OpImmKind::Slli,
            rd,
            rs1,
            imm,
        } => MicroOp::Slli {
            rd,
            rs1,
            shamt: (imm & 63) as u8,
        },
        Inst::OpImm {
            kind: OpImmKind::Srli,
            rd,
            rs1,
            imm,
        } => MicroOp::Srli {
            rd,
            rs1,
            shamt: (imm & 63) as u8,
        },
        Inst::Op {
            kind: OpKind::Add,
            rd,
            rs1,
            rs2,
        } => MicroOp::Add { rd, rs1, rs2 },
        Inst::Op {
            kind: OpKind::Sub,
            rd,
            rs1,
            rs2,
        } => MicroOp::Sub { rd, rs1, rs2 },
        Inst::Op {
            kind: OpKind::Xor,
            rd,
            rs1,
            rs2,
        } => MicroOp::Xor { rd, rs1, rs2 },
        Inst::OpImm { kind, rd, rs1, imm } => MicroOp::OpImm { kind, rd, rs1, imm },
        Inst::Op { kind, rd, rs1, rs2 } => MicroOp::Op { kind, rd, rs1, rs2 },
        Inst::Unary { kind, rd, rs1 } => MicroOp::Unary { kind, rd, rs1 },
        Inst::Fence => MicroOp::Fence,
        Inst::FLoad {
            width,
            frd,
            rs1,
            offset,
        } => MicroOp::FLoad {
            width,
            frd,
            rs1,
            offset,
        },
        Inst::FStore {
            width,
            frs2,
            rs1,
            offset,
        } => MicroOp::FStore {
            width,
            frs2,
            rs1,
            offset,
        },
        inst => MicroOp::Generic(inst),
    };
    // Costs come from a static model whose per-instruction values are tiny
    // (single digits); the narrowing is lossless and keeps `Uop` at 20
    // bytes so hot uop buffers stay cache-resident.
    debug_assert!(not_taken <= u32::MAX as u64 && taken <= u32::MAX as u64);
    Uop {
        op,
        len: ci.len as u8,
        cost: not_taken as u32,
        is_store: ci.is_store,
    }
}

/// Lowers a whole block body.
pub fn lower_block(insts: &[CachedInst], cost: &CostModel) -> Box<[Uop]> {
    insts.iter().map(|ci| lower(ci, cost)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ci(inst: Inst) -> CachedInst {
        CachedInst {
            inst,
            len: 4,
            is_store: matches!(
                inst,
                Inst::Store { .. } | Inst::FStore { .. } | Inst::VStore { .. }
            ),
        }
    }

    #[test]
    fn costs_are_precomputed_from_the_model() {
        let m = CostModel::default();
        let load = ci(Inst::Load {
            kind: LoadKind::Ld,
            rd: XReg::A0,
            rs1: XReg::SP,
            offset: 8,
        });
        assert_eq!(u64::from(lower(&load, &m).cost), m.load);
        let br = ci(Inst::Branch {
            kind: BranchKind::Beq,
            rs1: XReg::A0,
            rs2: XReg::A1,
            offset: -8,
        });
        let u = lower(&br, &m);
        assert_eq!(u64::from(u.cost), m.base);
        match u.op {
            MicroOp::Branch { taken_cost, .. } => {
                assert_eq!(u64::from(taken_cost), m.base + m.redirect)
            }
            other => panic!("expected Branch, got {other:?}"),
        }
    }

    #[test]
    fn vector_and_system_ops_stay_generic() {
        let m = CostModel::default();
        for inst in [Inst::Ecall, Inst::Ebreak] {
            assert!(matches!(lower(&ci(inst), &m).op, MicroOp::Generic(_)));
        }
    }

    #[test]
    fn immediates_are_sign_extended() {
        let m = CostModel::default();
        let jal = ci(Inst::Jal {
            rd: XReg::RA,
            offset: -4,
        });
        match lower(&jal, &m).op {
            MicroOp::Jal { offset, .. } => assert_eq!(offset, -4),
            other => panic!("expected Jal, got {other:?}"),
        }
    }
}
