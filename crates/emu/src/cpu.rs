//! The interpreter: fetch/decode/execute with extension gating, the trap
//! model, and the cycle-cost accounting.
//!
//! A [`Cpu`] models one core of an ISAX heterogeneous processor: its
//! [`Cpu::profile`] says which extensions the core implements. Executing an
//! instruction whose extension is missing raises [`Trap::Illegal`] — the
//! fault FAM migrates on and Chimera's lazy rewriting recovers from.
//! Fetching from non-executable memory raises [`Trap::Mem`] with a fetch
//! access — the deterministic "segmentation fault" a partially executed
//! SMILE trampoline produces.
//!
//! The front end (fetch + decode + gating) is memoized per basic block by
//! [`BlockCache`] (see [`crate::bbcache`]); execution always flows through
//! the single [`Cpu::exec`] path, so results and cycle accounting are
//! identical with the cache on or off.

use crate::bbcache::{Block, BlockCache, CachedInst};
use crate::cost::{CostModel, ExecStats};
use crate::hart::Hart;
use crate::mem::{MemFault, Memory};
use chimera_isa::{
    decode, BranchKind, DecodeError, Eew, Ext, ExtSet, FCmpKind, FMaKind, FOpKind, FpWidth, Inst,
    IntWidth, LoadKind, OpImmKind, OpKind, StoreKind, UnaryKind, VArithOp, VSrc, XReg,
};
use chimera_trace::{TraceEvent, Tracer, TrapKind};
use core::fmt;

/// A trap delivered to the (simulated) kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trap {
    /// Illegal instruction: undecodable bits, a reserved encoding, or an
    /// instruction from an extension this core does not implement.
    Illegal {
        /// pc of the illegal instruction.
        pc: u64,
        /// The raw bits at pc (low 16 significant for compressed).
        raw: u32,
    },
    /// Memory access fault (including fetch from non-executable memory —
    /// the paper's segmentation fault).
    Mem {
        /// pc of the faulting instruction (for fetch faults this is the
        /// *fetch target*, i.e. equals `fault.addr`).
        pc: u64,
        /// Fault details.
        fault: MemFault,
    },
    /// `ebreak` (trap-based trampolines in baseline rewriters).
    Breakpoint {
        /// pc of the ebreak.
        pc: u64,
    },
    /// `ecall` (system call).
    Ecall {
        /// pc of the ecall.
        pc: u64,
    },
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::Illegal { pc, raw } => write!(f, "illegal instruction {raw:#x} at {pc:#x}"),
            Trap::Mem { pc, fault } => write!(f, "{fault} (pc {pc:#x})"),
            Trap::Breakpoint { pc } => write!(f, "breakpoint at {pc:#x}"),
            Trap::Ecall { pc } => write!(f, "ecall at {pc:#x}"),
        }
    }
}

/// Why [`Cpu::run`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stop {
    /// A trap was raised (pc still points at the trapping instruction for
    /// `Illegal`/`Breakpoint`/`Ecall`; for fetch faults pc is the fault
    /// address).
    Trap(Trap),
    /// The fuel budget ran out.
    OutOfFuel,
}

/// One simulated core.
#[derive(Debug, Clone)]
pub struct Cpu {
    /// Architectural state.
    pub hart: Hart,
    /// The extensions this core implements.
    pub profile: ExtSet,
    /// Cycle-cost model.
    pub cost: CostModel,
    /// Accumulated statistics.
    pub stats: ExecStats,
    /// The basic-block decode cache (enabled by default; disable for the
    /// reference fetch/decode/execute path).
    pub cache: BlockCache,
    /// The trace handle (disabled by default; see `chimera_trace`). The
    /// CPU emits [`TraceEvent::BlockBuilt`], [`TraceEvent::CacheInvalidate`]
    /// and [`TraceEvent::Trap`] — coarse events only, never per retired
    /// instruction, so the enabled overhead stays bounded.
    pub tracer: Tracer,
}

impl Cpu {
    /// Creates a core with the given extension profile.
    pub fn new(profile: ExtSet) -> Self {
        Cpu {
            hart: Hart::new(),
            profile,
            cost: CostModel::default(),
            stats: ExecStats::default(),
            cache: BlockCache::new(),
            tracer: Tracer::disabled(),
        }
    }

    /// Creates a core with the decode cache disabled (pure per-instruction
    /// fetch/decode/execute — the reference semantics the cached path must
    /// match bit for bit).
    pub fn new_uncached(profile: ExtSet) -> Self {
        Cpu {
            cache: BlockCache::disabled(),
            ..Cpu::new(profile)
        }
    }

    /// Executes instructions until a trap or until `fuel` instructions have
    /// retired.
    pub fn run(&mut self, mem: &mut Memory, fuel: u64) -> Stop {
        if !self.cache.enabled {
            for _ in 0..fuel {
                if let Err(t) = self.step(mem) {
                    self.trace_trap(&t);
                    return Stop::Trap(t);
                }
            }
            return Stop::OutOfFuel;
        }
        let mut remaining = fuel;
        while remaining > 0 {
            match self.step_block(mem, remaining) {
                Ok(retired) => remaining -= retired.min(remaining),
                Err(t) => {
                    self.trace_trap(&t);
                    return Stop::Trap(t);
                }
            }
        }
        Stop::OutOfFuel
    }

    /// Emits a [`TraceEvent::Trap`] for a trap about to be delivered.
    fn trace_trap(&self, t: &Trap) {
        if !self.tracer.is_enabled() {
            return;
        }
        let (pc, kind) = match *t {
            Trap::Illegal { pc, .. } => (pc, TrapKind::Illegal),
            Trap::Mem { pc, fault } => (
                pc,
                match fault.access {
                    crate::mem::Access::Fetch => TrapKind::MemFetch,
                    crate::mem::Access::Load => TrapKind::MemLoad,
                    crate::mem::Access::Store => TrapKind::MemStore,
                },
            ),
            Trap::Breakpoint { pc } => (pc, TrapKind::Breakpoint),
            Trap::Ecall { pc } => (pc, TrapKind::Ecall),
        };
        self.tracer
            .record(self.stats.cycles, TraceEvent::Trap { pc, kind });
    }

    /// Fetches, decodes and executes one instruction.
    ///
    /// On `Err`, pc is left at the trapping instruction (or at the fetch
    /// fault address for fetch faults), exactly like hardware `*epc`.
    pub fn step(&mut self, mem: &mut Memory) -> Result<(), Trap> {
        let pc = self.hart.pc;
        let lo = mem.fetch_u16(pc).map_err(|fault| Trap::Mem {
            pc: fault.addr,
            fault,
        })?;
        let word = if lo & 0b11 == 0b11 {
            // 32-bit encoding: fetch the upper parcel too.
            let hi = mem.fetch_u16(pc + 2).map_err(|fault| Trap::Mem {
                pc: fault.addr,
                fault,
            })?;
            (hi as u32) << 16 | lo as u32
        } else {
            lo as u32
        };
        let decoded = decode(word).map_err(|e| {
            let raw = match e {
                DecodeError::Unrecognized(w) | DecodeError::ReservedLong(w) => w,
            };
            Trap::Illegal { pc, raw }
        })?;
        // Extension gating: the canonical instruction's extension, plus the
        // C extension when the encoding was compressed.
        if !decoded.inst.runnable_on(self.profile)
            || (decoded.len == 2 && !self.profile.contains(Ext::C))
        {
            return Err(Trap::Illegal { pc, raw: word });
        }
        self.exec(mem, decoded.inst, decoded.len as u64)
    }

    /// Executes up to one basic block through the decode cache, bounded by
    /// `budget` instructions; returns the number retired.
    ///
    /// Semantically equivalent to calling [`Cpu::step`] in a loop: every
    /// instruction still executes through [`Cpu::exec`], and any trap leaves
    /// pc exactly where the uncached path would.
    fn step_block(&mut self, mem: &mut Memory, budget: u64) -> Result<u64, Trap> {
        let pc = self.hart.pc;
        let Some(fp) = mem.code_fingerprint(pc) else {
            // Unmapped or non-executable pc: fall back to a plain step so
            // the architecturally correct fetch fault is raised.
            self.step(mem)?;
            return Ok(1);
        };
        let inv_before = self.cache.stats.invalidations;
        let looked_up = self.cache.lookup(pc, self.profile, fp);
        if self.cache.stats.invalidations != inv_before {
            self.tracer
                .record(self.stats.cycles, TraceEvent::CacheInvalidate { pc });
            self.tracer.count("emu.cache_invalidations", 1);
        }
        let block = match looked_up {
            Some(b) => b,
            None => match self.build_block(mem, pc, fp)? {
                Some(b) => b,
                // First instruction's upper parcel lies outside the
                // fingerprinted region: execute it uncached so writes to the
                // neighbouring region are always observed.
                None => {
                    self.step(mem)?;
                    return Ok(1);
                }
            },
        };
        let mut retired = 0u64;
        for ci in block.insts.iter() {
            if retired >= budget {
                break;
            }
            let gen_before = if ci.is_store {
                mem.code_generation()
            } else {
                0
            };
            self.exec(mem, ci.inst, ci.len)?;
            retired += 1;
            // A store may have rewritten code anywhere — including the rest
            // of THIS block. Bail to the dispatcher, which revalidates
            // against the bumped generation before executing anything else.
            if ci.is_store && mem.code_generation() != gen_before {
                break;
            }
        }
        Ok(retired)
    }

    /// Decodes a basic block starting at `pc` and caches it.
    ///
    /// The block ends at the first control-transfer or system instruction
    /// (included), at [`BlockCache::max_block_insts`], at the region edge,
    /// or just before the first undecodable/ill-gated instruction. If the
    /// *first* instruction already faults, nothing is cached and the trap
    /// is returned with [`Cpu::step`]'s exact semantics (lazy rewriting may
    /// legalise those bytes later, so they must stay uncached).
    ///
    /// A 4-byte instruction whose upper parcel straddles into a *different*
    /// region is never cached either — the block's fingerprint only covers
    /// the region holding its start pc, so a write to the neighbour region
    /// would not invalidate it. `Ok(None)` tells the caller to execute the
    /// first instruction uncached instead.
    fn build_block(
        &mut self,
        mem: &mut Memory,
        pc: u64,
        fingerprint: (u64, u64),
    ) -> Result<Option<std::sync::Arc<Block>>, Trap> {
        let mut insts = Vec::new();
        let mut cur = pc;
        while insts.len() < BlockCache::max_block_insts() {
            // Stop at the region edge (or if an interleaved build ever saw
            // the region change — impossible today, checked for free).
            if !insts.is_empty() && mem.code_fingerprint(cur) != Some(fingerprint) {
                break;
            }
            let fetched = (|| {
                let lo = mem.fetch_u16(cur).map_err(|fault| Trap::Mem {
                    pc: fault.addr,
                    fault,
                })?;
                let word = if lo & 0b11 == 0b11 {
                    // The upper parcel must sit in the same region as the
                    // block fingerprint, or invalidation can't see it.
                    if mem.code_fingerprint(cur + 2) != Some(fingerprint) {
                        return Ok(None);
                    }
                    let hi = mem.fetch_u16(cur + 2).map_err(|fault| Trap::Mem {
                        pc: fault.addr,
                        fault,
                    })?;
                    (hi as u32) << 16 | lo as u32
                } else {
                    lo as u32
                };
                let decoded = decode(word).map_err(|e| {
                    let raw = match e {
                        DecodeError::Unrecognized(w) | DecodeError::ReservedLong(w) => w,
                    };
                    Trap::Illegal { pc: cur, raw }
                })?;
                if !decoded.inst.runnable_on(self.profile)
                    || (decoded.len == 2 && !self.profile.contains(Ext::C))
                {
                    return Err(Trap::Illegal { pc: cur, raw: word });
                }
                Ok(Some(decoded))
            })();
            let decoded = match fetched {
                Ok(Some(d)) => d,
                // First instruction straddles out of the region: the caller
                // must run it uncached.
                Ok(None) if insts.is_empty() => return Ok(None),
                // A later one: truncate; the next dispatch re-fingerprints
                // at the straddling pc and takes the uncached path there.
                Ok(None) => break,
                // First instruction faults: surface it, uncached.
                Err(t) if insts.is_empty() => return Err(t),
                // Later instruction faults: truncate; the dispatcher will
                // re-derive the fault when (if) pc actually gets there.
                Err(_) => break,
            };
            let inst = decoded.inst;
            let len = decoded.len as u64;
            let is_terminator = matches!(
                inst,
                Inst::Jal { .. }
                    | Inst::Jalr { .. }
                    | Inst::Branch { .. }
                    | Inst::Ecall
                    | Inst::Ebreak
            );
            insts.push(CachedInst {
                inst,
                len,
                is_store: matches!(
                    inst,
                    Inst::Store { .. } | Inst::FStore { .. } | Inst::VStore { .. }
                ),
            });
            cur += len;
            if is_terminator {
                break;
            }
        }
        let block = Block {
            insts,
            region_start: fingerprint.0,
            region_gen: fingerprint.1,
        };
        let cached = self.cache.insert(pc, self.profile, block);
        if self.tracer.is_enabled() {
            self.tracer.record(
                self.stats.cycles,
                TraceEvent::BlockBuilt {
                    pc,
                    insts: cached.insts.len() as u64,
                },
            );
            self.tracer.count("emu.blocks_built", 1);
        }
        Ok(Some(cached))
    }

    /// Executes a decoded instruction (pc at `self.hart.pc`, length `len`).
    fn exec(&mut self, mem: &mut Memory, inst: Inst, len: u64) -> Result<(), Trap> {
        let h = &mut self.hart;
        let pc = h.pc;
        let mut next_pc = pc + len;
        let mut taken = false;

        macro_rules! memtrap {
            ($e:expr) => {
                $e.map_err(|fault| Trap::Mem { pc, fault })?
            };
        }

        match inst {
            Inst::Lui { rd, imm20 } => h.set_x(rd, ((imm20 as i64) << 12) as u64),
            Inst::Auipc { rd, imm20 } => {
                h.set_x(rd, pc.wrapping_add(((imm20 as i64) << 12) as u64))
            }
            Inst::Jal { rd, offset } => {
                h.set_x(rd, pc + len);
                next_pc = pc.wrapping_add(offset as i64 as u64);
                taken = true;
            }
            Inst::Jalr { rd, rs1, offset } => {
                let target = h.get_x(rs1).wrapping_add(offset as i64 as u64) & !1;
                h.set_x(rd, pc + len);
                next_pc = target;
                taken = true;
                self.stats.indirect_jumps += 1;
            }
            Inst::Branch {
                kind,
                rs1,
                rs2,
                offset,
            } => {
                let a = h.get_x(rs1);
                let b = h.get_x(rs2);
                let cond = match kind {
                    BranchKind::Beq => a == b,
                    BranchKind::Bne => a != b,
                    BranchKind::Blt => (a as i64) < (b as i64),
                    BranchKind::Bge => (a as i64) >= (b as i64),
                    BranchKind::Bltu => a < b,
                    BranchKind::Bgeu => a >= b,
                };
                if cond {
                    next_pc = pc.wrapping_add(offset as i64 as u64);
                    taken = true;
                }
                self.stats.branches += 1;
            }
            Inst::Load {
                kind,
                rd,
                rs1,
                offset,
            } => {
                let addr = h.get_x(rs1).wrapping_add(offset as i64 as u64);
                let v = match kind {
                    LoadKind::Lb => memtrap!(mem.read::<1>(addr))[0] as i8 as i64 as u64,
                    LoadKind::Lbu => memtrap!(mem.read::<1>(addr))[0] as u64,
                    LoadKind::Lh => i16::from_le_bytes(memtrap!(mem.read::<2>(addr))) as i64 as u64,
                    LoadKind::Lhu => u16::from_le_bytes(memtrap!(mem.read::<2>(addr))) as u64,
                    LoadKind::Lw => i32::from_le_bytes(memtrap!(mem.read::<4>(addr))) as i64 as u64,
                    LoadKind::Lwu => u32::from_le_bytes(memtrap!(mem.read::<4>(addr))) as u64,
                    LoadKind::Ld => u64::from_le_bytes(memtrap!(mem.read::<8>(addr))),
                };
                h.set_x(rd, v);
                self.stats.loads += 1;
            }
            Inst::Store {
                kind,
                rs1,
                rs2,
                offset,
            } => {
                let addr = h.get_x(rs1).wrapping_add(offset as i64 as u64);
                let v = h.get_x(rs2);
                match kind {
                    StoreKind::Sb => memtrap!(mem.write(addr, &[v as u8])),
                    StoreKind::Sh => memtrap!(mem.write(addr, &(v as u16).to_le_bytes())),
                    StoreKind::Sw => memtrap!(mem.write(addr, &(v as u32).to_le_bytes())),
                    StoreKind::Sd => memtrap!(mem.write(addr, &v.to_le_bytes())),
                }
                self.stats.stores += 1;
            }
            Inst::OpImm { kind, rd, rs1, imm } => {
                let a = h.get_x(rs1);
                let i = imm as i64 as u64;
                let v = match kind {
                    OpImmKind::Addi => a.wrapping_add(i),
                    OpImmKind::Slti => ((a as i64) < (i as i64)) as u64,
                    OpImmKind::Sltiu => (a < i) as u64,
                    OpImmKind::Xori => a ^ i,
                    OpImmKind::Ori => a | i,
                    OpImmKind::Andi => a & i,
                    OpImmKind::Slli => a << (imm & 63),
                    OpImmKind::Srli => a >> (imm & 63),
                    OpImmKind::Srai => ((a as i64) >> (imm & 63)) as u64,
                    OpImmKind::Rori => a.rotate_right((imm & 63) as u32),
                    OpImmKind::Addiw => (a.wrapping_add(i) as i32) as i64 as u64,
                    OpImmKind::Slliw => (((a as u32) << (imm & 31)) as i32) as i64 as u64,
                    OpImmKind::Srliw => (((a as u32) >> (imm & 31)) as i32) as i64 as u64,
                    OpImmKind::Sraiw => ((a as i32) >> (imm & 31)) as i64 as u64,
                };
                h.set_x(rd, v);
            }
            Inst::Op { kind, rd, rs1, rs2 } => {
                let a = h.get_x(rs1);
                let b = h.get_x(rs2);
                let v = exec_op(kind, a, b);
                h.set_x(rd, v);
            }
            Inst::Unary { kind, rd, rs1 } => {
                let a = h.get_x(rs1);
                let v = match kind {
                    UnaryKind::Clz => a.leading_zeros() as u64,
                    UnaryKind::Ctz => a.trailing_zeros() as u64,
                    UnaryKind::Cpop => a.count_ones() as u64,
                    UnaryKind::SextB => a as u8 as i8 as i64 as u64,
                    UnaryKind::SextH => a as u16 as i16 as i64 as u64,
                    UnaryKind::ZextH => a as u16 as u64,
                    UnaryKind::Rev8 => a.swap_bytes(),
                };
                h.set_x(rd, v);
            }
            Inst::Fence => {}
            Inst::Ecall => return Err(Trap::Ecall { pc }),
            Inst::Ebreak => {
                self.stats.ebreaks += 1;
                return Err(Trap::Breakpoint { pc });
            }
            Inst::FLoad {
                width,
                frd,
                rs1,
                offset,
            } => {
                let addr = h.get_x(rs1).wrapping_add(offset as i64 as u64);
                match width {
                    FpWidth::S => {
                        let bits = u32::from_le_bytes(memtrap!(mem.read::<4>(addr)));
                        h.set_f(frd, 0xffff_ffff_0000_0000 | bits as u64);
                    }
                    FpWidth::D => {
                        let bits = u64::from_le_bytes(memtrap!(mem.read::<8>(addr)));
                        h.set_f(frd, bits);
                    }
                }
                self.stats.loads += 1;
            }
            Inst::FStore {
                width,
                frs2,
                rs1,
                offset,
            } => {
                let addr = h.get_x(rs1).wrapping_add(offset as i64 as u64);
                match width {
                    FpWidth::S => {
                        memtrap!(mem.write(addr, &(h.get_f(frs2) as u32).to_le_bytes()))
                    }
                    FpWidth::D => memtrap!(mem.write(addr, &h.get_f(frs2).to_le_bytes())),
                }
                self.stats.stores += 1;
            }
            Inst::FOp {
                kind,
                width,
                frd,
                frs1,
                frs2,
            } => exec_fop(h, kind, width, frd, frs1, frs2),
            Inst::FCmp {
                kind,
                width,
                rd,
                frs1,
                frs2,
            } => {
                let r = match width {
                    FpWidth::S => {
                        let (a, b) = (h.get_s(frs1), h.get_s(frs2));
                        match kind {
                            FCmpKind::Feq => a == b,
                            FCmpKind::Flt => a < b,
                            FCmpKind::Fle => a <= b,
                        }
                    }
                    FpWidth::D => {
                        let (a, b) = (h.get_d(frs1), h.get_d(frs2));
                        match kind {
                            FCmpKind::Feq => a == b,
                            FCmpKind::Flt => a < b,
                            FCmpKind::Fle => a <= b,
                        }
                    }
                };
                h.set_x(rd, r as u64);
            }
            Inst::FMvToX { width, rd, frs1 } => {
                let v = match width {
                    FpWidth::S => h.get_f(frs1) as u32 as i32 as i64 as u64,
                    FpWidth::D => h.get_f(frs1),
                };
                h.set_x(rd, v);
            }
            Inst::FMvToF { width, frd, rs1 } => {
                let v = h.get_x(rs1);
                match width {
                    FpWidth::S => h.set_f(frd, 0xffff_ffff_0000_0000 | (v as u32 as u64)),
                    FpWidth::D => h.set_f(frd, v),
                }
            }
            Inst::FCvtToF {
                width,
                from,
                signed,
                frd,
                rs1,
            } => {
                let raw = h.get_x(rs1);
                let val: f64 = match (from, signed) {
                    (IntWidth::W, true) => raw as u32 as i32 as f64,
                    (IntWidth::W, false) => raw as u32 as f64,
                    (IntWidth::L, true) => raw as i64 as f64,
                    (IntWidth::L, false) => raw as f64,
                };
                match width {
                    FpWidth::S => h.set_s(frd, val as f32),
                    FpWidth::D => h.set_d(frd, val),
                }
            }
            Inst::FCvtToInt {
                width,
                to,
                signed,
                rd,
                frs1,
            } => {
                let val: f64 = match width {
                    FpWidth::S => h.get_s(frs1) as f64,
                    FpWidth::D => h.get_d(frs1),
                };
                let v = fcvt_to_int(val, to, signed);
                h.set_x(rd, v);
            }
            Inst::FCvtFF { to, frd, frs1 } => match to {
                FpWidth::S => {
                    let v = h.get_d(frs1);
                    h.set_s(frd, v as f32);
                }
                FpWidth::D => {
                    let v = h.get_s(frs1);
                    h.set_d(frd, v as f64);
                }
            },
            Inst::FMa {
                kind,
                width,
                frd,
                frs1,
                frs2,
                frs3,
            } => match width {
                FpWidth::S => {
                    let (a, b, c) = (h.get_s(frs1), h.get_s(frs2), h.get_s(frs3));
                    let v = match kind {
                        FMaKind::Madd => a.mul_add(b, c),
                        FMaKind::Msub => a.mul_add(b, -c),
                        FMaKind::Nmsub => (-a).mul_add(b, c),
                        FMaKind::Nmadd => (-a).mul_add(b, -c),
                    };
                    h.set_s(frd, v);
                }
                FpWidth::D => {
                    let (a, b, c) = (h.get_d(frs1), h.get_d(frs2), h.get_d(frs3));
                    let v = match kind {
                        FMaKind::Madd => a.mul_add(b, c),
                        FMaKind::Msub => a.mul_add(b, -c),
                        FMaKind::Nmsub => (-a).mul_add(b, c),
                        FMaKind::Nmadd => (-a).mul_add(b, -c),
                    };
                    h.set_d(frd, v);
                }
            },
            Inst::Vsetvli { rd, rs1, vtype } => {
                let vlmax = Hart::vlmax(vtype);
                let avl = if rs1 == XReg::ZERO {
                    if rd == XReg::ZERO {
                        h.vl // Keep existing vl (vtype change only).
                    } else {
                        vlmax
                    }
                } else {
                    h.get_x(rs1)
                };
                h.vl = avl.min(vlmax);
                h.vtype = Some(vtype);
                let vl = h.vl;
                h.set_x(rd, vl);
                self.stats.vector_insts += 1;
            }
            Inst::VLoad { eew, vd, rs1 } => {
                let base = h.get_x(rs1);
                let vl = h.vl;
                for i in 0..vl {
                    let addr = base + i * eew.bytes();
                    let v = match eew {
                        Eew::E8 => memtrap!(mem.read::<1>(addr))[0] as u64,
                        Eew::E16 => u16::from_le_bytes(memtrap!(mem.read::<2>(addr))) as u64,
                        Eew::E32 => u32::from_le_bytes(memtrap!(mem.read::<4>(addr))) as u64,
                        Eew::E64 => u64::from_le_bytes(memtrap!(mem.read::<8>(addr))),
                    };
                    h.set_v_elem(vd, eew, i as usize, v);
                }
                self.stats.loads += 1;
                self.stats.vector_insts += 1;
            }
            Inst::VStore { eew, vs3, rs1 } => {
                let base = h.get_x(rs1);
                let vl = h.vl;
                for i in 0..vl {
                    let addr = base + i * eew.bytes();
                    let v = h.v_elem(vs3, eew, i as usize);
                    let bytes = v.to_le_bytes();
                    memtrap!(mem.write(addr, &bytes[..eew.bytes() as usize]));
                }
                self.stats.stores += 1;
                self.stats.vector_insts += 1;
            }
            Inst::VArith { op, vd, vs2, src } => {
                exec_varith(h, op, vd, vs2, src);
                self.stats.vector_insts += 1;
            }
            Inst::VMvXS { rd, vs2 } => {
                let sew = h.vtype.map(|t| t.sew).unwrap_or(Eew::E64);
                let v = h.v_elem(vs2, sew, 0);
                h.set_x(rd, sext_to_u64(v, sew));
                self.stats.vector_insts += 1;
            }
            Inst::VMvSX { vd, rs1 } => {
                let sew = h.vtype.map(|t| t.sew).unwrap_or(Eew::E64);
                let v = h.get_x(rs1);
                h.set_v_elem(vd, sew, 0, v);
                self.stats.vector_insts += 1;
            }
        }

        // Commit pc and account cost. `vl_words` only feeds the vector
        // variants' lane costs (asserted in `cost.rs` tests), so skip the
        // vtype math everywhere else — a measurable win in the hot loop
        // with identical accounting.
        self.hart.pc = next_pc;
        self.stats.instret += 1;
        let vl_words = match inst {
            Inst::VLoad { .. } | Inst::VStore { .. } | Inst::VArith { .. } => {
                let sew_bits = self.hart.vtype.map(|t| t.sew.bits()).unwrap_or(64) as u64;
                (self.hart.vl * sew_bits).div_ceil(64)
            }
            _ => 0,
        };
        self.stats.cycles += self.cost.cost(&inst, vl_words, taken);
        Ok(())
    }
}

fn exec_op(kind: OpKind, a: u64, b: u64) -> u64 {
    match kind {
        OpKind::Add => a.wrapping_add(b),
        OpKind::Sub => a.wrapping_sub(b),
        OpKind::Sll => a << (b & 63),
        OpKind::Slt => ((a as i64) < (b as i64)) as u64,
        OpKind::Sltu => (a < b) as u64,
        OpKind::Xor => a ^ b,
        OpKind::Srl => a >> (b & 63),
        OpKind::Sra => ((a as i64) >> (b & 63)) as u64,
        OpKind::Or => a | b,
        OpKind::And => a & b,
        OpKind::Addw => (a.wrapping_add(b) as i32) as i64 as u64,
        OpKind::Subw => (a.wrapping_sub(b) as i32) as i64 as u64,
        OpKind::Sllw => (((a as u32) << (b & 31)) as i32) as i64 as u64,
        OpKind::Srlw => (((a as u32) >> (b & 31)) as i32) as i64 as u64,
        OpKind::Sraw => ((a as i32) >> (b & 31)) as i64 as u64,
        OpKind::Mul => a.wrapping_mul(b),
        OpKind::Mulh => (((a as i64 as i128) * (b as i64 as i128)) >> 64) as u64,
        OpKind::Mulhsu => (((a as i64 as i128) * (b as u128 as i128)) >> 64) as u64,
        OpKind::Mulhu => (((a as u128) * (b as u128)) >> 64) as u64,
        OpKind::Div => {
            let (a, b) = (a as i64, b as i64);
            if b == 0 {
                u64::MAX
            } else if a == i64::MIN && b == -1 {
                a as u64
            } else {
                (a / b) as u64
            }
        }
        OpKind::Divu => a.checked_div(b).unwrap_or(u64::MAX),
        OpKind::Rem => {
            let (a, b) = (a as i64, b as i64);
            if b == 0 {
                a as u64
            } else if a == i64::MIN && b == -1 {
                0
            } else {
                (a % b) as u64
            }
        }
        OpKind::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
        OpKind::Mulw => ((a as i32).wrapping_mul(b as i32)) as i64 as u64,
        OpKind::Divw => {
            let (a, b) = (a as i32, b as i32);
            let v = if b == 0 {
                -1
            } else if a == i32::MIN && b == -1 {
                a
            } else {
                a / b
            };
            v as i64 as u64
        }
        OpKind::Divuw => {
            let (a, b) = (a as u32, b as u32);
            let v = a.checked_div(b).unwrap_or(u32::MAX);
            v as i32 as i64 as u64
        }
        OpKind::Remw => {
            let (a, b) = (a as i32, b as i32);
            let v = if b == 0 {
                a
            } else if a == i32::MIN && b == -1 {
                0
            } else {
                a % b
            };
            v as i64 as u64
        }
        OpKind::Remuw => {
            let (a, b) = (a as u32, b as u32);
            let v = if b == 0 { a } else { a % b };
            v as i32 as i64 as u64
        }
        OpKind::Sh1add => (a << 1).wrapping_add(b),
        OpKind::Sh2add => (a << 2).wrapping_add(b),
        OpKind::Sh3add => (a << 3).wrapping_add(b),
        OpKind::AddUw => (a as u32 as u64).wrapping_add(b),
        OpKind::Andn => a & !b,
        OpKind::Orn => a | !b,
        OpKind::Xnor => !(a ^ b),
        OpKind::Min => (a as i64).min(b as i64) as u64,
        OpKind::Minu => a.min(b),
        OpKind::Max => (a as i64).max(b as i64) as u64,
        OpKind::Maxu => a.max(b),
        OpKind::Rol => a.rotate_left((b & 63) as u32),
        OpKind::Ror => a.rotate_right((b & 63) as u32),
    }
}

fn exec_fop(
    h: &mut Hart,
    kind: FOpKind,
    width: FpWidth,
    frd: chimera_isa::FReg,
    frs1: chimera_isa::FReg,
    frs2: chimera_isa::FReg,
) {
    match width {
        FpWidth::S => {
            let (a, b) = (h.get_s(frs1), h.get_s(frs2));
            let v = match kind {
                FOpKind::Add => a + b,
                FOpKind::Sub => a - b,
                FOpKind::Mul => a * b,
                FOpKind::Div => a / b,
                FOpKind::Min => a.min(b),
                FOpKind::Max => a.max(b),
                FOpKind::SgnJ => {
                    f32::from_bits((a.to_bits() & 0x7fff_ffff) | (b.to_bits() & 0x8000_0000))
                }
                FOpKind::SgnJN => {
                    f32::from_bits((a.to_bits() & 0x7fff_ffff) | (!b.to_bits() & 0x8000_0000))
                }
                FOpKind::SgnJX => f32::from_bits(a.to_bits() ^ (b.to_bits() & 0x8000_0000)),
            };
            h.set_s(frd, v);
        }
        FpWidth::D => {
            let (a, b) = (h.get_d(frs1), h.get_d(frs2));
            let v = match kind {
                FOpKind::Add => a + b,
                FOpKind::Sub => a - b,
                FOpKind::Mul => a * b,
                FOpKind::Div => a / b,
                FOpKind::Min => a.min(b),
                FOpKind::Max => a.max(b),
                FOpKind::SgnJ => f64::from_bits(
                    (a.to_bits() & 0x7fff_ffff_ffff_ffff) | (b.to_bits() & (1 << 63)),
                ),
                FOpKind::SgnJN => f64::from_bits(
                    (a.to_bits() & 0x7fff_ffff_ffff_ffff) | (!b.to_bits() & (1 << 63)),
                ),
                FOpKind::SgnJX => f64::from_bits(a.to_bits() ^ (b.to_bits() & (1 << 63))),
            };
            h.set_d(frd, v);
        }
    }
}

/// RISC-V `fcvt.*` semantics: saturating, with NaN mapping to the maximum
/// value (unlike Rust's `as`, which maps NaN to 0).
fn fcvt_to_int(val: f64, to: IntWidth, signed: bool) -> u64 {
    match (to, signed) {
        (IntWidth::W, true) => {
            let v = if val.is_nan() { i32::MAX } else { val as i32 };
            v as i64 as u64
        }
        (IntWidth::W, false) => {
            let v = if val.is_nan() { u32::MAX } else { val as u32 };
            v as i32 as i64 as u64
        }
        (IntWidth::L, true) => {
            let v = if val.is_nan() { i64::MAX } else { val as i64 };
            v as u64
        }
        (IntWidth::L, false) => {
            if val.is_nan() {
                u64::MAX
            } else {
                val as u64
            }
        }
    }
}

fn sext_to_u64(v: u64, eew: Eew) -> u64 {
    match eew {
        Eew::E8 => v as u8 as i8 as i64 as u64,
        Eew::E16 => v as u16 as i16 as i64 as u64,
        Eew::E32 => v as u32 as i32 as i64 as u64,
        Eew::E64 => v,
    }
}

fn exec_varith(
    h: &mut Hart,
    op: VArithOp,
    vd: chimera_isa::VReg,
    vs2: chimera_isa::VReg,
    src: VSrc,
) {
    let Some(vtype) = h.vtype else {
        return; // No configuration yet: architecturally vl = 0.
    };
    let sew = vtype.sew;
    let vl = h.vl as usize;

    // Scalar-or-element accessor for the second operand.
    let src_elem = |h: &Hart, i: usize| -> u64 {
        match src {
            VSrc::V(vs1) => h.v_elem(vs1, sew, i),
            VSrc::X(rs1) => h.get_x(rs1),
            VSrc::F(frs1) => match sew {
                Eew::E32 => h.get_s(frs1).to_bits() as u64,
                _ => h.get_f(frs1),
            },
            VSrc::I(imm) => imm as i64 as u64,
        }
    };

    let mask = |v: u64| -> u64 {
        match sew {
            Eew::E8 => v as u8 as u64,
            Eew::E16 => v as u16 as u64,
            Eew::E32 => v as u32 as u64,
            Eew::E64 => v,
        }
    };

    match op {
        VArithOp::Vredsum => {
            // vd[0] = vs1[0] + sum(vs2[0..vl])
            let mut acc = match src {
                VSrc::V(vs1) => h.v_elem(vs1, sew, 0),
                _ => 0,
            };
            for i in 0..vl {
                acc = mask(acc.wrapping_add(h.v_elem(vs2, sew, i)));
            }
            h.set_v_elem(vd, sew, 0, acc);
        }
        VArithOp::Vfredusum => match sew {
            Eew::E64 => {
                let mut acc = match src {
                    VSrc::V(vs1) => f64::from_bits(h.v_elem(vs1, sew, 0)),
                    _ => 0.0,
                };
                for i in 0..vl {
                    acc += f64::from_bits(h.v_elem(vs2, sew, i));
                }
                h.set_v_elem(vd, sew, 0, acc.to_bits());
            }
            Eew::E32 => {
                let mut acc = match src {
                    VSrc::V(vs1) => f32::from_bits(h.v_elem(vs1, sew, 0) as u32),
                    _ => 0.0,
                };
                for i in 0..vl {
                    acc += f32::from_bits(h.v_elem(vs2, sew, i) as u32);
                }
                h.set_v_elem(vd, sew, 0, acc.to_bits() as u64);
            }
            _ => {}
        },
        _ => {
            for i in 0..vl {
                let b = src_elem(h, i);
                let a = h.v_elem(vs2, sew, i);
                let d = h.v_elem(vd, sew, i);
                let r = match op {
                    VArithOp::Vadd => a.wrapping_add(b),
                    VArithOp::Vsub => a.wrapping_sub(b),
                    VArithOp::Vand => a & b,
                    VArithOp::Vor => a | b,
                    VArithOp::Vxor => a ^ b,
                    VArithOp::Vmul => a.wrapping_mul(b),
                    VArithOp::Vmacc => d.wrapping_add(a.wrapping_mul(b)),
                    VArithOp::Vmin => {
                        let (sa, sb) = (sext_to_u64(a, sew) as i64, sext_to_u64(b, sew) as i64);
                        sa.min(sb) as u64
                    }
                    VArithOp::Vmax => {
                        let (sa, sb) = (sext_to_u64(a, sew) as i64, sext_to_u64(b, sew) as i64);
                        sa.max(sb) as u64
                    }
                    VArithOp::Vmv => b,
                    VArithOp::Vfadd
                    | VArithOp::Vfsub
                    | VArithOp::Vfmul
                    | VArithOp::Vfdiv
                    | VArithOp::Vfmacc => match sew {
                        Eew::E64 => {
                            let (fa, fb, fd) =
                                (f64::from_bits(a), f64::from_bits(b), f64::from_bits(d));
                            let r = match op {
                                VArithOp::Vfadd => fa + fb,
                                VArithOp::Vfsub => fa - fb,
                                VArithOp::Vfmul => fa * fb,
                                VArithOp::Vfdiv => fa / fb,
                                _ => fb.mul_add(fa, fd), // vfmacc: vd += vs1*vs2
                            };
                            r.to_bits()
                        }
                        Eew::E32 => {
                            let (fa, fb, fd) = (
                                f32::from_bits(a as u32),
                                f32::from_bits(b as u32),
                                f32::from_bits(d as u32),
                            );
                            let r = match op {
                                VArithOp::Vfadd => fa + fb,
                                VArithOp::Vfsub => fa - fb,
                                VArithOp::Vfmul => fa * fb,
                                VArithOp::Vfdiv => fa / fb,
                                _ => fb.mul_add(fa, fd),
                            };
                            r.to_bits() as u64
                        }
                        _ => 0,
                    },
                    VArithOp::Vredsum | VArithOp::Vfredusum => unreachable!("handled above"),
                };
                h.set_v_elem(vd, sew, i, mask(r));
            }
        }
    }
}
