//! The interpreter: fetch/decode/execute with extension gating, the trap
//! model, and the cycle-cost accounting.
//!
//! A [`Cpu`] models one core of an ISAX heterogeneous processor: its
//! [`Cpu::profile`] says which extensions the core implements. Executing an
//! instruction whose extension is missing raises [`Trap::Illegal`] — the
//! fault FAM migrates on and Chimera's lazy rewriting recovers from.
//! Fetching from non-executable memory raises [`Trap::Mem`] with a fetch
//! access — the deterministic "segmentation fault" a partially executed
//! SMILE trampoline produces.
//!
//! The front end (fetch + decode + gating) is memoized per basic block by
//! [`BlockCache`] (see [`crate::bbcache`]); execution always flows through
//! the single [`Cpu::exec`] path, so results and cycle accounting are
//! identical with the cache on or off.

use crate::bbcache::{Block, BlockCache, CachedInst, ChainEdge, ChainLink};
use crate::cost::{CostModel, ExecStats};
use crate::hart::Hart;
use crate::mem::{AccessHints, MemFault, Memory};
use crate::uop::{lower_block, MicroOp};
use chimera_isa::{
    decode, BranchKind, DecodeError, Eew, Ext, ExtSet, FCmpKind, FMaKind, FOpKind, FpWidth, Inst,
    IntWidth, LoadKind, OpImmKind, OpKind, StoreKind, UnaryKind, VArithOp, VSrc, XReg,
};
use chimera_trace::{TraceEvent, Tracer, TrapKind};
use core::fmt;

/// A trap delivered to the (simulated) kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trap {
    /// Illegal instruction: undecodable bits, a reserved encoding, or an
    /// instruction from an extension this core does not implement.
    Illegal {
        /// pc of the illegal instruction.
        pc: u64,
        /// The raw bits at pc (low 16 significant for compressed).
        raw: u32,
    },
    /// Memory access fault (including fetch from non-executable memory —
    /// the paper's segmentation fault).
    Mem {
        /// pc of the faulting instruction (for fetch faults this is the
        /// *fetch target*, i.e. equals `fault.addr`).
        pc: u64,
        /// Fault details.
        fault: MemFault,
    },
    /// `ebreak` (trap-based trampolines in baseline rewriters).
    Breakpoint {
        /// pc of the ebreak.
        pc: u64,
    },
    /// `ecall` (system call).
    Ecall {
        /// pc of the ecall.
        pc: u64,
    },
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::Illegal { pc, raw } => write!(f, "illegal instruction {raw:#x} at {pc:#x}"),
            Trap::Mem { pc, fault } => write!(f, "{fault} (pc {pc:#x})"),
            Trap::Breakpoint { pc } => write!(f, "breakpoint at {pc:#x}"),
            Trap::Ecall { pc } => write!(f, "ecall at {pc:#x}"),
        }
    }
}

/// Why [`Cpu::run`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stop {
    /// A trap was raised (pc still points at the trapping instruction for
    /// `Illegal`/`Breakpoint`/`Ecall`; for fetch faults pc is the fault
    /// address).
    Trap(Trap),
    /// The fuel budget ran out.
    OutOfFuel,
}

/// Which front end executes instructions. All modes are bit-identical in
/// results, traps, `ExecStats` (including cycles) and fuel accounting —
/// they differ only in wall-clock speed. The differential suite asserts it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Pure per-instruction fetch/decode/execute — the reference semantics
    /// the other two modes must match bit for bit.
    Reference,
    /// Decode-cached interpreter: memoized front end, per-instruction
    /// dispatch through [`Cpu::exec`].
    Interpreter,
    /// Micro-op execution engine: lowered block bodies, block-to-block
    /// chaining, per-core memory translation hints. The default.
    Engine,
    /// Host-code JIT tier: hot block bodies template-compiled to x86-64
    /// and chained with patched direct jumps; cold blocks run through the
    /// engine. On hosts without executable pages
    /// ([`crate::jit_available`] is false) this mode runs with the
    /// engine's exact semantics and zero JIT counters.
    Jit,
}

/// One simulated core.
#[derive(Debug, Clone)]
pub struct Cpu {
    /// Architectural state.
    pub hart: Hart,
    /// The extensions this core implements.
    pub profile: ExtSet,
    /// Cycle-cost model.
    pub cost: CostModel,
    /// Accumulated statistics.
    pub stats: ExecStats,
    /// The basic-block decode cache (enabled by default; disable for the
    /// reference fetch/decode/execute path).
    pub cache: BlockCache,
    /// When true (the default) and the cache is enabled, cached blocks run
    /// through the lowered micro-op engine with block chaining; when false
    /// they replay through the per-instruction interpreter. See
    /// [`ExecMode`] / [`Cpu::set_mode`].
    pub engine: bool,
    /// Per-access-kind last-region translation hints (micro-architectural
    /// state only: hints are revalidated on every use and never change
    /// results or faults).
    pub hints: AccessHints,
    /// The host-code JIT tier ([`ExecMode::Jit`]): executable arena,
    /// resident traces, and the deterministic tiering policy.
    pub(crate) jit: crate::jit::JitTier,
    /// The trace handle (disabled by default; see `chimera_trace`). The
    /// CPU emits [`TraceEvent::BlockBuilt`], [`TraceEvent::BlockChained`],
    /// [`TraceEvent::CacheInvalidate`] and [`TraceEvent::Trap`] — coarse
    /// events only, never per retired instruction, so the enabled overhead
    /// stays bounded.
    pub tracer: Tracer,
}

/// How a lowered block body finished (engine mode).
enum BlockExit {
    /// Ran off the end of the body (size-truncated block) or a conditional
    /// branch fell through: the fall-through edge, chainable.
    Fall,
    /// A direct control transfer redirected (`jal`, taken branch): the
    /// taken edge, chainable.
    Taken,
    /// An indirect jump (`jalr`): target is data-dependent, chained
    /// through the one-entry-BTB edge ([`ChainEdge::Indirect`]).
    Indirect,
    /// A store invalidated this block's own region mid-body: bail to the
    /// dispatcher, which revalidates before executing anything else.
    Bail,
    /// The fuel budget ran out mid-body.
    Budget,
}

impl Cpu {
    /// Creates a core with the given extension profile.
    pub fn new(profile: ExtSet) -> Self {
        Cpu {
            hart: Hart::new(),
            profile,
            cost: CostModel::default(),
            stats: ExecStats::default(),
            cache: BlockCache::new(),
            engine: true,
            hints: AccessHints::default(),
            jit: crate::jit::JitTier::new(),
            tracer: Tracer::disabled(),
        }
    }

    /// Creates a core with the decode cache disabled (pure per-instruction
    /// fetch/decode/execute — the reference semantics the cached path must
    /// match bit for bit).
    pub fn new_uncached(profile: ExtSet) -> Self {
        Cpu {
            cache: BlockCache::disabled(),
            ..Cpu::new(profile)
        }
    }

    /// Selects the execution front end (see [`ExecMode`]).
    ///
    /// Always performs a full JIT-tier reset — resident traces, hotness
    /// counters and demotion hysteresis — so no promotion state carries
    /// across a mode switch (asserted by the tiering-policy tests).
    pub fn set_mode(&mut self, mode: ExecMode) {
        self.cache.enabled = mode != ExecMode::Reference;
        self.engine = matches!(mode, ExecMode::Engine | ExecMode::Jit);
        self.jit.enabled = mode == ExecMode::Jit;
        self.jit.reset();
    }

    /// The currently selected execution front end.
    pub fn mode(&self) -> ExecMode {
        match (self.cache.enabled, self.engine) {
            (false, _) => ExecMode::Reference,
            (true, false) => ExecMode::Interpreter,
            (true, true) if self.jit.enabled => ExecMode::Jit,
            (true, true) => ExecMode::Engine,
        }
    }

    /// Overrides the JIT promotion threshold: dispatcher entries of a
    /// valid cached block before its body is compiled (default 16).
    /// Applies to [`ExecMode::Jit`] only; tests and benches use 1 to
    /// force immediate promotion.
    pub fn set_jit_threshold(&mut self, threshold: u32) {
        self.jit.set_threshold(threshold);
    }

    /// The unpatched host-code bytes compiled for the live trace at `pc`,
    /// if one is resident (SMC byte-identity regressions).
    pub fn jit_trace_bytes(&self, pc: u64) -> Option<Vec<u8>> {
        self.jit.trace_bytes(pc)
    }

    /// The dispatcher-entry count accumulated toward promoting `pc` (0
    /// once promoted or never seen).
    pub fn jit_hotness(&self, pc: u64) -> u32 {
        self.jit.hotness(pc)
    }

    /// Lifetime count of block bodies compiled to host code.
    pub fn jit_compiled(&self) -> u64 {
        self.jit.compiled()
    }

    /// Executes instructions until a trap or until `fuel` instructions have
    /// retired.
    ///
    /// Every return is a **yield point** under the fiber contract
    /// (`crate::fiber`): whatever the stop reason and whichever tier was
    /// executing, all batched counters — the engine's and JIT's locally
    /// accumulated instret/cycles/class counts, the JIT's fuel anchor —
    /// have been drained into `self.stats`, and `self.hart` holds the
    /// exact architectural state at the stopped instruction boundary. The
    /// caller may therefore suspend the CPU here, move it to another host
    /// thread, and call `run` again: any slicing of a run, down to one
    /// instruction per slice, is bit-identical to an unsliced run (the
    /// differential suite's yield-point transparency test gates this).
    pub fn run(&mut self, mem: &mut Memory, fuel: u64) -> Stop {
        if !self.cache.enabled {
            for _ in 0..fuel {
                if let Err(t) = self.step(mem) {
                    self.trace_trap(&t);
                    return Stop::Trap(t);
                }
            }
            return Stop::OutOfFuel;
        }
        let mut remaining = fuel;
        while remaining > 0 {
            let stepped = if self.engine && self.jit.enabled {
                self.step_jit(mem, remaining)
            } else if self.engine {
                self.step_engine(mem, remaining)
            } else {
                self.step_block(mem, remaining)
            };
            match stepped {
                Ok(retired) => remaining -= retired.min(remaining),
                Err(t) => {
                    self.trace_trap(&t);
                    return Stop::Trap(t);
                }
            }
        }
        Stop::OutOfFuel
    }

    /// Emits a [`TraceEvent::Trap`] for a trap about to be delivered.
    fn trace_trap(&self, t: &Trap) {
        if !self.tracer.is_enabled() {
            return;
        }
        let (pc, kind) = match *t {
            Trap::Illegal { pc, .. } => (pc, TrapKind::Illegal),
            Trap::Mem { pc, fault } => (
                pc,
                match fault.access {
                    crate::mem::Access::Fetch => TrapKind::MemFetch,
                    crate::mem::Access::Load => TrapKind::MemLoad,
                    crate::mem::Access::Store => TrapKind::MemStore,
                },
            ),
            Trap::Breakpoint { pc } => (pc, TrapKind::Breakpoint),
            Trap::Ecall { pc } => (pc, TrapKind::Ecall),
        };
        self.tracer
            .record(self.stats.cycles, TraceEvent::Trap { pc, kind });
    }

    /// Fetches, decodes and executes one instruction.
    ///
    /// On `Err`, pc is left at the trapping instruction (or at the fetch
    /// fault address for fetch faults), exactly like hardware `*epc`.
    pub fn step(&mut self, mem: &mut Memory) -> Result<(), Trap> {
        let pc = self.hart.pc;
        let lo = mem
            .fetch_u16_hinted(&mut self.hints.fetch, pc)
            .map_err(|fault| Trap::Mem {
                pc: fault.addr,
                fault,
            })?;
        let word = if lo & 0b11 == 0b11 {
            // 32-bit encoding: fetch the upper parcel too.
            let hi = mem
                .fetch_u16_hinted(&mut self.hints.fetch, pc + 2)
                .map_err(|fault| Trap::Mem {
                    pc: fault.addr,
                    fault,
                })?;
            (hi as u32) << 16 | lo as u32
        } else {
            lo as u32
        };
        let decoded = decode(word).map_err(|e| {
            let raw = match e {
                DecodeError::Unrecognized(w) | DecodeError::ReservedLong(w) => w,
            };
            Trap::Illegal { pc, raw }
        })?;
        // Extension gating: the canonical instruction's extension, plus the
        // C extension when the encoding was compressed.
        if !decoded.inst.runnable_on(self.profile)
            || (decoded.len == 2 && !self.profile.contains(Ext::C))
        {
            return Err(Trap::Illegal { pc, raw: word });
        }
        self.exec(mem, decoded.inst, decoded.len as u64)
    }

    /// Executes up to one basic block through the decode cache, bounded by
    /// `budget` instructions; returns the number retired.
    ///
    /// Semantically equivalent to calling [`Cpu::step`] in a loop: every
    /// instruction still executes through [`Cpu::exec`], and any trap leaves
    /// pc exactly where the uncached path would.
    fn step_block(&mut self, mem: &mut Memory, budget: u64) -> Result<u64, Trap> {
        let pc = self.hart.pc;
        let Some(fp) = mem.code_fingerprint(pc) else {
            // Unmapped or non-executable pc: fall back to a plain step so
            // the architecturally correct fetch fault is raised.
            self.step(mem)?;
            return Ok(1);
        };
        let inv_before = self.cache.stats.invalidations;
        let looked_up = self.cache.lookup(pc, self.profile, fp);
        if self.cache.stats.invalidations != inv_before {
            self.tracer
                .record(self.stats.cycles, TraceEvent::CacheInvalidate { pc });
            self.tracer.count("emu.cache_invalidations", 1);
        }
        let block = match looked_up {
            Some(b) => b,
            None => match self.build_block(mem, pc, fp)? {
                Some((_, b)) => b,
                // First instruction's upper parcel lies outside the
                // fingerprinted region: execute it uncached so writes to the
                // neighbouring region are always observed.
                None => {
                    self.step(mem)?;
                    return Ok(1);
                }
            },
        };
        let mut retired = 0u64;
        for ci in block.insts.iter() {
            if retired >= budget {
                break;
            }
            let gen_before = if ci.is_store {
                mem.code_generation()
            } else {
                0
            };
            self.exec(mem, ci.inst, ci.len)?;
            retired += 1;
            // A store may have rewritten code — including the rest of THIS
            // block. The global generation is the cheap filter; when it
            // moved, the block survives iff its own region's fingerprint is
            // intact (stores to *other* executable regions can't change
            // these bytes). Otherwise bail to the dispatcher, which
            // revalidates before executing anything else.
            if ci.is_store && mem.code_generation() != gen_before && !block_intact(mem, &block) {
                break;
            }
        }
        Ok(retired)
    }

    /// Executes through the micro-op engine, bounded by `budget` retired
    /// instructions; returns the number retired.
    ///
    /// The dispatcher half mirrors [`Cpu::step_block`] exactly (same
    /// fingerprint lookup, same miss/build/invalidate counting and trace
    /// mirroring, same uncached fallbacks), so cache counters reconcile
    /// with the interpreter as `hits_interp == hits_engine + chained`.
    /// Between dispatches, validated chain links jump block-to-block
    /// directly.
    fn step_engine(&mut self, mem: &mut Memory, budget: u64) -> Result<u64, Trap> {
        let mut retired = 0u64;
        // The slot+edge that led to the pc we're about to dispatch, so a
        // successful lookup/build installs the missing chain link.
        let mut pending: Option<(u32, (u64, ExtSet), ChainEdge)> = None;
        // A block reached by a validated chain link, consumed (and counted)
        // by the next iteration instead of a dispatcher lookup.
        let mut next: Option<(u32, std::sync::Arc<Block>)> = None;
        while retired < budget {
            let pc = self.hart.pc;
            let (id, block) = match next.take() {
                Some(n) => {
                    self.cache.stats.chained += 1;
                    n
                }
                None => {
                    // Jump-cache probe first: a direct-mapped hint
                    // revalidated with the exact chain-link rules. A
                    // validated hit is the same dispatcher hit the
                    // interpreter counts, minus the fingerprint + hash
                    // lookup — this is what keeps BTB misses on
                    // megamorphic indirect call sites cheap.
                    let hinted = self
                        .cache
                        .jump_hint(pc)
                        .and_then(|link| self.validate_link(mem, link));
                    let (id, block) = if let Some((id, block, needs_restamp)) = hinted {
                        if needs_restamp {
                            self.cache.jump_restamp(pc, mem.code_generation());
                        }
                        self.cache.stats.hits += 1;
                        (id, block)
                    } else {
                        // Any stale entry for this pc is dead; dropping it
                        // is a no-op when the probe simply missed.
                        self.cache.jump_clear(pc);
                        let Some(fp) = mem.code_fingerprint(pc) else {
                            // Unmapped or non-executable pc: plain step
                            // raises the architecturally correct fetch
                            // fault.
                            self.step(mem)?;
                            return Ok(retired + 1);
                        };
                        let inv_before = self.cache.stats.invalidations;
                        let looked_up = self.cache.lookup_slot(pc, self.profile, fp);
                        if self.cache.stats.invalidations != inv_before {
                            self.tracer
                                .record(self.stats.cycles, TraceEvent::CacheInvalidate { pc });
                            self.tracer.count("emu.cache_invalidations", 1);
                        }
                        let (id, block) = match looked_up {
                            Some(ib) => ib,
                            None => match self.build_block(mem, pc, fp)? {
                                Some(ib) => ib,
                                None => {
                                    self.step(mem)?;
                                    return Ok(retired + 1);
                                }
                            },
                        };
                        self.cache.jump_set(ChainLink {
                            to: id,
                            pc,
                            stamp: mem.code_generation(),
                        });
                        (id, block)
                    };
                    if let Some((from, from_key, edge)) = pending.take() {
                        let link = ChainLink {
                            to: id,
                            pc,
                            stamp: mem.code_generation(),
                        };
                        if self.cache.set_link(from, from_key, edge, link)
                            && self.tracer.is_enabled()
                        {
                            self.tracer.record(
                                self.stats.cycles,
                                TraceEvent::BlockChained {
                                    from: from_key.0,
                                    to: pc,
                                },
                            );
                            self.tracer.count("emu.blocks_chained", 1);
                        }
                    }
                    (id, block)
                }
            };
            pending = None;
            let (r, exit) = self.exec_lowered(mem, &block, budget - retired)?;
            retired += r;
            match exit {
                BlockExit::Budget => return Ok(retired),
                // A bail needs full revalidation: back through the
                // dispatcher, unlinked.
                BlockExit::Bail => {}
                // Indirect targets are data-dependent, so the edge is a
                // one-entry BTB: a pc-matching link short-circuits the
                // dispatcher, a miss re-dispatches and retrains the link.
                BlockExit::Taken | BlockExit::Fall | BlockExit::Indirect => {
                    let edge = match exit {
                        BlockExit::Taken => ChainEdge::Taken,
                        BlockExit::Fall => ChainEdge::Fall,
                        _ => ChainEdge::Indirect,
                    };
                    match self.follow_link(mem, id, edge) {
                        Some(n) => next = Some(n),
                        None => pending = Some((id, (pc, self.profile), edge)),
                    }
                }
            }
        }
        Ok(retired)
    }

    /// The JIT-tier dispatcher: the engine dispatcher with uop-level
    /// block chaining replaced by compiled-trace entry. Every dispatch
    /// counts exactly as it does in the other modes (jump-cache hits,
    /// lookups, misses, builds), then hands the block to
    /// [`crate::jit::try_enter`]; blocks the tier declines — cold,
    /// host-unsupported, under-funded — run through [`Cpu::exec_lowered`]
    /// unchanged. Uop chain links are neither followed nor trained here,
    /// so `CacheStats::chained` stays 0 and the reconciliation law reads
    /// `hits(interp) == hits(jit) + jitted(jit)`.
    fn step_jit(&mut self, mem: &mut Memory, budget: u64) -> Result<u64, Trap> {
        let mut retired = 0u64;
        while retired < budget {
            let pc = self.hart.pc;
            let hinted = self
                .cache
                .jump_hint(pc)
                .and_then(|link| self.validate_link(mem, link));
            let block = if let Some((_, block, needs_restamp)) = hinted {
                if needs_restamp {
                    self.cache.jump_restamp(pc, mem.code_generation());
                }
                self.cache.stats.hits += 1;
                block
            } else {
                self.cache.jump_clear(pc);
                let Some(fp) = mem.code_fingerprint(pc) else {
                    self.step(mem)?;
                    return Ok(retired + 1);
                };
                let inv_before = self.cache.stats.invalidations;
                let looked_up = self.cache.lookup_slot(pc, self.profile, fp);
                if self.cache.stats.invalidations != inv_before {
                    self.tracer
                        .record(self.stats.cycles, TraceEvent::CacheInvalidate { pc });
                    self.tracer.count("emu.cache_invalidations", 1);
                }
                let (id, block) = match looked_up {
                    Some(ib) => ib,
                    None => match self.build_block(mem, pc, fp)? {
                        Some(ib) => ib,
                        None => {
                            self.step(mem)?;
                            return Ok(retired + 1);
                        }
                    },
                };
                self.cache.jump_set(ChainLink {
                    to: id,
                    pc,
                    stamp: mem.code_generation(),
                });
                block
            };
            match crate::jit::try_enter(self, mem, budget - retired, &block, pc) {
                Some(Ok(r)) => retired += r,
                Some(Err(t)) => return Err(t),
                None => {
                    let (r, exit) = self.exec_lowered(mem, &block, budget - retired)?;
                    retired += r;
                    if matches!(exit, BlockExit::Budget) {
                        return Ok(retired);
                    }
                }
            }
        }
        Ok(retired)
    }

    /// Follows the chain link on one of `from`'s edges if it validates
    /// (see [`ChainLink`] for the fast/slow path rules); severs it and
    /// returns `None` otherwise, sending the dispatcher through the
    /// ordinary invalidating lookup.
    fn follow_link(
        &mut self,
        mem: &mut Memory,
        from: u32,
        edge: ChainEdge,
    ) -> Option<(u32, std::sync::Arc<Block>)> {
        let link = self.cache.link_of(from, edge)?;
        if self.hart.pc != link.pc {
            // BTB miss on the indirect edge (the call site produced a
            // different target this time). The link may still be right for
            // other executions, so don't sever — the dispatcher retrains
            // the prediction after its lookup. Static edges always
            // reproduce the same target pc, so for them this is dead code.
            return None;
        }
        match self.validate_link(mem, link) {
            Some((id, block, needs_restamp)) => {
                if needs_restamp {
                    self.cache.restamp(from, edge, mem.code_generation());
                }
                Some((id, block))
            }
            None => {
                self.cache.sever(from, edge);
                None
            }
        }
    }

    /// Revalidates a [`ChainLink`]'s target — slot key, then the
    /// generation-stamp fast path / fingerprint slow path (see
    /// [`ChainLink`]). Shared by chain-edge follows and jump-cache probes,
    /// which only differ in where they store the refreshed stamp. Returns
    /// the target and whether the caller must restamp; `None` means the
    /// target is gone or stale.
    fn validate_link(
        &self,
        mem: &mut Memory,
        link: ChainLink,
    ) -> Option<(u32, std::sync::Arc<Block>, bool)> {
        let (key, fp, block) = self.cache.slot_block(link.to)?;
        if key != (link.pc, self.profile) {
            // The slot was flushed and reused under a different key.
            return None;
        }
        if link.stamp == mem.code_generation() {
            return Some((link.to, block, false));
        }
        // Executable bytes changed somewhere since the stamp; the target is
        // still valid iff its own region fingerprint is unchanged.
        if mem.code_fingerprint(link.pc) == Some(fp) {
            return Some((link.to, block, true));
        }
        None
    }

    /// Executes a lowered block body, bounded by `budget`; returns the
    /// instructions retired and how the body ended.
    ///
    /// Instruction-for-instruction equivalent to the interpreter's replay
    /// loop in [`Cpu::step_block`] — same trap pcs, same budget semantics,
    /// same mid-block self-modification guard — but `pc` and the hot stat
    /// counters (`instret`, `cycles`, `loads`, `stores`) live in locals
    /// and are flushed to `self` only at observable boundaries: a trap, a
    /// [`MicroOp::Generic`] delegate, or a block exit. Nothing can read
    /// CPU state between two uops of the same block, so the batching is
    /// invisible — any trap still sees bit-identical `hart`/stats — while
    /// the straight-line loop sheds four memory read-modify-writes per
    /// instruction. The budget bound is the loop bound itself (`n`), not a
    /// per-op check.
    fn exec_lowered(
        &mut self,
        mem: &mut Memory,
        block: &Block,
        budget: u64,
    ) -> Result<(u64, BlockExit), Trap> {
        let n = (block.ops.len() as u64).min(budget) as usize;
        let mut pc = self.hart.pc;
        let mut retired = 0u64;
        // Prefix of `retired` already reflected in `self.stats.instret`
        // (advanced past Generic ops, which account for themselves through
        // `Cpu::exec`).
        let mut flushed = 0u64;
        let mut d_cycles = 0u64;
        let mut d_loads = 0u64;
        let mut d_stores = 0u64;

        // Flush the batched locals. Callers reset / stop using the deltas
        // themselves (keeping dead stores out of the exit paths).
        macro_rules! flush {
            () => {{
                self.hart.pc = pc;
                self.stats.instret += retired - flushed;
                self.stats.cycles += d_cycles;
                self.stats.loads += d_loads;
                self.stats.stores += d_stores;
            }};
        }
        // A memory fault flushes the pre-instruction state first: the
        // faulting instruction contributes nothing and pc stays on it,
        // exactly like the uncached path.
        macro_rules! memtrap {
            ($e:expr) => {
                match $e {
                    Ok(v) => v,
                    Err(fault) => {
                        flush!();
                        return Err(Trap::Mem { pc, fault });
                    }
                }
            };
        }

        for u in block.ops[..n].iter() {
            let next_pc = pc + u.len as u64;
            match u.op {
                // Cold operations delegate to `Cpu::exec`, which does its
                // own pc/cost/stats accounting against flushed state. None
                // of them end a block (`ecall`/`ebreak` trap out of the
                // body instead).
                MicroOp::Generic(inst) => {
                    let gen_before = mem.code_generation();
                    flush!();
                    flushed = retired;
                    d_cycles = 0;
                    d_loads = 0;
                    d_stores = 0;
                    self.exec(mem, inst, u.len as u64)?;
                    retired += 1;
                    flushed += 1;
                    pc = self.hart.pc;
                    if u.is_store
                        && mem.code_generation() != gen_before
                        && !block_intact(mem, block)
                    {
                        // Everything is already flushed, pc included.
                        return Ok((retired, BlockExit::Bail));
                    }
                    continue;
                }
                MicroOp::Lui { rd, imm } => self.hart.set_x(rd, imm as i64 as u64),
                MicroOp::Auipc { rd, imm } => {
                    self.hart.set_x(rd, pc.wrapping_add(imm as i64 as u64))
                }
                MicroOp::Jal { rd, offset } => {
                    self.hart.set_x(rd, next_pc);
                    pc = pc.wrapping_add(offset as i64 as u64);
                    retired += 1;
                    d_cycles += u.cost as u64;
                    flush!();
                    return Ok((retired, BlockExit::Taken));
                }
                MicroOp::Jalr { rd, rs1, offset } => {
                    let target = self.hart.get_x(rs1).wrapping_add(offset as i64 as u64) & !1;
                    self.hart.set_x(rd, next_pc);
                    pc = target;
                    retired += 1;
                    d_cycles += u.cost as u64;
                    self.stats.indirect_jumps += 1;
                    flush!();
                    return Ok((retired, BlockExit::Indirect));
                }
                MicroOp::Branch {
                    kind,
                    rs1,
                    rs2,
                    offset,
                    taken_cost,
                } => {
                    let a = self.hart.get_x(rs1);
                    let b = self.hart.get_x(rs2);
                    retired += 1;
                    self.stats.branches += 1;
                    let exit = if branch_cond(kind, a, b) {
                        pc = pc.wrapping_add(offset as i64 as u64);
                        d_cycles += taken_cost as u64;
                        BlockExit::Taken
                    } else {
                        pc = next_pc;
                        d_cycles += u.cost as u64;
                        BlockExit::Fall
                    };
                    flush!();
                    return Ok((retired, exit));
                }
                MicroOp::Load {
                    kind,
                    rd,
                    rs1,
                    offset,
                } => {
                    let addr = self.hart.get_x(rs1).wrapping_add(offset as i64 as u64);
                    let hint = &mut self.hints.load;
                    let v = match kind {
                        LoadKind::Lb => {
                            memtrap!(mem.read_hinted::<1>(hint, addr))[0] as i8 as i64 as u64
                        }
                        LoadKind::Lbu => memtrap!(mem.read_hinted::<1>(hint, addr))[0] as u64,
                        LoadKind::Lh => {
                            i16::from_le_bytes(memtrap!(mem.read_hinted::<2>(hint, addr))) as i64
                                as u64
                        }
                        LoadKind::Lhu => {
                            u16::from_le_bytes(memtrap!(mem.read_hinted::<2>(hint, addr))) as u64
                        }
                        LoadKind::Lw => {
                            i32::from_le_bytes(memtrap!(mem.read_hinted::<4>(hint, addr))) as i64
                                as u64
                        }
                        LoadKind::Lwu => {
                            u32::from_le_bytes(memtrap!(mem.read_hinted::<4>(hint, addr))) as u64
                        }
                        LoadKind::Ld => {
                            u64::from_le_bytes(memtrap!(mem.read_hinted::<8>(hint, addr)))
                        }
                    };
                    self.hart.set_x(rd, v);
                    d_loads += 1;
                }
                MicroOp::Store {
                    kind,
                    rs1,
                    rs2,
                    offset,
                } => {
                    let gen_before = mem.code_generation();
                    let addr = self.hart.get_x(rs1).wrapping_add(offset as i64 as u64);
                    let v = self.hart.get_x(rs2);
                    let hint = &mut self.hints.store;
                    match kind {
                        StoreKind::Sb => memtrap!(mem.write_hinted(hint, addr, &[v as u8])),
                        StoreKind::Sh => {
                            memtrap!(mem.write_hinted(hint, addr, &(v as u16).to_le_bytes()))
                        }
                        StoreKind::Sw => {
                            memtrap!(mem.write_hinted(hint, addr, &(v as u32).to_le_bytes()))
                        }
                        StoreKind::Sd => memtrap!(mem.write_hinted(hint, addr, &v.to_le_bytes())),
                    }
                    d_stores += 1;
                    pc = next_pc;
                    retired += 1;
                    d_cycles += u.cost as u64;
                    // The store may have rewritten code — including the
                    // rest of THIS block (same guard as the interpreter's
                    // replay loop).
                    if mem.code_generation() != gen_before && !block_intact(mem, block) {
                        flush!();
                        return Ok((retired, BlockExit::Bail));
                    }
                    continue;
                }
                // Flattened hot ALU ops: semantics identical to the
                // matching `exec_opimm`/`exec_op` arm, minus the second
                // kind dispatch.
                MicroOp::Addi { rd, rs1, imm } => {
                    let a = self.hart.get_x(rs1);
                    self.hart.set_x(rd, a.wrapping_add(imm as i64 as u64));
                }
                MicroOp::Andi { rd, rs1, imm } => {
                    let a = self.hart.get_x(rs1);
                    self.hart.set_x(rd, a & (imm as i64 as u64));
                }
                MicroOp::Slli { rd, rs1, shamt } => {
                    let a = self.hart.get_x(rs1);
                    self.hart.set_x(rd, a << shamt);
                }
                MicroOp::Srli { rd, rs1, shamt } => {
                    let a = self.hart.get_x(rs1);
                    self.hart.set_x(rd, a >> shamt);
                }
                MicroOp::Add { rd, rs1, rs2 } => {
                    let a = self.hart.get_x(rs1);
                    let b = self.hart.get_x(rs2);
                    self.hart.set_x(rd, a.wrapping_add(b));
                }
                MicroOp::Sub { rd, rs1, rs2 } => {
                    let a = self.hart.get_x(rs1);
                    let b = self.hart.get_x(rs2);
                    self.hart.set_x(rd, a.wrapping_sub(b));
                }
                MicroOp::Xor { rd, rs1, rs2 } => {
                    let a = self.hart.get_x(rs1);
                    let b = self.hart.get_x(rs2);
                    self.hart.set_x(rd, a ^ b);
                }
                MicroOp::OpImm { kind, rd, rs1, imm } => {
                    let a = self.hart.get_x(rs1);
                    self.hart.set_x(rd, exec_opimm(kind, a, imm));
                }
                MicroOp::Op { kind, rd, rs1, rs2 } => {
                    let a = self.hart.get_x(rs1);
                    let b = self.hart.get_x(rs2);
                    self.hart.set_x(rd, exec_op(kind, a, b));
                }
                MicroOp::Unary { kind, rd, rs1 } => {
                    let a = self.hart.get_x(rs1);
                    self.hart.set_x(rd, exec_unary(kind, a));
                }
                MicroOp::Fence => {}
                MicroOp::FLoad {
                    width,
                    frd,
                    rs1,
                    offset,
                } => {
                    let addr = self.hart.get_x(rs1).wrapping_add(offset as i64 as u64);
                    let hint = &mut self.hints.load;
                    match width {
                        FpWidth::S => {
                            let bits =
                                u32::from_le_bytes(memtrap!(mem.read_hinted::<4>(hint, addr)));
                            self.hart.set_f(frd, 0xffff_ffff_0000_0000 | bits as u64);
                        }
                        FpWidth::D => {
                            let bits =
                                u64::from_le_bytes(memtrap!(mem.read_hinted::<8>(hint, addr)));
                            self.hart.set_f(frd, bits);
                        }
                    }
                    d_loads += 1;
                }
                MicroOp::FStore {
                    width,
                    frs2,
                    rs1,
                    offset,
                } => {
                    let gen_before = mem.code_generation();
                    let addr = self.hart.get_x(rs1).wrapping_add(offset as i64 as u64);
                    let v = self.hart.get_f(frs2);
                    let hint = &mut self.hints.store;
                    match width {
                        FpWidth::S => {
                            memtrap!(mem.write_hinted(hint, addr, &(v as u32).to_le_bytes()))
                        }
                        FpWidth::D => memtrap!(mem.write_hinted(hint, addr, &v.to_le_bytes())),
                    }
                    d_stores += 1;
                    pc = next_pc;
                    retired += 1;
                    d_cycles += u.cost as u64;
                    if mem.code_generation() != gen_before && !block_intact(mem, block) {
                        flush!();
                        return Ok((retired, BlockExit::Bail));
                    }
                    continue;
                }
            }
            // Straight-line tail: only non-store, non-exit ops reach here
            // (stores run their own tail plus the self-modification guard;
            // exit ops returned above; Generic advanced pc itself).
            pc = next_pc;
            retired += 1;
            d_cycles += u.cost as u64;
        }
        flush!();
        if n < block.ops.len() {
            Ok((retired, BlockExit::Budget))
        } else {
            Ok((retired, BlockExit::Fall))
        }
    }

    /// Decodes a basic block starting at `pc` and caches it.
    ///
    /// The block ends at the first control-transfer or system instruction
    /// (included), at [`BlockCache::max_block_insts`], at the region edge,
    /// or just before the first undecodable/ill-gated instruction. If the
    /// *first* instruction already faults, nothing is cached and the trap
    /// is returned with [`Cpu::step`]'s exact semantics (lazy rewriting may
    /// legalise those bytes later, so they must stay uncached).
    ///
    /// A 4-byte instruction whose upper parcel straddles into a *different*
    /// region is never cached either — the block's fingerprint only covers
    /// the region holding its start pc, so a write to the neighbour region
    /// would not invalidate it. `Ok(None)` tells the caller to execute the
    /// first instruction uncached instead.
    fn build_block(
        &mut self,
        mem: &mut Memory,
        pc: u64,
        fingerprint: (u64, u64),
    ) -> Result<Option<(u32, std::sync::Arc<Block>)>, Trap> {
        let mut insts = Vec::new();
        let mut cur = pc;
        while insts.len() < BlockCache::max_block_insts() {
            // Stop at the region edge (or if an interleaved build ever saw
            // the region change — impossible today, checked for free).
            if !insts.is_empty() && mem.code_fingerprint(cur) != Some(fingerprint) {
                break;
            }
            let fetch_hint = &mut self.hints.fetch;
            let fetched = (|| {
                let lo = mem
                    .fetch_u16_hinted(fetch_hint, cur)
                    .map_err(|fault| Trap::Mem {
                        pc: fault.addr,
                        fault,
                    })?;
                let word = if lo & 0b11 == 0b11 {
                    // The upper parcel must sit in the same region as the
                    // block fingerprint, or invalidation can't see it.
                    if mem.code_fingerprint(cur + 2) != Some(fingerprint) {
                        return Ok(None);
                    }
                    let hi =
                        mem.fetch_u16_hinted(fetch_hint, cur + 2)
                            .map_err(|fault| Trap::Mem {
                                pc: fault.addr,
                                fault,
                            })?;
                    (hi as u32) << 16 | lo as u32
                } else {
                    lo as u32
                };
                let decoded = decode(word).map_err(|e| {
                    let raw = match e {
                        DecodeError::Unrecognized(w) | DecodeError::ReservedLong(w) => w,
                    };
                    Trap::Illegal { pc: cur, raw }
                })?;
                if !decoded.inst.runnable_on(self.profile)
                    || (decoded.len == 2 && !self.profile.contains(Ext::C))
                {
                    return Err(Trap::Illegal { pc: cur, raw: word });
                }
                Ok(Some(decoded))
            })();
            let decoded = match fetched {
                Ok(Some(d)) => d,
                // First instruction straddles out of the region: the caller
                // must run it uncached.
                Ok(None) if insts.is_empty() => return Ok(None),
                // A later one: truncate; the next dispatch re-fingerprints
                // at the straddling pc and takes the uncached path there.
                Ok(None) => break,
                // First instruction faults: surface it, uncached.
                Err(t) if insts.is_empty() => return Err(t),
                // Later instruction faults: truncate; the dispatcher will
                // re-derive the fault when (if) pc actually gets there.
                Err(_) => break,
            };
            let inst = decoded.inst;
            let len = decoded.len as u64;
            let is_terminator = matches!(
                inst,
                Inst::Jal { .. }
                    | Inst::Jalr { .. }
                    | Inst::Branch { .. }
                    | Inst::Ecall
                    | Inst::Ebreak
            );
            insts.push(CachedInst {
                inst,
                len,
                is_store: matches!(
                    inst,
                    Inst::Store { .. } | Inst::FStore { .. } | Inst::VStore { .. }
                ),
            });
            cur += len;
            if is_terminator {
                break;
            }
        }
        // Lower the micro-op body at build time in every mode, so
        // interpreter and engine runs build byte-identical blocks (and the
        // `blocks_built` counters reconcile trivially).
        let ops = lower_block(&insts, &self.cost);
        let block = Block {
            insts,
            ops,
            region_start: fingerprint.0,
            region_gen: fingerprint.1,
        };
        let (id, cached) = self.cache.insert(pc, self.profile, block);
        if self.tracer.is_enabled() {
            self.tracer.record(
                self.stats.cycles,
                TraceEvent::BlockBuilt {
                    pc,
                    insts: cached.insts.len() as u64,
                },
            );
            self.tracer.count("emu.blocks_built", 1);
        }
        Ok(Some((id, cached)))
    }

    /// Executes a decoded instruction (pc at `self.hart.pc`, length `len`).
    pub(crate) fn exec(&mut self, mem: &mut Memory, inst: Inst, len: u64) -> Result<(), Trap> {
        let h = &mut self.hart;
        let pc = h.pc;
        let mut next_pc = pc + len;
        let mut taken = false;

        macro_rules! memtrap {
            ($e:expr) => {
                $e.map_err(|fault| Trap::Mem { pc, fault })?
            };
        }

        match inst {
            Inst::Lui { rd, imm20 } => h.set_x(rd, ((imm20 as i64) << 12) as u64),
            Inst::Auipc { rd, imm20 } => {
                h.set_x(rd, pc.wrapping_add(((imm20 as i64) << 12) as u64))
            }
            Inst::Jal { rd, offset } => {
                h.set_x(rd, pc + len);
                next_pc = pc.wrapping_add(offset as i64 as u64);
                taken = true;
            }
            Inst::Jalr { rd, rs1, offset } => {
                let target = h.get_x(rs1).wrapping_add(offset as i64 as u64) & !1;
                h.set_x(rd, pc + len);
                next_pc = target;
                taken = true;
                self.stats.indirect_jumps += 1;
            }
            Inst::Branch {
                kind,
                rs1,
                rs2,
                offset,
            } => {
                let a = h.get_x(rs1);
                let b = h.get_x(rs2);
                if branch_cond(kind, a, b) {
                    next_pc = pc.wrapping_add(offset as i64 as u64);
                    taken = true;
                }
                self.stats.branches += 1;
            }
            Inst::Load {
                kind,
                rd,
                rs1,
                offset,
            } => {
                let addr = h.get_x(rs1).wrapping_add(offset as i64 as u64);
                let hint = &mut self.hints.load;
                let v = match kind {
                    LoadKind::Lb => {
                        memtrap!(mem.read_hinted::<1>(hint, addr))[0] as i8 as i64 as u64
                    }
                    LoadKind::Lbu => memtrap!(mem.read_hinted::<1>(hint, addr))[0] as u64,
                    LoadKind::Lh => {
                        i16::from_le_bytes(memtrap!(mem.read_hinted::<2>(hint, addr))) as i64 as u64
                    }
                    LoadKind::Lhu => {
                        u16::from_le_bytes(memtrap!(mem.read_hinted::<2>(hint, addr))) as u64
                    }
                    LoadKind::Lw => {
                        i32::from_le_bytes(memtrap!(mem.read_hinted::<4>(hint, addr))) as i64 as u64
                    }
                    LoadKind::Lwu => {
                        u32::from_le_bytes(memtrap!(mem.read_hinted::<4>(hint, addr))) as u64
                    }
                    LoadKind::Ld => u64::from_le_bytes(memtrap!(mem.read_hinted::<8>(hint, addr))),
                };
                h.set_x(rd, v);
                self.stats.loads += 1;
            }
            Inst::Store {
                kind,
                rs1,
                rs2,
                offset,
            } => {
                let addr = h.get_x(rs1).wrapping_add(offset as i64 as u64);
                let v = h.get_x(rs2);
                let hint = &mut self.hints.store;
                match kind {
                    StoreKind::Sb => memtrap!(mem.write_hinted(hint, addr, &[v as u8])),
                    StoreKind::Sh => {
                        memtrap!(mem.write_hinted(hint, addr, &(v as u16).to_le_bytes()))
                    }
                    StoreKind::Sw => {
                        memtrap!(mem.write_hinted(hint, addr, &(v as u32).to_le_bytes()))
                    }
                    StoreKind::Sd => memtrap!(mem.write_hinted(hint, addr, &v.to_le_bytes())),
                }
                self.stats.stores += 1;
            }
            Inst::OpImm { kind, rd, rs1, imm } => {
                let a = h.get_x(rs1);
                h.set_x(rd, exec_opimm(kind, a, imm));
            }
            Inst::Op { kind, rd, rs1, rs2 } => {
                let a = h.get_x(rs1);
                let b = h.get_x(rs2);
                let v = exec_op(kind, a, b);
                h.set_x(rd, v);
            }
            Inst::Unary { kind, rd, rs1 } => {
                let a = h.get_x(rs1);
                h.set_x(rd, exec_unary(kind, a));
            }
            Inst::Fence => {}
            Inst::Ecall => return Err(Trap::Ecall { pc }),
            Inst::Ebreak => {
                self.stats.ebreaks += 1;
                return Err(Trap::Breakpoint { pc });
            }
            Inst::FLoad {
                width,
                frd,
                rs1,
                offset,
            } => {
                let addr = h.get_x(rs1).wrapping_add(offset as i64 as u64);
                let hint = &mut self.hints.load;
                match width {
                    FpWidth::S => {
                        let bits = u32::from_le_bytes(memtrap!(mem.read_hinted::<4>(hint, addr)));
                        h.set_f(frd, 0xffff_ffff_0000_0000 | bits as u64);
                    }
                    FpWidth::D => {
                        let bits = u64::from_le_bytes(memtrap!(mem.read_hinted::<8>(hint, addr)));
                        h.set_f(frd, bits);
                    }
                }
                self.stats.loads += 1;
            }
            Inst::FStore {
                width,
                frs2,
                rs1,
                offset,
            } => {
                let addr = h.get_x(rs1).wrapping_add(offset as i64 as u64);
                let hint = &mut self.hints.store;
                match width {
                    FpWidth::S => {
                        memtrap!(mem.write_hinted(
                            hint,
                            addr,
                            &(h.get_f(frs2) as u32).to_le_bytes()
                        ))
                    }
                    FpWidth::D => {
                        memtrap!(mem.write_hinted(hint, addr, &h.get_f(frs2).to_le_bytes()))
                    }
                }
                self.stats.stores += 1;
            }
            Inst::FOp {
                kind,
                width,
                frd,
                frs1,
                frs2,
            } => exec_fop(h, kind, width, frd, frs1, frs2),
            Inst::FCmp {
                kind,
                width,
                rd,
                frs1,
                frs2,
            } => {
                let r = match width {
                    FpWidth::S => {
                        let (a, b) = (h.get_s(frs1), h.get_s(frs2));
                        match kind {
                            FCmpKind::Feq => a == b,
                            FCmpKind::Flt => a < b,
                            FCmpKind::Fle => a <= b,
                        }
                    }
                    FpWidth::D => {
                        let (a, b) = (h.get_d(frs1), h.get_d(frs2));
                        match kind {
                            FCmpKind::Feq => a == b,
                            FCmpKind::Flt => a < b,
                            FCmpKind::Fle => a <= b,
                        }
                    }
                };
                h.set_x(rd, r as u64);
            }
            Inst::FMvToX { width, rd, frs1 } => {
                let v = match width {
                    FpWidth::S => h.get_f(frs1) as u32 as i32 as i64 as u64,
                    FpWidth::D => h.get_f(frs1),
                };
                h.set_x(rd, v);
            }
            Inst::FMvToF { width, frd, rs1 } => {
                let v = h.get_x(rs1);
                match width {
                    FpWidth::S => h.set_f(frd, 0xffff_ffff_0000_0000 | (v as u32 as u64)),
                    FpWidth::D => h.set_f(frd, v),
                }
            }
            Inst::FCvtToF {
                width,
                from,
                signed,
                frd,
                rs1,
            } => {
                let raw = h.get_x(rs1);
                let val: f64 = match (from, signed) {
                    (IntWidth::W, true) => raw as u32 as i32 as f64,
                    (IntWidth::W, false) => raw as u32 as f64,
                    (IntWidth::L, true) => raw as i64 as f64,
                    (IntWidth::L, false) => raw as f64,
                };
                match width {
                    FpWidth::S => h.set_s(frd, val as f32),
                    FpWidth::D => h.set_d(frd, val),
                }
            }
            Inst::FCvtToInt {
                width,
                to,
                signed,
                rd,
                frs1,
            } => {
                let val: f64 = match width {
                    FpWidth::S => h.get_s(frs1) as f64,
                    FpWidth::D => h.get_d(frs1),
                };
                let v = fcvt_to_int(val, to, signed);
                h.set_x(rd, v);
            }
            Inst::FCvtFF { to, frd, frs1 } => match to {
                FpWidth::S => {
                    let v = h.get_d(frs1);
                    h.set_s(frd, v as f32);
                }
                FpWidth::D => {
                    let v = h.get_s(frs1);
                    h.set_d(frd, v as f64);
                }
            },
            Inst::FMa {
                kind,
                width,
                frd,
                frs1,
                frs2,
                frs3,
            } => match width {
                FpWidth::S => {
                    let (a, b, c) = (h.get_s(frs1), h.get_s(frs2), h.get_s(frs3));
                    let v = match kind {
                        FMaKind::Madd => a.mul_add(b, c),
                        FMaKind::Msub => a.mul_add(b, -c),
                        FMaKind::Nmsub => (-a).mul_add(b, c),
                        FMaKind::Nmadd => (-a).mul_add(b, -c),
                    };
                    h.set_s(frd, v);
                }
                FpWidth::D => {
                    let (a, b, c) = (h.get_d(frs1), h.get_d(frs2), h.get_d(frs3));
                    let v = match kind {
                        FMaKind::Madd => a.mul_add(b, c),
                        FMaKind::Msub => a.mul_add(b, -c),
                        FMaKind::Nmsub => (-a).mul_add(b, c),
                        FMaKind::Nmadd => (-a).mul_add(b, -c),
                    };
                    h.set_d(frd, v);
                }
            },
            Inst::Vsetvli { rd, rs1, vtype } => {
                let vlmax = Hart::vlmax(vtype);
                let avl = if rs1 == XReg::ZERO {
                    if rd == XReg::ZERO {
                        h.vl // Keep existing vl (vtype change only).
                    } else {
                        vlmax
                    }
                } else {
                    h.get_x(rs1)
                };
                h.vl = avl.min(vlmax);
                h.vtype = Some(vtype);
                let vl = h.vl;
                h.set_x(rd, vl);
                self.stats.vector_insts += 1;
            }
            Inst::VLoad { eew, vd, rs1 } => {
                let base = h.get_x(rs1);
                let vl = h.vl;
                let hint = &mut self.hints.load;
                for i in 0..vl {
                    let addr = base + i * eew.bytes();
                    let v = match eew {
                        Eew::E8 => memtrap!(mem.read_hinted::<1>(hint, addr))[0] as u64,
                        Eew::E16 => {
                            u16::from_le_bytes(memtrap!(mem.read_hinted::<2>(hint, addr))) as u64
                        }
                        Eew::E32 => {
                            u32::from_le_bytes(memtrap!(mem.read_hinted::<4>(hint, addr))) as u64
                        }
                        Eew::E64 => u64::from_le_bytes(memtrap!(mem.read_hinted::<8>(hint, addr))),
                    };
                    h.set_v_elem(vd, eew, i as usize, v);
                }
                self.stats.loads += 1;
                self.stats.vector_insts += 1;
            }
            Inst::VStore { eew, vs3, rs1 } => {
                let base = h.get_x(rs1);
                let vl = h.vl;
                let hint = &mut self.hints.store;
                for i in 0..vl {
                    let addr = base + i * eew.bytes();
                    let v = h.v_elem(vs3, eew, i as usize);
                    let bytes = v.to_le_bytes();
                    memtrap!(mem.write_hinted(hint, addr, &bytes[..eew.bytes() as usize]));
                }
                self.stats.stores += 1;
                self.stats.vector_insts += 1;
            }
            Inst::VArith { op, vd, vs2, src } => {
                exec_varith(h, op, vd, vs2, src);
                self.stats.vector_insts += 1;
            }
            Inst::VMvXS { rd, vs2 } => {
                let sew = h.vtype.map(|t| t.sew).unwrap_or(Eew::E64);
                let v = h.v_elem(vs2, sew, 0);
                h.set_x(rd, sext_to_u64(v, sew));
                self.stats.vector_insts += 1;
            }
            Inst::VMvSX { vd, rs1 } => {
                let sew = h.vtype.map(|t| t.sew).unwrap_or(Eew::E64);
                let v = h.get_x(rs1);
                h.set_v_elem(vd, sew, 0, v);
                self.stats.vector_insts += 1;
            }
        }

        // Commit pc and account cost. `vl_words` only feeds the vector
        // variants' lane costs (asserted in `cost.rs` tests), so skip the
        // vtype math everywhere else — a measurable win in the hot loop
        // with identical accounting.
        self.hart.pc = next_pc;
        self.stats.instret += 1;
        let vl_words = match inst {
            Inst::VLoad { .. } | Inst::VStore { .. } | Inst::VArith { .. } => {
                let sew_bits = self.hart.vtype.map(|t| t.sew.bits()).unwrap_or(64) as u64;
                (self.hart.vl * sew_bits).div_ceil(64)
            }
            _ => 0,
        };
        self.stats.cycles += self.cost.cost(&inst, vl_words, taken);
        Ok(())
    }
}

/// Whether `block`'s own region fingerprint is still current — the
/// per-region mid-block self-modification guard shared by the interpreter
/// and the engine. Stores that bumped *other* executable regions leave the
/// block intact (its bytes cannot have changed), so cross-region SMC no
/// longer bails or cold-starts unrelated blocks.
pub(crate) fn block_intact(mem: &mut Memory, block: &Block) -> bool {
    mem.code_fingerprint(block.region_start) == Some((block.region_start, block.region_gen))
}

/// Branch comparison, shared by `Cpu::exec` and the micro-op engine.
#[inline]
fn branch_cond(kind: BranchKind, a: u64, b: u64) -> bool {
    match kind {
        BranchKind::Beq => a == b,
        BranchKind::Bne => a != b,
        BranchKind::Blt => (a as i64) < (b as i64),
        BranchKind::Bge => (a as i64) >= (b as i64),
        BranchKind::Bltu => a < b,
        BranchKind::Bgeu => a >= b,
    }
}

/// Register-immediate ALU semantics, shared by `Cpu::exec` and the
/// micro-op engine (the immediate's sign/shift handling is kind-specific,
/// so it stays here rather than being pre-expanded at lowering time).
#[inline]
pub(crate) fn exec_opimm(kind: OpImmKind, a: u64, imm: i32) -> u64 {
    let i = imm as i64 as u64;
    match kind {
        OpImmKind::Addi => a.wrapping_add(i),
        OpImmKind::Slti => ((a as i64) < (i as i64)) as u64,
        OpImmKind::Sltiu => (a < i) as u64,
        OpImmKind::Xori => a ^ i,
        OpImmKind::Ori => a | i,
        OpImmKind::Andi => a & i,
        OpImmKind::Slli => a << (imm & 63),
        OpImmKind::Srli => a >> (imm & 63),
        OpImmKind::Srai => ((a as i64) >> (imm & 63)) as u64,
        OpImmKind::Rori => a.rotate_right((imm & 63) as u32),
        OpImmKind::Addiw => (a.wrapping_add(i) as i32) as i64 as u64,
        OpImmKind::Slliw => (((a as u32) << (imm & 31)) as i32) as i64 as u64,
        OpImmKind::Srliw => (((a as u32) >> (imm & 31)) as i32) as i64 as u64,
        OpImmKind::Sraiw => ((a as i32) >> (imm & 31)) as i64 as u64,
    }
}

/// Single-source bit-manipulation semantics, shared by `Cpu::exec` and the
/// micro-op engine.
#[inline]
pub(crate) fn exec_unary(kind: UnaryKind, a: u64) -> u64 {
    match kind {
        UnaryKind::Clz => a.leading_zeros() as u64,
        UnaryKind::Ctz => a.trailing_zeros() as u64,
        UnaryKind::Cpop => a.count_ones() as u64,
        UnaryKind::SextB => a as u8 as i8 as i64 as u64,
        UnaryKind::SextH => a as u16 as i16 as i64 as u64,
        UnaryKind::ZextH => a as u16 as u64,
        UnaryKind::Rev8 => a.swap_bytes(),
    }
}

pub(crate) fn exec_op(kind: OpKind, a: u64, b: u64) -> u64 {
    match kind {
        OpKind::Add => a.wrapping_add(b),
        OpKind::Sub => a.wrapping_sub(b),
        OpKind::Sll => a << (b & 63),
        OpKind::Slt => ((a as i64) < (b as i64)) as u64,
        OpKind::Sltu => (a < b) as u64,
        OpKind::Xor => a ^ b,
        OpKind::Srl => a >> (b & 63),
        OpKind::Sra => ((a as i64) >> (b & 63)) as u64,
        OpKind::Or => a | b,
        OpKind::And => a & b,
        OpKind::Addw => (a.wrapping_add(b) as i32) as i64 as u64,
        OpKind::Subw => (a.wrapping_sub(b) as i32) as i64 as u64,
        OpKind::Sllw => (((a as u32) << (b & 31)) as i32) as i64 as u64,
        OpKind::Srlw => (((a as u32) >> (b & 31)) as i32) as i64 as u64,
        OpKind::Sraw => ((a as i32) >> (b & 31)) as i64 as u64,
        OpKind::Mul => a.wrapping_mul(b),
        OpKind::Mulh => (((a as i64 as i128) * (b as i64 as i128)) >> 64) as u64,
        OpKind::Mulhsu => (((a as i64 as i128) * (b as u128 as i128)) >> 64) as u64,
        OpKind::Mulhu => (((a as u128) * (b as u128)) >> 64) as u64,
        OpKind::Div => {
            let (a, b) = (a as i64, b as i64);
            if b == 0 {
                u64::MAX
            } else if a == i64::MIN && b == -1 {
                a as u64
            } else {
                (a / b) as u64
            }
        }
        OpKind::Divu => a.checked_div(b).unwrap_or(u64::MAX),
        OpKind::Rem => {
            let (a, b) = (a as i64, b as i64);
            if b == 0 {
                a as u64
            } else if a == i64::MIN && b == -1 {
                0
            } else {
                (a % b) as u64
            }
        }
        OpKind::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
        OpKind::Mulw => ((a as i32).wrapping_mul(b as i32)) as i64 as u64,
        OpKind::Divw => {
            let (a, b) = (a as i32, b as i32);
            let v = if b == 0 {
                -1
            } else if a == i32::MIN && b == -1 {
                a
            } else {
                a / b
            };
            v as i64 as u64
        }
        OpKind::Divuw => {
            let (a, b) = (a as u32, b as u32);
            let v = a.checked_div(b).unwrap_or(u32::MAX);
            v as i32 as i64 as u64
        }
        OpKind::Remw => {
            let (a, b) = (a as i32, b as i32);
            let v = if b == 0 {
                a
            } else if a == i32::MIN && b == -1 {
                0
            } else {
                a % b
            };
            v as i64 as u64
        }
        OpKind::Remuw => {
            let (a, b) = (a as u32, b as u32);
            let v = if b == 0 { a } else { a % b };
            v as i32 as i64 as u64
        }
        OpKind::Sh1add => (a << 1).wrapping_add(b),
        OpKind::Sh2add => (a << 2).wrapping_add(b),
        OpKind::Sh3add => (a << 3).wrapping_add(b),
        OpKind::AddUw => (a as u32 as u64).wrapping_add(b),
        OpKind::Andn => a & !b,
        OpKind::Orn => a | !b,
        OpKind::Xnor => !(a ^ b),
        OpKind::Min => (a as i64).min(b as i64) as u64,
        OpKind::Minu => a.min(b),
        OpKind::Max => (a as i64).max(b as i64) as u64,
        OpKind::Maxu => a.max(b),
        OpKind::Rol => a.rotate_left((b & 63) as u32),
        OpKind::Ror => a.rotate_right((b & 63) as u32),
    }
}

fn exec_fop(
    h: &mut Hart,
    kind: FOpKind,
    width: FpWidth,
    frd: chimera_isa::FReg,
    frs1: chimera_isa::FReg,
    frs2: chimera_isa::FReg,
) {
    match width {
        FpWidth::S => {
            let (a, b) = (h.get_s(frs1), h.get_s(frs2));
            let v = match kind {
                FOpKind::Add => a + b,
                FOpKind::Sub => a - b,
                FOpKind::Mul => a * b,
                FOpKind::Div => a / b,
                FOpKind::Min => a.min(b),
                FOpKind::Max => a.max(b),
                FOpKind::SgnJ => {
                    f32::from_bits((a.to_bits() & 0x7fff_ffff) | (b.to_bits() & 0x8000_0000))
                }
                FOpKind::SgnJN => {
                    f32::from_bits((a.to_bits() & 0x7fff_ffff) | (!b.to_bits() & 0x8000_0000))
                }
                FOpKind::SgnJX => f32::from_bits(a.to_bits() ^ (b.to_bits() & 0x8000_0000)),
            };
            h.set_s(frd, v);
        }
        FpWidth::D => {
            let (a, b) = (h.get_d(frs1), h.get_d(frs2));
            let v = match kind {
                FOpKind::Add => a + b,
                FOpKind::Sub => a - b,
                FOpKind::Mul => a * b,
                FOpKind::Div => a / b,
                FOpKind::Min => a.min(b),
                FOpKind::Max => a.max(b),
                FOpKind::SgnJ => f64::from_bits(
                    (a.to_bits() & 0x7fff_ffff_ffff_ffff) | (b.to_bits() & (1 << 63)),
                ),
                FOpKind::SgnJN => f64::from_bits(
                    (a.to_bits() & 0x7fff_ffff_ffff_ffff) | (!b.to_bits() & (1 << 63)),
                ),
                FOpKind::SgnJX => f64::from_bits(a.to_bits() ^ (b.to_bits() & (1 << 63))),
            };
            h.set_d(frd, v);
        }
    }
}

/// RISC-V `fcvt.*` semantics: saturating, with NaN mapping to the maximum
/// value (unlike Rust's `as`, which maps NaN to 0).
fn fcvt_to_int(val: f64, to: IntWidth, signed: bool) -> u64 {
    match (to, signed) {
        (IntWidth::W, true) => {
            let v = if val.is_nan() { i32::MAX } else { val as i32 };
            v as i64 as u64
        }
        (IntWidth::W, false) => {
            let v = if val.is_nan() { u32::MAX } else { val as u32 };
            v as i32 as i64 as u64
        }
        (IntWidth::L, true) => {
            let v = if val.is_nan() { i64::MAX } else { val as i64 };
            v as u64
        }
        (IntWidth::L, false) => {
            if val.is_nan() {
                u64::MAX
            } else {
                val as u64
            }
        }
    }
}

fn sext_to_u64(v: u64, eew: Eew) -> u64 {
    match eew {
        Eew::E8 => v as u8 as i8 as i64 as u64,
        Eew::E16 => v as u16 as i16 as i64 as u64,
        Eew::E32 => v as u32 as i32 as i64 as u64,
        Eew::E64 => v,
    }
}

fn exec_varith(
    h: &mut Hart,
    op: VArithOp,
    vd: chimera_isa::VReg,
    vs2: chimera_isa::VReg,
    src: VSrc,
) {
    let Some(vtype) = h.vtype else {
        return; // No configuration yet: architecturally vl = 0.
    };
    let sew = vtype.sew;
    let vl = h.vl as usize;

    // Scalar-or-element accessor for the second operand.
    let src_elem = |h: &Hart, i: usize| -> u64 {
        match src {
            VSrc::V(vs1) => h.v_elem(vs1, sew, i),
            VSrc::X(rs1) => h.get_x(rs1),
            VSrc::F(frs1) => match sew {
                Eew::E32 => h.get_s(frs1).to_bits() as u64,
                _ => h.get_f(frs1),
            },
            VSrc::I(imm) => imm as i64 as u64,
        }
    };

    let mask = |v: u64| -> u64 {
        match sew {
            Eew::E8 => v as u8 as u64,
            Eew::E16 => v as u16 as u64,
            Eew::E32 => v as u32 as u64,
            Eew::E64 => v,
        }
    };

    match op {
        VArithOp::Vredsum => {
            // vd[0] = vs1[0] + sum(vs2[0..vl])
            let mut acc = match src {
                VSrc::V(vs1) => h.v_elem(vs1, sew, 0),
                _ => 0,
            };
            for i in 0..vl {
                acc = mask(acc.wrapping_add(h.v_elem(vs2, sew, i)));
            }
            h.set_v_elem(vd, sew, 0, acc);
        }
        VArithOp::Vfredusum => match sew {
            Eew::E64 => {
                let mut acc = match src {
                    VSrc::V(vs1) => f64::from_bits(h.v_elem(vs1, sew, 0)),
                    _ => 0.0,
                };
                for i in 0..vl {
                    acc += f64::from_bits(h.v_elem(vs2, sew, i));
                }
                h.set_v_elem(vd, sew, 0, acc.to_bits());
            }
            Eew::E32 => {
                let mut acc = match src {
                    VSrc::V(vs1) => f32::from_bits(h.v_elem(vs1, sew, 0) as u32),
                    _ => 0.0,
                };
                for i in 0..vl {
                    acc += f32::from_bits(h.v_elem(vs2, sew, i) as u32);
                }
                h.set_v_elem(vd, sew, 0, acc.to_bits() as u64);
            }
            _ => {}
        },
        _ => {
            for i in 0..vl {
                let b = src_elem(h, i);
                let a = h.v_elem(vs2, sew, i);
                let d = h.v_elem(vd, sew, i);
                let r = match op {
                    VArithOp::Vadd => a.wrapping_add(b),
                    VArithOp::Vsub => a.wrapping_sub(b),
                    VArithOp::Vand => a & b,
                    VArithOp::Vor => a | b,
                    VArithOp::Vxor => a ^ b,
                    VArithOp::Vmul => a.wrapping_mul(b),
                    VArithOp::Vmacc => d.wrapping_add(a.wrapping_mul(b)),
                    VArithOp::Vmin => {
                        let (sa, sb) = (sext_to_u64(a, sew) as i64, sext_to_u64(b, sew) as i64);
                        sa.min(sb) as u64
                    }
                    VArithOp::Vmax => {
                        let (sa, sb) = (sext_to_u64(a, sew) as i64, sext_to_u64(b, sew) as i64);
                        sa.max(sb) as u64
                    }
                    VArithOp::Vmv => b,
                    VArithOp::Vfadd
                    | VArithOp::Vfsub
                    | VArithOp::Vfmul
                    | VArithOp::Vfdiv
                    | VArithOp::Vfmacc => match sew {
                        Eew::E64 => {
                            let (fa, fb, fd) =
                                (f64::from_bits(a), f64::from_bits(b), f64::from_bits(d));
                            let r = match op {
                                VArithOp::Vfadd => fa + fb,
                                VArithOp::Vfsub => fa - fb,
                                VArithOp::Vfmul => fa * fb,
                                VArithOp::Vfdiv => fa / fb,
                                _ => fb.mul_add(fa, fd), // vfmacc: vd += vs1*vs2
                            };
                            r.to_bits()
                        }
                        Eew::E32 => {
                            let (fa, fb, fd) = (
                                f32::from_bits(a as u32),
                                f32::from_bits(b as u32),
                                f32::from_bits(d as u32),
                            );
                            let r = match op {
                                VArithOp::Vfadd => fa + fb,
                                VArithOp::Vfsub => fa - fb,
                                VArithOp::Vfmul => fa * fb,
                                VArithOp::Vfdiv => fa / fb,
                                _ => fb.mul_add(fa, fd),
                            };
                            r.to_bits() as u64
                        }
                        _ => 0,
                    },
                    VArithOp::Vredsum | VArithOp::Vfredusum => unreachable!("handled above"),
                };
                h.set_v_elem(vd, sew, i, mask(r));
            }
        }
    }
}
