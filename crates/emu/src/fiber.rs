//! Cooperative hart fibers: resumable, fuel-sliced execution units.
//!
//! A [`HartFiber`] bundles one guest hart's complete execution state — its
//! [`Cpu`] (architectural registers, decode cache, engine and JIT tiers,
//! statistics) and its [`Memory`] — behind a [`HartFiber::resume`] call
//! that runs at most a fuel slice before yielding. No host stack is
//! switched: `Cpu::run` is already a resumable state machine that stops
//! only at instruction boundaries, so "suspending a fiber" is simply
//! returning from `resume`, and "migrating it to another worker" is moving
//! the `HartFiber` value (the `Cpu` is `Send`; the JIT arena and tier are
//! thread-confined *per resume*, never shared).
//!
//! ## The yield-point contract
//!
//! Every execution tier — the reference interpreter, the decode-cache
//! interpreter, the micro-op engine, and the host-code JIT — drains its
//! batched counters (instret, cycles, class counters; the JIT's fuel
//! anchor) into `Cpu.stats` before `Cpu::run` returns, whatever the stop
//! reason. Consequently a fiber's observable state at a yield is exactly
//! the state an unsliced run would have at the same retired-instruction
//! count, and a run chopped into 1-instruction slices — with the fiber
//! hopped across host threads between slices — is bit-identical to an
//! unsliced run. `tests/differential.rs` gates this for all four modes;
//! the many-hart kernel (`chimera_kernel::ManyHartKernel`) relies on it
//! for worker-count-invariant scheduling.

use crate::cpu::{Cpu, Stop, Trap};
use crate::mem::Memory;
use crate::runner::boot;
use chimera_isa::ExtSet;
use chimera_obj::Binary;

/// Why a fiber yielded back to its scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FiberYield {
    /// The fuel slice was consumed; the fiber is runnable and can be
    /// resumed — on any host worker — to continue bit-identically.
    FuelExhausted,
    /// A trap was delivered (syscall, fault, illegal instruction). The
    /// scheduler's kernel decides whether the fiber resumes, blocks,
    /// migrates or terminates.
    Trap(Trap),
}

/// One guest hart as a cooperative fiber: owned CPU + memory, resumed in
/// fuel slices.
#[derive(Debug)]
pub struct HartFiber {
    /// The hart's id in its scheduler (stamped into its trace stream).
    pub hart_id: u64,
    /// The hart's CPU: architectural state plus all execution tiers.
    pub cpu: Cpu,
    /// The hart's private memory image.
    pub mem: Memory,
}

impl HartFiber {
    /// Wraps an already prepared CPU + memory pair.
    pub fn new(hart_id: u64, cpu: Cpu, mem: Memory) -> HartFiber {
        HartFiber { hart_id, cpu, mem }
    }

    /// Boots a binary on a fresh hart (see [`boot`]).
    pub fn boot(hart_id: u64, binary: &Binary, profile: ExtSet) -> HartFiber {
        let (cpu, mem) = boot(binary, profile);
        HartFiber { hart_id, cpu, mem }
    }

    /// [`HartFiber::boot`] with an explicit guest stack size. Many-hart
    /// schedulers pick small stacks here: the default 8 MiB is committed
    /// eagerly per hart, and at N ≫ M scale the zeroed stack pages — not
    /// the code or data — dominate the whole kernel's memory footprint.
    /// The boot `sp` is unaffected (the stack always ends at the same
    /// top), so results only change for guests that recurse deeper than
    /// the chosen size.
    pub fn boot_with_stack(
        hart_id: u64,
        binary: &Binary,
        profile: ExtSet,
        stack_bytes: u64,
    ) -> HartFiber {
        let (cpu, mem) = crate::runner::boot_with_stack(binary, profile, stack_bytes);
        HartFiber { hart_id, cpu, mem }
    }

    /// Runs at most `fuel` instructions, yielding at fuel exhaustion or
    /// the first trap. A zero budget yields immediately.
    pub fn resume(&mut self, fuel: u64) -> FiberYield {
        match self.cpu.run(&mut self.mem, fuel) {
            Stop::OutOfFuel => FiberYield::FuelExhausted,
            Stop::Trap(t) => FiberYield::Trap(t),
        }
    }

    /// Instructions retired over the fiber's lifetime.
    pub fn retired(&self) -> u64 {
        self.cpu.stats.instret
    }

    /// A digest of the hart's full architectural state (see
    /// [`crate::Hart::state_hash`]) — the per-hart checksum the many-hart
    /// determinism gates compare across host worker counts.
    pub fn state_hash(&self) -> u64 {
        self.cpu.hart.state_hash()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_binary;
    use chimera_isa::XReg;
    use chimera_obj::{assemble, AsmOptions};

    fn counting_binary(n: u64) -> Binary {
        assemble(
            &format!(
                "
                _start:
                    li a0, 0
                    li t0, {n}
                loop:
                    addi a0, a0, 1
                    addi t0, t0, -1
                    bnez t0, loop
                    li a7, 93
                    ecall
                "
            ),
            AsmOptions::default(),
        )
        .expect("assembles")
    }

    #[test]
    fn fiber_slices_match_one_shot_run() {
        let bin = counting_binary(500);
        let oneshot = run_binary(&bin, 1 << 20).expect("one-shot run");

        let mut fiber = HartFiber::boot(7, &bin, bin.profile);
        let mut yields = 0u64;
        let trap = loop {
            match fiber.resume(17) {
                FiberYield::FuelExhausted => yields += 1,
                FiberYield::Trap(t) => break t,
            }
        };
        assert!(matches!(trap, Trap::Ecall { .. }));
        assert!(yields > 10, "a 17-instruction slice must yield many times");
        assert_eq!(fiber.cpu.hart.get_x(XReg::A0), 500);
        assert_eq!(fiber.cpu.stats, oneshot.stats);
        assert_eq!(fiber.cpu.hart.xregs(), oneshot.xregs);
    }

    #[test]
    fn fiber_resumes_across_host_threads() {
        let bin = counting_binary(300);
        let mut fiber = HartFiber::boot(0, &bin, bin.profile);
        // Hop the fiber to a fresh OS thread for every slice.
        let trap = loop {
            let (f, y) = std::thread::spawn(move || {
                let mut f = fiber;
                let y = f.resume(64);
                (f, y)
            })
            .join()
            .expect("worker panicked");
            fiber = f;
            match y {
                FiberYield::FuelExhausted => continue,
                FiberYield::Trap(t) => break t,
            }
        };
        assert!(matches!(trap, Trap::Ecall { .. }));
        assert_eq!(fiber.cpu.hart.get_x(XReg::A0), 300);
        let reference = run_binary(&bin, 1 << 20).expect("reference run");
        assert_eq!(fiber.cpu.stats, reference.stats);
    }

    #[test]
    fn zero_fuel_resume_is_inert() {
        let bin = counting_binary(5);
        let mut fiber = HartFiber::boot(1, &bin, bin.profile);
        let before = fiber.state_hash();
        assert_eq!(fiber.resume(0), FiberYield::FuelExhausted);
        assert_eq!(fiber.retired(), 0);
        assert_eq!(fiber.state_hash(), before);
    }
}
