//! A bare-metal runner: loads a [`Binary`], sets up the psABI environment
//! (`sp`, `gp`), and services the minimal syscall set (`exit`, `write`)
//! directly — no simulated kernel involved.
//!
//! This is the harness unit/property tests use to execute programs in one
//! call; the full Chimera runtime (scheduling, MMViews, fault handling)
//! lives in `chimera-kernel` and drives [`Cpu`] itself.

use crate::cost::ExecStats;
use crate::cpu::{Cpu, ExecMode, Stop, Trap};
use crate::mem::Memory;
use chimera_isa::{ExtSet, XReg};
use chimera_obj::{Binary, STACK_TOP};
use chimera_trace::Tracer;

/// Syscall numbers (Linux RV64 numbers for familiarity), plus the
/// Chimera hart-control calls.
pub mod sys {
    /// `exit(code)`.
    pub const EXIT: u64 = 93;
    /// `write(fd, buf, len)`.
    pub const WRITE: u64 = 64;

    // Hart-control calls, serviced only by the many-hart event kernel
    // (`chimera_kernel::ManyHartKernel`). The bare runner reports them as
    // `BadSyscall` and the single-hart kernel runner as `Fatal`; their
    // numbers sit far outside the Linux table so they can never collide.

    /// `hartid() -> a0`: the calling hart's id.
    pub const HART_ID: u64 = 0x7a00;
    /// `wfi()`: suspend until an event (IPI, timer, wakeup) arrives; a
    /// latched pending event makes it return immediately.
    pub const WFI: u64 = 0x7a01;
    /// `ipi(target)`: send an inter-processor wakeup to hart `a0`.
    pub const IPI: u64 = 0x7a02;
    /// `set_timer(delta)`: arm a one-shot timer `a0` scheduler slots
    /// ahead of the current logical time.
    pub const SET_TIMER: u64 = 0x7a03;
}

/// The outcome of a completed bare run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// The code passed to `exit`.
    pub exit_code: i64,
    /// Bytes written to fd 1/2.
    pub stdout: Vec<u8>,
    /// Execution statistics.
    pub stats: ExecStats,
    /// Final architectural state snapshot of the integer registers
    /// (for differential testing).
    pub xregs: [u64; 32],
}

/// Errors from a bare run: any trap other than a well-formed syscall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The program trapped.
    Trap(Trap),
    /// The fuel budget was exhausted before `exit`.
    OutOfFuel,
    /// An `ecall` with an unknown syscall number.
    BadSyscall {
        /// The unknown number (register `a7`).
        number: u64,
    },
}

impl core::fmt::Display for RunError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RunError::Trap(t) => write!(f, "trap: {t}"),
            RunError::OutOfFuel => write!(f, "out of fuel"),
            RunError::BadSyscall { number } => write!(f, "bad syscall {number}"),
        }
    }
}

impl std::error::Error for RunError {}

/// Prepares a CPU + memory pair for a binary: maps sections and the stack
/// ([`chimera_obj::DEFAULT_STACK_SIZE`] — 256 KiB, committed eagerly; use
/// [`boot_with_stack`] for deep-recursing workloads), sets pc/sp/gp.
pub fn boot(binary: &Binary, profile: ExtSet) -> (Cpu, Memory) {
    boot_with_stack(binary, profile, chimera_obj::DEFAULT_STACK_SIZE)
}

/// [`boot`] with an explicit stack size (see
/// [`Memory::load_with_stack`]); the boot `sp` is unchanged because the
/// stack always ends at [`STACK_TOP`].
pub fn boot_with_stack(binary: &Binary, profile: ExtSet, stack_size: u64) -> (Cpu, Memory) {
    let mem = Memory::load_with_stack(binary, stack_size);
    let mut cpu = Cpu::new(profile);
    cpu.hart.pc = binary.entry;
    cpu.hart.set_x(XReg::SP, STACK_TOP - 64);
    cpu.hart.set_x(XReg::GP, binary.gp);
    (cpu, mem)
}

/// Runs a binary to `exit` on a core whose profile matches the binary's,
/// with a fuel budget.
pub fn run_binary(binary: &Binary, fuel: u64) -> Result<RunResult, RunError> {
    run_binary_on(binary, binary.profile, fuel)
}

/// Runs a binary to `exit` on a core with an explicit profile (which may
/// lack extensions the binary uses — then the run errs with an illegal
/// instruction trap, as FAM would).
pub fn run_binary_on(binary: &Binary, profile: ExtSet, fuel: u64) -> Result<RunResult, RunError> {
    run_binary_with(binary, profile, fuel, true)
}

/// Like [`run_binary_on`], with explicit control over the basic-block
/// decode cache. `decode_cache: true` runs the default front end (the
/// micro-op engine); `false` runs the reference per-instruction
/// interpreter. Results (including cycle accounting) are identical either
/// way — the differential suite asserts it. For the full three-way mode
/// choice use [`run_binary_mode`].
pub fn run_binary_with(
    binary: &Binary,
    profile: ExtSet,
    fuel: u64,
    decode_cache: bool,
) -> Result<RunResult, RunError> {
    let mode = if decode_cache {
        ExecMode::Engine
    } else {
        ExecMode::Reference
    };
    run_binary_mode(binary, profile, fuel, mode)
}

/// Like [`run_binary_on`], with an explicit execution front end (see
/// [`ExecMode`]). All modes are bit-identical in results; they differ only
/// in wall-clock speed (`exec_engine` in `chimera-bench` gates the ratio).
pub fn run_binary_mode(
    binary: &Binary,
    profile: ExtSet,
    fuel: u64,
    mode: ExecMode,
) -> Result<RunResult, RunError> {
    let (mut cpu, mut mem) = boot(binary, profile);
    cpu.set_mode(mode);
    run_cpu(&mut cpu, &mut mem, fuel)
}

/// Like [`run_binary_with`], with a [`Tracer`] handle attached to the CPU.
///
/// Tracing is transparent: results (exit code, stdout, stats, registers)
/// are bit-identical to the untraced run — `trace_overhead` and the
/// differential suite assert it.
pub fn run_binary_traced(
    binary: &Binary,
    profile: ExtSet,
    fuel: u64,
    decode_cache: bool,
    tracer: &Tracer,
) -> Result<RunResult, RunError> {
    let (mut cpu, mut mem) = boot(binary, profile);
    cpu.cache.enabled = decode_cache;
    cpu.tracer = tracer.clone();
    run_cpu(&mut cpu, &mut mem, fuel)
}

/// Drives a prepared CPU until `exit`, servicing `write` syscalls.
pub fn run_cpu(cpu: &mut Cpu, mem: &mut Memory, fuel: u64) -> Result<RunResult, RunError> {
    let mut run = BareRun::new();
    match run.resume(cpu, mem, fuel) {
        BareYield::Exited(result) => Ok(*result),
        BareYield::SliceExhausted => Err(RunError::OutOfFuel),
        BareYield::Failed(err) => Err(err),
    }
}

/// Why [`BareRun::resume`] returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BareYield {
    /// The program called `exit`; the run is complete. Boxed: the result
    /// carries the full register file, and the common yield is the slim
    /// `SliceExhausted`.
    Exited(Box<RunResult>),
    /// The fuel slice was exhausted mid-program. The run is suspended at
    /// an instruction boundary with all batched counters drained; resume
    /// with more fuel — from any host thread — to continue bit-identically.
    SliceExhausted,
    /// The run failed (non-syscall trap or unknown syscall number). The
    /// state is final; resuming again is a caller bug.
    Failed(RunError),
}

/// Resumable bare-run state: the syscall-servicing loop of [`run_cpu`]
/// with the fuel budget split into caller-sized slices.
///
/// The CPU and memory are passed to each [`BareRun::resume`] call rather
/// than owned, so a fiber scheduler can interleave many harts' slices and
/// hand the triple `(BareRun, Cpu, Memory)` to whichever host worker picks
/// the hart up next. Slicing is transparent: any slicing of a run — down
/// to one instruction per slice, across host threads — observes exactly
/// like one unsliced `run_cpu` call (the differential suite's yield-point
/// transparency test asserts this for all four execution modes).
#[derive(Debug, Clone, Default)]
pub struct BareRun {
    stdout: Vec<u8>,
}

impl BareRun {
    /// A fresh run with no output yet.
    pub fn new() -> BareRun {
        BareRun::default()
    }

    /// Bytes written to fd 1/2 so far.
    pub fn stdout(&self) -> &[u8] {
        &self.stdout
    }

    /// Executes up to `fuel` further instructions, servicing `write`
    /// syscalls, until `exit`, slice exhaustion, or failure.
    pub fn resume(&mut self, cpu: &mut Cpu, mem: &mut Memory, fuel: u64) -> BareYield {
        let start = cpu.stats.instret;
        loop {
            let used = cpu.stats.instret - start;
            if used >= fuel {
                return BareYield::SliceExhausted;
            }
            match cpu.run(mem, fuel - used) {
                Stop::OutOfFuel => return BareYield::SliceExhausted,
                Stop::Trap(Trap::Ecall { pc }) => {
                    let number = cpu.hart.get_x(XReg::A7);
                    match number {
                        sys::EXIT => {
                            return BareYield::Exited(Box::new(RunResult {
                                exit_code: cpu.hart.get_x(XReg::A0) as i64,
                                stdout: std::mem::take(&mut self.stdout),
                                stats: cpu.stats,
                                xregs: cpu.hart.xregs(),
                            }));
                        }
                        sys::WRITE => {
                            let buf = cpu.hart.get_x(XReg::A1);
                            let len = cpu.hart.get_x(XReg::A2) as usize;
                            if let Some(bytes) = mem.peek(buf, len) {
                                self.stdout.extend_from_slice(&bytes);
                                cpu.hart.set_x(XReg::A0, len as u64);
                            } else {
                                cpu.hart.set_x(XReg::A0, u64::MAX); // -EFAULT-ish
                            }
                            cpu.hart.pc = pc + 4;
                        }
                        _ => return BareYield::Failed(RunError::BadSyscall { number }),
                    }
                }
                Stop::Trap(t) => return BareYield::Failed(RunError::Trap(t)),
            }
        }
    }
}
