//! A generation-invalidated basic-block decode cache.
//!
//! The interpreter's hot loop used to pay fetch + decode + extension-gating
//! for every dynamic instruction. This module memoizes that front end at
//! basic-block granularity, the same trick binary translators (QEMU, r2vm)
//! use: the first execution of a `pc` decodes forward until the first
//! control-transfer or system instruction and records the decoded run; every
//! later execution replays the recorded instructions directly.
//!
//! Correctness hinges on two things:
//!
//! * **Invalidation.** Chimera patches code at runtime (lazy rewriting via
//!   [`crate::Memory::poke_code`], MMView switches that unmap/remap code,
//!   and guest stores to writable+executable mappings). Every such mutation
//!   bumps a per-region generation, and each cached block remembers the
//!   `(region start, generation)` fingerprint it was decoded under — a
//!   mismatch at lookup time drops the block. A global
//!   [`crate::Memory::code_generation`] counter additionally guards the
//!   *middle* of a block: after any store executed from inside a block the
//!   CPU re-checks it and bails back to the dispatcher, so a block whose
//!   own tail was just overwritten never executes stale instructions.
//! * **Profile keying.** Whether an instruction is legal depends on the
//!   hart's extension profile ([`chimera_isa::ExtSet`]) — the same bytes
//!   must trap on a base core and execute on an extension core (that trap
//!   is the paper's FAM mechanism). Blocks are therefore keyed by
//!   `(pc, profile)` and gating runs at build time, once per block instead
//!   of once per dynamic instruction.
//!
//! The cache is a pure front-end optimisation: execution still flows
//! through the single `Cpu::exec` path, so cycle accounting, trap PCs, and
//! architectural results are bit-identical with the cache on or off (the
//! differential suite asserts full [`crate::RunResult`] equality).

use chimera_isa::{ExtSet, Inst};
use std::collections::HashMap;
use std::sync::Arc;

/// Longest run of instructions recorded in one block. Bounds build cost on
/// pathological straight-line code; the tail simply starts the next block.
const MAX_BLOCK_INSTS: usize = 64;

/// Cache capacity in blocks. On overflow the whole map is cleared (workload
/// code footprints here are far smaller; a full flush keeps the policy
/// trivially correct).
const MAX_BLOCKS: usize = 1 << 16;

/// Decode-cache observability counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups satisfied by a valid cached block.
    pub hits: u64,
    /// Lookups that found no usable block (cold or just invalidated).
    pub misses: u64,
    /// Cached blocks dropped because their region fingerprint went stale.
    pub invalidations: u64,
    /// Blocks decoded and inserted.
    pub blocks_built: u64,
}

/// One decoded instruction inside a block.
#[derive(Debug, Clone)]
pub struct CachedInst {
    /// The decoded instruction.
    pub inst: Inst,
    /// Encoded length in bytes (2 or 4).
    pub len: u64,
    /// Whether this instruction can store to memory (used for the
    /// mid-block self-modification re-check).
    pub is_store: bool,
}

/// A decoded basic block: straight-line instructions ending at (and
/// including) the first control-transfer or system instruction.
#[derive(Debug)]
pub struct Block {
    /// The instructions, in address order starting at the block's key pc.
    pub insts: Vec<CachedInst>,
    /// Start address of the executable region the block was decoded from.
    pub region_start: u64,
    /// That region's generation at decode time.
    pub region_gen: u64,
}

/// The per-CPU basic-block decode cache.
///
/// Blocks are shared via [`Arc`] (not `Rc`) so [`crate::Cpu`] stays `Send`
/// — the kernel's `ThreadedPool` moves CPUs across OS threads.
#[derive(Debug, Clone, Default)]
pub struct BlockCache {
    map: HashMap<(u64, ExtSet), Arc<Block>>,
    /// Counters; reset with [`BlockCache::reset_stats`].
    pub stats: CacheStats,
    /// When false, the CPU bypasses the cache entirely (pure
    /// fetch/decode/execute, the reference semantics).
    pub enabled: bool,
}

impl BlockCache {
    /// Creates an enabled, empty cache.
    pub fn new() -> BlockCache {
        BlockCache {
            map: HashMap::new(),
            stats: CacheStats::default(),
            enabled: true,
        }
    }

    /// Creates a disabled cache (reference interpreter semantics).
    pub fn disabled() -> BlockCache {
        BlockCache {
            enabled: false,
            ..BlockCache::new()
        }
    }

    /// Looks up a valid block for `(pc, profile)` given the current
    /// fingerprint of the executable region holding `pc`. Stale blocks are
    /// dropped (counted as an invalidation AND a miss, since the caller
    /// must rebuild).
    pub fn lookup(
        &mut self,
        pc: u64,
        profile: ExtSet,
        fingerprint: (u64, u64),
    ) -> Option<Arc<Block>> {
        match self.map.get(&(pc, profile)) {
            Some(b) if (b.region_start, b.region_gen) == fingerprint => {
                self.stats.hits += 1;
                Some(Arc::clone(b))
            }
            Some(_) => {
                self.map.remove(&(pc, profile));
                self.stats.invalidations += 1;
                self.stats.misses += 1;
                None
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly built block.
    pub fn insert(&mut self, pc: u64, profile: ExtSet, block: Block) -> Arc<Block> {
        if self.map.len() >= MAX_BLOCKS {
            self.map.clear();
        }
        self.stats.blocks_built += 1;
        let b = Arc::new(block);
        self.map.insert((pc, profile), Arc::clone(&b));
        b
    }

    /// Drops every cached block (stats are kept).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Number of live cached blocks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Zeroes the counters.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// The block-size cap, exposed for the builder in `cpu.rs`.
    pub(crate) fn max_block_insts() -> usize {
        MAX_BLOCK_INSTS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_isa::nop;

    fn block(gen: u64) -> Block {
        Block {
            insts: vec![CachedInst {
                inst: nop(),
                len: 4,
                is_store: false,
            }],
            region_start: 0x1000,
            region_gen: gen,
        }
    }

    #[test]
    fn hit_then_invalidate_on_generation_change() {
        let mut c = BlockCache::new();
        c.insert(0x1000, ExtSet::RV64GC, block(7));
        assert!(c.lookup(0x1000, ExtSet::RV64GC, (0x1000, 7)).is_some());
        assert_eq!(c.stats.hits, 1);
        // Generation moved: the cached block must be dropped.
        assert!(c.lookup(0x1000, ExtSet::RV64GC, (0x1000, 8)).is_none());
        assert_eq!(c.stats.invalidations, 1);
        assert_eq!(c.stats.misses, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn profiles_are_distinct_keys() {
        let mut c = BlockCache::new();
        c.insert(0x1000, ExtSet::RV64GC, block(1));
        assert!(c.lookup(0x1000, ExtSet::RV64GCV, (0x1000, 1)).is_none());
        assert!(c.lookup(0x1000, ExtSet::RV64GC, (0x1000, 1)).is_some());
    }

    #[test]
    fn disabled_cache_flag() {
        assert!(!BlockCache::disabled().enabled);
        assert!(BlockCache::new().enabled);
    }
}
