//! A generation-invalidated basic-block decode cache with chain links.
//!
//! The interpreter's hot loop used to pay fetch + decode + extension-gating
//! for every dynamic instruction. This module memoizes that front end at
//! basic-block granularity, the same trick binary translators (QEMU, r2vm)
//! use: the first execution of a `pc` decodes forward until the first
//! control-transfer or system instruction and records the decoded run (plus
//! its lowered micro-op body, see [`crate::uop`]); every later execution
//! replays the recorded instructions directly.
//!
//! Blocks live in stable slots so the execution engine can **chain** them:
//! a block whose terminator is a direct control transfer (or whose body
//! simply falls through) records the slot id of its successor, and a
//! `jalr` terminator records its *last observed* target as a one-entry
//! BTB ([`ChainEdge::Indirect`]), letting hot loops and call/return pairs
//! run block-to-block without a hash lookup per block. Chain links are
//! validated before every follow — see [`ChainLink`] — and severed (or,
//! for the BTB edge, simply bypassed and later replaced) the moment
//! validation fails, so chaining can change wall-clock time only, never
//! results.
//!
//! Correctness hinges on two things:
//!
//! * **Invalidation.** Chimera patches code at runtime (lazy rewriting via
//!   [`crate::Memory::poke_code`], MMView switches that unmap/remap code,
//!   and guest stores to writable+executable mappings). Every such mutation
//!   bumps a per-region generation, and each cached block remembers the
//!   `(region start, generation)` fingerprint it was decoded under — a
//!   mismatch at lookup time drops the block. Validity is **purely
//!   per-region**: code mutation in one region never drops another
//!   region's blocks (the cross-region regression test in `tests/smc.rs`
//!   pins this). The *middle* of a block is guarded the same way: after any
//!   store executed from inside a block the CPU re-checks the block's own
//!   region fingerprint and bails to the dispatcher only if it moved, so a
//!   block whose own tail was just overwritten never executes stale
//!   instructions. The global [`crate::Memory::code_generation`] counter
//!   survives only as a cheap first-level filter (and as the chain-link
//!   stamp): when it has not moved, no executable byte anywhere changed
//!   and the per-region check is skipped.
//! * **Profile keying.** Whether an instruction is legal depends on the
//!   hart's extension profile ([`chimera_isa::ExtSet`]) — the same bytes
//!   must trap on a base core and execute on an extension core (that trap
//!   is the paper's FAM mechanism). Blocks are therefore keyed by
//!   `(pc, profile)` and gating runs at build time, once per block instead
//!   of once per dynamic instruction.
//!
//! The cache is a pure front-end optimisation: the interpreter replays
//! `insts` through the single `Cpu::exec` path, the engine replays the
//! lowered `ops` with identical semantics, and cycle accounting, trap PCs
//! and architectural results are bit-identical across all three modes (the
//! differential suite asserts full [`crate::RunResult`] equality plus exact
//! counter reconciliation).

use crate::uop::Uop;
use chimera_isa::{ExtSet, Inst};
use std::collections::HashMap;
use std::sync::Arc;

/// Longest run of instructions recorded in one block. Bounds build cost on
/// pathological straight-line code; the tail simply starts the next block.
const MAX_BLOCK_INSTS: usize = 64;

/// Cache capacity in blocks. On overflow the whole map is cleared (workload
/// code footprints here are far smaller; a full flush keeps the policy
/// trivially correct). Clearing also drops every slot and chain link, so no
/// stale slot id can survive a flush.
const MAX_BLOCKS: usize = 1 << 16;

/// Direct-mapped jump-cache size, in entries. The jump cache short-circuits
/// dispatcher re-entries that chain links cannot cover (above all BTB
/// misses on megamorphic indirect call sites): an array probe replaces the
/// fingerprint + hash-map lookup, with the exact same [`ChainLink`]
/// validation rules. Sized to hold every block of the bench workloads with
/// headroom while staying cache-warm.
const JUMP_CACHE: usize = 1 << 11;

/// Decode-cache observability counters.
///
/// Reconciliation invariant (asserted by the differential suite): for the
/// same program, `hits(interpreter) == hits(engine) + chained(engine)` and
/// `hits(interpreter) == hits(jit) + chained(jit) + jitted(jit)` — with
/// `misses`/`invalidations`/`blocks_built` identical across all modes. A
/// chained follow is exactly a hit whose lookup was short-circuited, and a
/// jitted chain entry is exactly a hit whose dispatch never left host code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups satisfied by a valid cached block.
    pub hits: u64,
    /// Lookups that found no usable block (cold or just invalidated).
    pub misses: u64,
    /// Cached blocks dropped because their region fingerprint went stale.
    pub invalidations: u64,
    /// Blocks decoded and inserted.
    pub blocks_built: u64,
    /// Block entries that followed a validated chain link instead of doing
    /// a dispatcher lookup (engine mode only; 0 for the interpreter).
    pub chained: u64,
    /// Block entries through a compiled trace's chain entry — direct
    /// trace-to-trace jumps that bypassed the dispatcher entirely (JIT
    /// mode only; 0 elsewhere).
    pub jitted: u64,
    /// Compiled-trace executions entered from the dispatcher (JIT mode
    /// only). Coverage witness: a Jit-mode run with `jit_execs == 0`
    /// never actually ran host code.
    pub jit_execs: u64,
}

/// One decoded instruction inside a block.
#[derive(Debug, Clone)]
pub struct CachedInst {
    /// The decoded instruction.
    pub inst: Inst,
    /// Encoded length in bytes (2 or 4).
    pub len: u64,
    /// Whether this instruction can store to memory (used for the
    /// mid-block self-modification re-check).
    pub is_store: bool,
}

/// A decoded basic block: straight-line instructions ending at (and
/// including) the first control-transfer or system instruction.
#[derive(Debug)]
pub struct Block {
    /// The instructions, in address order starting at the block's key pc.
    pub insts: Vec<CachedInst>,
    /// The lowered micro-op body (same instructions, pre-resolved operands
    /// and pre-computed costs; see [`crate::uop`]). Built once at insert
    /// time so interpreter and engine runs build identical blocks.
    pub ops: Box<[Uop]>,
    /// Start address of the executable region the block was decoded from.
    pub region_start: u64,
    /// That region's generation at decode time.
    pub region_gen: u64,
}

/// A direct block-to-block successor edge recorded by the engine.
///
/// Validation before every follow (in `Cpu::follow_link`):
/// 1. the target slot must still hold a block keyed `(pc, profile)` —
///    guards against slot reuse after a flush;
/// 2. fast path: if `stamp` equals the current global
///    [`crate::Memory::code_generation`], no executable byte anywhere has
///    changed since the link was last validated, so the target fingerprint
///    cannot have moved and the follow is free;
/// 3. slow path: the target's own region fingerprint is re-checked; a
///    match re-stamps the link, a mismatch severs it (the dispatcher then
///    performs the ordinary invalidating lookup, keeping invalidation
///    counters identical to the interpreter's).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainLink {
    /// Target slot id.
    pub to: u32,
    /// Target block's key pc (revalidated before following).
    pub pc: u64,
    /// Global code generation at link creation / last revalidation.
    pub stamp: u64,
}

/// Which outgoing edge of a block a chain link lives on.
///
/// The static edges ([`ChainEdge::Taken`], [`ChainEdge::Fall`]) always
/// reproduce the same successor pc, so their links are installed once and
/// only ever severed. The [`ChainEdge::Indirect`] edge is a one-entry BTB
/// for `jalr` terminators: it caches the *last observed* target and is
/// replaced whenever the observed target changes. Every follow still
/// revalidates pc, key and fingerprint, so a stale prediction costs one
/// dispatcher lookup and never a wrong result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainEdge {
    /// Terminator redirected (taken branch / `jal`).
    Taken,
    /// Fall-through (not-taken branch / size-truncated block).
    Fall,
    /// Last observed `jalr` target (one-entry BTB, replace-on-miss).
    Indirect,
}

/// A live cache slot: the block plus its (at most three) successor links.
#[derive(Debug, Clone)]
struct Slot {
    /// The `(pc, profile)` key this slot is registered under.
    key: (u64, ExtSet),
    block: Arc<Block>,
    /// Successor when the terminator redirected (taken branch / `jal`).
    taken: Option<ChainLink>,
    /// Fall-through successor (not-taken branch / size-truncated block).
    fall: Option<ChainLink>,
    /// Last observed indirect (`jalr`) successor.
    indirect: Option<ChainLink>,
}

impl Slot {
    fn edge_mut(&mut self, edge: ChainEdge) -> &mut Option<ChainLink> {
        match edge {
            ChainEdge::Taken => &mut self.taken,
            ChainEdge::Fall => &mut self.fall,
            ChainEdge::Indirect => &mut self.indirect,
        }
    }
}

/// The per-CPU basic-block decode cache.
///
/// Blocks are shared via [`Arc`] (not `Rc`) so [`crate::Cpu`] stays `Send`
/// — the kernel's `ThreadedPool` moves CPUs across OS threads.
#[derive(Debug, Clone, Default)]
pub struct BlockCache {
    map: HashMap<(u64, ExtSet), u32>,
    slots: Vec<Option<Slot>>,
    free: Vec<u32>,
    /// Direct-mapped dispatcher short-circuit, indexed by target pc
    /// (see [`JUMP_CACHE`]). Allocated lazily on first store so
    /// interpreter/reference CPUs never pay for it. Entries are *hints*:
    /// every probe revalidates with the same rules as a chain-link follow.
    jump: Vec<Option<ChainLink>>,
    /// Counters; reset with [`BlockCache::reset_stats`].
    pub stats: CacheStats,
    /// When false, the CPU bypasses the cache entirely (pure
    /// fetch/decode/execute, the reference semantics).
    pub enabled: bool,
}

impl BlockCache {
    /// Creates an enabled, empty cache.
    pub fn new() -> BlockCache {
        BlockCache {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            jump: Vec::new(),
            stats: CacheStats::default(),
            enabled: true,
        }
    }

    /// Creates a disabled cache (reference interpreter semantics).
    pub fn disabled() -> BlockCache {
        BlockCache {
            enabled: false,
            ..BlockCache::new()
        }
    }

    /// Looks up a valid block for `(pc, profile)` given the current
    /// fingerprint of the executable region holding `pc`. Stale blocks are
    /// dropped (counted as an invalidation AND a miss, since the caller
    /// must rebuild).
    pub fn lookup(
        &mut self,
        pc: u64,
        profile: ExtSet,
        fingerprint: (u64, u64),
    ) -> Option<Arc<Block>> {
        self.lookup_slot(pc, profile, fingerprint).map(|(_, b)| b)
    }

    /// Like [`BlockCache::lookup`], also returning the slot id (the
    /// engine's chain-link handle).
    pub fn lookup_slot(
        &mut self,
        pc: u64,
        profile: ExtSet,
        fingerprint: (u64, u64),
    ) -> Option<(u32, Arc<Block>)> {
        let Some(&id) = self.map.get(&(pc, profile)) else {
            self.stats.misses += 1;
            return None;
        };
        let slot = self.slots[id as usize]
            .as_ref()
            .expect("mapped slot is live");
        if (slot.block.region_start, slot.block.region_gen) == fingerprint {
            self.stats.hits += 1;
            Some((id, Arc::clone(&slot.block)))
        } else {
            self.remove_slot(id);
            self.stats.invalidations += 1;
            self.stats.misses += 1;
            None
        }
    }

    /// Drops one slot and unregisters its key. Chain links *into* the slot
    /// are left behind on purpose: every follow revalidates the target slot
    /// first, so a dangling link simply fails validation and is severed on
    /// its next use.
    fn remove_slot(&mut self, id: u32) {
        if let Some(slot) = self.slots[id as usize].take() {
            self.map.remove(&slot.key);
            self.free.push(id);
        }
    }

    /// Inserts a freshly built block, returning its slot id and the shared
    /// body.
    pub fn insert(&mut self, pc: u64, profile: ExtSet, block: Block) -> (u32, Arc<Block>) {
        if self.map.len() >= MAX_BLOCKS {
            self.clear();
        }
        self.stats.blocks_built += 1;
        let b = Arc::new(block);
        let slot = Slot {
            key: (pc, profile),
            block: Arc::clone(&b),
            taken: None,
            fall: None,
            indirect: None,
        };
        let id = match self.free.pop() {
            Some(id) => {
                self.slots[id as usize] = Some(slot);
                id
            }
            None => {
                self.slots.push(Some(slot));
                (self.slots.len() - 1) as u32
            }
        };
        if let Some(old) = self.map.insert((pc, profile), id) {
            // Defensive: a re-insert without a prior invalidating lookup
            // must not leak the displaced slot.
            if old != id {
                self.slots[old as usize] = None;
                self.free.push(old);
            }
        }
        (id, b)
    }

    /// The outgoing link on one of `from`'s edges, if any.
    pub(crate) fn link_of(&self, from: u32, edge: ChainEdge) -> Option<ChainLink> {
        let slot = self.slots.get(from as usize)?.as_ref()?;
        match edge {
            ChainEdge::Taken => slot.taken,
            ChainEdge::Fall => slot.fall,
            ChainEdge::Indirect => slot.indirect,
        }
    }

    /// Installs a chain link on one of `from`'s edges — but only if the
    /// source slot still holds the block keyed `from_key` (the slot may
    /// have been flushed and reused between block execution and link time).
    /// An occupied static edge is left alone; an occupied
    /// [`ChainEdge::Indirect`] edge is *replaced* (BTB semantics). Returns
    /// whether a previously empty edge was populated — the trace-event
    /// trigger, so `BlockChained` stays a cold event even on megamorphic
    /// call sites.
    pub(crate) fn set_link(
        &mut self,
        from: u32,
        from_key: (u64, ExtSet),
        edge: ChainEdge,
        link: ChainLink,
    ) -> bool {
        let Some(Some(slot)) = self.slots.get_mut(from as usize) else {
            return false;
        };
        if slot.key != from_key {
            return false;
        }
        let e = slot.edge_mut(edge);
        let was_empty = e.is_none();
        if was_empty || edge == ChainEdge::Indirect {
            *e = Some(link);
        }
        was_empty
    }

    /// Drops the link on one of `from`'s edges.
    pub(crate) fn sever(&mut self, from: u32, edge: ChainEdge) {
        if let Some(Some(slot)) = self.slots.get_mut(from as usize) {
            *slot.edge_mut(edge) = None;
        }
    }

    /// Refreshes a link's generation stamp after a successful slow-path
    /// revalidation.
    pub(crate) fn restamp(&mut self, from: u32, edge: ChainEdge, stamp: u64) {
        if let Some(Some(slot)) = self.slots.get_mut(from as usize) {
            if let Some(link) = slot.edge_mut(edge) {
                link.stamp = stamp;
            }
        }
    }

    #[inline]
    fn jump_idx(pc: u64) -> usize {
        // Instructions are 2-byte aligned, so drop the dead bit before
        // folding into the table.
        ((pc >> 1) as usize) & (JUMP_CACHE - 1)
    }

    /// The jump-cache hint for `pc`, if one is stored. The caller must
    /// revalidate it exactly like a chain link before use.
    #[inline]
    pub(crate) fn jump_hint(&self, pc: u64) -> Option<ChainLink> {
        self.jump
            .get(Self::jump_idx(pc))
            .copied()
            .flatten()
            .filter(|l| l.pc == pc)
    }

    /// Stores (or replaces) the jump-cache entry for `link.pc`, allocating
    /// the table on first use.
    pub(crate) fn jump_set(&mut self, link: ChainLink) {
        if self.jump.is_empty() {
            self.jump = vec![None; JUMP_CACHE];
        }
        self.jump[Self::jump_idx(link.pc)] = Some(link);
    }

    /// Drops the jump-cache entry for `pc` (after a failed revalidation).
    pub(crate) fn jump_clear(&mut self, pc: u64) {
        if let Some(e) = self.jump.get_mut(Self::jump_idx(pc)) {
            if e.is_some_and(|l| l.pc == pc) {
                *e = None;
            }
        }
    }

    /// Refreshes the jump-cache entry's generation stamp after a
    /// successful slow-path revalidation.
    pub(crate) fn jump_restamp(&mut self, pc: u64, stamp: u64) {
        if let Some(Some(l)) = self.jump.get_mut(Self::jump_idx(pc)) {
            if l.pc == pc {
                l.stamp = stamp;
            }
        }
    }

    /// The target-side view a link follow validates against: the slot's
    /// key, its block's fingerprint, and the block itself.
    #[allow(clippy::type_complexity)]
    pub(crate) fn slot_block(&self, id: u32) -> Option<((u64, ExtSet), (u64, u64), Arc<Block>)> {
        let slot = self.slots.get(id as usize)?.as_ref()?;
        Some((
            slot.key,
            (slot.block.region_start, slot.block.region_gen),
            Arc::clone(&slot.block),
        ))
    }

    /// Drops every cached block, slot, chain link and jump-cache entry
    /// (stats are kept).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        for e in &mut self.jump {
            *e = None;
        }
    }

    /// Number of live cached blocks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Zeroes the counters.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// The block-size cap, exposed for the builder in `cpu.rs`.
    pub(crate) fn max_block_insts() -> usize {
        MAX_BLOCK_INSTS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::uop::lower_block;
    use chimera_isa::nop;

    fn block(gen: u64) -> Block {
        let insts = vec![CachedInst {
            inst: nop(),
            len: 4,
            is_store: false,
        }];
        let ops = lower_block(&insts, &CostModel::default());
        Block {
            insts,
            ops,
            region_start: 0x1000,
            region_gen: gen,
        }
    }

    #[test]
    fn hit_then_invalidate_on_generation_change() {
        let mut c = BlockCache::new();
        c.insert(0x1000, ExtSet::RV64GC, block(7));
        assert!(c.lookup(0x1000, ExtSet::RV64GC, (0x1000, 7)).is_some());
        assert_eq!(c.stats.hits, 1);
        // Generation moved: the cached block must be dropped.
        assert!(c.lookup(0x1000, ExtSet::RV64GC, (0x1000, 8)).is_none());
        assert_eq!(c.stats.invalidations, 1);
        assert_eq!(c.stats.misses, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn profiles_are_distinct_keys() {
        let mut c = BlockCache::new();
        c.insert(0x1000, ExtSet::RV64GC, block(1));
        assert!(c.lookup(0x1000, ExtSet::RV64GCV, (0x1000, 1)).is_none());
        assert!(c.lookup(0x1000, ExtSet::RV64GC, (0x1000, 1)).is_some());
    }

    #[test]
    fn disabled_cache_flag() {
        assert!(!BlockCache::disabled().enabled);
        assert!(BlockCache::new().enabled);
    }

    #[test]
    fn invalidation_recycles_slot_and_breaks_links() {
        let mut c = BlockCache::new();
        let (a, _) = c.insert(0x1000, ExtSet::RV64GC, block(1));
        let (b, _) = c.insert(0x2000, ExtSet::RV64GC, block(1));
        assert!(c.set_link(
            a,
            (0x1000, ExtSet::RV64GC),
            ChainEdge::Taken,
            ChainLink {
                to: b,
                pc: 0x2000,
                stamp: 5,
            },
        ));
        assert_eq!(c.link_of(a, ChainEdge::Taken).map(|l| l.to), Some(b));
        // Invalidate the target: the slot goes dead, and the stale link's
        // target-side validation view disappears with it.
        assert!(c.lookup(0x2000, ExtSet::RV64GC, (0x1000, 2)).is_none());
        assert!(c.slot_block(b).is_none());
        // The freed slot is reused by the next insert under a new key, so a
        // follow of the old link must fail the key check.
        let (b2, _) = c.insert(0x3000, ExtSet::RV64GC, block(1));
        assert_eq!(b2, b);
        let (key, _, _) = c.slot_block(b2).unwrap();
        assert_ne!(key, (0x2000, ExtSet::RV64GC));
        // Severing clears the edge.
        c.sever(a, ChainEdge::Taken);
        assert!(c.link_of(a, ChainEdge::Taken).is_none());
    }

    #[test]
    fn set_link_requires_matching_source_key() {
        let mut c = BlockCache::new();
        let (a, _) = c.insert(0x1000, ExtSet::RV64GC, block(1));
        let stale_key = (0xdead, ExtSet::RV64GC);
        assert!(!c.set_link(
            a,
            stale_key,
            ChainEdge::Fall,
            ChainLink {
                to: a,
                pc: 0x1000,
                stamp: 0,
            },
        ));
        assert!(c.link_of(a, ChainEdge::Fall).is_none());
    }

    #[test]
    fn static_edges_install_once_but_indirect_edge_replaces() {
        let mut c = BlockCache::new();
        let key = (0x1000, ExtSet::RV64GC);
        let (a, _) = c.insert(0x1000, ExtSet::RV64GC, block(1));
        let (b, _) = c.insert(0x2000, ExtSet::RV64GC, block(1));
        let (d, _) = c.insert(0x3000, ExtSet::RV64GC, block(1));
        let link = |to, pc| ChainLink { to, pc, stamp: 1 };
        // Static edge: the first install wins and sticks.
        assert!(c.set_link(a, key, ChainEdge::Taken, link(b, 0x2000)));
        assert!(!c.set_link(a, key, ChainEdge::Taken, link(d, 0x3000)));
        assert_eq!(c.link_of(a, ChainEdge::Taken).map(|l| l.to), Some(b));
        // BTB edge: replaced on every new observed target; only the first
        // install reports "newly populated" (the trace-event trigger).
        assert!(c.set_link(a, key, ChainEdge::Indirect, link(b, 0x2000)));
        assert!(!c.set_link(a, key, ChainEdge::Indirect, link(d, 0x3000)));
        assert_eq!(c.link_of(a, ChainEdge::Indirect).map(|l| l.to), Some(d));
    }

    #[test]
    fn clear_drops_slots_and_free_list_together() {
        let mut c = BlockCache::new();
        let (a, _) = c.insert(0x1000, ExtSet::RV64GC, block(1));
        c.clear();
        assert!(c.is_empty());
        assert!(c.slot_block(a).is_none());
        // Fresh inserts start from slot 0 again.
        let (id, _) = c.insert(0x4000, ExtSet::RV64GC, block(1));
        assert_eq!(id, 0);
    }
}
