//! Executable-memory arena for the template JIT, plus the host-capability
//! probe.
//!
//! The workspace is dependency-free, so the arena speaks to the kernel
//! directly: `mmap`/`mprotect`/`munmap` via inline-asm syscalls on
//! x86-64 Linux. The whole arena is W^X-toggled as one unit — writable
//! only inside [`Arena::with_writable`] (compilation, exit-site patching,
//! severing), executable the rest of the time. On any other target, or
//! when the host refuses executable anonymous pages (hardened kernels,
//! seccomp sandboxes, W^X-enforcing containers), [`jit_available`] is
//! `false` and `ExecMode::Jit` transparently degrades to the micro-op
//! engine semantics with zero JIT counters.

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod native {
    use std::arch::asm;

    const SYS_MMAP: u64 = 9;
    const SYS_MPROTECT: u64 = 10;
    const SYS_MUNMAP: u64 = 11;
    const PROT_READ: u64 = 1;
    const PROT_WRITE: u64 = 2;
    const PROT_EXEC: u64 = 4;
    const MAP_PRIVATE_ANON: u64 = 0x22;

    unsafe fn sys_mmap(len: usize, prot: u64) -> i64 {
        let ret: i64;
        unsafe {
            asm!(
                "syscall",
                inlateout("rax") SYS_MMAP => ret,
                in("rdi") 0u64,
                in("rsi") len as u64,
                in("rdx") prot,
                in("r10") MAP_PRIVATE_ANON,
                in("r8") -1i64,
                in("r9") 0u64,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    unsafe fn sys_mprotect(addr: usize, len: usize, prot: u64) -> i64 {
        let ret: i64;
        unsafe {
            asm!(
                "syscall",
                inlateout("rax") SYS_MPROTECT => ret,
                in("rdi") addr as u64,
                in("rsi") len as u64,
                in("rdx") prot,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    unsafe fn sys_munmap(addr: usize, len: usize) -> i64 {
        let ret: i64;
        unsafe {
            asm!(
                "syscall",
                inlateout("rax") SYS_MUNMAP => ret,
                in("rdi") addr as u64,
                in("rsi") len as u64,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    /// A W^X-toggled anonymous mapping.
    #[derive(Debug)]
    pub struct Arena {
        base: usize,
        len: usize,
        cursor: usize,
    }

    // The arena is plain owned memory; the raw base is never shared.
    unsafe impl Send for Arena {}

    impl Arena {
        /// Maps `len` bytes read+write and seals them executable. Returns
        /// `None` when the kernel refuses either step.
        pub fn new(len: usize) -> Option<Arena> {
            let ret = unsafe { sys_mmap(len, PROT_READ | PROT_WRITE) };
            if ret < 0 || ret as u64 >= u64::MAX - 4096 {
                return None;
            }
            let base = ret as usize;
            if unsafe { sys_mprotect(base, len, PROT_READ | PROT_EXEC) } != 0 {
                unsafe { sys_munmap(base, len) };
                return None;
            }
            Some(Arena {
                base,
                len,
                cursor: 0,
            })
        }

        /// Absolute address of an arena offset.
        pub fn addr(&self, off: usize) -> usize {
            debug_assert!(off < self.len);
            self.base + off
        }

        /// Flips the arena writable, runs `f`, and seals it executable
        /// again. All code writes (allocation, patching, restores) go
        /// through here, so the mapping is never writable while guest
        /// traces may execute. Panics if the kernel refuses the flip after
        /// having granted it at map time (nothing recoverable remains).
        pub fn with_writable<R>(&mut self, f: impl FnOnce(&mut ArenaWriter<'_>) -> R) -> R {
            let ok = unsafe { sys_mprotect(self.base, self.len, PROT_READ | PROT_WRITE) };
            assert_eq!(ok, 0, "jit arena lost write permission");
            let r = f(&mut ArenaWriter { arena: self });
            let ok = unsafe { sys_mprotect(self.base, self.len, PROT_READ | PROT_EXEC) };
            assert_eq!(ok, 0, "jit arena lost exec permission");
            r
        }

        /// Drops every allocation (the bytes stay mapped; the cursor
        /// rewinds).
        pub fn reset(&mut self) {
            self.cursor = 0;
        }
    }

    impl Drop for Arena {
        fn drop(&mut self) {
            unsafe { sys_munmap(self.base, self.len) };
        }
    }

    /// Write access to an arena inside [`Arena::with_writable`].
    #[derive(Debug)]
    pub struct ArenaWriter<'a> {
        arena: &'a mut Arena,
    }

    impl ArenaWriter<'_> {
        /// Appends `code` at the cursor; returns its offset, or `None`
        /// when the arena is full (the caller flushes every trace and
        /// retries).
        pub fn alloc(&mut self, code: &[u8]) -> Option<usize> {
            // 16-byte-align every trace so entry points don't straddle
            // fetch-block boundaries.
            let off = (self.arena.cursor + 15) & !15;
            if off + code.len() > self.arena.len {
                return None;
            }
            self.write_at(off, code);
            self.arena.cursor = off + code.len();
            Some(off)
        }

        /// Overwrites bytes at a previously allocated offset (exit-site
        /// patching and unpatching).
        pub fn write_at(&mut self, off: usize, bytes: &[u8]) {
            assert!(off + bytes.len() <= self.arena.len);
            let dst = (self.arena.base + off) as *mut u8;
            unsafe { std::ptr::copy_nonoverlapping(bytes.as_ptr(), dst, bytes.len()) };
        }
    }

    /// Calls a compiled trace entry: `extern "sysv64" fn(ctx, trace) ->
    /// status`.
    ///
    /// # Safety
    ///
    /// `addr` must be the external entry of a live trace in a sealed
    /// arena, and `ctx` must point to a fully initialized `JitCtx` whose
    /// raw pointers (cpu, mem, xregs, stamp/block tables) are valid for
    /// the duration of the call.
    pub unsafe fn call_entry(addr: usize, ctx: *mut u8, trace: u32) -> u64 {
        let f: extern "sysv64" fn(*mut u8, u32) -> u64 = unsafe { std::mem::transmute(addr) };
        f(ctx, trace)
    }

    /// One-time host probe: map a page, emit `mov eax, 0x2a; ret`, seal
    /// it executable and run it. Any refusal (or a wrong answer) marks
    /// the JIT unavailable for the process lifetime.
    pub fn probe() -> bool {
        let Some(mut a) = Arena::new(4096) else {
            return false;
        };
        let off = a.with_writable(|w| w.alloc(&[0xb8, 0x2a, 0x00, 0x00, 0x00, 0xc3]));
        let Some(off) = off else { return false };
        let f: extern "sysv64" fn() -> u32 = unsafe { std::mem::transmute(a.addr(off)) };
        f() == 0x2a
    }
}

#[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
mod native {
    //! Portable stub: no executable pages, no JIT. Every entry point is
    //! either unreachable (guarded by [`super::jit_available`]) or a
    //! no-op.

    /// Stub arena: never constructible.
    #[derive(Debug)]
    pub struct Arena {}

    impl Arena {
        /// Always `None` on non-x86-64-Linux hosts.
        pub fn new(_len: usize) -> Option<Arena> {
            None
        }
        pub fn addr(&self, _off: usize) -> usize {
            unreachable!("stub arena")
        }
        pub fn with_writable<R>(&mut self, _f: impl FnOnce(&mut ArenaWriter<'_>) -> R) -> R {
            unreachable!("stub arena")
        }
        pub fn reset(&mut self) {}
    }

    /// Stub writer (never constructed).
    #[derive(Debug)]
    pub struct ArenaWriter<'a> {
        _arena: &'a mut Arena,
    }

    impl ArenaWriter<'_> {
        pub fn alloc(&mut self, _code: &[u8]) -> Option<usize> {
            None
        }
        pub fn write_at(&mut self, _off: usize, _bytes: &[u8]) {}
        pub fn addr(&self, _off: usize) -> usize {
            unreachable!("stub arena")
        }
    }

    /// # Safety
    ///
    /// Never called on stub targets ([`super::jit_available`] is false).
    pub unsafe fn call_entry(_addr: usize, _ctx: *mut u8, _trace: u32) -> u64 {
        unreachable!("jit entry on a host without executable pages")
    }

    pub fn probe() -> bool {
        false
    }
}

pub(super) use native::{call_entry, Arena};

/// Whether this process can emit and execute host code: x86-64 Linux with
/// working anonymous executable pages. Probed once; the result is stable
/// for the process lifetime. When false, `ExecMode::Jit` runs with the
/// micro-op engine's exact semantics and zero JIT counters.
pub fn jit_available() -> bool {
    static PROBE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *PROBE.get_or_init(native::probe)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_is_stable() {
        assert_eq!(jit_available(), jit_available());
    }

    #[test]
    fn arena_allocates_and_executes_when_available() {
        if !jit_available() {
            return;
        }
        let mut a = Arena::new(4096).expect("probe passed, arena must map");
        // mov eax, edi; add eax, 1; ret  — a tiny callable.
        let off = a
            .with_writable(|w| w.alloc(&[0x89, 0xf8, 0x83, 0xc0, 0x01, 0xc3]))
            .expect("arena has room");
        let f: extern "sysv64" fn(u32) -> u32 = unsafe { std::mem::transmute(a.addr(off)) };
        assert_eq!(f(41), 42);
        // Patching under the W toggle: turn `add eax, 1` into `add eax, 2`.
        a.with_writable(|w| w.write_at(off + 2, &[0x83, 0xc0, 0x02]));
        assert_eq!(f(40), 42);
    }

    #[test]
    fn arena_full_returns_none() {
        if !jit_available() {
            return;
        }
        let mut a = Arena::new(4096).expect("arena");
        let big = vec![0xcc; 4096];
        a.with_writable(|w| {
            assert!(w.alloc(&big).is_some());
            assert!(w.alloc(&[0xc3]).is_none());
        });
        a.reset();
        a.with_writable(|w| assert!(w.alloc(&[0xc3]).is_some()));
    }
}
